#!/usr/bin/env python3
"""Computer-assisted surgery scenario (the paper's motivating application).

A surgical workstation repeatedly refreshes a medical page — 5 KB of
report text plus four 3-D view images (~130 KB) — as the views are
re-rendered during a procedure.  A PDA over Bluetooth in the operating
room and a desktop on the hospital LAN follow the same series of updates;
Fractal negotiates a different protocol for each, and the differencing
protocols pay only for the re-rendered view bands.

Also demonstrates the §3.1 proactive mode: the server pre-encodes
responses so the per-request server compute disappears — which flips the
PDA's best protocol from Bitmap to Vary-sized blocking, exactly the
Fig. 10(d)/11(c) observation.

Run:  python examples/medical_imaging.py
"""

from repro.bench.experiments import negotiated_winner
from repro.core import APP_ID, build_case_study
from repro.workload import DESKTOP_LAN, PDA_BLUETOOTH


def follow_updates(system, client, n_versions: int) -> tuple[int, int]:
    """Fetch versions 1..n_versions, always diffing against the previous."""
    total_traffic = 0
    total_direct = 0
    page = system.corpus.evolved(0, 0)
    parts = [page.text, *page.images]
    for version in range(1, n_versions + 1):
        result = client.request_page(
            APP_ID, page_id=0,
            old_parts=parts, old_version=version - 1, new_version=version,
        )
        expected = system.corpus.evolved(0, version)
        assert result.parts == [expected.text, *expected.images]
        total_traffic += result.app_traffic_bytes
        total_direct += sum(len(p) for p in result.parts)
        parts = result.parts  # the rebuilt version becomes the new baseline
    return total_traffic, total_direct


def main() -> None:
    system = build_case_study(calibrate=True, calibration_pages=1, era=True)
    n_versions = 5

    print("Following", n_versions, "surgical view updates of one page:\n")
    for env in (DESKTOP_LAN, PDA_BLUETOOTH):
        client = system.make_client(env)
        traffic, direct = follow_updates(system, client, n_versions)
        pad = negotiated_winner(system, env)
        print(f"  {env.label:<14} negotiated={pad:<8} "
              f"moved {traffic/1024:8.1f} KB of {direct/1024:8.1f} KB "
              f"({1 - traffic/direct:.0%} saved)")

    # Proactive mode: the server pre-encodes, so the negotiation model
    # drops server compute and the PDA's best protocol flips.
    with_srv = negotiated_winner(system, PDA_BLUETOOTH, include_server_compute=True)
    without_srv = negotiated_winner(system, PDA_BLUETOOTH, include_server_compute=False)
    print(f"\nPDA/Bluetooth best PAD, reactive server:  {with_srv}")
    print(f"PDA/Bluetooth best PAD, proactive server: {without_srv}"
          f"   (the paper's Fig. 10(d) flip)")


if __name__ == "__main__":
    main()
