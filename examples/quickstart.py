#!/usr/bin/env python3
"""Quickstart: the full Fractal flow in ~40 lines.

Builds the paper's case-study system (application server + adaptation
proxy + CDN with the four communication-optimization PADs), creates one
client per paper environment, and fetches an updated page through the
negotiated protocol.  Watch the negotiated PAD change with the client's
device and network.

Run:  python examples/quickstart.py
"""

from repro.core import APP_ID, build_case_study
from repro.workload import PAPER_ENVIRONMENTS


def main() -> None:
    # era=True places compute:network cost ratios where the paper's 2005
    # testbed had them, so negotiation picks the paper's winners.
    system = build_case_study(calibrate=True, calibration_pages=1, era=True)

    print(f"{'environment':<16} {'negotiated PAD':<14} "
          f"{'app traffic':>12} {'vs direct':>10}")
    for env in PAPER_ENVIRONMENTS:
        client = system.make_client(env)

        # The client already holds version 0 of page 0 and wants version 1.
        old_page = system.corpus.evolved(0, 0)
        old_parts = [old_page.text, *old_page.images]
        result = client.request_page(
            APP_ID, page_id=0, old_parts=old_parts, old_version=0, new_version=1
        )

        # The rebuilt content is byte-identical to the server's new version.
        new_page = system.corpus.evolved(0, 1)
        assert result.parts == [new_page.text, *new_page.images]

        direct_bytes = sum(len(p) for p in result.parts)
        saving = 1.0 - result.app_traffic_bytes / direct_bytes
        print(f"{env.label:<16} {'+'.join(result.pad_ids):<14} "
              f"{result.app_traffic_bytes:>10} B {saving:>9.0%}")

    stats = system.proxy.stats
    print(f"\nproxy: {stats.negotiations} negotiations, "
          f"{stats.cache_hits} adaptation-cache hits")


if __name__ == "__main__":
    main()
