#!/usr/bin/env python3
"""Authoring, signing, and deploying a brand-new PAD as mobile code.

Fractal's PAT "makes it flexible enough to extend adaptation protocols by
adding new PAD nodes later" (§3.4.1).  This example writes a new protocol
adaptor *from source text* — a trivial XOR-obfuscation transport, standing
in for any future protocol — packages it as a mobile-code module, signs
it, publishes it to the CDN, extends the live PAT, and watches a client
download, verify, sandbox-load and *run* code the client host has never
seen before.  It also shows the two security checks rejecting a tampered
module and an untrusted signer.

Run:  python examples/custom_pad.py
"""

from repro.cdn import push_all
from repro.core import APP_ID, PADMeta, PADOverhead, build_case_study
from repro.core.appserver import pad_url, url_key
from repro.mobilecode import (
    MobileCodeModule,
    SignedModule,
    Signer,
    SigningError,
    generate_keypair,
)
from repro.workload import DESKTOP_LAN

# The new protocol travels as *data*.  It may import only what the client
# sandbox allowlists.
XOR_PAD_SOURCE = '''
from repro.protocols.base import CommProtocol

class XorObfuscation(CommProtocol):
    """Toy 'encryption' PAD: XOR the payload with a rolling key byte."""

    name = "xor"

    def __init__(self, key: int = 0x5A):
        self.key = key & 0xFF

    def _mask(self, data):
        key = self.key
        out = bytearray(len(data))
        for i, b in enumerate(data):
            out[i] = b ^ key
            key = (key + 7) & 0xFF
        return bytes(out)

    def server_respond(self, request, old, new):
        return self._mask(new)

    def client_reconstruct(self, old, response):
        return self._mask(response)
'''


def main() -> None:
    system = build_case_study(calibrate=False)

    module = MobileCodeModule(
        name="xor",
        version="0.1",
        source=XOR_PAD_SOURCE,
        entry_point="XorObfuscation",
        capabilities=("repro.protocols.base",),
        metadata={"init_kwargs": {"key": 0x5A}},
    )
    signed = system.appserver.signer.sign(module)
    print(f"authored PAD 'xor': {module.size} bytes, sha1={module.digest()[:12]}…")

    # Publish to the CDN origin and replicate to every edge.
    key = url_key(pad_url("xor", module.version))
    system.deployment.origin.publish(key, signed.to_wire())
    push_all(system.deployment.origin, system.deployment.edges)

    # Extend the live PAT (a new leaf under the root) and tell the
    # distribution manager where to find the module.
    pat = system.proxy.negotiation.pat(APP_ID)
    pat.add_pad(
        PADMeta(
            pad_id="xor",
            size_bytes=module.size,
            overhead=PADOverhead(
                traffic_std_bytes=135_000, client_comp_std_s=0.02, server_comp_s=0.02
            ),
            init_kwargs={"key": 0x5A},
        )
    )
    system.proxy.register_distribution("xor", module.digest(), pad_url("xor", module.version))
    print(f"PAT now has {pat.path_count()} possible adaptation paths")

    # A client downloads and runs the never-before-seen protocol.
    client = system.make_client(DESKTOP_LAN)
    blob = client.cdn_fetch(key)
    loaded = client.loader.load(
        SignedModule.from_wire(blob),
        expected_digest=module.digest(),
        init_kwargs={"key": 0x5A},
    )
    xor = loaded.instance
    message = b"dynamic protocol adaptation via mobile code"
    assert xor.client_reconstruct(None, xor.server_respond(b"", None, message)) == message
    print("client executed downloaded mobile code: round-trip OK")

    # Security check 1: a tampered module fails signature verification.
    tampered = SignedModule(
        module=MobileCodeModule(
            name="xor", version="0.1",
            source=XOR_PAD_SOURCE.replace("0x5A", "0x00"),
            entry_point="XorObfuscation",
            capabilities=("repro.protocols.base",),
        ),
        signer=signed.signer,
        signature=signed.signature,
    )
    try:
        client.loader.load(tampered)
        raise AssertionError("tampered module was accepted!")
    except SigningError as exc:
        print(f"tampered module rejected: {exc}")

    # Security check 2: a valid signature from an unknown signer is refused.
    mallory = Signer("mallory", generate_keypair(768))
    try:
        client.loader.load(mallory.sign(module))
        raise AssertionError("untrusted signer was accepted!")
    except SigningError as exc:
        print(f"untrusted signer rejected: {exc}")


if __name__ == "__main__":
    main()
