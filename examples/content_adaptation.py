#!/usr/bin/env python3
"""Content adaptation: PADs that transform the content itself (§5).

The paper closes by noting that Fractal "provides a general framework for
other adaptation functionality as well by extending the PAD into other
adaptation functions, e.g. content adaptation".  This example authors two
content-adaptation PADs as mobile code — an image downscaler for small
screens and a text-only stripper for a cell-phone-class device — signs
them, and serves the same medical page three ways.

Run:  python examples/content_adaptation.py
"""

from repro.protocols import run_exchange
from repro.protocols.content import ImageDownscaleProtocol, TextOnlyProtocol
from repro.protocols.direct import DirectProtocol
from repro.workload.images import decode_image
from repro.workload.pages import Corpus


def serve_page(protocol, page) -> tuple[int, list[bytes]]:
    traffic = 0
    parts = []
    for part in [page.text, *page.images]:
        result = run_exchange(protocol, None, part)
        traffic += result.traffic_bytes
        parts.append(result.data)
    return traffic, parts


def main() -> None:
    corpus = Corpus(n_pages=1)
    page = corpus.page(0)
    full_size = page.size

    print(f"page 0: {full_size / 1024:.1f} KB "
          f"({len(page.text)} B text + {len(page.images)} images)\n")

    scenarios = [
        ("desktop (full fidelity)", DirectProtocol()),
        ("PDA screen (images /2)", ImageDownscaleProtocol(factor=2)),
        ("phone (text only)", TextOnlyProtocol()),
    ]
    print(f"{'device class':<26} {'traffic':>10} {'vs full':>8}  delivered")
    for label, protocol in scenarios:
        traffic, parts = serve_page(protocol, page)
        images = [p for p in parts[1:] if p]
        if images:
            dims = decode_image(images[0])
            delivered = f"{len(images)} images @ {dims.width}x{dims.height}"
        else:
            delivered = "text only"
        print(f"{label:<26} {traffic:>8} B {1 - traffic / full_size:>7.0%}  {delivered}")

    print("\nThe same negotiation machinery applies: add these PADs to the")
    print("PAT with per-device ratio matrices (infinity for devices that")
    print("must not receive full-size images) and the Fig. 6 search picks")
    print("the right fidelity per client.")


if __name__ == "__main__":
    main()
