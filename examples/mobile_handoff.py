#!/usr/bin/env python3
"""Pervasive-computing handoff: one user, four environments in a day.

The paper's introduction motivates Fractal with a person who uses "a
laptop with a cable modem at home, a cell phone with 3G on the way to the
office, a desktop with Ethernet LAN in the office and a PDA with Wi-Fi in
the meeting room".  This example walks a client through exactly that day.
Each move triggers a re-negotiation; returning to a previously seen
environment is answered from the client's own protocol cache without
touching the proxy (the Fig. 4 fast path).

Run:  python examples/mobile_handoff.py
"""

from repro.core import APP_ID, build_case_study
from repro.simnet import LINK_PRESETS, NetworkType
from repro.workload import DESKTOP, LAPTOP, PDA, ClientEnvironment, DeviceProfile

PHONE = DeviceProfile(
    name="Phone", os_type="WinCE4.2", cpu_type="PXA255",
    cpu_mhz=200.0, memory_mb=32.0,
)

DAY = [
    ("07:30 home",    ClientEnvironment("Laptop/Cable", LAPTOP, LINK_PRESETS[NetworkType.CABLE])),
    ("08:10 commute", ClientEnvironment("Phone/3G", PHONE, LINK_PRESETS[NetworkType.CELLULAR_3G])),
    ("09:00 office",  ClientEnvironment("Desktop/LAN", DESKTOP, LINK_PRESETS[NetworkType.LAN])),
    ("14:00 meeting", ClientEnvironment("PDA/WLAN", PDA, LINK_PRESETS[NetworkType.WLAN])),
    ("17:30 commute", ClientEnvironment("Phone/3G", PHONE, LINK_PRESETS[NetworkType.CELLULAR_3G])),
    ("18:30 home",    ClientEnvironment("Laptop/Cable", LAPTOP, LINK_PRESETS[NetworkType.CABLE])),
]


def main() -> None:
    system = build_case_study(calibrate=True, calibration_pages=1, era=True)
    client = system.make_client(DAY[0][1], name="commuter")

    page0 = system.corpus.evolved(0, 0)
    parts = [page0.text, *page0.images]
    version = 0

    print(f"{'time/place':<14} {'environment':<14} {'PAD':<8} "
          f"{'traffic B':>10} {'negotiation':>12}")
    for when, env in DAY:
        client.set_environment(env)
        version += 1
        result = client.request_page(
            APP_ID, page_id=0,
            old_parts=parts, old_version=version - 1, new_version=version,
        )
        parts = result.parts
        source = "protocol cache" if result.negotiated_from_cache else "proxy"
        print(f"{when:<14} {env.label:<14} {'+'.join(result.pad_ids):<8} "
              f"{result.app_traffic_bytes:>10} {source:>12}")

    print(f"\nclient negotiated with the proxy {client.negotiations} times "
          f"for {len(DAY)} moves; {client.protocol_cache_hits} answered "
          f"from the client's own protocol cache")


if __name__ == "__main__":
    main()
