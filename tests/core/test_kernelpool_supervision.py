"""Kernel-pool supervision: crash recovery, poison, timeouts, reroute.

These tests kill and restart real spawned worker processes, so each one
pays process-startup cost several times over; they are marked ``chaos``
like the other fault-injection sweeps.  The invariants under test:

- a worker crash is retried exactly once, on a **fresh** worker, and the
  retried result is byte-identical to the inline baseline;
- a task that kills two workers in a row is poison: it surfaces as a
  typed :class:`KernelPoolError` and is never executed inline in the
  serving process;
- a plain kernel exception propagates as-is with zero restarts — the
  supervisor only reacts to dead workers and deadlines;
- a shard that exhausts its restart budget is disabled and its keys are
  rerouted to a surviving shard, with the reroute ledgered.
"""

from __future__ import annotations

import pytest

from repro.core.kernelpool import KernelPool, KernelPoolError, run_kernel
from repro.telemetry import MetricsRegistry

pytestmark = pytest.mark.chaos

_DATA = b"supervision test payload " * 40
_ARGS = (_DATA, "pure", 64, None)


def compress(pool, shard_key="victim"):
    return pool.run("gziplike.compress", *_ARGS, shard_key=shard_key)


class TestCrashRecovery:
    def test_crash_restarts_once_and_heals_byte_identically(self):
        registry = MetricsRegistry()
        inline = run_kernel("gziplike.compress", *_ARGS)
        with KernelPool(workers=1, registry=registry) as pool:
            assert compress(pool) == inline
            with pytest.raises(KernelPoolError) as exc_info:
                pool.run("chaos.exit", 3, shard_key="victim")
            # Poison wording proves the retry ran on a fresh worker and
            # was never executed inline in the serving process.
            assert "two workers in a row" in str(exc_info.value)
            assert "never executed inline" in str(exc_info.value)
            assert compress(pool) == inline
            health = pool.health()
        assert health["restarts_total"] == 2
        assert registry.counter("kernelpool.crashes").value == 2
        assert registry.counter("kernelpool.restarts").value == 2
        assert registry.counter("kernelpool.restarts.crash").value == 2

    def test_plain_exception_propagates_without_restart(self):
        registry = MetricsRegistry()
        with KernelPool(workers=1, registry=registry) as pool:
            with pytest.raises(RuntimeError, match="deliberate"):
                pool.run("chaos.boom", "deliberate", shard_key="victim")
            health = pool.health()
        assert health["restarts_total"] == 0
        assert registry.counter("kernelpool.crashes").value == 0

    def test_timeout_kills_revives_and_gives_up_after_second(self):
        registry = MetricsRegistry()
        with KernelPool(
            workers=1, registry=registry, task_timeout_s=0.5
        ) as pool:
            inline = run_kernel("gziplike.compress", *_ARGS)
            with pytest.raises(KernelPoolError, match="timed out twice"):
                pool.run("chaos.sleep", 30.0, shard_key="victim")
            # The revived (pre-warmed) worker serves normal traffic
            # without the spawn cost eating the next task's deadline.
            assert compress(pool) == inline
        assert registry.counter("kernelpool.timeouts").value == 2
        assert registry.counter("kernelpool.restarts.timeout").value == 2


class TestRestartBudgetAndReroute:
    def test_exhausted_shard_is_disabled_and_rerouted(self):
        registry = MetricsRegistry()
        inline = run_kernel("gziplike.compress", *_ARGS)
        with KernelPool(workers=2, registry=registry) as pool:
            # Two poison tasks cost 2 restarts each on the victim shard —
            # past the default budget of 3 — so the shard is disabled.
            for _ in range(2):
                with pytest.raises(KernelPoolError):
                    pool.run("chaos.exit", 3, shard_key="victim")
            healed = compress(pool)
            health = pool.health()
        assert healed == inline  # served by the rerouted survivor
        assert len(health["disabled"]) == 1
        assert health["restarts_total"] == 4
        assert registry.counter("kernelpool.rerouted").value == 1
        assert registry.counter("kernelpool.shards_disabled").value == 1

    def test_all_shards_disabled_is_a_typed_hard_failure(self):
        with KernelPool(workers=1, max_shard_restarts=0) as pool:
            with pytest.raises(KernelPoolError):
                pool.run("chaos.exit", 3, shard_key="victim")
            with pytest.raises(KernelPoolError, match="all kernel-pool shards"):
                compress(pool)

    def test_unsupervised_pool_keeps_legacy_fail_fast(self):
        from concurrent.futures import BrokenExecutor

        with KernelPool(workers=1, supervised=False) as pool:
            with pytest.raises(BrokenExecutor):
                pool.run("chaos.exit", 3, shard_key="victim")
            # No revival: the broken shard stays broken.
            with pytest.raises(BrokenExecutor):
                compress(pool)


class TestHealthSurface:
    def test_health_reports_shape(self):
        with KernelPool(workers=1, task_timeout_s=2.0) as pool:
            health = pool.health()
        assert health["workers"] == 1
        assert health["supervised"] is True
        assert health["task_timeout_s"] == 2.0
        assert health["restarts"] == [0]
        assert health["restarts_total"] == 0
        assert health["disabled"] == []
