"""RetryPolicy: deterministic backoff, budget, and the call loop."""

import pytest

from repro.core.retry import DEFAULT_RETRY_POLICY, RetryPolicy


class Flaky:
    """Fails ``failures`` times with ``exc_type``, then returns ``value``."""

    def __init__(self, failures, exc_type=ValueError, value="ok"):
        self.failures = failures
        self.exc_type = exc_type
        self.value = value
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc_type(f"attempt {self.calls} failed")
        return self.value


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestDelays:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0, max_delay_s=1.0,
                             jitter=0.0)
        assert policy.delay_s(1) == pytest.approx(0.1)
        assert policy.delay_s(2) == pytest.approx(0.2)
        assert policy.delay_s(3) == pytest.approx(0.4)
        assert policy.delay_s(5) == pytest.approx(1.0)  # capped
        assert policy.delay_s(9) == pytest.approx(1.0)

    def test_jitter_is_deterministic_in_key_and_attempt(self):
        policy = RetryPolicy(base_delay_s=0.1, jitter=0.5)
        assert policy.delay_s(1, "a") == policy.delay_s(1, "a")
        assert policy.delay_s(1, "a") != policy.delay_s(1, "b")
        assert policy.delay_s(1, "a") != policy.delay_s(2, "a")

    def test_jitter_stays_within_nominal_bounds(self):
        policy = RetryPolicy(base_delay_s=0.1, multiplier=1.0, jitter=0.5)
        for attempt in range(1, 50):
            d = policy.delay_s(attempt, "key")
            assert 0.05 <= d <= 0.1

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError):
            DEFAULT_RETRY_POLICY.delay_s(0)


class TestCall:
    def test_success_first_try_no_hooks(self):
        hooks = []
        policy = RetryPolicy(max_attempts=3)
        result = policy.call(
            Flaky(0), retryable=(ValueError,),
            on_retry=lambda *a: hooks.append(a),
        )
        assert result == "ok"
        assert hooks == []

    def test_retries_until_success(self):
        fn = Flaky(2)
        hooks = []
        policy = RetryPolicy(max_attempts=3, jitter=0.0, base_delay_s=0.01)
        assert policy.call(
            fn, retryable=(ValueError,), on_retry=lambda *a: hooks.append(a)
        ) == "ok"
        assert fn.calls == 3
        assert [h[0] for h in hooks] == [1, 2]  # attempt numbers
        assert all(isinstance(h[2], ValueError) for h in hooks)

    def test_exhausted_attempts_reraise_last_error(self):
        fn = Flaky(10)
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0)
        with pytest.raises(ValueError, match="attempt 3 failed"):
            policy.call(fn, retryable=(ValueError,))
        assert fn.calls == 3

    def test_non_retryable_propagates_immediately(self):
        fn = Flaky(5, exc_type=KeyError)
        policy = RetryPolicy(max_attempts=5)
        with pytest.raises(KeyError):
            policy.call(fn, retryable=(ValueError,))
        assert fn.calls == 1

    def test_budget_stops_before_attempts_do(self):
        fn = Flaky(100)
        policy = RetryPolicy(
            max_attempts=100, base_delay_s=1.0, multiplier=1.0, jitter=0.0,
            max_delay_s=1.0, budget_s=2.5,
        )
        with pytest.raises(ValueError):
            policy.call(fn, retryable=(ValueError,))
        # Two 1 s delays fit in 2.5 s; the third would overflow.
        assert fn.calls == 3

    def test_sleep_receives_each_delay(self):
        slept = []
        fn = Flaky(2)
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.1, multiplier=2.0,
                             jitter=0.0)
        policy.call(fn, retryable=(ValueError,), sleep=slept.append)
        assert slept == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_decision_sequence_is_reproducible(self):
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.05)
        runs = []
        for _ in range(2):
            slept = []
            policy.call(Flaky(3), retryable=(ValueError,), key="cli:negotiate",
                        sleep=slept.append)
            runs.append(slept)
        assert runs[0] == runs[1]
