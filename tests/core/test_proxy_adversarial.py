"""Scripted-slowloris regressions for the proxy's session hardening.

Two earlier fixes get pinned under explicit adversarial pressure here:

* the abandoned-``INIT_REQ`` LRU bound (an unbounded ``_sessions`` table
  was the original slowloris vector), and
* the atomic ``_claim_session`` pop (a get-then-del pair used to crash
  when a worker raced ``restart()`` — exactly the interleaving a
  half-open flood plus a watchdog restart produces).
"""

import threading

import pytest

from repro.core import inp
from repro.core.inp import INPMessage, MsgType
from repro.core.metadata import AppMeta, DevMeta, NtwkMeta, PADMeta, PADOverhead
from repro.core.overhead import OverheadModel
from repro.core.proxy import AdaptationProxy

DEV = DevMeta("FedoraCore2", "PentiumIV", 2000.0, 512.0)
NTWK = NtwkMeta("LAN", 100_000.0)


def make_proxy(**kwargs):
    proxy = AdaptationProxy(OverheadModel(), **kwargs)
    proxy.push_app_meta(AppMeta("app", (PADMeta(
        pad_id="only", size_bytes=100,
        overhead=PADOverhead(traffic_std_bytes=0, client_comp_std_s=0.01,
                             server_comp_s=0),
    ),)))
    proxy.register_distribution("only", "a" * 40, "cdn://only/1")
    return proxy


def send_init(proxy, session_id):
    msg = INPMessage(MsgType.INIT_REQ, session_id, 0, {"app_id": "app"})
    return inp.decode(proxy.handle(inp.encode(msg)))


def send_cli_meta(proxy, session_id):
    msg = INPMessage(
        MsgType.CLI_META_REP, session_id, 2,
        {"dev_meta": DEV.to_wire(), "ntwk_meta": NTWK.to_wire()},
    )
    return inp.decode(proxy.handle(inp.encode(msg)))


class TestSlowlorisBound:
    def test_half_open_flood_evicts_oldest_first_and_stays_bounded(self):
        proxy = make_proxy(max_sessions=4)
        victims = [f"victim-{i}" for i in range(2)]
        for sid in victims:
            send_init(proxy, sid)
        # 50 half-open INIT_REQs: never followed by CLI_META_REP.
        for i in range(50):
            assert send_init(proxy, f"loris-{i}").msg_type is MsgType.INIT_REP
        assert proxy.pending_sessions == 4
        assert proxy.stats.sessions_dropped == 50 + 2 - 4
        # The victims went first (oldest-first eviction) ...
        for sid in victims:
            assert not proxy.has_pending(sid)
            assert send_cli_meta(proxy, sid).msg_type is MsgType.INP_ERROR
        # ... and only the newest attacker sessions survive.
        assert all(proxy.has_pending(f"loris-{i}") for i in range(46, 50))
        assert not proxy.has_pending("loris-45")

    def test_victim_racing_ahead_of_the_flood_completes(self):
        proxy = make_proxy(max_sessions=4)
        send_init(proxy, "quick")
        for i in range(3):
            send_init(proxy, f"loris-{i}")
        # Still within the bound: the victim's follow-up wins the race.
        rep = send_cli_meta(proxy, "quick")
        assert rep.msg_type is MsgType.PAD_META_REP
        # The claimed slot is free again; the flood can't reclaim "quick".
        assert not proxy.has_pending("quick")
        assert proxy.stats.sessions_dropped == 0

    def test_flood_then_legitimate_burst_interleaved(self):
        proxy = make_proxy(max_sessions=8)
        completed = 0
        for i in range(100):
            send_init(proxy, f"loris-{i}")
            sid = f"real-{i}"
            send_init(proxy, sid)
            rep = send_cli_meta(proxy, sid)  # immediate follow-up
            if rep.msg_type is MsgType.PAD_META_REP:
                completed += 1
        # Immediate completion always beats an LRU that evicts oldest
        # first: the flood starves only sessions that dawdle.
        assert completed == 100
        assert proxy.pending_sessions <= 8


@pytest.mark.stress
class TestClaimRestartRace:
    def test_concurrent_claims_and_restarts_never_crash(self):
        """The PR-3 regression: claim vs restart must not double-delete.

        8 claimer threads replay CLI_META_REPs for the same session IDs
        while a restarter thread wipes the table; every reply must be a
        well-formed PAD_META_REP or INP_ERROR — never an unhandled
        KeyError escaping ``handle``.
        """
        proxy = make_proxy(max_sessions=64)
        n_sessions, n_claimers = 40, 8
        for i in range(n_sessions):
            send_init(proxy, f"raced-{i}")
        barrier = threading.Barrier(n_claimers + 1)
        completions = [0] * n_claimers
        failures: list = []

        def claimer(slot):
            barrier.wait()
            for i in range(n_sessions):
                try:
                    rep = send_cli_meta(proxy, f"raced-{i}")
                except Exception as exc:  # noqa: BLE001 - the regression
                    failures.append(exc)
                    continue
                if rep.msg_type is MsgType.PAD_META_REP:
                    completions[slot] += 1
                else:
                    assert rep.msg_type is MsgType.INP_ERROR

        def restarter():
            barrier.wait()
            for _ in range(20):
                proxy.restart()

        threads = [
            threading.Thread(target=claimer, args=(slot,))
            for slot in range(n_claimers)
        ] + [threading.Thread(target=restarter)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert failures == []
        # A session is claimed at most once: no double completion.
        assert sum(completions) <= n_sessions
        assert proxy.stats.restarts == 20

    def test_slowloris_flood_under_concurrent_restarts_stays_bounded(self):
        proxy = make_proxy(max_sessions=16)
        stop = threading.Event()

        def restarter():
            while not stop.is_set():
                proxy.restart()

        t = threading.Thread(target=restarter)
        t.start()
        try:
            for i in range(500):
                rep = send_init(proxy, f"loris-{i}")
                assert rep.msg_type is MsgType.INIT_REP
                assert proxy.pending_sessions <= 16
        finally:
            stop.set()
            t.join()
        # Every half-open session was either LRU-dropped or restart-wiped;
        # the table never leaked past its bound.
        assert proxy.pending_sessions <= 16
