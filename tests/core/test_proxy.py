"""Adaptation proxy tests: negotiation manager, distribution manager, INP handler."""

import pytest

from repro.core import inp
from repro.core.errors import NegotiationError
from repro.core.inp import INPMessage, MsgType
from repro.core.metadata import AppMeta, DevMeta, NtwkMeta, PADMeta, PADOverhead
from repro.core.overhead import OverheadModel
from repro.core.proxy import AdaptationProxy

DEV = DevMeta("FedoraCore2", "PentiumIV", 2000.0, 512.0)
NTWK = NtwkMeta("LAN", 100_000.0)


def pad(pad_id, cli):
    return PADMeta(
        pad_id=pad_id, size_bytes=100,
        overhead=PADOverhead(traffic_std_bytes=0, client_comp_std_s=cli,
                             server_comp_s=0),
    )


@pytest.fixture()
def proxy():
    p = AdaptationProxy(OverheadModel())
    p.push_app_meta(AppMeta("app", (pad("cheap", 0.01), pad("dear", 1.0))))
    p.register_distribution("cheap", "c" * 40, "cdn://cheap/1")
    p.register_distribution("dear", "d" * 40, "cdn://dear/1")
    return p


class TestNegotiation:
    def test_negotiate_picks_cheapest(self, proxy):
        metas = proxy.negotiate("app", DEV, NTWK)
        assert [m.pad_id for m in metas] == ["cheap"]

    def test_distribution_info_inserted(self, proxy):
        (meta,) = proxy.negotiate("app", DEV, NTWK)
        assert meta.digest == "c" * 40
        assert meta.url == "cdn://cheap/1"

    def test_cache_hit_on_repeat(self, proxy):
        proxy.negotiate("app", DEV, NTWK)
        proxy.negotiate("app", DEV, NTWK)
        assert proxy.stats.cache_hits == 1
        assert proxy.stats.cache_misses == 1
        assert proxy.stats.hit_ratio == pytest.approx(0.5)

    def test_different_env_misses_cache(self, proxy):
        proxy.negotiate("app", DEV, NTWK)
        proxy.negotiate("app", DEV, NtwkMeta("WLAN", 11_000.0))
        assert proxy.stats.cache_misses == 2

    def test_unknown_app_rejected(self, proxy):
        with pytest.raises(NegotiationError, match="no application"):
            proxy.negotiate("ghost", DEV, NTWK)

    def test_missing_distribution_info_rejected(self):
        p = AdaptationProxy(OverheadModel())
        p.push_app_meta(AppMeta("app", (pad("orphan", 0.01),)))
        with pytest.raises(NegotiationError, match="distribution info"):
            p.negotiate("app", DEV, NTWK)

    def test_app_meta_push_invalidates_cache(self, proxy):
        proxy.negotiate("app", DEV, NTWK)
        # Re-push with 'cheap' removed; stale cache must not resurrect it.
        proxy.push_app_meta(AppMeta("app", (pad("dear", 1.0),)))
        metas = proxy.negotiate("app", DEV, NTWK)
        assert [m.pad_id for m in metas] == ["dear"]
        assert proxy.stats.cache_misses == 2


class TestINPHandler:
    def _negotiate_via_inp(self, proxy, session="s1"):
        init = INPMessage(MsgType.INIT_REQ, session, 0, {"app_id": "app"})
        rep = inp.decode(proxy.handle(inp.encode(init)))
        rep.expect(MsgType.INIT_REP)
        assert "cli_meta_req" in rep.body
        cli = rep.reply(
            MsgType.CLI_META_REP,
            {"dev_meta": DEV.to_wire(), "ntwk_meta": NTWK.to_wire()},
        )
        return inp.decode(proxy.handle(inp.encode(cli)))

    def test_full_inp_exchange(self, proxy):
        final = self._negotiate_via_inp(proxy)
        final.expect(MsgType.PAD_META_REP)
        pads = final.body["pads"]
        assert pads[0]["pad_id"] == "cheap"
        # Links hidden on the wire (the distribution manager's job).
        assert "parent" not in pads[0] and "children" not in pads[0]

    def test_init_rep_carries_empty_meta_shapes(self, proxy):
        init = INPMessage(MsgType.INIT_REQ, "s2", 0, {"app_id": "app"})
        rep = inp.decode(proxy.handle(inp.encode(init)))
        shapes = rep.body["cli_meta_req"]
        assert shapes["dev_meta"]["cpu_mhz"] == 0
        assert shapes["ntwk_meta"]["network_type"] == ""

    def test_unknown_app_reported_at_init(self, proxy):
        init = INPMessage(MsgType.INIT_REQ, "s3", 0, {"app_id": "ghost"})
        rep = inp.decode(proxy.handle(inp.encode(init)))
        assert rep.msg_type is MsgType.INP_ERROR
        assert proxy.stats.errors == 1

    def test_meta_rep_without_session_rejected(self, proxy):
        cli = INPMessage(
            MsgType.CLI_META_REP, "never-initialized", 1,
            {"dev_meta": DEV.to_wire(), "ntwk_meta": NTWK.to_wire()},
        )
        rep = inp.decode(proxy.handle(inp.encode(cli)))
        assert rep.msg_type is MsgType.INP_ERROR

    def test_session_is_single_use(self, proxy):
        self._negotiate_via_inp(proxy, session="s4")
        cli = INPMessage(
            MsgType.CLI_META_REP, "s4", 2,
            {"dev_meta": DEV.to_wire(), "ntwk_meta": NTWK.to_wire()},
        )
        rep = inp.decode(proxy.handle(inp.encode(cli)))
        assert rep.msg_type is MsgType.INP_ERROR

    def test_malformed_packet_answered_with_error(self, proxy):
        rep = inp.decode(proxy.handle(b"not inp at all"))
        assert rep.msg_type is MsgType.INP_ERROR

    def test_unsupported_type_answered_with_error(self, proxy):
        msg = INPMessage(MsgType.APP_REQ, "s5", 0, {})
        rep = inp.decode(proxy.handle(inp.encode(msg)))
        assert rep.msg_type is MsgType.INP_ERROR

    def test_malformed_dev_meta_answered_with_error(self, proxy):
        init = INPMessage(MsgType.INIT_REQ, "s6", 0, {"app_id": "app"})
        proxy.handle(inp.encode(init))
        cli = INPMessage(MsgType.CLI_META_REP, "s6", 1, {"dev_meta": {}})
        rep = inp.decode(proxy.handle(inp.encode(cli)))
        assert rep.msg_type is MsgType.INP_ERROR
