"""Property tests: the Fig. 6 search against a brute-force oracle on
randomly generated PATs."""

import math

from hypothesis import given, settings, strategies as st

from repro.core.errors import NegotiationError
from repro.core.metadata import AppMeta, DevMeta, NtwkMeta, PADMeta, PADOverhead
from repro.core.overhead import OverheadModel
from repro.core.pat import PAT
from repro.core.search import find_adaptation_path, mark_tree

DEV = DevMeta("FedoraCore2", "PentiumIV", 2000.0, 512.0)
NTWK = NtwkMeta("LAN", 100_000.0)
MODEL = OverheadModel()


@st.composite
def random_pat(draw):
    """A random tree of 1..12 PADs (each node's parent precedes it)."""
    n = draw(st.integers(1, 12))
    pads = []
    for i in range(n):
        parent = None
        if i > 0 and draw(st.booleans()):
            parent = f"p{draw(st.integers(0, i - 1))}"
        # Cost enters via client compute on the std processor; x4 makes
        # the desktop-scaled mark equal the drawn integer.
        cost = draw(st.integers(0, 50))
        pads.append(
            PADMeta(
                pad_id=f"p{i}",
                size_bytes=0,
                overhead=PADOverhead(0.0, cost * 4.0, 0.0),
                parent=parent,
            )
        )
    return PAT.from_app_meta(AppMeta("prop", tuple(pads)))


class TestSearchProperties:
    @given(random_pat())
    @settings(max_examples=60, deadline=None)
    def test_path_count_equals_leaf_count(self, pat):
        assert pat.path_count() == len(pat.leaves())
        assert len(list(pat.paths())) == pat.path_count()

    @given(random_pat())
    @settings(max_examples=60, deadline=None)
    def test_every_path_is_root_to_leaf(self, pat):
        for path in pat.paths():
            assert path, "paths must be non-empty"
            # First node hangs off the root; each next node is a child of
            # the previous; the last is a leaf.
            assert pat.node(path[0].pad_id).parent == "__root__"
            for a, b in zip(path, path[1:]):
                assert b.pad_id in pat.node(a.pad_id).children
            assert pat.node(path[-1].pad_id).is_leaf

    @given(random_pat())
    @settings(max_examples=60, deadline=None)
    def test_search_matches_brute_force(self, pat):
        marks = mark_tree(pat, MODEL, DEV, NTWK)
        brute = min(
            sum(marks[n.pad_id].total_s for n in path)
            for path in pat.paths()
        )
        result = find_adaptation_path(pat, MODEL, DEV, NTWK)
        assert result.total_overhead_s == brute
        # And the reported path really sums to the reported cost.
        assert sum(
            marks[p].total_s for p in result.pad_ids
        ) == result.total_overhead_s

    @given(random_pat(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_disqualifying_the_winner_changes_or_kills_the_result(
        self, pat, data
    ):
        result = find_adaptation_path(pat, MODEL, DEV, NTWK)
        # Poison every node of the winning path via the OS matrix.
        from repro.core.overhead import RatioMatrix

        b = RatioMatrix("B")
        for pad_id in result.pad_ids:
            b.disqualify(pad_id, DEV.os_type)
        poisoned = OverheadModel(os_matrix=b)
        try:
            new_result = find_adaptation_path(pat, poisoned, DEV, NTWK)
        except NegotiationError:
            return  # every path went through the winner: acceptable
        assert set(new_result.pad_ids).isdisjoint(set(result.pad_ids))
        assert math.isfinite(new_result.total_overhead_s)
