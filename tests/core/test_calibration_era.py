"""Calibration and era-model tests."""

import pytest

from repro.core.calibration import HOST_CPU_MHZ, calibrate_overheads, calibrate_pad
from repro.core.era import (
    DEFAULT_ANCHORS,
    EraAnchors,
    era_overheads,
    era_pad_init_overrides,
)
from repro.core.metadata import PADOverhead
from repro.core.overhead import STD_CPU_MHZ


class TestCalibration:
    def test_calibrate_direct_is_free(self, small_corpus):
        overhead, samples = calibrate_pad("direct", small_corpus, page_ids=[0])
        assert overhead.server_comp_s < 1e-3  # timer noise only
        assert overhead.traffic_std_bytes > 100_000  # whole page moves
        assert len(samples) == 1

    def test_calibrate_differs_by_protocol(self, small_corpus):
        overheads = calibrate_overheads(
            small_corpus, ("direct", "vary"), n_pages=1
        )
        assert overheads["vary"].traffic_std_bytes < (
            overheads["direct"].traffic_std_bytes / 5
        )
        assert overheads["vary"].server_comp_s > overheads["direct"].server_comp_s

    def test_client_time_normalized_to_standard_processor(self, small_corpus):
        overhead, samples = calibrate_pad("gzip", small_corpus, page_ids=[0])
        measured = samples[0].client_time_s
        assert overhead.client_comp_std_s == pytest.approx(
            measured * HOST_CPU_MHZ / STD_CPU_MHZ
        )

    def test_unknown_pad_rejected(self, small_corpus):
        with pytest.raises(KeyError):
            calibrate_pad("quantum", small_corpus, page_ids=[0])

    def test_repeats_validated(self, small_corpus):
        with pytest.raises(ValueError):
            calibrate_pad("direct", small_corpus, page_ids=[0], repeats=0)

    def test_no_pages_rejected(self, small_corpus):
        with pytest.raises(ValueError):
            calibrate_pad("direct", small_corpus, page_ids=[])


class TestEraModel:
    def _measured(self):
        return {
            "direct": PADOverhead(135_000, 0.0, 0.0),
            "gzip": PADOverhead(88_000, 0.001, 0.004),
            "vary": PADOverhead(9_500, 0.001, 0.2),
            "bitmap": PADOverhead(14_000, 0.001, 0.0003),
        }

    def test_traffic_preserved_exactly(self):
        era = era_overheads(self._measured())
        for pad, measured in self._measured().items():
            assert era[pad].traffic_std_bytes == measured.traffic_std_bytes

    def test_compute_replaced_with_anchor_derived(self):
        era = era_overheads(self._measured())
        assert era["direct"].client_comp_std_s == 0.0
        # gzip client: one page at 3.75 MB/s.
        assert era["gzip"].client_comp_std_s == pytest.approx(135_000 / 3.75e6)
        # vary server: two pages at 0.1 MB/s on a 4x-standard server.
        assert era["vary"].server_comp_s == pytest.approx(270_000 / (0.1e6 * 4))

    def test_vary_server_compute_dominates(self):
        """The paper's headline Fig. 10 observation."""
        era = era_overheads(self._measured())
        assert era["vary"].server_comp_s > 5 * era["gzip"].server_comp_s
        assert era["vary"].server_comp_s > 4 * era["bitmap"].server_comp_s

    def test_custom_anchors(self):
        anchors = EraAnchors(gzip_compress=1e6)
        era = era_overheads(self._measured(), anchors=anchors)
        assert era["gzip"].server_comp_s == pytest.approx(135_000 / (1e6 * 4))

    def test_unknown_pad_rejected(self):
        with pytest.raises(KeyError):
            era_overheads({"quantum": PADOverhead(1, 0, 0)})

    def test_default_anchors_ordering(self):
        a = DEFAULT_ANCHORS
        # Decompression faster than compression; CDC slowest of all.
        assert a.gzip_decompress > a.gzip_compress > a.block_digest > a.cdc_fingerprint


class TestEraBackendPolicy:
    """The era model is pure-Python ground truth: zlib never feeds it."""

    def test_explicit_zlib_override_rejected(self):
        with pytest.raises(ValueError, match="zlib"):
            era_pad_init_overrides({"gzip": {"backend": "zlib"}})

    def test_gzip_pinned_to_pure_by_default(self):
        overrides = era_pad_init_overrides(None)
        assert overrides["gzip"]["backend"] == "pure"

    def test_other_overrides_preserved(self):
        overrides = era_pad_init_overrides(
            {"gzip": {"dictionary": "text"}, "vary": {"mask_bits": 9}}
        )
        assert overrides["gzip"] == {"dictionary": "text", "backend": "pure"}
        assert overrides["vary"] == {"mask_bits": 9}

    def test_input_dict_not_mutated(self):
        given = {"gzip": {"dictionary": "text"}}
        era_pad_init_overrides(given)
        assert given == {"gzip": {"dictionary": "text"}}

    def test_build_case_study_era_rejects_zlib(self, small_corpus):
        from repro.core.system import build_case_study

        with pytest.raises(ValueError, match="zlib"):
            build_case_study(
                corpus=small_corpus,
                era=True,
                pad_init_overrides={"gzip": {"backend": "zlib"}},
            )

    def test_build_case_study_era_pins_gzip_pure(self, small_corpus):
        from repro.core.system import build_case_study

        system = build_case_study(corpus=small_corpus, era=True)
        meta = system.appserver._pad_meta["gzip"]
        assert meta.init_kwargs.get("backend") == "pure"

    def test_calibration_measures_overridden_instance(self, small_corpus):
        # The pinned backend must reach the measured protocol instance,
        # not just the served stacks: pure-backend gzip is far slower
        # than zlib-backend gzip on the same page.
        pure = calibrate_pad(
            "gzip", small_corpus, page_ids=[0],
            init_kwargs={"backend": "pure"},
        )[0]
        fast = calibrate_pad(
            "gzip", small_corpus, page_ids=[0],
            init_kwargs={"backend": "zlib"},
        )[0]
        assert pure.traffic_std_bytes > 0 and fast.traffic_std_bytes > 0
        assert pure.server_comp_s > 3 * fast.server_comp_s

    def test_calibrate_overheads_threads_overrides(self, small_corpus):
        slow = calibrate_overheads(
            small_corpus, ("gzip",), n_pages=1,
            pad_init_overrides={"gzip": {"backend": "pure"}},
        )["gzip"]
        fast = calibrate_overheads(
            small_corpus, ("gzip",), n_pages=1,
            pad_init_overrides={"gzip": {"backend": "zlib"}},
        )["gzip"]
        assert slow.server_comp_s > 3 * fast.server_comp_s
