"""Metadata (Fig. 3) tests."""

import pytest

from repro.core.errors import MetadataError
from repro.core.metadata import AppMeta, DevMeta, NtwkMeta, PADMeta, PADOverhead


@pytest.fixture()
def overhead():
    return PADOverhead(traffic_std_bytes=1000, client_comp_std_s=0.1, server_comp_s=0.2)


@pytest.fixture()
def pad(overhead):
    return PADMeta(
        pad_id="gzip", size_bytes=4096, overhead=overhead,
        parent=None, children=("child1",),
    )


class TestDevMeta:
    def test_wire_roundtrip(self):
        dev = DevMeta("FedoraCore2", "PentiumIV", 2000.0, 512.0)
        assert DevMeta.from_wire(dev.to_wire()) == dev

    def test_int_speeds_coerced(self):
        dev = DevMeta.from_wire(
            {"os_type": "a", "cpu_type": "b", "cpu_mhz": 400, "memory_mb": 64}
        )
        assert dev.cpu_mhz == 400.0

    def test_missing_field_rejected(self):
        with pytest.raises(MetadataError, match="missing field"):
            DevMeta.from_wire({"os_type": "a"})

    def test_wrong_type_rejected(self):
        with pytest.raises(MetadataError):
            DevMeta.from_wire(
                {"os_type": 1, "cpu_type": "b", "cpu_mhz": 1.0, "memory_mb": 1.0}
            )

    def test_invalid_values_rejected(self):
        with pytest.raises(MetadataError):
            DevMeta("os", "cpu", 0.0, 64.0)
        with pytest.raises(MetadataError):
            DevMeta("os", "cpu", 100.0, -1.0)

    def test_cache_key_is_hashable_and_stable(self):
        dev = DevMeta("os", "cpu", 100.0, 64.0)
        assert dev.cache_key() == DevMeta("os", "cpu", 100.0, 64.0).cache_key()
        hash(dev.cache_key())


class TestNtwkMeta:
    def test_wire_roundtrip(self):
        ntwk = NtwkMeta("Bluetooth", 723.0)
        assert NtwkMeta.from_wire(ntwk.to_wire()) == ntwk

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(MetadataError):
            NtwkMeta("LAN", 0.0)


class TestPADOverhead:
    def test_wire_roundtrip(self, overhead):
        assert PADOverhead.from_wire(overhead.to_wire()) == overhead

    def test_negative_rejected(self):
        with pytest.raises(MetadataError):
            PADOverhead(-1, 0, 0)


class TestPADMeta:
    def test_wire_roundtrip(self, pad):
        assert PADMeta.from_wire(pad.to_wire()) == pad

    def test_client_wire_hides_links(self, pad):
        wire = pad.to_client_wire()
        assert "parent" not in wire
        assert "children" not in wire
        assert "alias_of" not in wire
        # ...but keeps the distribution fields.
        assert "digest" in wire and "url" in wire

    def test_from_client_wire_has_no_links(self, pad):
        restored = PADMeta.from_wire(pad.to_client_wire())
        assert restored.parent is None
        assert restored.children == ()

    def test_with_distribution(self, pad):
        finished = pad.with_distribution("ab" * 20, "cdn://gzip/1.0")
        assert finished.digest == "ab" * 20
        assert finished.url == "cdn://gzip/1.0"
        assert pad.digest is None  # original untouched

    def test_resolved_id_through_alias(self, overhead):
        alias = PADMeta("gzip@2", 0, overhead, alias_of="gzip")
        assert alias.resolved_id == "gzip"

    def test_self_alias_rejected(self, overhead):
        with pytest.raises(MetadataError):
            PADMeta("x", 0, overhead, alias_of="x")

    def test_empty_id_rejected(self, overhead):
        with pytest.raises(MetadataError):
            PADMeta("", 0, overhead)

    def test_negative_size_rejected(self, overhead):
        with pytest.raises(MetadataError):
            PADMeta("x", -1, overhead)


class TestAppMeta:
    def test_wire_roundtrip(self, pad):
        app = AppMeta("medical-web", (pad,))
        assert AppMeta.from_wire(app.to_wire()) == app

    def test_duplicate_pad_rejected(self, pad):
        with pytest.raises(MetadataError, match="duplicate"):
            AppMeta("app", (pad, pad))

    def test_get(self, pad):
        app = AppMeta("app", (pad,))
        assert app.get("gzip") is pad
        with pytest.raises(MetadataError):
            app.get("nope")

    def test_empty_app_id_rejected(self, pad):
        with pytest.raises(MetadataError):
            AppMeta("", (pad,))

    def test_malformed_pads_rejected(self):
        with pytest.raises(MetadataError):
            AppMeta.from_wire({"app_id": "a", "pads": "not-a-list"})
