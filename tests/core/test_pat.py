"""Protocol Adaptation Tree tests, including the Fig. 5 example shape."""

import pytest

from repro.core.errors import PATError
from repro.core.metadata import AppMeta, PADMeta, PADOverhead
from repro.core.pat import PAT


def oh(traffic=1000.0, cli=0.01, srv=0.01):
    return PADOverhead(traffic_std_bytes=traffic, client_comp_std_s=cli,
                       server_comp_s=srv)


def pad(pad_id, parent=None, alias_of=None, **kw):
    return PADMeta(pad_id=pad_id, size_bytes=100, overhead=oh(**kw),
                   parent=parent, alias_of=alias_of)


@pytest.fixture()
def fig5_pat():
    """The paper's Fig. 5: three top PADs; PAD1 has children 4,5,6;
    PAD2 has 7,8; PAD6 is a symbolic link to PAD7."""
    app = AppMeta(
        "demo",
        (
            pad("pad1"), pad("pad2"), pad("pad3"),
            pad("pad4", parent="pad1"), pad("pad5", parent="pad1"),
            pad("pad6", parent="pad1", alias_of="pad7"),
            pad("pad7", parent="pad2"), pad("pad8", parent="pad2"),
        ),
    )
    return PAT.from_app_meta(app)


class TestConstruction:
    def test_fig5_shape(self, fig5_pat):
        assert len(fig5_pat) == 8
        assert [n.pad_id for n in fig5_pat.root.children and
                [fig5_pat.node(c) for c in fig5_pat.root.children]] == [
            "pad1", "pad2", "pad3"
        ]

    def test_path_count_equals_leaf_count(self, fig5_pat):
        # Leaves: pad4, pad5, pad6, pad7, pad8, pad3 -> 6 paths.
        assert fig5_pat.path_count() == 6
        assert len(list(fig5_pat.paths())) == 6

    def test_paths_are_root_to_leaf(self, fig5_pat):
        paths = [[n.pad_id for n in p] for p in fig5_pat.paths()]
        assert ["pad1", "pad4"] in paths
        assert ["pad2", "pad7"] in paths
        assert ["pad3"] in paths

    def test_unknown_parent_rejected(self):
        with pytest.raises(PATError, match="unknown parent"):
            PAT.from_app_meta(AppMeta("a", (pad("x", parent="ghost"),)))

    def test_alias_to_unknown_rejected(self):
        with pytest.raises(PATError, match="aliases unknown"):
            PAT.from_app_meta(AppMeta("a", (pad("x", alias_of="ghost"),)))

    def test_alias_chain_rejected(self):
        app = AppMeta(
            "a",
            (pad("real"), pad("link1", alias_of="real"),
             pad("link2", alias_of="link1")),
        )
        with pytest.raises(PATError, match="alias chain"):
            PAT.from_app_meta(app)

    def test_cycle_rejected(self):
        app = AppMeta("a", (pad("x", parent="y"), pad("y", parent="x")))
        with pytest.raises(PATError):
            PAT.from_app_meta(app)


class TestQueries:
    def test_resolve_through_symbolic_link(self, fig5_pat):
        assert fig5_pat.resolve("pad6").pad_id == "pad7"
        assert fig5_pat.resolve("pad7").pad_id == "pad7"

    def test_node_lookup_unknown(self, fig5_pat):
        with pytest.raises(PATError):
            fig5_pat.node("nope")

    def test_contains(self, fig5_pat):
        assert "pad1" in fig5_pat and "nope" not in fig5_pat

    def test_leaves(self, fig5_pat):
        leaf_ids = {n.pad_id for n in fig5_pat.leaves()}
        assert leaf_ids == {"pad3", "pad4", "pad5", "pad6", "pad7", "pad8"}

    def test_root_has_no_identity(self, fig5_pat):
        with pytest.raises(PATError):
            _ = fig5_pat.root.resolved_id


class TestExtension:
    def test_add_leaf_pad(self, fig5_pat):
        fig5_pat.add_pad(pad("pad9", parent="pad3"))
        assert fig5_pat.path_count() == 6  # pad3 stopped being a leaf
        assert fig5_pat.node("pad3").children == ["pad9"]

    def test_add_top_level_pad_increases_paths(self, fig5_pat):
        before = fig5_pat.path_count()
        fig5_pat.add_pad(pad("pad10"))
        assert fig5_pat.path_count() == before + 1

    def test_add_duplicate_rejected(self, fig5_pat):
        with pytest.raises(PATError, match="already"):
            fig5_pat.add_pad(pad("pad1"))

    def test_insert_between_mid_tree(self, fig5_pat):
        """The paper's 'adding a new PAD in the middle' operation."""
        fig5_pat.insert_between(pad("shim", parent="pad1"), ["pad4", "pad5"])
        assert fig5_pat.node("pad1").children == ["pad6", "shim"]
        assert fig5_pat.node("shim").children == ["pad4", "pad5"]
        assert fig5_pat.node("pad4").parent == "shim"
        # Paths now route through the shim.
        paths = [[n.pad_id for n in p] for p in fig5_pat.paths()]
        assert ["pad1", "shim", "pad4"] in paths

    def test_insert_between_requires_current_children(self, fig5_pat):
        with pytest.raises(PATError, match="not currently a child"):
            fig5_pat.insert_between(pad("shim", parent="pad1"), ["pad7"])

    def test_remove_leaf(self, fig5_pat):
        fig5_pat.remove_pad("pad8")
        assert "pad8" not in fig5_pat
        assert fig5_pat.path_count() == 5

    def test_remove_interior_rejected(self, fig5_pat):
        with pytest.raises(PATError, match="has children"):
            fig5_pat.remove_pad("pad1")

    def test_remove_alias_target_rejected(self, fig5_pat):
        with pytest.raises(PATError, match="aliased by"):
            fig5_pat.remove_pad("pad7")

    def test_remove_alias_then_target(self, fig5_pat):
        fig5_pat.remove_pad("pad6")
        fig5_pat.remove_pad("pad7")
        assert fig5_pat.path_count() == 4

    def test_remove_root_rejected(self, fig5_pat):
        with pytest.raises(PATError):
            fig5_pat.remove_pad("__root__")
