"""Regression tests for the proxy state leaks + telemetry wiring.

Covers the two bugs fixed in this PR:

* ``AdaptationProxy._sessions`` used to grow without bound when clients
  sent ``INIT_REQ`` and never followed up with ``CLI_META_REP``;
* ``DistributionManager.register_distribution`` used to leave stale
  finished ``PADMeta`` tuples in the adaptation cache after a PAD's
  digest/URL was re-registered (a new code version).
"""

import pytest

from repro.core import inp
from repro.core.inp import INPMessage, MsgType
from repro.core.metadata import AppMeta, DevMeta, NtwkMeta, PADMeta, PADOverhead
from repro.core.overhead import OverheadModel
from repro.core.proxy import AdaptationProxy

DEV = DevMeta("FedoraCore2", "PentiumIV", 2000.0, 512.0)
NTWK = NtwkMeta("LAN", 100_000.0)


def pad(pad_id, cli):
    return PADMeta(
        pad_id=pad_id, size_bytes=100,
        overhead=PADOverhead(traffic_std_bytes=0, client_comp_std_s=cli,
                             server_comp_s=0),
    )


def make_proxy(**kwargs):
    p = AdaptationProxy(OverheadModel(), **kwargs)
    p.push_app_meta(AppMeta("app", (pad("cheap", 0.01), pad("dear", 1.0))))
    p.register_distribution("cheap", "c" * 40, "cdn://cheap/1")
    p.register_distribution("dear", "d" * 40, "cdn://dear/1")
    return p


class TestSessionBound:
    def test_abandoned_init_reqs_stay_bounded(self):
        proxy = make_proxy(max_sessions=64)
        for i in range(10_000):
            init = INPMessage(MsgType.INIT_REQ, f"ghost-{i}", 0, {"app_id": "app"})
            rep = inp.decode(proxy.handle(inp.encode(init)))
            assert rep.msg_type is MsgType.INIT_REP
            # The client vanishes: CLI_META_REP never arrives.
        assert proxy.pending_sessions <= 64
        assert proxy.stats.sessions_dropped == 10_000 - 64
        assert proxy.telemetry.registry.gauge("proxy.sessions.open").value == 64

    def test_drop_is_oldest_first(self):
        proxy = make_proxy(max_sessions=2)
        for sid in ("s1", "s2", "s3"):
            proxy.handle(inp.encode(
                INPMessage(MsgType.INIT_REQ, sid, 0, {"app_id": "app"})
            ))
        # s1 was dropped; its CLI_META_REP is now an unknown session.
        cli = INPMessage(
            MsgType.CLI_META_REP, "s1", 2,
            {"dev_meta": DEV.to_wire(), "ntwk_meta": NTWK.to_wire()},
        )
        rep = inp.decode(proxy.handle(inp.encode(cli)))
        assert rep.msg_type is MsgType.INP_ERROR
        # s3 survived and completes normally.
        cli3 = INPMessage(
            MsgType.CLI_META_REP, "s3", 2,
            {"dev_meta": DEV.to_wire(), "ntwk_meta": NTWK.to_wire()},
        )
        rep3 = inp.decode(proxy.handle(inp.encode(cli3)))
        assert rep3.msg_type is MsgType.PAD_META_REP

    def test_completed_sessions_release_their_slot(self):
        proxy = make_proxy(max_sessions=8)
        for i in range(100):
            sid = f"s{i}"
            proxy.handle(inp.encode(
                INPMessage(MsgType.INIT_REQ, sid, 0, {"app_id": "app"})
            ))
            proxy.handle(inp.encode(INPMessage(
                MsgType.CLI_META_REP, sid, 2,
                {"dev_meta": DEV.to_wire(), "ntwk_meta": NTWK.to_wire()},
            )))
        assert proxy.pending_sessions == 0
        assert proxy.stats.sessions_dropped == 0


class TestRestart:
    def test_restart_wipes_pending_sessions_only(self):
        proxy = make_proxy()
        for sid in ("s1", "s2"):
            proxy.handle(inp.encode(
                INPMessage(MsgType.INIT_REQ, sid, 0, {"app_id": "app"})
            ))
        (cached,) = proxy.negotiate("app", DEV, NTWK)
        assert proxy.restart() == 2
        assert proxy.pending_sessions == 0
        assert proxy.stats.restarts == 1
        registry = proxy.telemetry.registry
        assert registry.counter("proxy.sessions.wiped_by_restart").value == 2
        assert registry.gauge("proxy.sessions.open").value == 0
        # Durable state survives: PATs and the adaptation cache answer
        # the same negotiation without a fresh search.
        (after,) = proxy.negotiate("app", DEV, NTWK)
        assert after.pad_id == cached.pad_id
        assert proxy.stats.cache_hits >= 1

    def test_mid_negotiation_client_gets_unknown_session(self):
        proxy = make_proxy()
        proxy.handle(inp.encode(
            INPMessage(MsgType.INIT_REQ, "s1", 0, {"app_id": "app"})
        ))
        proxy.restart()
        rep = inp.decode(proxy.handle(inp.encode(INPMessage(
            MsgType.CLI_META_REP, "s1", 2,
            {"dev_meta": DEV.to_wire(), "ntwk_meta": NTWK.to_wire()},
        ))))
        assert rep.msg_type is MsgType.INP_ERROR

    def test_restart_of_idle_proxy_wipes_nothing(self):
        proxy = make_proxy()
        assert proxy.restart() == 0
        assert proxy.stats.restarts == 1


class TestDistributionInvalidation:
    def test_reregistration_invalidates_cached_pads(self):
        proxy = make_proxy()
        (before,) = proxy.negotiate("app", DEV, NTWK)
        assert before.digest == "c" * 40
        # New code version for the PAD the cached path contains.
        proxy.register_distribution("cheap", "e" * 40, "cdn://cheap/2")
        (after,) = proxy.negotiate("app", DEV, NTWK)
        assert after.digest == "e" * 40
        assert after.url == "cdn://cheap/2"
        assert proxy.stats.cache_misses == 2  # the stale entry was dropped

    def test_reregistration_of_unrelated_pad_keeps_cache(self):
        proxy = make_proxy()
        proxy.negotiate("app", DEV, NTWK)  # caches the 'cheap' path
        proxy.register_distribution("dear", "f" * 40, "cdn://dear/2")
        proxy.negotiate("app", DEV, NTWK)
        assert proxy.stats.cache_hits == 1  # 'cheap' entry survived

    def test_identical_reregistration_is_a_noop(self):
        proxy = make_proxy()
        proxy.negotiate("app", DEV, NTWK)
        proxy.register_distribution("cheap", "c" * 40, "cdn://cheap/1")
        proxy.negotiate("app", DEV, NTWK)
        assert proxy.stats.cache_hits == 1
        assert proxy.distribution.cache_invalidations == 0

    def test_invalidation_counted_in_telemetry(self):
        proxy = make_proxy()
        proxy.negotiate("app", DEV, NTWK)
        proxy.register_distribution("cheap", "e" * 40, "cdn://cheap/2")
        assert proxy.distribution.cache_invalidations == 1
        reg = proxy.telemetry.registry
        assert reg.counter("proxy.dist.invalidations").value == 1


class TestChurnLoop:
    def test_300_client_churn_stays_bounded_and_fresh(self):
        """300 clients churning; half abandon, PADs re-registered mid-run."""
        proxy = make_proxy(max_sessions=32)
        digests = {"cheap": "c" * 40}
        version = 1
        for i in range(300):
            sid = f"churn-{i}"
            proxy.handle(inp.encode(
                INPMessage(MsgType.INIT_REQ, sid, 0, {"app_id": "app"})
            ))
            if i % 2 == 0:
                continue  # abandoned session: INIT_REQ only
            # Distinct bandwidth per client → every negotiation misses the
            # adaptation cache, exercising search + finish under churn.
            ntwk = NtwkMeta("LAN", 100_000.0 + i)
            rep = inp.decode(proxy.handle(inp.encode(INPMessage(
                MsgType.CLI_META_REP, sid, 2,
                {"dev_meta": DEV.to_wire(), "ntwk_meta": ntwk.to_wire()},
            ))))
            assert rep.msg_type is MsgType.PAD_META_REP
            assert rep.body["pads"][0]["digest"] == digests["cheap"]
            if i % 50 == 1:
                # Upgrade the PAD every 50 clients; later replies must
                # carry the new digest, never a stale cached one.
                version += 1
                digests["cheap"] = f"{version:040d}"
                proxy.register_distribution(
                    "cheap", digests["cheap"], f"cdn://cheap/{version}"
                )
        assert proxy.pending_sessions <= 32
        assert proxy.stats.sessions_dropped > 0
        assert len(proxy.distribution) <= proxy.distribution.max_entries
        # Telemetry observed the whole run.
        reg = proxy.telemetry.registry
        assert reg.counter("proxy.negotiations").value == 150
        assert proxy.stats.total_search_time_s > 0.0


class TestProxySpans:
    def test_negotiation_records_span_chain(self):
        proxy = make_proxy()
        proxy.negotiate("app", DEV, NTWK, session_id="sess-1")
        (root,) = proxy.telemetry.tracer.trace("sess-1")
        assert root.name == "proxy.negotiate"
        assert root.tags["cache"] == "miss"
        assert [c.name for c in root.children] == ["proxy.search", "proxy.finish"]
        assert all(c.duration_s >= 0.0 for c in root.walk())

    def test_cache_hit_span_has_no_children(self):
        proxy = make_proxy()
        proxy.negotiate("app", DEV, NTWK, session_id="sess-1")
        proxy.negotiate("app", DEV, NTWK, session_id="sess-2")
        (root,) = proxy.telemetry.tracer.trace("sess-2")
        assert root.tags["cache"] == "hit"
        assert root.children == []

    def test_stats_view_matches_registry(self):
        proxy = make_proxy()
        proxy.negotiate("app", DEV, NTWK)
        proxy.negotiate("app", DEV, NTWK)
        reg = proxy.telemetry.registry
        assert proxy.stats.negotiations == reg.counter("proxy.negotiations").value == 2
        assert proxy.stats.cache_hits == 1
        assert proxy.stats.cache_misses == 1
        assert proxy.stats.hit_ratio == pytest.approx(0.5)
