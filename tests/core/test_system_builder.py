"""System assembly (`build_case_study`) option tests."""

import pytest

from repro.core.system import APP_ID, build_case_study
from repro.workload.pages import PAGE_COUNT, Corpus
from repro.workload.profiles import DESKTOP_LAN


class TestBuildOptions:
    def test_pad_subset(self, small_corpus):
        system = build_case_study(
            corpus=small_corpus, calibrate=False, pad_ids=("direct", "bitmap")
        )
        pat = system.proxy.negotiation.pat(APP_ID)
        assert {n.pad_id for n in pat.leaves()} == {"direct", "bitmap"}

    def test_rho_threaded_into_model(self, small_corpus):
        system = build_case_study(corpus=small_corpus, calibrate=False, rho=0.6)
        assert system.proxy.negotiation.model.rho == 0.6

    def test_edge_count(self, small_corpus):
        system = build_case_study(corpus=small_corpus, calibrate=False, n_edges=5)
        assert len(system.deployment.edges) == 5

    def test_all_pads_pushed_to_every_edge(self, session_system):
        keys = set(session_system.deployment.origin.keys())
        assert len(keys) == 4
        for edge in session_system.deployment.edges:
            assert all(edge.has_cached(k) for k in keys)

    def test_signer_is_trusted_by_construction(self, session_system):
        from repro.core.system import SIGNER_NAME

        assert session_system.trust_store.is_trusted(SIGNER_NAME)

    def test_proactive_flag_reaches_server(self, small_corpus):
        system = build_case_study(
            corpus=small_corpus, calibrate=False, proactive=True
        )
        assert system.appserver.proactive

    def test_clients_round_robin_over_sites(self, small_corpus):
        system = build_case_study(corpus=small_corpus, calibrate=False)
        c1 = system.make_client(DESKTOP_LAN)
        c2 = system.make_client(DESKTOP_LAN)
        assert c1.name != c2.name

    def test_default_overheads_cover_all_default_pads(self):
        from repro.core.appserver import default_pad_overheads

        assert {"direct", "gzip", "vary", "bitmap", "fixed"} <= set(
            default_pad_overheads()
        )


class TestFullScaleCorpus:
    """The paper's exact workload spec: '75 Web pages with the average
    size of about 135KB consisting of 5KB text and four images'."""

    def test_75_pages_at_135kb(self):
        corpus = Corpus()  # full defaults
        assert corpus.n_pages == PAGE_COUNT == 75
        sample = [corpus.page(i) for i in (0, 17, 42, 74)]
        for page in sample:
            assert len(page.images) == 4
            assert 125_000 <= page.size <= 145_000
        avg = sum(p.size for p in sample) / len(sample)
        assert abs(avg - 135_000) < 10_000

    def test_last_page_accessible_and_deterministic(self):
        assert Corpus().page(74).encode() == Corpus().page(74).encode()
