"""Hardening tests: bounded adaptation cache and INP header integrity."""

import pytest

from repro.core import inp
from repro.core.errors import NegotiationError, ProtocolMismatchError
from repro.core.inp import INPMessage, MsgType
from repro.core.metadata import AppMeta, DevMeta, NtwkMeta, PADMeta, PADOverhead
from repro.core.overhead import OverheadModel
from repro.core.proxy import AdaptationProxy, DistributionManager
from repro.core.system import APP_ID, build_case_study
from repro.workload.profiles import DESKTOP_LAN

DEV = DevMeta("FedoraCore2", "PentiumIV", 2000.0, 512.0)


def make_proxy(max_entries=None):
    proxy = AdaptationProxy(OverheadModel())
    if max_entries is not None:
        proxy.distribution = DistributionManager(max_entries=max_entries)
    pad = PADMeta("only", 10, PADOverhead(0, 0.01, 0))
    proxy.push_app_meta(AppMeta("app", (pad,)))
    proxy.register_distribution("only", "a" * 40, "cdn://only/1")
    return proxy


class TestBoundedAdaptationCache:
    def test_eviction_at_capacity(self):
        proxy = make_proxy(max_entries=3)
        for kbps in range(1, 6):
            proxy.negotiate("app", DEV, NtwkMeta("LAN", float(kbps)))
        assert len(proxy.distribution) == 3
        assert proxy.distribution.cache_evictions == 2

    def test_lru_order_protects_hot_entries(self):
        proxy = make_proxy(max_entries=2)
        hot = NtwkMeta("LAN", 1.0)
        cold = NtwkMeta("LAN", 2.0)
        proxy.negotiate("app", DEV, hot)
        proxy.negotiate("app", DEV, cold)
        proxy.negotiate("app", DEV, hot)  # refresh hot
        proxy.negotiate("app", DEV, NtwkMeta("LAN", 3.0))  # evicts cold
        misses = proxy.stats.cache_misses
        proxy.negotiate("app", DEV, hot)
        assert proxy.stats.cache_misses == misses  # hot still cached

    def test_invalid_bound_rejected(self):
        with pytest.raises(NegotiationError):
            DistributionManager(max_entries=0)

    def test_scanning_client_cannot_grow_cache_unboundedly(self):
        proxy = make_proxy(max_entries=16)
        for kbps in range(1, 200):
            proxy.negotiate("app", DEV, NtwkMeta("LAN", float(kbps)))
        assert len(proxy.distribution) == 16


class TestInpHeaderIntegrity:
    @pytest.fixture()
    def system(self, small_corpus):
        return build_case_study(corpus=small_corpus, calibrate=False)

    def test_wrong_session_in_reply_rejected(self, system):
        client = system.make_client(DESKTOP_LAN)

        def hijacking(payload: bytes) -> bytes:
            msg = inp.decode(payload)
            reply = INPMessage(MsgType.INIT_REP, "someone-else", msg.seq + 1,
                               {"cli_meta_req": {}})
            return inp.encode(reply)

        system.transport.unbind("proxy")
        system.transport.bind("proxy", hijacking)
        with pytest.raises(ProtocolMismatchError, match="session"):
            client.negotiate(APP_ID)

    def test_non_incrementing_seq_rejected(self, system):
        client = system.make_client(DESKTOP_LAN)

        def replaying(payload: bytes) -> bytes:
            msg = inp.decode(payload)
            reply = INPMessage(MsgType.INIT_REP, msg.session_id, msg.seq,
                               {"cli_meta_req": {}})
            return inp.encode(reply)

        system.transport.unbind("proxy")
        system.transport.bind("proxy", replaying)
        with pytest.raises(ProtocolMismatchError, match="seq"):
            client.negotiate(APP_ID)

    def test_honest_exchange_still_passes(self, system):
        client = system.make_client(DESKTOP_LAN)
        outcome = client.negotiate(APP_ID)
        assert outcome.pads
