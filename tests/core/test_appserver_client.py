"""Application server and Fractal client tests (wired via the system builder)."""

import pytest

from repro.core import inp
from repro.core.errors import NegotiationError
from repro.core.inp import INPMessage, MsgType
from repro.core.system import APP_ID, build_case_study
from repro.workload.profiles import DESKTOP_LAN, LAPTOP_WLAN, PAPER_ENVIRONMENTS


@pytest.fixture(scope="module")
def system(small_corpus):
    return build_case_study(corpus=small_corpus, calibrate=False)


def page_parts(corpus, page_id, version):
    page = corpus.evolved(page_id, version)
    return [page.text, *page.images]


class TestApplicationServer:
    def test_app_meta_lists_all_pads(self, system):
        meta = system.appserver.app_meta()
        assert [p.pad_id for p in meta.pads] == ["direct", "gzip", "vary", "bitmap"]

    def test_publish_registers_cdn_objects(self, system):
        keys = system.deployment.origin.keys()
        assert any(k.startswith("gzip/") for k in keys)
        assert any(k.startswith("vary/") for k in keys)

    def test_duplicate_deploy_rejected(self, system):
        from repro.core.metadata import PADMeta, PADOverhead

        with pytest.raises(NegotiationError, match="already deployed"):
            system.appserver.deploy_pad(
                PADMeta("direct", 0, PADOverhead(0, 0, 0))
            )

    def test_app_req_roundtrip_via_handler(self, system):
        old = page_parts(system.corpus, 0, 0)
        body = {
            "pad_ids": ["direct"],
            "page_id": 0,
            "old_version": 0,
            "new_version": 1,
            "part_requests": [inp.b64e(b"") for _ in old],
        }
        msg = INPMessage(MsgType.APP_REQ, "t1", 0, body)
        rep = inp.decode(system.appserver.handle(inp.encode(msg)))
        rep.expect(MsgType.APP_REP)
        parts = [inp.b64d(p) for p in rep.body["part_responses"]]
        assert parts == page_parts(system.corpus, 0, 1)

    def test_unknown_pad_in_app_req_errors(self, system):
        body = {
            "pad_ids": ["quantum"],
            "page_id": 0,
            "old_version": -1,
            "new_version": 0,
            "part_requests": [inp.b64e(b"")] * 5,
        }
        msg = INPMessage(MsgType.APP_REQ, "t2", 0, body)
        rep = inp.decode(system.appserver.handle(inp.encode(msg)))
        assert rep.msg_type is MsgType.INP_ERROR

    def test_wrong_part_count_errors(self, system):
        body = {
            "pad_ids": ["direct"],
            "page_id": 0,
            "old_version": -1,
            "new_version": 0,
            "part_requests": [inp.b64e(b"")],  # page has 5 parts
        }
        msg = INPMessage(MsgType.APP_REQ, "t3", 0, body)
        rep = inp.decode(system.appserver.handle(inp.encode(msg)))
        assert rep.msg_type is MsgType.INP_ERROR

    def test_non_app_req_rejected(self, system):
        msg = INPMessage(MsgType.INIT_REQ, "t4", 0, {})
        rep = inp.decode(system.appserver.handle(inp.encode(msg)))
        assert rep.msg_type is MsgType.INP_ERROR

    def test_precompute_then_serve_skips_encoding(self, small_corpus):
        system = build_case_study(corpus=small_corpus, calibrate=False,
                                  proactive=True)
        n = system.appserver.precompute(["gzip"], 0, 0, 1)
        assert n == 5  # text + 4 images
        old = page_parts(system.corpus, 0, 0)
        body = {
            "pad_ids": ["gzip"],
            "page_id": 0,
            "old_version": 0,
            "new_version": 1,
            "part_requests": [inp.b64e(b"") for _ in old],
        }
        msg = INPMessage(MsgType.APP_REQ, "t5", 0, body)
        rep = inp.decode(system.appserver.handle(inp.encode(msg)))
        rep.expect(MsgType.APP_REP)
        assert system.appserver.stats.precompute_hits == 5


class TestFractalClient:
    def test_full_page_retrieval(self, system):
        client = system.make_client(DESKTOP_LAN)
        old = page_parts(system.corpus, 0, 0)
        result = client.request_page(
            APP_ID, 0, old_parts=old, old_version=0, new_version=1
        )
        assert result.parts == page_parts(system.corpus, 0, 1)
        assert result.app_traffic_bytes > 0
        assert result.pad_download_bytes > 0

    def test_first_contact_without_old_version(self, system):
        client = system.make_client(DESKTOP_LAN)
        result = client.request_page(APP_ID, 1, new_version=0)
        assert result.parts == page_parts(system.corpus, 1, 0)

    def test_protocol_cache_skips_proxy(self, system):
        client = system.make_client(LAPTOP_WLAN)
        client.request_page(APP_ID, 0, new_version=0)
        before = system.proxy.stats.negotiations
        result = client.request_page(APP_ID, 1, new_version=0)
        assert result.negotiated_from_cache
        assert system.proxy.stats.negotiations == before

    def test_environment_change_renegotiates(self, system):
        client = system.make_client(DESKTOP_LAN)
        client.request_page(APP_ID, 0, new_version=0)
        n1 = client.negotiations
        client.set_environment(LAPTOP_WLAN)
        client.request_page(APP_ID, 0, new_version=0)
        assert client.negotiations == n1 + 1

    def test_returning_to_old_environment_uses_cache(self, system):
        client = system.make_client(DESKTOP_LAN)
        client.request_page(APP_ID, 0, new_version=0)
        client.set_environment(LAPTOP_WLAN)
        client.request_page(APP_ID, 0, new_version=0)
        client.set_environment(DESKTOP_LAN)
        hits = client.protocol_cache_hits
        client.request_page(APP_ID, 0, new_version=0)
        assert client.protocol_cache_hits == hits + 1

    def test_pad_downloaded_once_per_environment(self, system):
        client = system.make_client(DESKTOP_LAN)
        r1 = client.request_page(APP_ID, 0, new_version=0)
        r2 = client.request_page(APP_ID, 1, new_version=0)
        assert r1.pad_download_bytes > 0
        assert r2.pad_download_bytes == 0  # stack already deployed

    def test_probe_reflects_environment(self, system):
        client = system.make_client(PAPER_ENVIRONMENTS[2])
        dev = client.probe_dev_meta()
        ntwk = client.probe_ntwk_meta()
        assert dev.cpu_type == "PXA255"
        assert ntwk.network_type == "Bluetooth"

    def test_unknown_app_raises(self, system):
        client = system.make_client(DESKTOP_LAN)
        from repro.core.errors import ProtocolMismatchError

        with pytest.raises(ProtocolMismatchError):
            client.negotiate("no-such-app")
