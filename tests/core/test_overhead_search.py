"""Overhead model (Eq. 1-7) and adaptation path search (Fig. 6) tests."""

import math

import pytest

from repro.core.errors import MetadataError, NegotiationError
from repro.core.metadata import AppMeta, DevMeta, NtwkMeta, PADMeta, PADOverhead
from repro.core.overhead import (
    INFEASIBLE,
    OverheadModel,
    RatioMatrix,
    STD_CPU_MHZ,
    paper_case_study_matrices,
)
from repro.core.pat import PAT
from repro.core.search import find_adaptation_path, mark_tree

DEV = DevMeta("FedoraCore2", "PentiumIV", 2000.0, 512.0)
PDA_DEV = DevMeta("WinCE4.2", "PXA255", 400.0, 64.0)
NTWK = NtwkMeta("LAN", 100_000.0)  # 100 Mbps in kbps
SLOW = NtwkMeta("Bluetooth", 723.0)


def pad(pad_id, *, size=8000, traffic=100_000.0, cli=0.1, srv=0.05,
        parent=None, alias_of=None, min_mem=0.0):
    return PADMeta(
        pad_id=pad_id, size_bytes=size,
        overhead=PADOverhead(traffic, cli, srv),
        parent=parent, alias_of=alias_of, min_memory_mb=min_mem,
    )


class TestRatioMatrix:
    def test_default_ratio_is_one(self):
        m = RatioMatrix("A")
        assert m.get("gzip", "anything") == 1.0

    def test_set_and_get(self):
        m = RatioMatrix("A")
        m.set("gzip", "PXA255", 1.1)
        assert m.get("gzip", "PXA255") == 1.1

    def test_infinity_disqualifies(self):
        m = RatioMatrix("B")
        m.disqualify("winmedia", "PalmOS")
        assert math.isinf(m.get("winmedia", "PalmOS"))

    def test_alias_fallback_for_unknown_type(self):
        """'a similar type with close parameters will be chosen instead'."""
        m = RatioMatrix("A")
        m.set("gzip", "PXA255", 1.1)
        m.alias("PXA270", "PXA255")
        assert m.get("gzip", "PXA270") == 1.1

    def test_exact_entry_beats_alias(self):
        m = RatioMatrix("A")
        m.set("gzip", "PXA255", 1.1)
        m.set("gzip", "PXA270", 1.05)
        m.alias("PXA270", "PXA255")
        assert m.get("gzip", "PXA270") == 1.05

    def test_nonpositive_ratio_rejected(self):
        with pytest.raises(MetadataError):
            RatioMatrix("A").set("x", "y", 0.0)

    def test_set_column(self):
        m = RatioMatrix("B")
        m.set_column("WinCE", {"a": 1.0, "b": INFEASIBLE})
        assert m.get("a", "WinCE") == 1.0
        assert math.isinf(m.get("b", "WinCE"))


class TestOverheadModel:
    def test_breakdown_terms(self):
        model = OverheadModel(rho=0.8)
        p = pad("x", size=8000, traffic=100_000, cli=0.1, srv=0.05)
        b = model.breakdown(p, DEV, NTWK)
        eff_bps = 100_000_000 * 0.8
        assert b.download_s == pytest.approx(8000 * 8 / eff_bps)
        assert b.server_comp_s == 0.05
        # Linear model: std 500 MHz time scaled to 2 GHz = /4.
        assert b.client_comp_s == pytest.approx(0.1 * STD_CPU_MHZ / 2000.0)
        assert b.transmission_s == pytest.approx(100_000 * 8 / eff_bps)
        assert b.total_s == pytest.approx(
            b.download_s + b.server_comp_s + b.client_comp_s + b.transmission_s
        )

    def test_slower_network_costs_more(self):
        model = OverheadModel()
        p = pad("x")
        assert model.total_overhead(p, DEV, SLOW) > model.total_overhead(p, DEV, NTWK)

    def test_slower_cpu_raises_client_term(self):
        model = OverheadModel()
        p = pad("x")
        fast = model.breakdown(p, DEV, NTWK)
        slow = model.breakdown(p, PDA_DEV, NTWK)
        assert slow.client_comp_s > fast.client_comp_s
        assert slow.server_comp_s == fast.server_comp_s  # server unaffected

    def test_ratio_matrices_applied_multiplicatively(self):
        a = RatioMatrix("A")
        a.set("x", "PXA255", 2.0)
        b = RatioMatrix("B")
        b.set("x", "WinCE4.2", 3.0)
        model = OverheadModel(cpu_matrix=a, os_matrix=b)
        plain = OverheadModel()
        withm = model.breakdown(pad("x"), PDA_DEV, NTWK).client_comp_s
        without = plain.breakdown(pad("x"), PDA_DEV, NTWK).client_comp_s
        assert withm == pytest.approx(6.0 * without)

    def test_infinity_ratio_makes_infeasible(self):
        b = RatioMatrix("B")
        b.disqualify("x", "WinCE4.2")
        model = OverheadModel(os_matrix=b)
        assert math.isinf(model.total_overhead(pad("x"), PDA_DEV, NTWK))

    def test_memory_floor_disqualifies(self):
        model = OverheadModel()
        assert math.isinf(
            model.total_overhead(pad("x", min_mem=128.0), PDA_DEV, NTWK)
        )

    def test_without_server_compute_variant(self):
        model = OverheadModel()
        variant = model.without_server_compute()
        p = pad("x", srv=10.0)
        assert variant.total_overhead(p, DEV, NTWK) == pytest.approx(
            model.total_overhead(p, DEV, NTWK) - 10.0
        )

    def test_rho_validation(self):
        with pytest.raises(MetadataError):
            OverheadModel(rho=0.0)

    def test_network_matrix_scales_transmission(self):
        r = RatioMatrix("R")
        r.set("x", "Bluetooth", 2.0)
        model = OverheadModel(net_matrix=r)
        plain = OverheadModel()
        assert model.breakdown(pad("x"), DEV, SLOW).transmission_s == pytest.approx(
            2.0 * plain.breakdown(pad("x"), DEV, SLOW).transmission_s
        )

    def test_paper_matrices_shape(self):
        a, b, r = paper_case_study_matrices()
        assert a.get("gzip", "PXA255") == 1.1
        assert a.get("direct", "PXA255") == 1.0
        assert b.get("vary", "WinCE4.2") == 1.0
        assert r.get("bitmap", "Bluetooth") == 1.0


class TestPathSearch:
    def _fig5_pat(self):
        """Fig. 5 with marks contrived so pad2->pad7 wins (cost 9 vs 14)."""
        app = AppMeta(
            "demo",
            (
                pad("pad1", traffic=0, cli=8 * 4, srv=0, size=0),   # mark 8
                pad("pad2", traffic=0, cli=4 * 4, srv=0, size=0),   # mark 4
                pad("pad3", traffic=0, cli=100 * 4, srv=0, size=0),
                pad("pad4", parent="pad1", traffic=0, cli=6 * 4, srv=0, size=0),
                pad("pad5", parent="pad1", traffic=0, cli=9 * 4, srv=0, size=0),
                pad("pad6", parent="pad1", alias_of="pad7",
                    traffic=0, cli=0, srv=0, size=0),
                pad("pad7", parent="pad2", traffic=0, cli=5 * 4, srv=0, size=0),
                pad("pad8", parent="pad2", traffic=0, cli=7 * 4, srv=0, size=0),
            ),
        )
        return PAT.from_app_meta(app)

    def test_fig6_example_path(self):
        pat = self._fig5_pat()
        result = find_adaptation_path(pat, OverheadModel(), DEV, NTWK)
        assert result.pad_ids == ("pad2", "pad7")
        assert result.total_overhead_s == pytest.approx(9.0)
        assert result.paths_examined == 6

    def test_alias_shares_targets_mark(self):
        pat = self._fig5_pat()
        marks = mark_tree(pat, OverheadModel(), DEV, NTWK)
        assert marks["pad6"].total_s == marks["pad7"].total_s

    def test_infeasible_node_poisons_its_paths(self):
        pat = self._fig5_pat()
        b = RatioMatrix("B")
        b.disqualify("pad2", "FedoraCore2")
        result = find_adaptation_path(pat, OverheadModel(os_matrix=b), DEV, NTWK)
        # pad2's subtree is out; pad1->pad4 (8+6=14) wins... but pad6
        # aliases pad7 (mark 5) giving pad1->pad6 = 13.
        assert result.pad_ids == ("pad1", "pad6")
        assert result.resolved_ids == ("pad1", "pad7")

    def test_all_paths_infeasible_raises(self):
        pat = self._fig5_pat()
        b = RatioMatrix("B")
        for pid in ("pad1", "pad2", "pad3"):
            b.disqualify(pid, "FedoraCore2")
        with pytest.raises(NegotiationError, match="no feasible"):
            find_adaptation_path(pat, OverheadModel(os_matrix=b), DEV, NTWK)

    def test_tie_breaks_deterministically(self):
        app = AppMeta(
            "t",
            (pad("b", traffic=0, cli=4, srv=0, size=0),
             pad("a", traffic=0, cli=4, srv=0, size=0)),
        )
        pat = PAT.from_app_meta(app)
        result = find_adaptation_path(pat, OverheadModel(), DEV, NTWK)
        assert result.pad_ids == ("a",)

    def test_search_result_carries_marks(self):
        pat = self._fig5_pat()
        result = find_adaptation_path(pat, OverheadModel(), DEV, NTWK)
        assert set(marks_id for marks_id in result.marks) >= {
            "pad1", "pad2", "pad7"
        }
