"""Kernel-pool tests: inline fallback, sharding, and byte identity.

The load-bearing guarantee is that a kernel produces **byte-identical**
output inline and in any worker process — pool placement must never
change what goes on the wire.  The pooled tests here re-check the frozen
golden SHA-1 vectors from ``tests/protocols/test_golden_wire.py`` through
spawned worker processes.
"""

import asyncio
import hashlib
import random

import pytest

from repro.compression import gziplike
from repro.core.kernelpool import (
    BATCH_KERNELS,
    KERNELS,
    KernelPool,
    KernelPoolError,
    run_kernel,
    stack_spec,
)
from repro.workload.pages import Corpus
from tests.protocols.test_golden_wire import GZIPLIKE_GOLDEN, PAD_GOLDEN


def _sha1(data: bytes) -> str:
    return hashlib.sha1(data).hexdigest()


@pytest.fixture(scope="module")
def pages():
    corpus = Corpus(text_bytes=2048, image_bytes=4096, images_per_page=2)
    return (
        corpus.evolved(0, 0).encode(),
        corpus.evolved(0, 1).encode(),
        corpus.evolved(1, 1).encode(),
    )


@pytest.fixture(scope="module")
def pool():
    """One spawned 2-shard pool shared by every pooled test (startup is
    the expensive part, ~1s per spawn worker)."""
    with KernelPool(workers=2) as p:
        yield p


class TestInlineFallback:
    def test_workers_zero_is_inline(self):
        p = KernelPool(workers=0)
        assert p.inline
        assert p.workers == 0

    def test_inline_matches_direct_call(self):
        data = b"the quick brown fox " * 100
        p = KernelPool()
        assert p.run("gziplike.compress", data) == gziplike.compress(
            data, backend="pure"
        )

    def test_inline_run_async(self):
        data = b"abcabcabc" * 50

        async def main():
            return await KernelPool().run_async("gziplike.compress", data)

        assert asyncio.run(main()) == gziplike.compress(data, backend="pure")

    def test_negative_workers_rejected(self):
        with pytest.raises(KernelPoolError, match=">= 0"):
            KernelPool(workers=-1)

    def test_unknown_kernel(self):
        with pytest.raises(KernelPoolError, match="unknown kernel"):
            run_kernel("no.such.kernel")

    def test_registry_contents(self):
        assert {
            "ping",
            "stack.respond",
            "gziplike.compress",
            "cdc.boundaries",
            "vary.encode",
        } <= set(KERNELS)


class TestStackSpec:
    def test_kwarg_order_is_canonical(self):
        a = stack_spec([("vary", {"mask_bits": 10, "window": 48})])
        b = stack_spec([("vary", {"window": 48, "mask_bits": 10})])
        assert a == b
        assert a == (("vary", (("mask_bits", 10), ("window", 48))),)

    def test_spec_is_hashable(self):
        assert hash(stack_spec([("gzip", {"backend": "pure"})]))


class TestSharding:
    def test_shard_index_is_stable_and_in_range(self, pool):
        for key in ("sess-1", "sess-2", b"raw-bytes", 42):
            idx = pool.shard_index(key)
            assert 0 <= idx < pool.workers
            assert pool.shard_index(key) == idx  # deterministic

    def test_distinct_keys_spread_across_shards(self, pool):
        shards = {pool.shard_index(f"session-{i}") for i in range(32)}
        assert shards == set(range(pool.workers))

    def test_inline_pool_shards_to_zero(self):
        assert KernelPool().shard_index("anything") == 0


class TestPooledByteIdentity:
    """Golden wire vectors must survive the process boundary unchanged."""

    @pytest.mark.parametrize("name", sorted(GZIPLIKE_GOLDEN))
    def test_gziplike_golden_through_pool(self, pool, pages, name):
        rng = random.Random(1905)
        inputs = {
            "empty": b"",
            "text": b"the quick brown fox jumps over the lazy dog. " * 200,
            "runs": b"A" * 5000 + b"B" * 5000,
            "random": rng.randbytes(8192),
            "small_page": pages[1],
        }
        blob = pool.run("gziplike.compress", inputs[name], shard_key=name)
        assert _sha1(blob) == GZIPLIKE_GOLDEN[name]

    @pytest.mark.parametrize("pad_id", sorted(PAD_GOLDEN))
    def test_pad_responses_golden_through_pool(self, pool, pages, pad_id):
        from repro.protocols.padlib import instantiate

        old, new, cold_new = pages
        kwargs = {"backend": "pure"} if pad_id == "gzip" else {}
        spec = stack_spec([(pad_id, kwargs)])
        proto = instantiate(pad_id, **kwargs)

        req = proto.client_request(old)
        resp = pool.run("stack.respond", spec, req, old, new, shard_key=pad_id)
        cold_req = proto.client_request(None)
        cold = pool.run(
            "stack.respond", spec, cold_req, None, cold_new, shard_key=pad_id
        )

        want_req, want_resp, want_cold = PAD_GOLDEN[pad_id]
        assert _sha1(req) == want_req
        assert _sha1(resp) == want_resp
        assert _sha1(cold) == want_cold

    def test_pool_equals_inline_on_every_shard(self, pool, pages):
        """Same kernel, same bytes, regardless of which worker ran it."""
        old, new, _ = pages
        spec = stack_spec([("vary", {})])
        want = KernelPool().run("stack.respond", spec, b"", old, new)
        for shard in range(pool.workers):
            # Find a key landing on this shard.
            key = next(
                f"k{i}" for i in range(64) if pool.shard_index(f"k{i}") == shard
            )
            assert pool.run("stack.respond", spec, b"", old, new, shard_key=key) == want

    def test_cdc_boundaries_match_inline(self, pool, pages):
        spans = pool.run("cdc.boundaries", pages[0], shard_key="s")
        assert spans == KernelPool().run("cdc.boundaries", pages[0])
        assert sum(length for _off, length in spans) == len(pages[0])


class TestBatchKernels:
    """run_batch shards *items*; results must equal per-item run()."""

    def test_batch_registry(self):
        assert BATCH_KERNELS <= set(KERNELS)
        assert "gziplike.compress_batch" in BATCH_KERNELS
        assert "cdc.record_batch" in BATCH_KERNELS

    def test_non_batch_kernel_rejected(self, pool):
        with pytest.raises(KernelPoolError, match="not a batch kernel"):
            pool.run_batch("gziplike.compress", [b"x"])

    def test_shard_key_count_mismatch_rejected(self, pool):
        with pytest.raises(KernelPoolError, match="shard keys"):
            pool.run_batch(
                "gziplike.compress_batch", [b"a", b"b"], shard_keys=["only-one"]
            )

    def test_empty_batch(self, pool):
        assert pool.run_batch("gziplike.compress_batch", []) == []

    def test_inline_batch_matches_per_item(self, pages):
        inline = KernelPool()
        want = [inline.run("gziplike.compress", p) for p in pages]
        assert inline.run_batch("gziplike.compress_batch", list(pages)) == want

    def test_pooled_compress_batch_matches_inline(self, pool, pages):
        msgs = [pages[0][i : i + 4096] for i in range(0, len(pages[0]), 4096)]
        keys = [f"m{i}" for i in range(len(msgs))]
        got = pool.run_batch("gziplike.compress_batch", msgs, shard_keys=keys)
        want = [gziplike.compress(m, backend="pure") for m in msgs]
        assert got == want

    def test_pooled_cdc_record_batch_matches_per_item(self, pool, pages):
        keys = [hashlib.sha1(p).hexdigest() for p in pages]
        got = pool.run_batch(
            "cdc.record_batch", list(pages), 10, 48, 16, shard_keys=keys
        )
        want = [pool.run("cdc.record", p, 10, 48, 16, shard_key=k)
                for p, k in zip(pages, keys)]
        assert got == want

    def test_round_robin_when_no_keys(self, pool, pages):
        # Without shard keys items spread round-robin; bytes unchanged.
        got = pool.run_batch("gziplike.compress_batch", list(pages))
        assert got == [gziplike.compress(p, backend="pure") for p in pages]

    def test_run_batch_async_matches_sync(self, pool, pages):
        msgs = [pages[1][:4096], pages[2][:4096], pages[0][:4096]]
        keys = ["a", "b", "c"]

        async def main():
            return await pool.run_batch_async(
                "gziplike.compress_batch", msgs, shard_keys=keys
            )

        got = asyncio.run(main())
        assert got == pool.run_batch(
            "gziplike.compress_batch", msgs, shard_keys=keys
        )


class TestPooledExecution:
    def test_run_async_through_pool(self, pool):
        data = b"zxy" * 2000

        async def main():
            return await pool.run_async("gziplike.compress", data, shard_key="s1")

        assert asyncio.run(main()) == gziplike.compress(data, backend="pure")

    def test_worker_error_propagates(self, pool):
        with pytest.raises(KernelPoolError, match="unknown kernel"):
            pool.run("no.such.kernel", shard_key="s")
        # Pool survives a failed task.
        assert pool.run("ping", shard_key="s") == b"pong"

    def test_warm_pings_all_shards(self, pool):
        pool.warm()  # idempotent; must not raise
