"""Interactive Negotiation Protocol codec tests."""

import pytest

from repro.core.errors import ProtocolMismatchError
from repro.core.inp import (
    INP_VERSION,
    INPMessage,
    MsgType,
    b64d,
    b64e,
    decode,
    encode,
    error_reply,
)


@pytest.fixture()
def msg():
    return INPMessage(MsgType.INIT_REQ, "sess-1", 0, {"app_id": "demo"})


class TestCodec:
    def test_roundtrip(self, msg):
        assert decode(encode(msg)) == msg

    def test_all_message_types_roundtrip(self):
        for mt in MsgType:
            m = INPMessage(mt, "s", 3, {"k": [1, 2]})
            assert decode(encode(m)).msg_type is mt

    def test_header_fields_preserved(self, msg):
        back = decode(encode(msg))
        assert back.session_id == "sess-1"
        assert back.seq == 0
        assert back.version == INP_VERSION

    def test_undecodable_packet(self):
        with pytest.raises(ProtocolMismatchError, match="undecodable"):
            decode(b"\xff\xfe")

    def test_non_object_packet(self):
        with pytest.raises(ProtocolMismatchError):
            decode(b"[1,2,3]")

    def test_wrong_version_rejected(self, msg):
        blob = encode(msg).replace(b'"inp":1', b'"inp":9')
        with pytest.raises(ProtocolMismatchError, match="version"):
            decode(blob)

    def test_unknown_type_rejected(self, msg):
        blob = encode(msg).replace(b"INIT_REQ", b"BOGUS_MSG")
        with pytest.raises(ProtocolMismatchError, match="message type"):
            decode(blob)

    def test_malformed_header_rejected(self, msg):
        blob = encode(msg).replace(b'"seq":0', b'"seq":"zero"')
        with pytest.raises(ProtocolMismatchError, match="header"):
            decode(blob)

    def test_malformed_body_rejected(self, msg):
        blob = encode(msg).replace(b'"body":{"app_id":"demo"}', b'"body":[]')
        with pytest.raises(ProtocolMismatchError, match="body"):
            decode(blob)


class TestMessageHelpers:
    def test_reply_increments_seq_same_session(self, msg):
        rep = msg.reply(MsgType.INIT_REP, {"ok": True})
        assert rep.session_id == msg.session_id
        assert rep.seq == msg.seq + 1
        assert rep.msg_type is MsgType.INIT_REP

    def test_expect_passes_matching_type(self, msg):
        assert msg.expect(MsgType.INIT_REQ) is msg

    def test_expect_raises_on_mismatch(self, msg):
        with pytest.raises(ProtocolMismatchError, match="expected"):
            msg.expect(MsgType.APP_REP)

    def test_expect_surfaces_peer_error(self, msg):
        err = error_reply(msg, "negotiation exploded")
        with pytest.raises(ProtocolMismatchError, match="negotiation exploded"):
            err.expect(MsgType.INIT_REP)

    def test_error_reply_carries_text(self, msg):
        err = error_reply(msg, "boom")
        assert err.msg_type is MsgType.INP_ERROR
        assert err.body["error"] == "boom"


class TestBase64:
    def test_roundtrip(self):
        data = bytes(range(256))
        assert b64d(b64e(data)) == data

    def test_invalid_base64_rejected(self):
        with pytest.raises(ProtocolMismatchError):
            b64d("!!!not-base64!!!")
