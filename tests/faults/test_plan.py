"""FaultRule / FaultPlan semantics: validation, matching, windows."""

import pytest

from repro.faults.plan import (
    EDGE_OUTAGE,
    EDGE_SLOW,
    FRAME_CORRUPT,
    FRAME_LOSS,
    MATCH_ANY,
    PAD_TAMPER_DIGEST,
    PAD_TAMPER_SIGNATURE,
    PROXY_RESTART,
    FaultPlan,
    FaultRule,
)


class TestFaultRuleValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule("meteor_strike")

    @pytest.mark.parametrize("p", [-0.1, 1.1])
    def test_probability_bounds(self, p):
        with pytest.raises(ValueError, match="probability"):
            FaultRule(FRAME_LOSS, probability=p)

    def test_negative_after_rejected(self):
        with pytest.raises(ValueError, match="after"):
            FaultRule(FRAME_LOSS, after=-1)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            FaultRule(FRAME_LOSS, duration=0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError, match="extra_latency_s"):
            FaultRule(EDGE_SLOW, extra_latency_s=-0.5)

    def test_boundary_probabilities_accepted(self):
        FaultRule(FRAME_LOSS, probability=0.0)
        FaultRule(FRAME_LOSS, probability=1.0)


class TestFaultRuleMatching:
    def test_wildcard_matches_everything(self):
        rule = FaultRule(FRAME_LOSS)  # target defaults to "*"
        assert rule.target == MATCH_ANY
        assert rule.matches("Bluetooth")
        assert rule.matches("anything")

    def test_exact_target(self):
        rule = FaultRule(FRAME_LOSS, "Bluetooth")
        assert rule.matches("Bluetooth")
        assert not rule.matches("LAN")


class TestFaultRuleWindows:
    def test_default_window_is_always_armed(self):
        rule = FaultRule(EDGE_OUTAGE, "edge00")
        assert rule.in_window(0)
        assert rule.in_window(10_000)

    def test_after_and_duration_bound_the_window(self):
        rule = FaultRule(EDGE_OUTAGE, "edge00", after=3, duration=2)
        fired = [i for i in range(10) if rule.in_window(i)]
        assert fired == [3, 4]

    def test_open_ended_window(self):
        rule = FaultRule(EDGE_OUTAGE, "edge00", after=5)
        assert not rule.in_window(4)
        assert rule.in_window(5)
        assert rule.in_window(500)


class TestConstructors:
    def test_kinds(self):
        assert FaultRule.frame_loss("Bluetooth", 0.1).kind == FRAME_LOSS
        assert FaultRule.frame_corrupt().kind == FRAME_CORRUPT
        assert FaultRule.edge_outage("edge01", after=2).kind == EDGE_OUTAGE
        assert FaultRule.edge_slow("edge01", 0.25).kind == EDGE_SLOW
        assert FaultRule.tamper_digest().kind == PAD_TAMPER_DIGEST
        assert FaultRule.tamper_signature().kind == PAD_TAMPER_SIGNATURE
        assert FaultRule.proxy_restart(after=7).kind == PROXY_RESTART

    def test_proxy_restart_defaults_to_firing_once(self):
        rule = FaultRule.proxy_restart(after=7)
        assert [i for i in range(20) if rule.in_window(i)] == [7]

    def test_edge_slow_carries_latency(self):
        rule = FaultRule.edge_slow("edge01", 0.25)
        assert rule.extra_latency_s == 0.25


class TestFaultPlan:
    def test_for_kind_filters_kind_and_target(self):
        plan = FaultPlan.of(
            FaultRule.frame_loss("Bluetooth", 0.1),
            FaultRule.frame_loss("WLAN", 0.05),
            FaultRule.edge_outage("edge00"),
        )
        assert [r.target for r in plan.for_kind(FRAME_LOSS, "Bluetooth")] == [
            "Bluetooth"
        ]
        assert list(plan.for_kind(FRAME_LOSS, "LAN")) == []
        assert len(list(plan.for_kind(EDGE_OUTAGE, "edge00"))) == 1

    def test_wildcard_rule_matches_any_target(self):
        plan = FaultPlan.of(FaultRule.tamper_digest(probability=0.5))
        assert len(list(plan.for_kind(PAD_TAMPER_DIGEST, "edge07"))) == 1

    def test_add_chains_and_len_iter(self):
        plan = FaultPlan()
        plan.add(FaultRule.frame_loss()).add(FaultRule.frame_corrupt())
        assert len(plan) == 2
        assert {r.kind for r in plan} == {FRAME_LOSS, FRAME_CORRUPT}
        assert plan.kinds() == {FRAME_LOSS, FRAME_CORRUPT}
