"""FaultPlan edge cases: degenerate probabilities, expiring windows,
overlapping rules on one link.

The scenario harness in :mod:`repro.attacks` arms and disarms rules
mid-campaign, so the corner semantics of the plan language — what a
zero-probability rule shadows, what happens when a window closes while
a session is still running, which of two overlapping rules fires — are
load-bearing and pinned here.
"""

import pytest

from repro.faults.injector import (
    FaultingEdge,
    FaultingTransport,
    FaultInjector,
    InjectedFault,
)
from repro.faults.plan import (
    EDGE_OUTAGE,
    FRAME_CORRUPT,
    FRAME_LOSS,
    PAD_STALE_REPLAY,
    RULE_KINDS,
    FaultPlan,
    FaultRule,
)
from repro.simnet.transport import TransportError
from repro.telemetry import MetricsRegistry


class _FakeTransport:
    def __init__(self):
        self.calls = []

    def request(self, src, dst, payload):
        self.calls.append((src, dst, payload))
        return b"reply:" + payload


class TestZeroProbability:
    def test_zero_probability_rule_never_fires_in_its_window(self):
        plan = FaultPlan.of(
            FaultRule.frame_loss("lan", probability=0.0, after=0, duration=500)
        )
        registry = MetricsRegistry()
        inj = FaultInjector(plan, seed=1, registry=registry)
        assert all(inj.fire(FRAME_LOSS, "lan") is None for _ in range(500))
        assert registry.counter("faults.injected").value == 0

    def test_zero_probability_rule_does_not_shadow_an_overlapping_rule(self):
        # Rule order matters for *firing*, but a rule that declines (p=0)
        # must fall through to the next matching rule, not eat the event.
        plan = FaultPlan.of(
            FaultRule.frame_loss("lan", probability=0.0),
            FaultRule.frame_loss("lan", probability=1.0),
        )
        inj = FaultInjector(plan, seed=1)
        assert all(inj.fire(FRAME_LOSS, "lan") is not None for _ in range(50))

    def test_zero_probability_still_counts_events_for_later_windows(self):
        # The event stream belongs to (kind, target), not to any rule: a
        # declining rule must not stall a second rule's `after` schedule.
        plan = FaultPlan.of(
            FaultRule.frame_loss("lan", probability=0.0),
            FaultRule.frame_loss("lan", probability=1.0, after=3),
        )
        inj = FaultInjector(plan, seed=1)
        fired = [
            i for i in range(6) if inj.fire(FRAME_LOSS, "lan") is not None
        ]
        assert fired == [3, 4, 5]


class TestWindowExpiryMidSession:
    def test_frame_loss_window_opens_and_closes_mid_session(self):
        """One client session outlives the fault window on its link."""
        plan = FaultPlan.of(
            FaultRule.frame_loss("lan", after=3, duration=4)
        )
        wrapped = FaultingTransport(
            _FakeTransport(), FaultInjector(plan),
            link_of=lambda src, dst: "lan",
        )
        outcomes = []
        for i in range(12):
            try:
                wrapped.request("cli", "svc", str(i).encode())
                outcomes.append("ok")
            except TransportError:
                outcomes.append("lost")
        assert outcomes == ["ok"] * 3 + ["lost"] * 4 + ["ok"] * 5

    def test_edge_outage_expires_and_service_recovers(self):
        class _FakeEdge:
            name = "edge00"

            def serve(self, key):
                return b"blob:" + key.encode()

        plan = FaultPlan.of(FaultRule.edge_outage("edge00", duration=2))
        edge = FaultingEdge(_FakeEdge(), FaultInjector(plan))
        for _ in range(2):
            with pytest.raises(InjectedFault):
                edge.serve("alpha/1")
        # The window expired mid-session: the edge is healthy again.
        assert edge.serve("alpha/1") == b"blob:alpha/1"

    def test_expired_window_does_not_rearm(self):
        plan = FaultPlan.of(FaultRule.frame_loss("lan", after=1, duration=1))
        inj = FaultInjector(plan)
        fired = [
            i for i in range(50) if inj.fire(FRAME_LOSS, "lan") is not None
        ]
        assert fired == [1]

    def test_single_event_window_boundaries(self):
        rule = FaultRule.frame_loss("lan", after=0, duration=1)
        assert rule.in_window(0)
        assert not rule.in_window(1)
        open_ended = FaultRule.frame_loss("lan", after=10)
        assert not open_ended.in_window(9)
        assert all(open_ended.in_window(i) for i in (10, 10_000))


class TestOverlappingRulesOnOneLink:
    def test_overlapping_windows_cover_their_union(self):
        plan = FaultPlan.of(
            FaultRule.frame_loss("lan", after=0, duration=4),
            FaultRule.frame_loss("lan", after=2, duration=4),
        )
        inj = FaultInjector(plan)
        fired = [
            i for i in range(10) if inj.fire(FRAME_LOSS, "lan") is not None
        ]
        assert fired == [0, 1, 2, 3, 4, 5]

    def test_at_most_one_rule_fires_per_event(self):
        registry = MetricsRegistry()
        plan = FaultPlan.of(
            FaultRule.frame_loss("lan"),
            FaultRule.frame_loss("lan"),  # fully shadowed duplicate
        )
        inj = FaultInjector(plan, registry=registry)
        for _ in range(20):
            inj.fire(FRAME_LOSS, "lan")
        # 20 events, 20 firings — the duplicate never double-counts.
        assert registry.counter("faults.injected").value == 20

    def test_wildcard_and_exact_rules_overlap_first_match_wins(self):
        wildcard = FaultRule.frame_loss("*", after=5)
        exact = FaultRule.frame_loss("lan", duration=2)
        inj = FaultInjector(FaultPlan.of(wildcard, exact))
        fired_rules = [inj.fire(FRAME_LOSS, "lan") for _ in range(8)]
        # Events 0-1: only the exact rule is armed.  2-4: nothing.  5+:
        # the wildcard (listed first) takes over.
        assert fired_rules[0] is exact and fired_rules[1] is exact
        assert fired_rules[2:5] == [None, None, None]
        assert all(r is wildcard for r in fired_rules[5:])

    def test_lost_frames_do_not_advance_the_corrupt_stream(self):
        # Loss and corruption overlap on one link but count separate
        # event streams — and a lost frame never reaches the corruption
        # hook, so the corrupt window indices count *delivered* frames.
        plan = FaultPlan.of(
            FaultRule.frame_loss("lan", after=0, duration=3),
            FaultRule.frame_corrupt("lan", after=0, duration=2),
        )
        inj = FaultInjector(plan)
        wrapped = FaultingTransport(
            _FakeTransport(), inj, link_of=lambda src, dst: "lan"
        )
        outcomes = []
        for i in range(6):
            try:
                reply = wrapped.request("cli", "svc", b"x")
                outcomes.append("mangled" if reply != b"reply:x" else "ok")
            except TransportError:
                outcomes.append("lost")
        assert outcomes == ["lost"] * 3 + ["mangled"] * 2 + ["ok"]
        assert inj.events_observed(FRAME_LOSS, "lan") == 6
        assert inj.events_observed(FRAME_CORRUPT, "lan") == 3


class TestStaleReplayRule:
    def test_constructor_and_kind_registered(self):
        rule = FaultRule.stale_replay("edge03", probability=0.5)
        assert rule.kind == PAD_STALE_REPLAY
        assert PAD_STALE_REPLAY in RULE_KINDS
        assert rule.target == "edge03"
        assert rule.probability == 0.5

    def test_overlapping_outage_and_stale_replay_outage_wins(self):
        class _FakeEdge:
            name = "edge00"

            def serve(self, key):
                return key.encode()

        plan = FaultPlan.of(
            FaultRule.edge_outage("edge00", duration=1),
            FaultRule.stale_replay("edge00"),
        )
        edge = FaultingEdge(_FakeEdge(), FaultInjector(plan))
        # While the outage window is open nothing is served at all; the
        # stale-replay hook never sees the blob.
        with pytest.raises(InjectedFault):
            edge.serve("pad/1")
        assert edge.serve("pad/1") == b"pad/1"  # outage expired; v1 snapshot
        assert edge.serve("pad/2") == b"pad/1"  # stale replay takes over
