"""FaultInjector decision core + the faulting facades."""

import json

import pytest

from repro.faults.injector import (
    FaultingChannel,
    FaultingEdge,
    FaultingTransport,
    FaultInjector,
    InjectedFault,
)
from repro.faults.plan import (
    EDGE_OUTAGE,
    EDGE_SLOW,
    FRAME_CORRUPT,
    FRAME_LOSS,
    FaultPlan,
    FaultRule,
)
from repro.simnet.transport import TransportError
from repro.telemetry import MetricsRegistry

LOSSY = FaultPlan.of(FaultRule.frame_loss("Bluetooth", probability=0.5))


class TestFireDeterminism:
    def test_same_seed_same_decisions(self):
        a = FaultInjector(LOSSY, seed=42)
        b = FaultInjector(LOSSY, seed=42)
        decisions_a = [a.fire(FRAME_LOSS, "Bluetooth") is not None for _ in range(200)]
        decisions_b = [b.fire(FRAME_LOSS, "Bluetooth") is not None for _ in range(200)]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)

    def test_different_seed_different_decisions(self):
        a = FaultInjector(LOSSY, seed=1)
        b = FaultInjector(LOSSY, seed=2)
        decisions_a = [a.fire(FRAME_LOSS, "Bluetooth") is not None for _ in range(200)]
        decisions_b = [b.fire(FRAME_LOSS, "Bluetooth") is not None for _ in range(200)]
        assert decisions_a != decisions_b

    def test_probability_zero_never_fires(self):
        inj = FaultInjector(FaultPlan.of(FaultRule.frame_loss(probability=0.0)))
        assert all(inj.fire(FRAME_LOSS, "x") is None for _ in range(100))

    def test_probability_one_always_fires(self):
        inj = FaultInjector(FaultPlan.of(FaultRule.frame_loss(probability=1.0)))
        assert all(inj.fire(FRAME_LOSS, "x") is not None for _ in range(10))


class TestScheduleWindows:
    def test_outage_window_fires_exact_events(self):
        plan = FaultPlan.of(FaultRule.edge_outage("edge00", after=2, duration=3))
        inj = FaultInjector(plan)
        fired = [
            i for i in range(10) if inj.fire(EDGE_OUTAGE, "edge00") is not None
        ]
        assert fired == [2, 3, 4]

    def test_event_streams_are_per_kind_and_target(self):
        plan = FaultPlan.of(FaultRule.edge_outage("edge00", after=1, duration=1))
        inj = FaultInjector(plan)
        # Events on a different edge must not advance edge00's stream.
        for _ in range(5):
            inj.fire(EDGE_OUTAGE, "edge01")
        assert inj.fire(EDGE_OUTAGE, "edge00") is None  # event 0
        assert inj.fire(EDGE_OUTAGE, "edge00") is not None  # event 1
        assert inj.events_observed(EDGE_OUTAGE, "edge01") == 5


class TestEnabledToggle:
    def test_disabled_injector_never_fires_or_counts(self):
        inj = FaultInjector(
            FaultPlan.of(FaultRule.frame_loss(probability=1.0)), enabled=False
        )
        assert all(inj.fire(FRAME_LOSS, "x") is None for _ in range(50))
        assert inj.events_observed(FRAME_LOSS, "x") == 0

    def test_disabled_window_does_not_consume_events(self):
        plan = FaultPlan.of(FaultRule.edge_outage("e", after=0, duration=1))
        inj = FaultInjector(plan, enabled=False)
        inj.fire(EDGE_OUTAGE, "e")
        inj.enabled = True
        # The disabled call did not burn event 0, so the rule still fires.
        assert inj.fire(EDGE_OUTAGE, "e") is not None


class TestRegistryAccounting:
    def test_counters_per_kind_and_total(self):
        registry = MetricsRegistry()
        plan = FaultPlan.of(
            FaultRule.frame_loss(probability=1.0),
            FaultRule.edge_slow("e", 0.25),
        )
        inj = FaultInjector(plan, registry=registry)
        inj.fire(FRAME_LOSS, "x")
        inj.fire(FRAME_LOSS, "x")
        inj.fire(EDGE_SLOW, "e")
        counters = registry.snapshot()["counters"]
        assert counters["faults.injected"] == 3
        assert counters["faults.injected.frame_loss"] == 2
        assert counters["faults.injected.edge_slow"] == 1
        assert inj.injected() == 3
        assert inj.injected(FRAME_LOSS) == 2


class TestCorrupt:
    def test_corrupt_always_changes_bytes(self):
        inj = FaultInjector(FaultPlan())
        blob = bytes(range(64))
        for _ in range(20):
            mangled = inj.corrupt(blob)
            assert mangled != blob
            assert len(mangled) == len(blob)

    def test_corrupt_empty_blob(self):
        assert FaultInjector(FaultPlan()).corrupt(b"") == b"\xff"


class _FakeTransport:
    def __init__(self):
        self.calls = []

    def request(self, src, dst, payload):
        self.calls.append((src, dst, payload))
        return b"reply:" + payload

    def endpoints(self):
        return ["proxy"]


class TestFaultingTransport:
    def test_frame_loss_raises_transport_error(self):
        inner = _FakeTransport()
        inj = FaultInjector(FaultPlan.of(FaultRule.frame_loss("svc")))
        wrapped = FaultingTransport(inner, inj)
        with pytest.raises(TransportError, match="injected frame loss"):
            wrapped.request("cli", "svc", b"hi")
        assert inner.calls == []  # the frame never arrived

    def test_frame_corrupt_flips_response(self):
        inner = _FakeTransport()
        inj = FaultInjector(FaultPlan.of(FaultRule.frame_corrupt("svc")))
        wrapped = FaultingTransport(inner, inj)
        assert wrapped.request("cli", "svc", b"hi") != b"reply:hi"
        assert inner.calls  # request went through; the reply was mangled

    def test_link_of_names_the_link(self):
        inner = _FakeTransport()
        inj = FaultInjector(FaultPlan.of(FaultRule.frame_loss("Bluetooth")))
        wrapped = FaultingTransport(
            inner, inj, link_of=lambda src, dst: "Bluetooth"
        )
        with pytest.raises(TransportError, match="Bluetooth"):
            wrapped.request("cli", "svc", b"hi")

    def test_clean_plan_is_passthrough_and_delegates(self):
        inner = _FakeTransport()
        wrapped = FaultingTransport(inner, FaultInjector(FaultPlan()))
        assert wrapped.request("cli", "svc", b"hi") == b"reply:hi"
        assert wrapped.endpoints() == ["proxy"]  # __getattr__ delegation

    def test_proxy_restart_fires_on_scheduled_request(self):
        class _FakeProxy:
            restarts = 0

            def restart(self):
                self.restarts += 1

        inner, proxy = _FakeTransport(), _FakeProxy()
        inj = FaultInjector(FaultPlan.of(FaultRule.proxy_restart(after=1)))
        wrapped = FaultingTransport(inner, inj, proxy=proxy)
        wrapped.request("cli", "proxy", b"0")
        assert proxy.restarts == 0
        wrapped.request("cli", "proxy", b"1")
        assert proxy.restarts == 1
        wrapped.request("cli", "proxy", b"2")
        assert proxy.restarts == 1  # duration=1: fired exactly once


def _edge_with_two_objects():
    from repro.cdn.edge import EdgeServer
    from repro.cdn.origin import OriginServer
    from repro.mobilecode.module import MobileCodeModule
    from repro.mobilecode.rsa import generate_keypair
    from repro.mobilecode.signing import Signer

    signer = Signer("pub", generate_keypair(768))
    origin = OriginServer()
    for name in ("alpha", "beta"):
        module = MobileCodeModule(
            name=name, version="1", source=f"X = {name!r}\n", entry_point="str"
        )
        origin.publish(f"{name}/1", signer.sign(module).to_wire())
    return EdgeServer("edge00", origin), signer


class TestFaultingEdge:
    def test_outage_raises_injected_fault(self):
        edge, _ = _edge_with_two_objects()
        inj = FaultInjector(FaultPlan.of(FaultRule.edge_outage("edge00")))
        with pytest.raises(InjectedFault, match="edge00"):
            FaultingEdge(edge, inj).serve("alpha/1")

    def test_slow_is_accounted_not_slept(self):
        edge, _ = _edge_with_two_objects()
        registry = MetricsRegistry()
        inj = FaultInjector(
            FaultPlan.of(FaultRule.edge_slow("edge00", 0.25)), registry=registry
        )
        wrapped = FaultingEdge(edge, inj)
        assert wrapped.serve("alpha/1") == edge.serve("alpha/1")
        assert wrapped.injected_latency_s == pytest.approx(0.25)
        histos = registry.snapshot()["histograms"]
        assert "faults.edge_slow_latency_s" in histos

    def test_tamper_digest_serves_another_validly_signed_object(self):
        from repro.mobilecode.signing import SignedModule, TrustStore

        edge, signer = _edge_with_two_objects()
        inj = FaultInjector(FaultPlan.of(FaultRule.tamper_digest("edge00")))
        blob = FaultingEdge(edge, inj).serve("alpha/1")
        assert blob == edge.origin.fetch("beta/1")  # the wrong object...
        store = TrustStore()
        store.trust("pub", signer.public_key)
        store.verify(SignedModule.from_wire(blob))  # ...but validly signed

    def test_tamper_signature_breaks_verification_only(self):
        from repro.mobilecode.module import MobileCodeError
        from repro.mobilecode.signing import SignedModule, TrustStore

        edge, signer = _edge_with_two_objects()
        inj = FaultInjector(FaultPlan.of(FaultRule.tamper_signature("edge00")))
        blob = FaultingEdge(edge, inj).serve("alpha/1")
        envelope = json.loads(blob)  # still a well-formed envelope
        signed = SignedModule.from_wire(blob)
        assert signed.module.name == "alpha"
        store = TrustStore()
        store.trust("pub", signer.public_key)
        with pytest.raises(Exception) as err:
            store.verify(signed)
        assert not isinstance(err.value, MobileCodeError)
        assert envelope["signer"] == "pub"

    def test_stale_replay_serves_first_version_validly_signed(self):
        from repro.mobilecode.module import MobileCodeModule
        from repro.mobilecode.signing import SignedModule, TrustStore

        edge, signer = _edge_with_two_objects()
        module = MobileCodeModule(
            name="alpha", version="2", source="X = 'alpha2'\n", entry_point="str"
        )
        edge.origin.publish("alpha/2", signer.sign(module).to_wire())
        inj = FaultInjector(
            FaultPlan.of(FaultRule.stale_replay("edge00")),
            registry=MetricsRegistry(),
        )
        wrapped = FaultingEdge(edge, inj)
        v1 = wrapped.serve("alpha/1")  # snapshot: first version seen
        assert v1 == edge.origin.fetch("alpha/1")
        replayed = wrapped.serve("alpha/2")
        assert replayed == v1  # the stale version, not the requested one
        store = TrustStore()
        store.trust("pub", signer.public_key)
        signed = SignedModule.from_wire(replayed)
        store.verify(signed)  # still validly signed — only the digest tells
        assert signed.module.version == "1"
        assert inj.injected("pad_stale_replay") == 1

    def test_stale_replay_without_a_snapshot_never_counts(self):
        edge, _ = _edge_with_two_objects()
        inj = FaultInjector(
            FaultPlan.of(FaultRule.stale_replay("edge00")),
            registry=MetricsRegistry(),
        )
        wrapped = FaultingEdge(edge, inj)
        # Different PADs, each seen once: nothing older to replay, so the
        # counter must equal the number of stale blobs actually served (0).
        assert wrapped.serve("alpha/1") == edge.origin.fetch("alpha/1")
        assert wrapped.serve("beta/1") == edge.origin.fetch("beta/1")
        assert inj.injected("pad_stale_replay") == 0

    def test_delegation_and_name(self):
        edge, _ = _edge_with_two_objects()
        wrapped = FaultingEdge(edge, FaultInjector(FaultPlan()))
        assert wrapped.name == "edge00"
        assert wrapped.has_cached("alpha/1") is False
        wrapped.serve("alpha/1")
        assert wrapped.has_cached("alpha/1") is True


class TestFaultingChannel:
    def _channel(self, plan):
        from repro.simnet.kernel import Simulator
        from repro.simnet.link import LINK_PRESETS, NetworkType
        from repro.simnet.transport import SimChannel

        sim = Simulator()
        link = LINK_PRESETS[NetworkType.BLUETOOTH]
        channel = SimChannel(sim, link, name="Bluetooth")
        return sim, FaultingChannel(channel, FaultInjector(plan))

    def test_frame_loss_spends_serialize_time_then_fails(self):
        sim, channel = self._channel(FaultPlan.of(FaultRule.frame_loss("Bluetooth")))
        errors = []

        def proc():
            try:
                yield from channel.transfer(10_000)
            except TransportError as exc:
                errors.append(exc)

        sim.process(proc())
        sim.run()
        assert errors, "the loss must surface as TransportError"
        assert sim.now == pytest.approx(channel.link.transfer_time(10_000))

    def test_clean_channel_is_passthrough(self):
        sim, channel = self._channel(FaultPlan())
        done = []

        def proc():
            yield from channel.round_trip(1000, 5000)
            done.append(sim.now)

        sim.process(proc())
        sim.run()
        assert done and done[0] > 0.0
        assert channel.name == "Bluetooth"  # delegation
