"""Content-adaptation PAD tests (the §5 extension)."""

import pytest

from repro.protocols.base import ProtocolError, run_exchange
from repro.protocols.content import ImageDownscaleProtocol, TextOnlyProtocol
from repro.protocols.stack import ProtocolStack
from repro.protocols.gzip_pad import GzipProtocol
from repro.workload.images import decode_image, generate_image


@pytest.fixture(scope="module")
def image():
    return generate_image(32_500, seed=3)


class TestImageDownscale:
    def test_downscale_shrinks_by_factor_squared(self, image):
        proto = ImageDownscaleProtocol(factor=2)
        result = run_exchange(proto, None, image)
        adapted = decode_image(result.data)
        original = decode_image(image)
        assert adapted.width == (original.width + 1) // 2
        assert adapted.height == (original.height + 1) // 2
        assert result.traffic_bytes < len(image) / 3

    def test_factor_one_is_identity_on_pixels(self, image):
        proto = ImageDownscaleProtocol(factor=1)
        result = run_exchange(proto, None, image, verify=False)
        assert decode_image(result.data).pixels.shape == decode_image(image).pixels.shape

    def test_text_passes_through_unchanged(self):
        proto = ImageDownscaleProtocol(factor=4)
        text = b"report text, not an image" * 20
        result = run_exchange(proto, None, text)
        assert result.data == text

    def test_lossy_flag_skips_verification(self, image):
        proto = ImageDownscaleProtocol(factor=2)
        # Would raise ProtocolError if the exactness check ran.
        result = run_exchange(proto, None, image)
        assert result.data != image

    def test_explicit_verify_true_catches_loss(self, image):
        proto = ImageDownscaleProtocol(factor=2)
        with pytest.raises(ProtocolError, match="failed to reconstruct"):
            run_exchange(proto, None, image, verify=True)

    def test_factor_validation(self):
        with pytest.raises(ValueError):
            ImageDownscaleProtocol(factor=0)

    def test_malformed_response_rejected(self):
        proto = ImageDownscaleProtocol()
        with pytest.raises(ProtocolError):
            proto.client_reconstruct(None, b"")
        with pytest.raises(ProtocolError):
            proto.client_reconstruct(None, b"Zjunk")

    def test_composes_with_compression_layer(self, image):
        stack = ProtocolStack([ImageDownscaleProtocol(factor=2), GzipProtocol()])
        stack.lossy = True
        result = run_exchange(stack, None, image)
        assert decode_image(result.data).width < decode_image(image).width


class TestTextOnly:
    def test_images_dropped(self, image):
        proto = TextOnlyProtocol()
        result = run_exchange(proto, None, image)
        assert result.data == b""
        assert result.traffic_bytes <= 1

    def test_text_kept(self):
        proto = TextOnlyProtocol()
        text = b"the prose survives"
        assert run_exchange(proto, None, text).data == text

    def test_page_level_savings(self, small_corpus):
        proto = TextOnlyProtocol()
        page = small_corpus.page(0)
        total = sum(
            run_exchange(proto, None, part).traffic_bytes
            for part in [page.text, *page.images]
        )
        assert total < len(page.text) * 1.1  # ~only the text moved
