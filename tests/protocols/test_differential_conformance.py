"""Differential conformance: every PAD delivers the same bytes.

The case study's four protocols (direct, gzip, vary-sized blocking,
bitmap) are interchangeable *by contract*: whatever path the negotiation
picks, the client must end up holding the identical new version.  This
suite runs all four over the same version pairs and cross-checks:

1. reconstructed payloads are byte-identical across protocols (and equal
   to the truth),
2. measured traffic ranks the protocols the same way the negotiation
   manager's :mod:`repro.core.overhead` inputs do — the Eq. 1 vectors
   are calibrated from these very exchanges, so a rank disagreement
   means the proxy would systematically pick the wrong PAD.
"""

from __future__ import annotations

import pytest

from repro.core.calibration import calibrate_overheads
from repro.protocols import run_exchange
from repro.protocols.padlib import instantiate
from repro.workload.pages import Corpus

CASE_STUDY_PADS = ("direct", "gzip", "vary", "bitmap")


@pytest.fixture(scope="module")
def corpus() -> Corpus:
    return Corpus(n_pages=2, text_bytes=3000, image_bytes=12_000, images_per_page=2)


@pytest.fixture(scope="module")
def exchanges(corpus):
    """Every protocol over every (old, new) part pair of every page."""
    results: dict[str, list] = {p: [] for p in CASE_STUDY_PADS}
    for pad_id in CASE_STUDY_PADS:
        protocol = instantiate(pad_id)
        for page_id in range(corpus.n_pages):
            old_page = corpus.evolved(page_id, 0)
            new_page = corpus.evolved(page_id, 1)
            for old, new in zip(
                [old_page.text, *old_page.images],
                [new_page.text, *new_page.images],
            ):
                results[pad_id].append((new, run_exchange(protocol, old, new)))
    return results


def test_all_protocols_deliver_identical_payloads(exchanges):
    n = len(exchanges["direct"])
    for i in range(n):
        truth = exchanges["direct"][i][0]
        delivered = {p: exchanges[p][i][1].data for p in CASE_STUDY_PADS}
        for pad_id, data in delivered.items():
            assert data == truth, f"{pad_id} diverged on exchange {i}"


def test_traffic_never_exceeds_direct_plus_framing(exchanges):
    """direct is the no-adaptation ceiling; the differencing/compression
    PADs exist to beat it on evolved content (small framing overhead
    aside, they must never balloon the transfer)."""
    n = len(exchanges["direct"])
    for i in range(n):
        direct_bytes = exchanges["direct"][i][1].traffic_bytes
        for pad_id in ("gzip", "vary", "bitmap"):
            adapted = exchanges[pad_id][i][1].traffic_bytes
            assert adapted < direct_bytes * 1.05, (
                f"{pad_id} moved {adapted} bytes vs direct's {direct_bytes} "
                f"on exchange {i}"
            )


def test_differencing_beats_compression_on_small_edits(exchanges):
    """The corpus evolves by small edits, the regime the paper's vary /
    bitmap PADs target: totals must rank direct > gzip > each differ."""
    totals = {
        p: sum(r.traffic_bytes for _, r in exchanges[p])
        for p in CASE_STUDY_PADS
    }
    assert totals["gzip"] < totals["direct"]
    assert totals["vary"] < totals["gzip"]
    assert totals["bitmap"] < totals["gzip"]


def test_measured_ranking_matches_overhead_model_inputs(exchanges, corpus):
    """Cross-check against the negotiation model's calibrated Eq. 1
    vectors: ranking PADs by measured traffic here must equal ranking
    them by ``traffic_std_bytes`` as :func:`calibrate_overheads` feeds
    the :class:`~repro.core.overhead.OverheadModel`."""
    overheads = calibrate_overheads(
        corpus, CASE_STUDY_PADS, n_pages=corpus.n_pages
    )
    measured = {
        p: sum(r.traffic_bytes for _, r in exchanges[p])
        for p in CASE_STUDY_PADS
    }
    by_measured = sorted(CASE_STUDY_PADS, key=lambda p: measured[p])
    by_model = sorted(
        CASE_STUDY_PADS, key=lambda p: overheads[p].traffic_std_bytes
    )
    assert by_measured == by_model
