"""Protocol composition and mobile-code packaging tests."""

import pytest

from repro.mobilecode import ModuleLoader, Signer, TrustStore, generate_keypair
from repro.protocols.base import ProtocolError, run_exchange
from repro.protocols.bitmap import BitmapProtocol
from repro.protocols.direct import DirectProtocol
from repro.protocols.gzip_pad import GzipProtocol
from repro.protocols.padlib import PAD_SPECS, build_pad_module, instantiate
from repro.protocols.stack import ProtocolStack
from repro.protocols.vary_blocking import VaryBlockingProtocol


class TestProtocolStack:
    def test_single_protocol_stack(self):
        stack = ProtocolStack([GzipProtocol()])
        data = b"payload " * 200
        result = run_exchange(stack, None, data)
        assert result.data == data

    def test_vary_then_gzip_composition(self):
        """Differencing inside, compression outside: a 2-PAD path."""
        stack = ProtocolStack([VaryBlockingProtocol(), GzipProtocol()])
        old = b"stable content " * 1000
        new = old[:7000] + b"EDITED" + old[7000:]
        result = run_exchange(stack, old, new)
        assert result.data == new
        assert stack.name == "vary+gzip"

    def test_stack_with_request_carrying_inner_protocol(self):
        stack = ProtocolStack([BitmapProtocol(), GzipProtocol()])
        old = b"a" * 20_000
        new = b"a" * 10_000 + b"b" * 10_000
        result = run_exchange(stack, old, new)
        assert result.data == new
        assert result.request_bytes > 0  # bitmap's digest upload survived

    def test_three_layer_stack(self):
        stack = ProtocolStack(
            [VaryBlockingProtocol(), GzipProtocol(), DirectProtocol()]
        )
        old = b"x" * 9000
        new = b"x" * 4500 + b"y" * 4500
        assert run_exchange(stack, old, new).data == new

    def test_empty_stack_rejected(self):
        with pytest.raises(ProtocolError):
            ProtocolStack([])

    def test_compression_layer_shrinks_delta(self):
        plain = VaryBlockingProtocol()
        stacked = ProtocolStack([VaryBlockingProtocol(), GzipProtocol()])
        old = (b"text that compresses " * 800)
        new = old[:5000] + b"~CHANGE~" + old[5000:]
        t_plain = run_exchange(plain, old, new).traffic_bytes
        t_stacked = run_exchange(stacked, old, new).traffic_bytes
        assert t_stacked < t_plain


class TestPadlib:
    def test_all_specs_instantiate(self):
        from repro.protocols.base import CommProtocol

        for pad_id in PAD_SPECS:
            proto = instantiate(pad_id)
            assert isinstance(proto, CommProtocol)
            # Layer PADs ("gzip-layer", "plain-layer") reuse base protocol
            # classes, so their instance name is the base protocol's.
            assert proto.name in (pad_id, pad_id.replace("-layer", ""),
                                  "direct")

    def test_unknown_pad_rejected(self):
        with pytest.raises(KeyError, match="unknown PAD"):
            build_pad_module("quantum")

    def test_module_source_has_no_relative_imports(self):
        for pad_id in PAD_SPECS:
            source = build_pad_module(pad_id).source
            assert "from ." not in source, pad_id

    def test_module_metadata_carries_table1_columns(self):
        module = build_pad_module("vary")
        assert module.metadata["function"].startswith("Differencing")
        assert "init_kwargs" in module.metadata

    def test_init_kwargs_threaded_through(self):
        module = build_pad_module("bitmap", block_size=2048)
        assert module.metadata["init_kwargs"]["block_size"] == 2048

    @pytest.mark.parametrize("pad_id", sorted(PAD_SPECS))
    def test_mobile_code_roundtrip_equals_local(self, pad_id, small_corpus):
        """The PAD shipped as mobile code behaves exactly like the local one."""
        key = generate_keypair(768)
        signer = Signer("origin", key)
        store = TrustStore()
        store.trust("origin", key.public)
        loader = ModuleLoader(store)

        module = build_pad_module(pad_id)
        loaded = loader.load(
            signer.sign(module), expected_digest=module.digest(),
            init_kwargs=module.metadata["init_kwargs"],
        )
        remote = loaded.instance
        local = instantiate(pad_id)

        old_page = small_corpus.evolved(0, 0)
        new_page = small_corpus.evolved(0, 1)
        old, new = old_page.text, new_page.text
        request = remote.client_request(old)
        # Server side runs the *local* pre-deployed instance.
        response = local.server_respond(request, old, new)
        assert remote.client_reconstruct(old, response) == new
