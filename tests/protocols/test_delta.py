"""Shared delta encoding tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.protocols.base import (
    DeltaOp,
    ProtocolError,
    apply_delta,
    decode_delta,
    encode_delta,
)


class TestDeltaCodec:
    def test_empty_delta(self):
        blob = encode_delta([])
        assert decode_delta(blob) == []

    def test_copy_and_data_roundtrip(self):
        ops = [DeltaOp(offset=3, length=5), DeltaOp(data=b"inserted")]
        assert decode_delta(encode_delta(ops)) == ops

    def test_apply_copy(self):
        old = b"0123456789"
        assert apply_delta(old, [DeltaOp(offset=2, length=4)]) == b"2345"

    def test_apply_mixed(self):
        old = b"hello world"
        ops = [
            DeltaOp(offset=0, length=6),
            DeltaOp(data=b"fractal"),
        ]
        assert apply_delta(old, ops) == b"hello fractal"

    def test_copy_beyond_old_rejected(self):
        with pytest.raises(ProtocolError, match="exceeds old version"):
            apply_delta(b"abc", [DeltaOp(offset=1, length=5)])

    def test_invalid_copy_rejected_on_encode(self):
        with pytest.raises(ProtocolError):
            encode_delta([DeltaOp(offset=0, length=0)])
        with pytest.raises(ProtocolError):
            encode_delta([DeltaOp(offset=-1, length=1)])

    def test_empty_data_op_rejected(self):
        with pytest.raises(ProtocolError):
            encode_delta([DeltaOp(data=b"")])

    def test_missing_end_rejected(self):
        blob = encode_delta([DeltaOp(data=b"x")])
        with pytest.raises(ProtocolError, match="END"):
            decode_delta(blob[:-1])

    def test_trailing_bytes_rejected(self):
        blob = encode_delta([DeltaOp(data=b"x")])
        with pytest.raises(ProtocolError, match="trailing"):
            decode_delta(blob + b"junk")

    def test_unknown_opcode_rejected(self):
        with pytest.raises(ProtocolError, match="opcode"):
            decode_delta(b"\x7f\x00")

    def test_truncated_copy_rejected(self):
        with pytest.raises(ProtocolError, match="truncated COPY"):
            decode_delta(b"\x01\x00\x00")

    def test_truncated_data_rejected(self):
        with pytest.raises(ProtocolError, match="truncated DATA payload"):
            decode_delta(b"\x02\x10\x00\x00\x00abc")

    @given(
        st.lists(
            st.one_of(
                st.builds(DeltaOp, offset=st.integers(0, 100),
                          length=st.integers(1, 50)),
                st.builds(DeltaOp, data=st.binary(min_size=1, max_size=64)),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_codec_roundtrip_property(self, ops):
        assert decode_delta(encode_delta(ops)) == ops
