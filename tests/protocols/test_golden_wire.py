"""Frozen wire-format vectors for every PAD and the deflate-lite container.

The SHA-1 digests below were captured from the implementation *before* the
data-plane kernels were rewritten (fused CDC scan, table-driven LZSS,
accumulator Huffman coding).  Optimizations must keep every wire byte
identical — a digest change here means the protocol format drifted, which
breaks deployed client/server pairs mid-session.
"""

import hashlib
import random

import pytest

from repro.compression import gziplike
from repro.protocols.padlib import instantiate
from repro.workload.pages import Corpus

# sha1 of (request, response, cold_response) per PAD on the seeded corpus.
PAD_GOLDEN = {
    "direct": (
        "da39a3ee5e6b4b0d3255bfef95601890afd80709",
        "5ad9149b97eba512db731d79fbd33521e8d5f1f8",
        "cba258497d6f2d50cd8fb63a288419dfec593eb2",
    ),
    "gzip": (
        "da39a3ee5e6b4b0d3255bfef95601890afd80709",
        "5aa8492573a6e5290e42dc1e6594d5623a96931a",
        "5edae331fc804f81e3dda0fc4c3ecc45af1ab148",
    ),
    "vary": (
        "da39a3ee5e6b4b0d3255bfef95601890afd80709",
        "672015757173cac868e1f2db59000e76173b1760",
        "9e2f4dab5d653626ed04a93539d45d27f1fad57c",
    ),
    "bitmap": (
        "c98315eb1aa316936bc0dc3c164f30aa760a0f2c",
        "3a3881a8c346618f44af3e6c777c69370f31c650",
        "b53604e079987d646f7601216cec98a2fc066b6d",
    ),
    "fixed": (
        "0f911d35aed2fcd2b50950833058c05b9f3fc715",
        "55f8067b66900ed7de7e3b49f517a4fd8a67bf20",
        "9e2f4dab5d653626ed04a93539d45d27f1fad57c",
    ),
}

# sha1 of the pure-backend deflate-lite container per named input.
GZIPLIKE_GOLDEN = {
    "empty": "baae94d6623d74e9222007835dedc024c0cb47e0",
    "text": "34a4de8c0e132f14270960b1a9a1fcecf7d0a4fb",
    "runs": "dd71bb487ee1a57780a3df139fce9d99938bf6c7",
    "random": "dd91f73cdf8e9ed2e653b5691b59141eba140cec",
    "small_page": "5aa8492573a6e5290e42dc1e6594d5623a96931a",
}


def _sha1(data: bytes) -> str:
    return hashlib.sha1(data).hexdigest()


@pytest.fixture(scope="module")
def pages():
    corpus = Corpus(text_bytes=2048, image_bytes=4096, images_per_page=2)
    return (
        corpus.evolved(0, 0).encode(),
        corpus.evolved(0, 1).encode(),
        corpus.evolved(1, 1).encode(),
    )


class TestPadWireGolden:
    @pytest.mark.parametrize("pad_id", sorted(PAD_GOLDEN))
    def test_wire_bytes_unchanged(self, pad_id, pages):
        old, new, cold_new = pages
        kwargs = {"backend": "pure"} if pad_id == "gzip" else {}
        proto = instantiate(pad_id, **kwargs)

        req = proto.client_request(old)
        resp = proto.server_respond(req, old, new)
        assert proto.client_reconstruct(old, resp) == new

        cold_resp = proto.server_respond(proto.client_request(None), None, cold_new)
        assert proto.client_reconstruct(None, cold_resp) == cold_new

        want_req, want_resp, want_cold = PAD_GOLDEN[pad_id]
        assert _sha1(req) == want_req
        assert _sha1(resp) == want_resp
        assert _sha1(cold_resp) == want_cold


class TestGziplikeContainerGolden:
    @pytest.fixture(scope="class")
    def inputs(self, pages):
        rng = random.Random(1905)
        return {
            "empty": b"",
            "text": b"the quick brown fox jumps over the lazy dog. " * 200,
            "runs": b"A" * 5000 + b"B" * 5000,
            "random": rng.randbytes(8192),
            "small_page": pages[1],
        }

    @pytest.mark.parametrize("name", sorted(GZIPLIKE_GOLDEN))
    def test_container_bytes_unchanged(self, name, inputs):
        blob = gziplike.compress(inputs[name], backend="pure")
        assert _sha1(blob) == GZIPLIKE_GOLDEN[name]
        assert gziplike.decompress(blob) == inputs[name]
