"""Tests for the five communication-optimization protocols.

Shared behavioural contract first (parameterized over every protocol),
then protocol-specific behaviours and failure cases.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.protocols.base import ProtocolError, run_exchange
from repro.protocols.bitmap import BitmapProtocol
from repro.protocols.direct import DirectProtocol
from repro.protocols.fixed_blocking import (
    FixedBlockingProtocol,
    RollingChecksum,
    rolling_checksum,
)
from repro.protocols.gzip_pad import GzipProtocol
from repro.protocols.vary_blocking import VaryBlockingProtocol

ALL_PROTOCOLS = [
    DirectProtocol,
    lambda: GzipProtocol(backend="pure"),
    lambda: GzipProtocol(backend="zlib"),
    VaryBlockingProtocol,
    BitmapProtocol,
    FixedBlockingProtocol,
]
IDS = ["direct", "gzip-pure", "gzip-zlib", "vary", "bitmap", "fixed"]


def exchange(protocol, old, new):
    """Drive all three phases manually and return the rebuilt content."""
    request = protocol.client_request(old)
    response = protocol.server_respond(request, old, new)
    return protocol.client_reconstruct(old, response)


@pytest.fixture(scope="module")
def version_pair(small_corpus):
    old = small_corpus.evolved(0, 0)
    new = small_corpus.evolved(0, 1)
    return [old.text, *old.images], [new.text, *new.images]


@pytest.mark.parametrize("factory", ALL_PROTOCOLS, ids=IDS)
class TestProtocolContract:
    def test_reconstructs_exactly(self, factory, version_pair):
        protocol = factory()
        old_parts, new_parts = version_pair
        for old, new in zip(old_parts, new_parts):
            assert exchange(protocol, old, new) == new

    def test_first_contact_without_old_version(self, factory):
        protocol = factory()
        new = b"brand new content" * 50
        assert exchange(protocol, None, new) == new

    def test_empty_new_content(self, factory):
        protocol = factory()
        assert exchange(protocol, b"previous stuff", b"") == b""

    def test_identical_versions(self, factory):
        protocol = factory()
        data = random.Random(0).randbytes(20_000)
        assert exchange(protocol, data, data) == data

    def test_run_exchange_accounting(self, factory):
        protocol = factory()
        old = b"x" * 5000
        new = b"x" * 2500 + b"y" * 2500
        result = run_exchange(protocol, old, new)
        assert result.data == new
        assert result.traffic_bytes == result.request_bytes + result.response_bytes
        assert result.original_bytes == 5000
        assert result.client_time_s >= 0 and result.server_time_s >= 0

    def test_precomputed_response_path(self, factory):
        """Proactive mode: the cached response must decode identically."""
        protocol = factory()
        old, new = b"a" * 4000, b"a" * 2000 + b"b" * 2000
        request = protocol.client_request(old)
        canned = protocol.server_respond(request, old, new)
        result = run_exchange(protocol, old, new, precomputed_response=canned)
        assert result.data == new
        assert result.server_time_s == 0.0


class TestDifferencingEfficiency:
    """The Fig. 11(a) ordering on realistic page edits."""

    def test_ordering_on_version_pair(self, version_pair):
        old_parts, new_parts = version_pair
        totals = {}
        for name, proto in (
            ("direct", DirectProtocol()),
            ("gzip", GzipProtocol(backend="zlib")),
            ("vary", VaryBlockingProtocol()),
            ("bitmap", BitmapProtocol()),
        ):
            totals[name] = sum(
                run_exchange(proto, o, n).traffic_bytes
                for o, n in zip(old_parts, new_parts)
            )
        assert totals["direct"] > totals["gzip"] > totals["bitmap"] > totals["vary"]

    def test_identical_image_costs_near_nothing_for_differencers(self, small_corpus):
        image = small_corpus.page(0).images[0]
        for proto in (VaryBlockingProtocol(), BitmapProtocol()):
            result = run_exchange(proto, image, image)
            assert result.traffic_bytes < len(image) * 0.05

    def test_vary_tolerates_insertions_better_than_bitmap(self):
        rng = random.Random(2)
        old = rng.randbytes(40_000)
        new = old[:100] + b"INSERT" * 4 + old[100:]  # shifts everything
        vary = run_exchange(VaryBlockingProtocol(), old, new).traffic_bytes
        bitmap = run_exchange(BitmapProtocol(), old, new).traffic_bytes
        assert vary < bitmap / 3

    def test_fixed_rsync_also_tolerates_shifts(self):
        rng = random.Random(3)
        old = rng.randbytes(40_000)
        new = old[:500] + b"shifted!" + old[500:]
        fixed = run_exchange(FixedBlockingProtocol(), old, new).traffic_bytes
        assert fixed < len(new) / 3


class TestGzip:
    def test_backend_validation(self):
        with pytest.raises(ValueError):
            GzipProtocol(backend="bogus")

    def test_corrupt_payload_raises_protocol_error(self):
        proto = GzipProtocol()
        payload = bytearray(proto.server_respond(b"", None, b"data" * 100))
        payload[-1] ^= 0xFF
        with pytest.raises(ProtocolError):
            proto.client_reconstruct(None, bytes(payload))

    def test_compresses_text(self):
        text = b"compressible prose " * 500
        result = run_exchange(GzipProtocol(backend="pure"), None, text)
        assert result.traffic_bytes < len(text) / 3


class TestVary:
    def test_delta_has_copies_for_common_content(self):
        rng = random.Random(4)
        old = rng.randbytes(30_000)
        new = old[:15_000] + rng.randbytes(200) + old[15_000:]
        from repro.protocols.base import decode_delta

        proto = VaryBlockingProtocol()
        ops = decode_delta(proto.server_respond(b"", old, new))
        assert any(op.is_copy for op in ops)

    def test_copy_without_old_rejected(self):
        from repro.protocols.base import DeltaOp, encode_delta

        proto = VaryBlockingProtocol()
        bad = encode_delta([DeltaOp(offset=0, length=4)])
        with pytest.raises(ProtocolError, match="COPY op without"):
            proto.client_reconstruct(None, bad)


class TestBitmap:
    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            BitmapProtocol(block_size=100)  # not a multiple of 64
        with pytest.raises(ValueError):
            BitmapProtocol(block_size=0)

    def test_request_is_digest_multiple(self):
        proto = BitmapProtocol(block_size=1024)
        req = proto.client_request(b"z" * 5000)
        assert len(req) % 16 == 0
        assert len(req) // 16 == 5  # ceil(5000/1024)

    def test_mismatched_block_size_detected(self):
        server = BitmapProtocol(block_size=4096)
        client = BitmapProtocol(block_size=2048)
        old = b"q" * 10_000
        response = server.server_respond(server.client_request(old), old, old)
        with pytest.raises(ProtocolError, match="block size"):
            client.client_reconstruct(old, response)

    def test_truncated_response_detected(self):
        proto = BitmapProtocol()
        old, new = b"a" * 9000, b"b" * 9000
        response = proto.server_respond(proto.client_request(old), old, new)
        with pytest.raises(ProtocolError):
            proto.client_reconstruct(old, response[:-100])

    def test_growing_and_shrinking_files(self):
        proto = BitmapProtocol(block_size=1024)
        old = b"e" * 8000
        for new in (b"e" * 12_000, b"e" * 3000, b"f" * 100):
            assert exchange(proto, old, new) == new

    def test_corrupt_digest_upload_rejected(self):
        proto = BitmapProtocol()
        with pytest.raises(ProtocolError, match="whole number"):
            proto.server_respond(b"\x01\x02\x03", b"old", b"new")


class TestFixedBlocking:
    def test_rolling_checksum_matches_batch(self):
        rng = random.Random(5)
        data = rng.randbytes(3000)
        bs = 512
        roller = RollingChecksum(data[:bs])
        assert roller.value == rolling_checksum(data[:bs])
        for pos in range(1, 200):
            roller.roll(data[pos - 1], data[pos + bs - 1])
            assert roller.value == rolling_checksum(data[pos : pos + bs]), pos

    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            FixedBlockingProtocol(block_size=8)

    def test_partial_signature_rejected(self):
        proto = FixedBlockingProtocol()
        with pytest.raises(ProtocolError, match="partial entry"):
            proto.server_respond(b"\x00" * 7, b"old", b"new")

    @given(st.binary(max_size=6000), st.binary(max_size=6000))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, old, new):
        proto = FixedBlockingProtocol(block_size=256)
        assert exchange(proto, old, new) == new


class TestPropertyRoundtrips:
    @given(st.binary(max_size=8000), st.binary(max_size=8000))
    @settings(max_examples=20, deadline=None)
    def test_vary_roundtrip(self, old, new):
        assert exchange(VaryBlockingProtocol(), old, new) == new

    @given(st.binary(max_size=8000), st.binary(max_size=8000))
    @settings(max_examples=20, deadline=None)
    def test_bitmap_roundtrip(self, old, new):
        assert exchange(BitmapProtocol(block_size=512), old, new) == new
