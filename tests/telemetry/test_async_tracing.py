"""Tracer span isolation across asyncio tasks, and real async-client spans.

The span stack moved from ``threading.local`` to ``contextvars`` so that
interleaved tasks on one event loop each build their own trace tree.
These tests pin (a) the isolation property itself and (b) that the async
client + async appserver now emit the same span names the synchronous
path does, reconciling with the registry counters.
"""

import asyncio

import pytest

from repro.core.asyncclient import AsyncFractalClient
from repro.core.system import APP_ID, bind_async_endpoints, build_case_study
from repro.simnet.asyncnet import AsyncTcpTransport
from repro.telemetry import Tracer
from repro.workload.profiles import DESKTOP_LAN, PDA_BLUETOOTH

# Span names every full client session must produce, sync or async.
SESSION_SPANS = {
    "session", "negotiate", "client.encode", "app_exchange",
    "client.reconstruct",
}


class TestTaskIsolation:
    def test_interleaved_tasks_build_separate_trees(self):
        tracer = Tracer()

        async def session(name: str, gate: asyncio.Event, other: asyncio.Event):
            with tracer.span("session", trace=name) as root:
                with tracer.span("stage"):
                    # Force an interleave mid-span: the other task opens
                    # its own spans while ours is still active.
                    other.set()
                    await gate.wait()
                return root

        async def main():
            g1, g2 = asyncio.Event(), asyncio.Event()
            t1 = asyncio.create_task(session("trace-a", g1, g2))
            t2 = asyncio.create_task(session("trace-b", g2, g1))
            return await asyncio.gather(t1, t2)

        root_a, root_b = asyncio.run(main())
        assert root_a.trace_id == "trace-a"
        assert root_b.trace_id == "trace-b"
        for root in (root_a, root_b):
            assert [c.name for c in root.children] == ["stage"]
            assert root.children[0].trace_id == root.trace_id
        assert sorted(tracer.trace_ids()) == ["trace-a", "trace-b"]

    def test_nesting_survives_awaits(self):
        tracer = Tracer()

        async def main():
            with tracer.span("outer", trace="t"):
                await asyncio.sleep(0)
                with tracer.span("inner"):
                    await asyncio.sleep(0)
                    assert tracer.active_span.name == "inner"
                assert tracer.active_span.name == "outer"

        asyncio.run(main())
        (root,) = tracer.trace("t")
        assert [c.name for c in root.children] == ["inner"]


class TestAsyncClientSpans:
    def test_async_session_emits_sync_span_names(self, small_corpus):
        """Async sessions trace like sync ones, plus the server span."""

        async def main():
            system = build_case_study(corpus=small_corpus, calibrate=False)
            async with AsyncTcpTransport() as t:
                await bind_async_endpoints(system, t)
                client = system.make_client(
                    DESKTOP_LAN, name="trace-cli", transport=t,
                    client_cls=AsyncFractalClient,
                )
                old = system.corpus.evolved(0, 0)
                await client.request_page(
                    APP_ID, 0,
                    old_parts=[old.text, *old.images],
                    old_version=0, new_version=1,
                )
            return system

        system = asyncio.run(main())
        names = {sp.name for sp in system.telemetry.tracer.spans()}
        assert SESSION_SPANS <= names
        assert "server.encode" in names

    def test_sync_and_async_span_names_reconcile(self, small_corpus):
        """Same testbed, both paths: async spans cover the sync set and
        reconcile with the shared counter names."""
        sync_system = build_case_study(corpus=small_corpus, calibrate=False)
        client = sync_system.make_client(PDA_BLUETOOTH, name="sync-cli")
        old = sync_system.corpus.evolved(0, 0)
        client.request_page(
            APP_ID, 0,
            old_parts=[old.text, *old.images], old_version=0, new_version=1,
        )
        sync_names = {sp.name for sp in sync_system.telemetry.tracer.spans()}

        async def main():
            system = build_case_study(corpus=small_corpus, calibrate=False)
            async with AsyncTcpTransport() as t:
                await bind_async_endpoints(system, t)
                cli = system.make_client(
                    PDA_BLUETOOTH, name="async-cli", transport=t,
                    client_cls=AsyncFractalClient,
                )
                o = system.corpus.evolved(0, 0)
                await cli.request_page(
                    APP_ID, 0,
                    old_parts=[o.text, *o.images], old_version=0, new_version=1,
                )
            return system

        async_system = asyncio.run(main())
        async_names = {sp.name for sp in async_system.telemetry.tracer.spans()}
        # Every client-side sync span appears in the async trace too; the
        # async serving path adds the server.encode span on top.
        assert sync_names <= async_names
        assert async_names - sync_names <= {"server.encode"}

        # Span counts reconcile with the counters both paths share: one
        # server.encode span per appserver request handled.
        registry = async_system.telemetry.registry
        server_spans = [
            sp for sp in async_system.telemetry.tracer.spans()
            if sp.name == "server.encode"
        ]
        assert len(server_spans) == registry.counter("appserver.requests").value
        negotiate_spans = [
            sp for sp in async_system.telemetry.tracer.spans()
            if sp.name == "negotiate"
        ]
        assert len(negotiate_spans) == registry.counter(
            "client.negotiations"
        ).value


class TestThreadIsolationStillHolds:
    def test_threads_do_not_nest_into_each_other(self):
        import threading

        tracer = Tracer()
        barrier = threading.Barrier(2)
        roots = {}

        def run(name):
            with tracer.span("root", trace=name) as root:
                barrier.wait(timeout=5)
                with tracer.span("child"):
                    pass
            roots[name] = root

        threads = [
            threading.Thread(target=run, args=(f"t{i}",)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert set(roots) == {"t0", "t1"}
        for name, root in roots.items():
            assert root.trace_id == name
            assert [c.name for c in root.children] == ["child"]
