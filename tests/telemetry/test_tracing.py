"""Tracer tests: nested parenting, trace retention, export, stage rows."""

import json

import pytest

from repro.simnet.kernel import Simulator
from repro.telemetry import SimClock, Tracer, stage_rows


class TestSpanNesting:
    def test_children_nest_under_active_span(self):
        tr = Tracer()
        with tr.span("negotiate", trace="s1") as root:
            with tr.span("search") as search:
                pass
            with tr.span("finish") as finish:
                pass
        assert search.parent_id == root.span_id
        assert finish.parent_id == root.span_id
        assert root.parent_id is None
        assert [c.name for c in root.children] == ["search", "finish"]

    def test_children_inherit_trace_id(self):
        tr = Tracer()
        with tr.span("root", trace="session-9"):
            with tr.span("child") as child:
                with tr.span("grandchild") as grand:
                    pass
        assert child.trace_id == "session-9"
        assert grand.trace_id == "session-9"

    def test_root_without_trace_gets_generated_id(self):
        tr = Tracer()
        with tr.span("a") as a:
            pass
        with tr.span("b") as b:
            pass
        assert a.trace_id != b.trace_id

    def test_span_closes_on_exception(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            with tr.span("root", trace="t"):
                raise ValueError("boom")
        assert tr.active_span is None
        (root,) = tr.trace("t")
        assert root.finished

    def test_tags_via_kwargs_and_tag_method(self):
        tr = Tracer()
        with tr.span("negotiate", trace="t", app="medical-web") as sp:
            sp.tag(cache="miss")
        assert sp.tags == {"app": "medical-web", "cache": "miss"}

    def test_durations_from_injected_clock(self):
        ticks = iter([0.0, 1.0, 4.0, 10.0])
        tr = Tracer(clock=lambda: next(ticks))
        with tr.span("outer", trace="t") as outer:
            with tr.span("inner") as inner:
                pass
        assert inner.duration_s == pytest.approx(3.0)
        assert outer.duration_s == pytest.approx(10.0)

    def test_simulated_clock_spans(self):
        sim = Simulator()
        tr = Tracer(clock=SimClock(sim))

        def proc():
            with tr.span("transfer", trace="sim") as sp:
                yield sim.timeout(7.0)
            return sp.duration_s

        assert sim.run_process(proc()) == pytest.approx(7.0)


class TestRetention:
    def test_traces_bounded_oldest_dropped(self):
        tr = Tracer(max_traces=3)
        for i in range(10):
            with tr.span("root", trace=f"t{i}"):
                pass
        assert len(tr.trace_ids()) == 3
        assert tr.trace_ids() == ["t7", "t8", "t9"]
        assert tr.traces_dropped == 7

    def test_clear_drops_retained_traces(self):
        tr = Tracer()
        with tr.span("root", trace="t"):
            pass
        tr.clear()
        assert tr.trace_ids() == []


class TestExport:
    def _sample(self):
        ticks = iter([0.0, 1.0, 3.0, 4.0, 9.0, 10.0, 10.0, 12.0, 14.0, 14.0])
        tr = Tracer(clock=lambda: next(ticks))
        with tr.span("session", trace="s1"):       # 0 .. 10
            with tr.span("negotiate"):             # 1 .. 3
                pass
            with tr.span("retrieve"):              # 4 .. 9
                pass
        with tr.span("session", trace="s2"):       # 10 .. 14
            with tr.span("negotiate"):             # 12 .. 14
                pass
        return tr

    def test_export_json_round_trip(self):
        tr = self._sample()
        data = json.loads(tr.to_json())
        assert set(data["traces"]) == {"s1", "s2"}
        (root,) = data["traces"]["s1"]
        assert root["name"] == "session"
        assert [c["name"] for c in root["children"]] == ["negotiate", "retrieve"]
        assert root["duration_s"] == pytest.approx(10.0)

    def test_stage_rows_aggregate_across_traces(self):
        tr = self._sample()
        rows = {r["stage"]: r for r in stage_rows(json.loads(tr.to_json()))}
        assert rows["session"]["count"] == 2
        assert rows["session"]["total_s"] == pytest.approx(14.0)
        assert rows["negotiate"]["count"] == 2
        assert rows["negotiate"]["mean_s"] == pytest.approx(2.0)
        # Shares are relative to total root-span time.
        assert rows["session"]["share"] == pytest.approx(1.0)
        assert rows["negotiate"]["share"] == pytest.approx(4.0 / 14.0)

    def test_stage_rows_sorted_by_total_desc(self):
        tr = self._sample()
        rows = stage_rows(tr.export())
        totals = [r["total_s"] for r in rows]
        assert totals == sorted(totals, reverse=True)

    def test_empty_tracer_exports_cleanly(self):
        tr = Tracer()
        assert stage_rows(tr.export()) == []
