"""Metrics registry tests: counters, gauges, histogram edges, timers."""

import json
import math

import pytest

from repro.simnet.kernel import Simulator
from repro.telemetry import (
    MetricsRegistry,
    SimClock,
    Telemetry,
    TelemetryError,
)


class TestCounterGauge:
    def test_counter_increments(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(4)
        assert reg.counter("a").value == 5

    def test_counter_rejects_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(TelemetryError, match="cannot decrease"):
            reg.counter("a").inc(-1)

    def test_gauge_up_down_set(self):
        reg = MetricsRegistry()
        g = reg.gauge("open")
        g.inc()
        g.inc()
        g.dec()
        assert g.value == 1
        g.set(42)
        assert g.value == 42

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TelemetryError, match="already registered"):
            reg.gauge("x")
        with pytest.raises(TelemetryError, match="already registered"):
            reg.histogram("x")

    def test_same_name_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("n") is reg.counter("n")


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0, 2.0, 4.0))
        h.observe(1.0)  # exactly on an edge -> that bucket, not the next
        h.observe(1.5)
        h.observe(2.0)
        h.observe(4.0001)  # above the last bound -> overflow bucket
        assert h.counts == [1, 2, 0, 1]

    def test_cumulative_rows_end_at_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0, 2.0))
        for x in (0.5, 1.5, 99.0):
            h.observe(x)
        rows = h.bucket_rows()
        assert rows == [(1.0, 1), (2.0, 2), (math.inf, 3)]

    def test_sum_count_min_max_mean(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(10.0,))
        for x in (1.0, 2.0, 3.0):
            h.observe(x)
        assert h.count == 3
        assert h.total == pytest.approx(6.0)
        assert h.mean == pytest.approx(2.0)
        assert h.minimum == 1.0 and h.maximum == 3.0

    def test_buckets_must_increase(self):
        reg = MetricsRegistry()
        with pytest.raises(TelemetryError, match="strictly increasing"):
            reg.histogram("bad", buckets=(2.0, 1.0))
        with pytest.raises(TelemetryError, match="at least one bucket"):
            reg.histogram("empty", buckets=())

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h", buckets=(1.0,)).observe(7.0)
        text = reg.to_json()
        snap = json.loads(text)
        assert snap["counters"]["c"] == 3
        assert snap["gauges"]["g"] == 1.5
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["histograms"]["h"]["buckets"][-1][0] == "inf"


class TestTimers:
    def test_timer_uses_registry_clock(self):
        ticks = iter([10.0, 13.5])
        reg = MetricsRegistry(clock=lambda: next(ticks))
        with reg.timer("op_seconds", buckets=(1.0, 5.0)) as t:
            pass
        assert t.elapsed_s == pytest.approx(3.5)
        h = reg.histogram("op_seconds", buckets=(1.0, 5.0))
        assert h.count == 1 and h.total == pytest.approx(3.5)

    def test_timed_decorator(self):
        ticks = iter([0.0, 2.0, 5.0, 6.0])
        reg = MetricsRegistry(clock=lambda: next(ticks))

        @reg.timed("fn_seconds", buckets=(1.0, 10.0))
        def fn(x):
            return x * 2

        assert fn(3) == 6
        assert fn(4) == 8
        h = reg.histogram("fn_seconds", buckets=(1.0, 10.0))
        assert h.count == 2 and h.total == pytest.approx(3.0)

    def test_timer_observes_even_on_exception(self):
        ticks = iter([1.0, 2.0])
        reg = MetricsRegistry(clock=lambda: next(ticks))
        with pytest.raises(RuntimeError):
            with reg.timer("fail_seconds", buckets=(10.0,)):
                raise RuntimeError("boom")
        assert reg.histogram("fail_seconds", buckets=(10.0,)).count == 1

    def test_simulated_clock_timer_measures_virtual_time(self):
        sim = Simulator()
        reg = MetricsRegistry(clock=SimClock(sim))

        def proc():
            with reg.timer("sim_op_seconds", buckets=(1.0, 10.0)) as t:
                yield sim.timeout(2.5)
            return t.elapsed_s

        elapsed = sim.run_process(proc())
        # Wall time was microseconds; the timer must report simulated time.
        assert elapsed == pytest.approx(2.5)
        h = reg.histogram("sim_op_seconds", buckets=(1.0, 10.0))
        assert h.total == pytest.approx(2.5)


class TestReset:
    def test_reset_zeroes_everything(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(9)
        reg.gauge("g").set(2.0)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        reg.reset()
        assert reg.counter("c").value == 0
        assert reg.gauge("g").value == 0.0
        h = reg.histogram("h", buckets=(1.0,))
        assert h.count == 0 and h.total == 0.0 and h.counts == [0, 0]

    def test_telemetry_bundle_shares_clock(self):
        sim = Simulator()
        tel = Telemetry.simulated(sim)
        assert tel.registry.clock is tel.clock
        assert tel.tracer.clock is tel.clock
        snap = tel.snapshot()
        assert set(snap) == {"metrics", "traces"}
