"""Mobile-code module packaging and signing tests."""

import pytest

from repro.mobilecode.module import MobileCodeError, MobileCodeModule
from repro.mobilecode.rsa import generate_keypair
from repro.mobilecode.signing import SignedModule, Signer, SigningError, TrustStore


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(768)


@pytest.fixture()
def module():
    return MobileCodeModule(
        name="demo",
        version="1.2",
        source="class Entry:\n    def run(self):\n        return 42\n",
        entry_point="Entry",
        capabilities=("math",),
        metadata={"note": "test"},
    )


class TestMobileCodeModule:
    def test_canonical_roundtrip(self, module):
        blob = module.canonical_bytes()
        restored = MobileCodeModule.from_canonical_bytes(blob)
        assert restored == module

    def test_canonical_is_deterministic(self, module):
        assert module.canonical_bytes() == module.canonical_bytes()

    def test_digest_is_sha1_hex(self, module):
        digest = module.digest()
        assert len(digest) == 40
        assert int(digest, 16) >= 0

    def test_digest_changes_with_source(self, module):
        other = MobileCodeModule(
            name=module.name, version=module.version,
            source=module.source + "# changed", entry_point=module.entry_point,
        )
        assert other.digest() != module.digest()

    def test_verify_digest_accepts_match(self, module):
        module.verify_digest(module.digest().upper())  # case-insensitive

    def test_verify_digest_rejects_mismatch(self, module):
        with pytest.raises(MobileCodeError, match="digest mismatch"):
            module.verify_digest("0" * 40)

    def test_size_matches_canonical(self, module):
        assert module.size == len(module.canonical_bytes())

    def test_invalid_name_rejected(self):
        with pytest.raises(MobileCodeError):
            MobileCodeModule(name="", version="1", source="", entry_point="E")
        with pytest.raises(MobileCodeError):
            MobileCodeModule(name="a/b", version="1", source="", entry_point="E")

    def test_invalid_entry_point_rejected(self):
        with pytest.raises(MobileCodeError):
            MobileCodeModule(name="m", version="1", source="", entry_point="not valid")

    def test_undecodable_blob_rejected(self):
        with pytest.raises(MobileCodeError):
            MobileCodeModule.from_canonical_bytes(b"\xff\xfe not json")

    def test_wrong_wire_version_rejected(self, module):
        import json

        payload = json.loads(module.canonical_bytes())
        payload["wire_version"] = 99
        with pytest.raises(MobileCodeError, match="wire version"):
            MobileCodeModule.from_canonical_bytes(json.dumps(payload).encode())


class TestSigning:
    def test_sign_verify_roundtrip(self, keypair, module):
        signer = Signer("origin", keypair)
        signed = signer.sign(module)
        store = TrustStore()
        store.trust("origin", keypair.public)
        assert store.verify(signed) == module

    def test_wire_roundtrip(self, keypair, module):
        signed = Signer("origin", keypair).sign(module)
        restored = SignedModule.from_wire(signed.to_wire())
        assert restored.module == module
        assert restored.signature == signed.signature

    def test_untrusted_signer_rejected(self, keypair, module):
        signed = Signer("stranger", keypair).sign(module)
        with pytest.raises(SigningError, match="not in the trust list"):
            TrustStore().verify(signed)

    def test_tampered_module_rejected(self, keypair, module):
        signed = Signer("origin", keypair).sign(module)
        tampered = SignedModule(
            module=MobileCodeModule(
                name=module.name, version=module.version,
                source=module.source + "#", entry_point=module.entry_point,
            ),
            signer=signed.signer,
            signature=signed.signature,
        )
        store = TrustStore()
        store.trust("origin", keypair.public)
        with pytest.raises(SigningError, match="invalid signature"):
            store.verify(tampered)

    def test_forged_signer_name_rejected(self, keypair, module):
        """Mallory signs with her key but claims to be 'origin'."""
        mallory = generate_keypair(768)
        forged = SignedModule(
            module=module,
            signer="origin",
            signature=Signer("x", mallory).sign(module).signature,
        )
        store = TrustStore()
        store.trust("origin", keypair.public)
        with pytest.raises(SigningError, match="invalid signature"):
            store.verify(forged)

    def test_malformed_wire_rejected(self):
        with pytest.raises(MobileCodeError):
            SignedModule.from_wire(b"garbage")

    def test_empty_signer_name_rejected(self, keypair):
        with pytest.raises(SigningError):
            Signer("", keypair)


class TestTrustStore:
    def test_trust_and_revoke(self, keypair):
        store = TrustStore()
        store.trust("a", keypair.public)
        assert store.is_trusted("a")
        store.revoke("a")
        assert not store.is_trusted("a")

    def test_silent_key_replacement_refused(self, keypair):
        store = TrustStore()
        store.trust("a", keypair.public)
        other = generate_keypair(768)
        with pytest.raises(SigningError, match="revoke first"):
            store.trust("a", other.public)

    def test_same_key_retrust_is_noop(self, keypair):
        store = TrustStore()
        store.trust("a", keypair.public)
        store.trust("a", keypair.public)  # no error
        assert store.trusted_names() == ["a"]
