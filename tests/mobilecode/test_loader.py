"""Module loader pipeline tests: verify -> sandbox -> instantiate."""

import pytest

from repro.mobilecode.loader import ModuleLoader
from repro.mobilecode.module import MobileCodeError, MobileCodeModule
from repro.mobilecode.rsa import generate_keypair
from repro.mobilecode.sandbox import SandboxViolation
from repro.mobilecode.signing import Signer, SigningError, TrustStore

SOURCE = """
class Adder:
    def __init__(self, base=0):
        self.base = base
    def add(self, x):
        return self.base + x
"""


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(768)


@pytest.fixture(scope="module")
def signer(keypair):
    return Signer("publisher", keypair)


@pytest.fixture()
def loader(keypair):
    store = TrustStore()
    store.trust("publisher", keypair.public)
    return ModuleLoader(store)


def make_signed(signer, source=SOURCE, entry="Adder", name="adder"):
    return signer.sign(
        MobileCodeModule(name=name, version="1", source=source, entry_point=entry)
    )


class TestLoader:
    def test_load_and_instantiate(self, loader, signer):
        loaded = loader.load(make_signed(signer), init_kwargs={"base": 10})
        assert loaded.instance.add(5) == 15

    def test_expected_digest_checked(self, loader, signer):
        signed = make_signed(signer)
        loader.load(signed, expected_digest=signed.module.digest())
        with pytest.raises(MobileCodeError, match="digest mismatch"):
            loader.load(signed, expected_digest="f" * 40)

    def test_missing_entry_point(self, loader, signer):
        signed = make_signed(signer, entry="Nonexistent")
        with pytest.raises(MobileCodeError, match="does not define"):
            loader.load(signed)

    def test_non_callable_entry_point(self, loader, signer):
        signed = make_signed(signer, source="Entry = 42\n", entry="Entry")
        with pytest.raises(MobileCodeError, match="not callable"):
            loader.load(signed)

    def test_untrusted_signer_blocked(self, loader):
        stranger = Signer("stranger", generate_keypair(768))
        with pytest.raises(SigningError):
            loader.load(make_signed(stranger))

    def test_signature_can_be_waived_explicitly(self, keypair):
        loader = ModuleLoader(TrustStore(), require_signature=False)
        stranger = Signer("stranger", generate_keypair(768))
        loaded = loader.load(make_signed(stranger))
        assert loaded.instance.add(1) == 1

    def test_sandbox_violation_stops_load(self, loader, signer):
        signed = make_signed(signer, source="import os\n", entry="str")
        with pytest.raises(SandboxViolation):
            loader.load(signed)

    def test_loaded_registry(self, loader, signer):
        loader.load(make_signed(signer))
        assert loader.get("adder") is not None
        loader.unload("adder")
        assert loader.get("adder") is None


class TestVerificationFailures:
    """Tampered PADs must raise typed errors and never deploy.

    This is the client half of the paper's §3.5 security argument: the
    digest from the negotiated PADMeta catches a CDN serving the wrong
    (or stale) object, and the trust-list signature check catches a
    modified one.  Either way no mobile code may execute.
    """

    def test_tampered_digest_rejected_and_not_deployed(self, loader, signer):
        signed = make_signed(signer)
        with pytest.raises(MobileCodeError, match="digest mismatch"):
            loader.load(signed, expected_digest="0" * 40)
        assert loader.loaded == {}

    def test_wrong_object_fails_digest_check(self, loader, signer):
        """A *different* validly-signed module: signature passes, digest
        must not — the wrong-object CDN failure mode."""
        wanted = make_signed(signer)
        served = make_signed(signer, source=SOURCE + "\n# v2", name="adder")
        with pytest.raises(MobileCodeError, match="digest mismatch"):
            loader.load(served, expected_digest=wanted.module.digest())
        assert loader.loaded == {}

    def test_flipped_signature_rejected_and_not_deployed(self, loader, signer):
        from dataclasses import replace

        signed = make_signed(signer)
        bad = replace(
            signed, signature=bytes([signed.signature[0] ^ 0xFF])
            + signed.signature[1:]
        )
        with pytest.raises(SigningError, match="invalid signature"):
            loader.load(bad)
        assert loader.loaded == {}

    def test_modified_source_fails_signature_before_digest(self, loader, signer):
        """Signature is checked first, so edited code dies as SigningError
        even when the caller forgot to pass an expected digest."""
        from dataclasses import replace

        signed = make_signed(signer)
        evil = replace(signed.module, source=SOURCE + "\nEVIL = True")
        with pytest.raises(SigningError):
            loader.load(replace(signed, module=evil))
        assert loader.loaded == {}

    def test_verify_alone_does_not_deploy(self, loader, signer):
        signed = make_signed(signer)
        module = loader.verify(signed, expected_digest=signed.module.digest())
        assert module is signed.module
        assert loader.loaded == {}
