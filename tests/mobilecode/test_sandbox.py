"""Sandbox confinement tests."""

import pytest

from repro.mobilecode.sandbox import DEFAULT_ALLOWED_IMPORTS, Sandbox, SandboxViolation


@pytest.fixture()
def sandbox():
    return Sandbox()


class TestExecution:
    def test_basic_class_definition(self, sandbox):
        ns = sandbox.execute("class Foo:\n    value = 7\n")
        assert ns["Foo"].value == 7

    def test_allowed_import_works(self, sandbox):
        ns = sandbox.execute("import math\nresult = math.sqrt(16)\n")
        assert ns["result"] == 4.0

    def test_dotted_plain_import_binds_top_package(self, sandbox):
        ns = sandbox.execute(
            "import repro.protocols.base\nproto = repro.protocols.base.CommProtocol\n"
        )
        from repro.protocols.base import CommProtocol

        assert ns["proto"] is CommProtocol

    def test_from_import_works(self, sandbox):
        ns = sandbox.execute("from hashlib import sha1\nd = sha1(b'x').hexdigest()\n")
        assert len(ns["d"]) == 40

    def test_safe_builtins_available(self, sandbox):
        ns = sandbox.execute("total = sum(range(10))\nkinds = sorted({1, 3, 2})\n")
        assert ns["total"] == 45
        assert ns["kinds"] == [1, 2, 3]

    def test_module_exceptions_propagate(self, sandbox):
        with pytest.raises(ZeroDivisionError):
            sandbox.execute("x = 1 / 0\n")

    def test_import_log_records(self, sandbox):
        sandbox.execute("import math\nimport struct\n")
        assert sandbox.import_log == ["math", "struct"]


class TestConfinement:
    @pytest.mark.parametrize("module", ["os", "sys", "subprocess", "socket",
                                        "shutil", "pathlib", "importlib"])
    def test_dangerous_imports_blocked(self, sandbox, module):
        with pytest.raises(SandboxViolation, match="not permitted"):
            sandbox.execute(f"import {module}\n")

    def test_relative_import_blocked(self, sandbox):
        code = compile("from . import x", "<t>", "exec")
        ns = {"__builtins__": sandbox._build_builtins(), "__package__": "repro"}
        with pytest.raises(SandboxViolation, match="relative"):
            exec(code, ns)

    @pytest.mark.parametrize("builtin", ["open", "eval", "exec", "compile",
                                          "input", "globals", "getattr",
                                          "setattr", "vars", "breakpoint"])
    def test_dangerous_builtins_stubbed(self, sandbox, builtin):
        with pytest.raises(SandboxViolation, match="not available"):
            sandbox.execute(f"{builtin}()")

    def test_open_unavailable_even_with_args(self, sandbox):
        with pytest.raises(SandboxViolation):
            sandbox.execute("open('/etc/passwd')\n")

    def test_custom_allowlist_restricts_further(self):
        strict = Sandbox(allowed_imports=frozenset({"math"}))
        strict.execute("import math\n")
        with pytest.raises(SandboxViolation):
            strict.execute("import hashlib\n")

    def test_extra_globals_injected(self):
        sb = Sandbox(extra_globals={"CONFIG": {"level": 3}})
        ns = sb.execute("value = CONFIG['level']\n")
        assert ns["value"] == 3

    def test_default_allowlist_is_frozen(self):
        assert isinstance(DEFAULT_ALLOWED_IMPORTS, frozenset)
        assert "os" not in DEFAULT_ALLOWED_IMPORTS

    def test_namespaces_are_isolated_between_executions(self, sandbox):
        sandbox.execute("leak = 'secret'\n")
        ns = sandbox.execute("found = 'leak' in dir()\n")
        assert ns["found"] is False
