"""From-scratch RSA tests."""

import pytest

from repro.mobilecode.rsa import (
    PrivateKey,
    PublicKey,
    RSAError,
    _is_probable_prime,
    generate_keypair,
    sign,
    verify,
)


@pytest.fixture(scope="module")
def key():
    return generate_keypair(768)


class TestPrimality:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 97, 101, 65537):
            assert _is_probable_prime(p)

    def test_small_composites(self):
        for n in (0, 1, 4, 9, 91, 561, 65535):
            assert not _is_probable_prime(n)

    def test_carmichael_numbers_rejected(self):
        # Fermat pseudoprimes that Miller-Rabin must catch.
        for n in (561, 1105, 1729, 2465, 6601):
            assert not _is_probable_prime(n)

    def test_large_known_prime(self):
        assert _is_probable_prime(2**127 - 1)  # Mersenne


class TestKeyGeneration:
    def test_modulus_size(self, key):
        assert 760 <= key.n.bit_length() <= 768

    def test_ed_inverse(self, key):
        # d*e == 1 mod phi implies m^(ed) == m mod n for random m.
        m = 0xDEADBEEF
        assert pow(pow(m, key.e, key.n), key.d, key.n) == m

    def test_too_small_rejected(self):
        with pytest.raises(RSAError):
            generate_keypair(128)

    def test_public_derivation(self, key):
        pub = key.public
        assert pub.n == key.n and pub.e == key.e


class TestSignVerify:
    def test_roundtrip(self, key):
        sig = sign(key, b"mobile code module")
        assert verify(key.public, b"mobile code module", sig)

    def test_signature_length(self, key):
        assert len(sign(key, b"x")) == key.byte_size

    def test_wrong_message_fails(self, key):
        sig = sign(key, b"original")
        assert not verify(key.public, b"tampered", sig)

    def test_bitflipped_signature_fails(self, key):
        sig = bytearray(sign(key, b"msg"))
        sig[5] ^= 0x01
        assert not verify(key.public, b"msg", bytes(sig))

    def test_wrong_key_fails(self, key):
        other = generate_keypair(768)
        sig = sign(key, b"msg")
        assert not verify(other.public, b"msg", sig)

    def test_wrong_length_signature_rejected(self, key):
        assert not verify(key.public, b"msg", b"\x00" * 10)

    def test_oversized_signature_value_rejected(self, key):
        sig = (key.n + 1).to_bytes(key.byte_size, "big")
        assert not verify(key.public, b"msg", sig)

    def test_empty_message_signable(self, key):
        sig = sign(key, b"")
        assert verify(key.public, b"", sig)


class TestWireFormat:
    def test_public_key_roundtrip(self, key):
        wire = key.public.to_wire()
        assert PublicKey.from_wire(wire) == key.public

    def test_malformed_wire_rejected(self):
        with pytest.raises(RSAError):
            PublicKey.from_wire({"n": "zz", "e": 3})
        with pytest.raises(RSAError):
            PublicKey.from_wire({})

    def test_fingerprint_stable_and_short(self, key):
        fp1 = key.public.fingerprint()
        fp2 = key.public.fingerprint()
        assert fp1 == fp2 and len(fp1) == 16
