"""From-scratch SHA-1 must match hashlib bit-for-bit."""

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.mobilecode.sha1 import Sha1, sha1_hexdigest


class TestSha1:
    def test_empty(self):
        assert sha1_hexdigest(b"") == "da39a3ee5e6b4b0d3255bfef95601890afd80709"

    def test_fips_vector_abc(self):
        assert sha1_hexdigest(b"abc") == "a9993e364706816aba3e25717850c26c9cd0d89d"

    def test_fips_vector_long(self):
        msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
        assert sha1_hexdigest(msg) == "84983e441c3bd26ebaae4aa1f95129e5e54670f1"

    def test_million_a(self):
        h = Sha1()
        for _ in range(1000):
            h.update(b"a" * 1000)
        assert h.hexdigest() == "34aa973cd4c4daa4f61eeb2bdbad27316534016f"

    def test_matches_hashlib_on_block_boundaries(self):
        for n in (0, 1, 55, 56, 63, 64, 65, 119, 120, 128, 1000):
            data = bytes(i % 251 for i in range(n))
            assert sha1_hexdigest(data) == hashlib.sha1(data).hexdigest(), n

    def test_streaming_matches_one_shot(self):
        data = bytes(range(256)) * 7
        h = Sha1()
        for i in range(0, len(data), 37):
            h.update(data[i : i + 37])
        assert h.hexdigest() == sha1_hexdigest(data)

    def test_digest_is_reentrant(self):
        h = Sha1(b"part one ")
        first = h.hexdigest()
        assert h.hexdigest() == first  # no state consumed
        h.update(b"part two")
        assert h.hexdigest() == sha1_hexdigest(b"part one part two")

    def test_api_shape(self):
        h = Sha1()
        assert h.digest_size == 20
        assert h.block_size == 64
        assert len(h.digest()) == 20

    @given(st.binary(max_size=2048))
    @settings(max_examples=50, deadline=None)
    def test_matches_hashlib_property(self, data):
        assert sha1_hexdigest(data) == hashlib.sha1(data).hexdigest()

    @given(st.lists(st.binary(max_size=200), max_size=12))
    @settings(max_examples=30, deadline=None)
    def test_streaming_property(self, pieces):
        h = Sha1()
        ref = hashlib.sha1()
        for piece in pieces:
            h.update(piece)
            ref.update(piece)
        assert h.hexdigest() == ref.hexdigest()
