"""Shared fixtures.

Session-scoped heavyweights (corpus, assembled systems) are built once;
tests that mutate state build their own throwaway instances instead.
"""

from __future__ import annotations

import pytest

from repro.core.system import build_case_study
from repro.workload.pages import Corpus


@pytest.fixture(scope="session")
def small_corpus() -> Corpus:
    """Three pages, full paper dimensions, deterministic."""
    return Corpus(n_pages=3)


@pytest.fixture(scope="session")
def tiny_corpus() -> Corpus:
    """Two small pages for tests that only need structure, not scale."""
    return Corpus(n_pages=2, text_bytes=800, image_bytes=4000, images_per_page=2)


@pytest.fixture(scope="session")
def session_system(small_corpus):
    """A read-mostly case-study system with default overheads."""
    return build_case_study(corpus=small_corpus, calibrate=False)


@pytest.fixture(scope="session")
def era_system(small_corpus):
    """Calibrated + era-scaled system: what the figure benches use."""
    return build_case_study(
        corpus=small_corpus, calibrate=True, calibration_pages=1, era=True
    )
