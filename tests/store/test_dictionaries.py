"""Shared pre-trained Huffman dictionaries and their wire format."""

import pytest

from repro.compression import (
    CONTENT_CLASSES,
    CompressionError,
    DictionaryError,
    builtin_dictionary,
    dictionary_by_id,
    gziplike,
    train_dictionary,
)
from repro.compression.gziplike import _FLAG_DICT, _FLAG_ZLIB, MAGIC


class TestTraining:
    def test_builtin_classes(self):
        assert CONTENT_CLASSES == ("text", "image", "delta")
        seen_ids = set()
        for cls in CONTENT_CLASSES:
            d = builtin_dictionary(cls)
            assert d.content_class == cls
            assert len(d.lit_lengths) == 286
            assert len(d.dist_lengths) == 30
            # Smoothing guarantees every symbol is encodable.
            assert all(n > 0 for n in d.lit_lengths)
            assert all(n > 0 for n in d.dist_lengths)
            seen_ids.add(d.dict_id)
        assert len(seen_ids) == len(CONTENT_CLASSES)

    def test_training_is_deterministic(self):
        samples = [b"alpha beta gamma " * 50, b"delta epsilon " * 80]
        a = train_dictionary(samples, dict_id=9, content_class="text")
        b = train_dictionary(samples, dict_id=9, content_class="text")
        assert a.lit_lengths == b.lit_lengths
        assert a.dist_lengths == b.dist_lengths

    def test_builtin_lookup_by_id(self):
        for cls in CONTENT_CLASSES:
            d = builtin_dictionary(cls)
            assert dictionary_by_id(d.dict_id) is d

    def test_unknown_class_and_id_raise(self):
        with pytest.raises(DictionaryError):
            builtin_dictionary("video")
        with pytest.raises(DictionaryError):
            dictionary_by_id(200)

    def test_invalid_dictionary_rejected(self):
        from repro.compression.dictionaries import HuffmanDictionary

        with pytest.raises(DictionaryError):
            HuffmanDictionary(0, "text", (8,) * 286, (5,) * 30)
        with pytest.raises(DictionaryError):
            HuffmanDictionary(1, "text", (8,) * 285, (5,) * 30)
        with pytest.raises(DictionaryError):
            HuffmanDictionary(1, "text", (8,) * 285 + (0,), (5,) * 30)


class TestWireFormat:
    @pytest.mark.parametrize("cls", CONTENT_CLASSES)
    def test_roundtrip_with_in_band_id(self, cls):
        data = b"some page content, repeated a bit. " * 40
        blob = gziplike.compress(data, backend="pure",
                                 dictionary=builtin_dictionary(cls))
        # Decompressor resolves the dictionary from the id byte alone.
        assert gziplike.decompress(blob) == data
        assert blob[:4] == MAGIC
        assert blob[4] & _FLAG_DICT
        assert blob[5] == builtin_dictionary(cls).dict_id

    def test_small_message_skips_tree_header(self):
        """The 158-byte per-message code-length header disappears."""
        data = b"tiny"
        plain = gziplike.compress(data, backend="pure")
        dicted = gziplike.compress(data, backend="pure",
                                   dictionary=builtin_dictionary("text"))
        assert gziplike.decompress(dicted) == data
        assert len(dicted) < len(plain) - 100

    def test_default_path_has_no_dict_flag(self):
        blob = gziplike.compress(b"payload bytes", backend="pure")
        assert not blob[4] & _FLAG_DICT

    def test_dictionary_with_zlib_backend_rejected(self):
        with pytest.raises(ValueError, match="pure"):
            gziplike.compress(b"x", backend="zlib",
                              dictionary=builtin_dictionary("text"))

    def test_dict_flag_on_zlib_payload_rejected(self):
        blob = bytearray(
            gziplike.compress(b"x" * 100, backend="pure",
                              dictionary=builtin_dictionary("text"))
        )
        blob[4] |= _FLAG_ZLIB
        with pytest.raises(CompressionError):
            gziplike.decompress(bytes(blob))

    def test_unknown_wire_dict_id_rejected(self):
        blob = bytearray(
            gziplike.compress(b"x" * 100, backend="pure",
                              dictionary=builtin_dictionary("text"))
        )
        blob[5] = 250  # no such dictionary registered
        with pytest.raises(CompressionError):
            gziplike.decompress(bytes(blob))

    def test_truncated_dict_header_rejected(self):
        blob = gziplike.compress(b"x", backend="pure",
                                 dictionary=builtin_dictionary("text"))
        with pytest.raises(CompressionError):
            gziplike.decompress(blob[:5])


class TestGzipProtocolIntegration:
    def test_pad_with_dictionary_roundtrips(self):
        from repro.protocols.padlib import instantiate

        proto = instantiate("gzip", backend="pure", dictionary="text")
        new = b"page part content " * 30
        resp = proto.server_respond(proto.client_request(None), None, new)
        assert proto.client_reconstruct(None, resp) == new

    def test_pad_dictionary_needs_pure_backend(self):
        from repro.protocols.padlib import instantiate

        with pytest.raises(ValueError):
            instantiate("gzip", backend="zlib", dictionary="text")
