"""Seeded property tests for the ChunkStore under adversarial inputs.

The store's self-certifying namespace (``blob:<sha1>``) is the defense
the cache-poisoning attack class leans on; these tests pin its
properties directly, without the scenario runner in the way:

* a digest-mismatched submission is never cached and never served, for
  any fuzzed (key, payload) pair — ``put`` and lying single-flight
  leaders alike;
* LRU entry/byte bounds hold under floods of valid oversize and
  mixed-size adversarial records;
* an 8-thread herd on one cold key runs exactly one compute, and an
  8-thread herd behind a *lying* leader all see the poisoning refused.
"""

import hashlib
import random
import threading

import pytest

from repro.store.chunkstore import (
    ChunkStore,
    PoisonedRecordError,
    content_key,
)

SEED = 20260807


def sha1(data: bytes) -> str:
    return hashlib.sha1(data).hexdigest()


class TestPoisonedSubmissions:
    def test_fuzzed_mismatches_never_cached_or_served(self):
        rng = random.Random(SEED)
        store = ChunkStore(max_entries=256)
        for i in range(200):
            legit = rng.randbytes(rng.randrange(1, 512))
            poison = rng.randbytes(rng.randrange(1, 512))
            if sha1(poison) == sha1(legit):  # pragma: no cover
                continue
            key = content_key(legit)
            with pytest.raises(PoisonedRecordError):
                store.put(key, poison)
            assert key not in store
            assert store.get(key) is None
        stats = store.stats
        assert stats.rejected == 200
        assert stats.entries == 0
        assert stats.inserts == 0

    def test_lying_compute_leader_caches_nothing(self):
        rng = random.Random(SEED + 1)
        store = ChunkStore()
        for _ in range(50):
            legit = rng.randbytes(64)
            poison = legit + b"!"
            key = content_key(legit)
            with pytest.raises(PoisonedRecordError):
                store.get_or_compute(key, lambda p=poison: p)
            assert store.get(key) is None
            # The key is not wedged: an honest compute still lands.
            assert store.get_or_compute(key, lambda p=legit: p) == legit
            assert store.get(key) == legit
            store.clear()

    def test_malformed_blob_keys_refused(self):
        store = ChunkStore()
        payload = b"payload"
        for key in (
            "blob:",  # empty digest
            "blob:deadbeef",  # wrong length
            "blob:" + "g" * 40,  # non-hex
            "blob:" + sha1(payload)[:-1] + "x",  # hex-length but invalid
        ):
            with pytest.raises(PoisonedRecordError):
                store.put(key, payload)
            assert store.get(key) is None
        assert store.stats.rejected == 4

    def test_case_insensitive_digest_accepted(self):
        store = ChunkStore()
        payload = b"mixed case claim"
        key = "blob:" + sha1(payload).upper()
        store.put(key, payload)
        assert store.get(key) == payload

    def test_unverifiable_namespaces_bypass_the_check(self):
        # resp:/cdc: keys hash compute *inputs*, not outputs — they are
        # only produced by the serving path, never verified here.
        store = ChunkStore()
        store.put("resp:" + "0" * 40, b"whatever")
        assert store.get("resp:" + "0" * 40) == b"whatever"
        assert store.stats.rejected == 0


class TestBoundsUnderFlood:
    def test_oversize_flood_never_caches_or_evicts(self):
        rng = random.Random(SEED + 2)
        store = ChunkStore(max_entries=8, max_bytes=1024)
        store.put(content_key(b"resident"), b"resident")
        for _ in range(50):
            huge = rng.randbytes(2048)  # valid digest, over the byte budget
            store.put(content_key(huge), huge)
        stats = store.stats
        assert stats.oversize == 50
        assert stats.entries == 1  # the resident survived every flood wave
        assert store.get(content_key(b"resident")) == b"resident"
        assert store.used_bytes <= 1024

    def test_mixed_size_flood_respects_both_bounds(self):
        rng = random.Random(SEED + 3)
        store = ChunkStore(max_entries=16, max_bytes=4096)
        for _ in range(300):
            blob = rng.randbytes(rng.randrange(1, 1024))
            store.put(content_key(blob), blob)
            assert len(store) <= 16
            assert store.used_bytes <= 4096
        assert store.stats.evictions > 0

    def test_poison_flood_does_not_perturb_lru_state(self):
        rng = random.Random(SEED + 4)
        store = ChunkStore(max_entries=4)
        residents = [f"resident-{i}".encode() for i in range(4)]
        for blob in residents:
            store.put(content_key(blob), blob)
        for _ in range(100):
            poison = rng.randbytes(32)
            with pytest.raises(PoisonedRecordError):
                store.put(content_key(rng.randbytes(32)), poison)
        # Rejected submissions consumed no capacity: all residents warm.
        for blob in residents:
            assert store.get(content_key(blob)) == blob
        assert store.stats.evictions == 0


@pytest.mark.stress
class TestHerds:
    N_THREADS = 8

    def _herd(self, fn):
        barrier = threading.Barrier(self.N_THREADS)
        results: list = [None] * self.N_THREADS
        def worker(slot):
            barrier.wait()
            try:
                results[slot] = ("ok", fn())
            except BaseException as exc:  # noqa: BLE001 - recorded for asserts
                results[slot] = ("err", exc)
        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return results

    def test_eight_thread_herd_computes_once(self):
        store = ChunkStore()
        payload = b"computed exactly once"
        key = content_key(payload)
        computes = []
        def compute():
            computes.append(1)
            return payload
        results = self._herd(lambda: store.get_or_compute(key, compute))
        assert all(tag == "ok" and value == payload for tag, value in results)
        assert len(computes) == 1
        stats = store.stats
        assert stats.computes == 1
        assert stats.lookups == stats.hits + stats.misses + stats.coalesced

    def test_eight_thread_herd_behind_a_lying_leader_all_refused(self):
        store = ChunkStore()
        legit = b"the bytes this key names"
        key = content_key(legit)
        results = self._herd(
            lambda: store.get_or_compute(key, lambda: b"poisoned bytes")
        )
        # Whoever led, the poisoning was refused — and every coalesced
        # waiter saw the refusal rather than poisoned bytes.
        assert all(tag == "err" for tag, _ in results)
        assert all(
            isinstance(exc, PoisonedRecordError) for _, exc in results
        )
        assert store.get(key) is None
        assert len(store) == 0
