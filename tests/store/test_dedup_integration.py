"""Fleet-dedup end to end: second client is free, and the bench proves it."""

import json

import pytest

from repro.core.system import APP_ID, build_case_study
from repro.workload.profiles import DESKTOP_LAN, PAPER_ENVIRONMENTS


def _session(system, client, page_id=0):
    old = system.corpus.evolved(page_id, 0)
    return client.request_page(
        APP_ID, page_id,
        old_parts=[old.text, *old.images], old_version=0, new_version=1,
    )


class TestDedupEndToEnd:
    def test_second_client_is_served_without_computes(self, small_corpus):
        system = build_case_study(corpus=small_corpus, calibrate=False, dedup=True)
        registry = system.telemetry.registry

        first = _session(system, system.make_client(DESKTOP_LAN, name="c1"))
        computes_cold = registry.counter("store.fleet.computes").value
        assert computes_cold > 0

        second = _session(system, system.make_client(DESKTOP_LAN, name="c2"))
        assert registry.counter("store.fleet.computes").value == computes_cold, (
            "second client for the same page version must be a pure store hit"
        )
        assert second.parts == first.parts
        assert second.app_response_bytes == first.app_response_bytes

    def test_wire_bytes_identical_with_and_without_store(self, small_corpus):
        plain = build_case_study(corpus=small_corpus, calibrate=False)
        dedup = build_case_study(corpus=small_corpus, calibrate=False, dedup=True)
        for env in PAPER_ENVIRONMENTS:
            rp = _session(plain, plain.make_client(env))
            rd = _session(dedup, dedup.make_client(env))
            assert rd.parts == rp.parts
            assert rd.app_response_bytes == rp.app_response_bytes, env.label
            assert rd.pad_ids == rp.pad_ids

    def test_store_ledger_reconciles_exactly(self, small_corpus):
        system = build_case_study(corpus=small_corpus, calibrate=False, dedup=True)
        for i in range(3):
            _session(system, system.make_client(DESKTOP_LAN, name=f"c{i}"))
        s = system.chunk_store.stats
        assert s.lookups == s.hits + s.misses + s.coalesced
        assert s.computes == s.misses
        registry = system.telemetry.registry
        assert registry.counter("store.fleet.lookups").value == s.lookups
        assert (
            registry.counter("appserver.store_requests").value
            == registry.counter("store.fleet.responses").value
        )

    def test_async_serving_uses_the_same_store(self, small_corpus):
        import asyncio

        from repro.core.asyncclient import AsyncFractalClient
        from repro.core.system import bind_async_endpoints
        from repro.simnet.asyncnet import AsyncTcpTransport

        async def main():
            system = build_case_study(
                corpus=small_corpus, calibrate=False, dedup=True
            )
            registry = system.telemetry.registry
            async with AsyncTcpTransport() as t:
                await bind_async_endpoints(system, t)
                old = system.corpus.evolved(0, 0)

                async def go(name):
                    cli = system.make_client(
                        DESKTOP_LAN, name=name, transport=t,
                        client_cls=AsyncFractalClient,
                    )
                    return await cli.request_page(
                        APP_ID, 0,
                        old_parts=[old.text, *old.images],
                        old_version=0, new_version=1,
                    )

                r1 = await go("a1")
                computes = registry.counter("store.fleet.computes").value
                r2 = await go("a2")
                assert registry.counter("store.fleet.computes").value == computes
                assert r1.parts == r2.parts
            return system

        system = asyncio.run(main())
        s = system.chunk_store.stats
        assert s.lookups == s.hits + s.misses + s.coalesced


class TestDedupSweep:
    @pytest.mark.stress
    def test_dedup_sweep_reconciles_and_warm_is_free(self):
        from repro.bench.load import run_dedup_sweep

        off, cold, warm = run_dedup_sweep(workers=2, duration_s=0.4)
        assert (off.dedup, cold.dedup, warm.dedup) == ("off", "cold", "warm")
        for point in (off, cold, warm):
            assert point.errors == 0
            assert point.reconciled, point.ledger
        assert off.store is None
        assert cold.store["computes"] > 0
        assert warm.store["computes"] == 0
        assert warm.store["misses"] == 0
        assert warm.store["bytes_saved"] > 0
        assert "warm store computes vs zero" in warm.ledger


class TestCliJson:
    @pytest.mark.stress
    def test_load_dedup_json_and_history_roll(self, tmp_path):
        from repro.bench.runner import main

        out = tmp_path / "BENCH_load.json"
        argv = ["load", "--dedup", "--workers", "2", "--duration", "0.3",
                "--json", str(out)]
        assert main(argv) == 0
        payload = json.loads(out.read_text())
        assert payload["load"]["mode"] == "dedup"
        labels = [p["dedup"] for p in payload["load"]["points"]]
        assert labels == ["off", "cold", "warm"]
        warm = payload["load"]["points"][-1]
        assert warm["reconciled"] and warm["store"]["computes"] == 0
        assert "history" not in payload

        # Second run folds the previous load section into history.
        assert main(argv) == 0
        payload2 = json.loads(out.read_text())
        assert len(payload2["history"]) == 1
        assert payload2["history"][0]["mode"] == "dedup"
        assert [p["dedup"] for p in payload2["history"][0]["points"]] == labels

    @pytest.mark.chaos
    def test_chaos_json(self, tmp_path):
        from repro.bench.runner import main

        out = tmp_path / "BENCH_chaos.json"
        assert main(["chaos", "--json", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert set(payload) == {"chaos"}
        assert payload["chaos"]["summaries"], "chaos payload must carry summaries"
        for row in payload["chaos"]["summaries"]:
            assert 0.0 <= row["success_rate"] <= 1.0
        assert payload["chaos"]["env_rows"]

    def test_chaos_payload_shape(self):
        from repro.bench.chaos import (
            ChaosEnvRow,
            ChaosRateSummary,
            ChaosResult,
            result_to_payload,
        )

        result = ChaosResult(
            env_rows=[ChaosEnvRow(0.1, "Desktop/LAN", sessions=4, completed=3)],
            summaries=[
                ChaosRateSummary(
                    fault_rate=0.1, sessions=4, completed=3, faults_injected=2,
                    faults_by_kind={"frame_loss": 2}, retries=1, failovers=0,
                    degradations=1, proxy_restarts=0, unhandled_errors=0,
                )
            ],
        )
        payload = result_to_payload(result)
        assert payload["env_rows"][0]["success_rate"] == 0.75
        assert payload["summaries"][0]["faults_by_kind"] == {"frame_loss": 2}
        json.dumps(payload)  # must be JSON-serializable as-is
