"""Store-backed response assembly: byte identity cold vs warm, golden vectors.

The warm path must be invisible on the wire: a response assembled from
cached chunk records (or replayed verbatim from a response record) has to
match what the PAD stack itself would emit, byte for byte.  The frozen
SHA-1 vectors from the data-plane kernel rewrite
(``tests/protocols/test_golden_wire.py``) pin both paths to the exact
deployed wire format.
"""

import hashlib

import pytest

from repro.core.kernelpool import KernelPool, stack_spec
from repro.protocols.padlib import instantiate
from repro.store import ChunkStore, StoreBackedResponder
from repro.telemetry import MetricsRegistry
from repro.workload.pages import Corpus

from ..protocols.test_golden_wire import PAD_GOLDEN


def _sha1(data: bytes) -> str:
    return hashlib.sha1(data).hexdigest()


@pytest.fixture(scope="module")
def pages():
    corpus = Corpus(text_bytes=2048, image_bytes=4096, images_per_page=2)
    return (
        corpus.evolved(0, 0).encode(),
        corpus.evolved(0, 1).encode(),
        corpus.evolved(1, 1).encode(),
    )


def _spec(pad_id: str):
    kwargs = {"backend": "pure"} if pad_id == "gzip" else {}
    return stack_spec([(pad_id, kwargs)]), kwargs


class TestGoldenVectorsThroughStore:
    @pytest.mark.parametrize("pad_id", sorted(PAD_GOLDEN))
    def test_cold_and_warm_match_golden(self, pad_id, pages):
        old, new, cold_new = pages
        spec, kwargs = _spec(pad_id)
        proto = instantiate(pad_id, **kwargs)
        store = ChunkStore(name="g")
        responder = StoreBackedResponder(store)

        req = proto.client_request(old)
        want_req, want_resp, want_cold = PAD_GOLDEN[pad_id]
        assert _sha1(req) == want_req

        cold = responder.respond(spec, req, old, new)
        assert _sha1(cold) == want_resp
        computes_after_cold = store.stats.computes
        warm = responder.respond(spec, req, old, new)
        assert warm == cold
        assert store.stats.computes == computes_after_cold, (
            "warm response recomputed instead of hitting the store"
        )

        # Cold-start transfer (no old version) through the store too.
        first_req = proto.client_request(None)
        first = responder.respond(spec, first_req, None, cold_new)
        assert _sha1(first) == want_cold

        # Everything reconstructs through the real protocol object.
        assert proto.client_reconstruct(old, warm) == new
        assert proto.client_reconstruct(None, first) == cold_new

    @pytest.mark.parametrize("pad_id", sorted(PAD_GOLDEN))
    def test_matches_direct_protocol_bytes(self, pad_id, pages):
        old, new, _ = pages
        spec, kwargs = _spec(pad_id)
        proto = instantiate(pad_id, **kwargs)
        req = proto.client_request(old)
        direct = proto.server_respond(req, old, new)
        responder = StoreBackedResponder(ChunkStore(name="d"))
        assert responder.respond(spec, req, old, new) == direct


class TestVaryAssemblyFromRecords:
    def test_chunk_records_shared_between_versions(self, pages):
        """Two (old, new) pairs over one version chunk it exactly once."""
        old, new, other = pages
        spec, _ = _spec("vary")
        store = ChunkStore(name="v")
        responder = StoreBackedResponder(store)
        proto = instantiate("vary")

        r1 = responder.respond(spec, proto.client_request(old), old, new)
        assert proto.client_reconstruct(old, r1) == new
        # `new` was already chunked for r1: a second delta *onto* new
        # reuses its record (only `other` is newly chunked).
        records_before = store.stats.computes
        r2 = responder.respond(spec, proto.client_request(new), new, other)
        assert proto.client_reconstruct(new, r2) == other
        # one new chunk record (other) + one new response record
        assert store.stats.computes == records_before + 2

    def test_vary_async_path_matches_sync(self, pages):
        import asyncio

        old, new, _ = pages
        spec, _ = _spec("vary")
        proto = instantiate("vary")
        req = proto.client_request(old)

        sync = StoreBackedResponder(ChunkStore(name="s")).respond(
            spec, req, old, new
        )
        async_responder = StoreBackedResponder(ChunkStore(name="a"))
        got = asyncio.run(async_responder.respond_async(spec, req, old, new))
        assert got == sync


class TestChunkRecordsBatch:
    """The batched cold path must keep the store ledger exact."""

    def test_batch_matches_per_blob_records(self, pages):
        responder = StoreBackedResponder(ChunkStore(name="b1"))
        single = StoreBackedResponder(ChunkStore(name="b2"))
        batch = responder.chunk_records_batch(list(pages))
        assert batch == [single.chunk_record(p) for p in pages]

    def test_cold_batch_ledger_is_exact(self, pages):
        store = ChunkStore(name="b3")
        responder = StoreBackedResponder(store)
        responder.chunk_records_batch(list(pages))
        s = store.stats
        assert s.misses == len(pages)
        assert s.computes == s.misses
        assert s.lookups == s.hits + s.misses + s.coalesced

    def test_warm_batch_computes_nothing(self, pages):
        store = ChunkStore(name="b4")
        responder = StoreBackedResponder(store)
        cold = responder.chunk_records_batch(list(pages))
        computes = store.stats.computes
        warm = responder.chunk_records_batch(list(pages))
        assert warm == cold
        assert store.stats.computes == computes
        s = store.stats
        assert s.lookups == s.hits + s.misses + s.coalesced

    def test_duplicate_blobs_compute_once(self, pages):
        store = ChunkStore(name="b5")
        responder = StoreBackedResponder(store)
        datas = [pages[0], pages[1], pages[0], pages[0]]
        records = responder.chunk_records_batch(datas)
        assert records[0] == records[2] == records[3]
        assert store.stats.computes == 2  # two distinct blobs

    def test_partially_warm_batch(self, pages):
        store = ChunkStore(name="b6")
        responder = StoreBackedResponder(store)
        responder.chunk_records_batch([pages[0]])
        computes = store.stats.computes
        responder.chunk_records_batch(list(pages))
        # Only the two absent blobs were computed.
        assert store.stats.computes == computes + 2
        s = store.stats
        assert s.computes == s.misses

    def test_batch_params_key_separately(self, pages):
        store = ChunkStore(name="b7")
        responder = StoreBackedResponder(store)
        a = responder.chunk_records_batch([pages[0]], mask_bits=10)
        b = responder.chunk_records_batch([pages[0]], mask_bits=8)
        assert a != b
        assert store.stats.computes == 2

    def test_async_batch_matches_sync(self, pages):
        import asyncio

        sync_store = ChunkStore(name="b8")
        want = StoreBackedResponder(sync_store).chunk_records_batch(
            list(pages)
        )
        store = ChunkStore(name="b9")
        responder = StoreBackedResponder(store)
        got = asyncio.run(responder.chunk_records_batch_async(list(pages)))
        assert got == want
        s = store.stats
        assert s.computes == s.misses == len(pages)
        assert s.lookups == s.hits + s.misses + s.coalesced

    @pytest.mark.stress
    def test_pooled_batch_matches_inline(self, pages):
        inline = StoreBackedResponder(ChunkStore(name="bi"))
        want = inline.chunk_records_batch(list(pages))
        pool = KernelPool(workers=2)
        try:
            store = ChunkStore(name="bp")
            responder = StoreBackedResponder(store, pool=pool)
            got = responder.chunk_records_batch(list(pages))
        finally:
            pool.close()
        assert got == want
        assert store.stats.computes == store.stats.misses


class TestPooledWorkers:
    @pytest.mark.stress
    def test_pooled_byte_identity_and_single_compute(self, pages):
        """A real worker process computes; bytes match inline exactly."""
        old, new, _ = pages
        registry = MetricsRegistry()
        pool = KernelPool(workers=1)
        try:
            for pad_id in ("vary", "gzip", "bitmap"):
                spec, kwargs = _spec(pad_id)
                proto = instantiate(pad_id, **kwargs)
                req = proto.client_request(old)
                inline = StoreBackedResponder(
                    ChunkStore(name=f"i-{pad_id}")
                ).respond(spec, req, old, new)

                store = ChunkStore(name=f"p-{pad_id}", registry=registry)
                responder = StoreBackedResponder(store, pool=pool)
                pooled = responder.respond(spec, req, old, new)
                assert pooled == inline
                again = responder.respond(spec, req, old, new)
                assert again == inline
                s = store.stats
                assert s.lookups == s.hits + s.misses + s.coalesced
                assert s.computes == s.misses
        finally:
            pool.close()

    @pytest.mark.stress
    def test_pooled_dictionary_compression_matches_inline(self, pages):
        """The dictionary resolves identically in the worker process."""
        _, new, _ = pages
        spec = stack_spec(
            [("gzip", {"backend": "pure", "dictionary": "text"})]
        )
        proto = instantiate("gzip", backend="pure", dictionary="text")
        req = proto.client_request(None)
        inline = StoreBackedResponder(ChunkStore(name="di")).respond(
            spec, req, None, new
        )
        assert proto.client_reconstruct(None, inline) == new
        pool = KernelPool(workers=1)
        try:
            pooled = StoreBackedResponder(
                ChunkStore(name="dp"), pool=pool
            ).respond(spec, req, None, new)
        finally:
            pool.close()
        assert pooled == inline


class TestResponderTelemetry:
    def test_responses_counter_and_timer(self, pages):
        old, new, _ = pages
        registry = MetricsRegistry()
        spec, _ = _spec("vary")
        proto = instantiate("vary")
        store = ChunkStore(name="t", registry=registry)
        responder = StoreBackedResponder(
            store, registry=registry, timer_name="t.encode_seconds"
        )
        req = proto.client_request(old)
        responder.respond(spec, req, old, new)
        responder.respond(spec, req, old, new)
        assert registry.counter("store.t.responses").value == 2
        # Only the cold pass spent encode time.
        hist = registry.histogram("t.encode_seconds")
        assert hist.snapshot()["count"] == 1
