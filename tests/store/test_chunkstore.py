"""ChunkStore bounds, single-flight, and ledger invariants."""

import asyncio
import threading

import pytest

from repro.store import ChunkStore
from repro.telemetry import MetricsRegistry


class TestBasics:
    def test_get_put_roundtrip(self):
        store = ChunkStore(name="t")
        assert store.get("k") is None
        store.put("k", b"value")
        assert store.get("k") == b"value"
        assert "k" in store
        assert len(store) == 1
        assert store.used_bytes == 5

    def test_get_or_compute_computes_once(self):
        store = ChunkStore(name="t")
        calls = []

        def compute():
            calls.append(1)
            return b"abc"

        assert store.get_or_compute("k", compute) == b"abc"
        assert store.get_or_compute("k", compute) == b"abc"
        assert len(calls) == 1
        s = store.stats
        assert (s.lookups, s.hits, s.misses, s.computes) == (2, 1, 1, 1)
        assert s.bytes_saved == 3

    def test_non_bytes_compute_result_rejected(self):
        store = ChunkStore(name="t")
        with pytest.raises(TypeError, match="expected bytes"):
            store.get_or_compute("k", lambda: "not-bytes")
        # Nothing cached; a later good compute succeeds.
        assert store.get_or_compute("k", lambda: b"ok") == b"ok"

    def test_compute_error_caches_nothing(self):
        store = ChunkStore(name="t")
        with pytest.raises(RuntimeError, match="boom"):
            store.get_or_compute("k", self._boom)
        assert "k" not in store
        assert store.get_or_compute("k", lambda: b"ok") == b"ok"

    @staticmethod
    def _boom() -> bytes:
        raise RuntimeError("boom")

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            ChunkStore(max_entries=0)
        with pytest.raises(ValueError):
            ChunkStore(max_bytes=0)


class TestBounds:
    def test_lru_entry_bound(self):
        store = ChunkStore(name="t", max_entries=3)
        for i in range(5):
            store.put(f"k{i}", b"x")
        assert len(store) == 3
        assert store.get("k0") is None and store.get("k1") is None
        assert store.get("k4") == b"x"
        assert store.stats.evictions == 2

    def test_lru_recency_refresh(self):
        store = ChunkStore(name="t", max_entries=2)
        store.put("a", b"1")
        store.put("b", b"2")
        assert store.get("a") == b"1"  # refresh: b becomes LRU
        store.put("c", b"3")
        assert store.get("b") is None
        assert store.get("a") == b"1"

    def test_byte_bound_evicts_lru(self):
        store = ChunkStore(name="t", max_bytes=10)
        store.put("a", b"x" * 4)
        store.put("b", b"y" * 4)
        store.put("c", b"z" * 4)  # 12 bytes > 10: "a" must go
        assert store.get("a") is None
        assert store.used_bytes == 8
        assert store.stats.evictions == 1

    def test_oversize_value_returned_not_cached(self):
        store = ChunkStore(name="t", max_bytes=4)
        store.put("small", b"ab")
        value = store.get_or_compute("big", lambda: b"x" * 100)
        assert value == b"x" * 100
        assert "big" not in store
        assert store.get("small") == b"ab"  # the store survived
        assert store.stats.oversize == 1

    def test_replace_updates_byte_accounting(self):
        store = ChunkStore(name="t", max_bytes=100)
        store.put("k", b"x" * 40)
        store.put("k", b"y" * 10)
        assert store.used_bytes == 10
        assert len(store) == 1

    def test_clear(self):
        store = ChunkStore(name="t")
        store.put("k", b"v")
        store.clear()
        assert len(store) == 0 and store.used_bytes == 0


class TestSingleFlight:
    def test_threaded_race_computes_once(self):
        """Seeded herd: N threads race one cold key; one compute, exact ledger."""
        store = ChunkStore(name="t", registry=MetricsRegistry())
        n = 8
        barrier = threading.Barrier(n)
        release = threading.Event()
        calls = []
        results = [None] * n
        errors = []

        def compute():
            calls.append(threading.get_ident())
            release.wait(timeout=5)
            return b"the-one-true-record"

        def worker(i):
            try:
                barrier.wait(timeout=5)
                results[i] = store.get_or_compute("hot", compute)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        # Let every non-leader reach the flight wait before the leader
        # finishes, so the coalescing path is actually exercised.
        while store.stats.lookups < n:
            pass
        release.set()
        for t in threads:
            t.join(timeout=10)
        assert not errors
        assert len(calls) == 1, "key was computed more than once under a race"
        assert all(r == b"the-one-true-record" for r in results)
        s = store.stats
        assert s.lookups == n
        assert s.misses == s.computes == 1
        assert s.hits + s.coalesced == n - 1
        assert s.lookups == s.hits + s.misses + s.coalesced

    def test_leader_error_propagates_to_waiters(self):
        store = ChunkStore(name="t")
        n = 4
        barrier = threading.Barrier(n)
        release = threading.Event()
        outcomes = []

        def compute():
            release.wait(timeout=5)
            raise RuntimeError("leader failed")

        def worker():
            barrier.wait(timeout=5)
            try:
                store.get_or_compute("hot", compute)
            except RuntimeError as exc:
                outcomes.append(str(exc))

        threads = [threading.Thread(target=worker) for _ in range(n)]
        for t in threads:
            t.start()
        while store.stats.lookups < n:
            pass
        release.set()
        for t in threads:
            t.join(timeout=10)
        assert outcomes == ["leader failed"] * n
        assert "hot" not in store

    def test_async_and_sync_callers_coalesce(self):
        """An event-loop task and a thread share one flight."""
        store = ChunkStore(name="t")
        started = threading.Event()
        release = threading.Event()
        calls = []

        def compute():
            calls.append(1)
            started.set()
            release.wait(timeout=5)
            return b"shared"

        thread_result = []
        leader = threading.Thread(
            target=lambda: thread_result.append(store.get_or_compute("k", compute))
        )
        leader.start()
        assert started.wait(timeout=5)

        async def follower():
            async def never_called():
                raise AssertionError("follower must coalesce, not compute")

            task = asyncio.ensure_future(store.get_or_compute_async("k", never_called))
            await asyncio.sleep(0.05)  # let the task reach the flight wait
            release.set()
            return await task

        value = asyncio.run(follower())
        leader.join(timeout=10)
        assert value == b"shared"
        assert thread_result == [b"shared"]
        assert len(calls) == 1
        s = store.stats
        assert s.coalesced >= 1

    def test_async_get_or_compute_basics(self):
        store = ChunkStore(name="t")

        async def main():
            async def compute():
                return b"async-bytes"

            first = await store.get_or_compute_async("k", compute)

            async def never():
                raise AssertionError("should be a hit")

            second = await store.get_or_compute_async("k", never)
            return first, second

        first, second = asyncio.run(main())
        assert first == second == b"async-bytes"
        s = store.stats
        assert (s.hits, s.misses, s.computes) == (1, 1, 1)


class TestRegistryMirror:
    def test_counters_and_gauges_mirrored(self):
        registry = MetricsRegistry()
        store = ChunkStore(name="m", registry=registry)
        store.put("k", b"1234")
        store.get("k")
        store.get("absent")
        assert registry.counter("store.m.lookups").value == 2
        assert registry.counter("store.m.hits").value == 1
        assert registry.counter("store.m.misses").value == 1
        assert registry.counter("store.m.bytes_saved").value == 4
        assert registry.gauge("store.m.entries").value == 1
        assert registry.gauge("store.m.bytes").value == 4
