"""Workload substrate tests: text, images, pages, profiles."""

import zlib

import pytest

from repro.workload.images import (
    HEADER_SIZE,
    SyntheticImage,
    decode_image,
    evolve_image,
    generate_image,
)
from repro.workload.pages import Corpus, WebPage
from repro.workload.profiles import (
    DESKTOP,
    LAPTOP,
    PAPER_ENVIRONMENTS,
    PDA,
    STD_CPU_MHZ,
    DeviceProfile,
)
from repro.workload.text import TextGenerator


class TestTextGenerator:
    def test_size_at_least_requested(self):
        gen = TextGenerator(seed=1)
        text = gen.generate(5000)
        assert len(text) >= 5000

    def test_deterministic(self):
        assert TextGenerator(1).generate(1000, seed=7) == TextGenerator(1).generate(
            1000, seed=7
        )

    def test_different_seeds_differ(self):
        gen = TextGenerator(1)
        assert gen.generate(1000, seed=1) != gen.generate(1000, seed=2)

    def test_ascii_prose(self):
        text = TextGenerator(1).generate(500)
        text.decode("ascii")  # must not raise
        assert b". " in text

    def test_compressibility_like_prose(self):
        text = TextGenerator(1).generate(20_000)
        ratio = len(zlib.compress(text)) / len(text)
        assert ratio < 0.45  # natural-language-ish redundancy

    def test_evolve_changes_bounded_fraction(self):
        gen = TextGenerator(1)
        text = gen.generate(10_000)
        evolved = gen.evolve(text, seed=3, churn=0.08)
        old_sentences = set(text.decode().split(". "))
        new_sentences = evolved.decode().split(". ")
        changed = sum(1 for s in new_sentences if s not in old_sentences)
        assert 0 < changed < len(new_sentences) * 0.3

    def test_evolve_zero_churn_is_identity(self):
        gen = TextGenerator(1)
        text = gen.generate(2000)
        assert gen.evolve(text, churn=0.0) == text

    def test_churn_validation(self):
        gen = TextGenerator(1)
        with pytest.raises(ValueError):
            gen.evolve(b"a. b", churn=1.5)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            TextGenerator(1).generate(0)


class TestImages:
    def test_roundtrip_encode_decode(self):
        blob = generate_image(10_000, seed=1)
        img = decode_image(blob)
        assert img.encode() == blob

    def test_size_near_requested(self):
        blob = generate_image(32_500, seed=1)
        assert abs(len(blob) - 32_500) < 1500

    def test_deterministic(self):
        assert generate_image(8000, seed=5) == generate_image(8000, seed=5)

    def test_compresses_partially(self):
        blob = generate_image(32_500, seed=1)
        ratio = len(zlib.compress(blob)) / len(blob)
        assert 0.3 < ratio < 0.9  # structured but not trivial

    def test_evolve_changes_contiguous_band(self):
        blob = generate_image(32_500, seed=1)
        evolved = evolve_image(blob, seed=2, region_frac=0.15)
        assert len(evolved) == len(blob)
        diff_positions = [i for i, (a, b) in enumerate(zip(blob, evolved)) if a != b]
        assert diff_positions, "evolution must change something"
        changed_frac = len(diff_positions) / len(blob)
        assert changed_frac < 0.25
        # Contiguity: the changed span is one band (plus header immunity).
        span = diff_positions[-1] - diff_positions[0] + 1
        assert len(diff_positions) > 0.5 * span

    def test_evolve_region_validation(self):
        blob = generate_image(8000, seed=1)
        with pytest.raises(ValueError):
            evolve_image(blob, region_frac=0.0)

    def test_decode_rejects_garbage(self):
        with pytest.raises(ValueError):
            decode_image(b"not an image")
        with pytest.raises(ValueError):
            decode_image(generate_image(8000, seed=1)[: HEADER_SIZE + 10])

    def test_pixels_validation(self):
        import numpy as np

        with pytest.raises(ValueError):
            SyntheticImage(np.zeros((4, 4), dtype=np.float64))


class TestCorpus:
    def test_paper_dimensions(self, small_corpus):
        page = small_corpus.page(0)
        assert len(page.images) == 4
        assert 4_500 <= len(page.text) <= 7_000
        assert 125_000 <= page.size <= 145_000  # ~135 KB

    def test_page_roundtrip(self, small_corpus):
        page = small_corpus.page(1)
        blob = page.encode()
        back = WebPage.decode(1, 0, blob)
        assert back.text == page.text and back.images == page.images

    def test_decode_rejects_corruption(self, small_corpus):
        blob = bytearray(small_corpus.page(0).encode())
        blob[0] ^= 0xFF
        with pytest.raises(ValueError):
            WebPage.decode(0, 0, bytes(blob))

    def test_decode_rejects_trailing_bytes(self, small_corpus):
        blob = small_corpus.page(0).encode() + b"extra"
        with pytest.raises(ValueError, match="trailing"):
            WebPage.decode(0, 0, blob)

    def test_versions_mostly_overlap(self, small_corpus):
        old, new = small_corpus.version_pair(0)
        # The images are largely untouched between versions.
        matches = sum(1 for a, b in zip(old[-50_000:], new[-50_000:]) if a == b)
        assert matches > 25_000

    def test_version_chain_cached_and_deterministic(self):
        c1 = Corpus(n_pages=1, text_bytes=500, image_bytes=3000)
        c2 = Corpus(n_pages=1, text_bytes=500, image_bytes=3000)
        assert c1.evolved(0, 3).encode() == c2.evolved(0, 3).encode()

    def test_page_id_bounds(self, small_corpus):
        with pytest.raises(IndexError):
            small_corpus.page(99)
        with pytest.raises(ValueError):
            small_corpus.evolved(0, -1)

    def test_version_pair_ordering(self, small_corpus):
        with pytest.raises(ValueError):
            small_corpus.version_pair(0, old=2, new=1)

    def test_average_page_size(self, small_corpus):
        assert 120_000 < small_corpus.average_page_size(2) < 150_000


class TestProfiles:
    def test_paper_devices(self):
        assert DESKTOP.cpu_mhz == 2000.0
        assert LAPTOP.cpu_mhz == 3060.0
        assert PDA.cpu_mhz == 400.0
        assert PDA.os_type == "WinCE4.2"

    def test_cpu_scale_linear_model(self):
        assert DESKTOP.cpu_scale == pytest.approx(STD_CPU_MHZ / 2000.0)
        assert PDA.cpu_scale > 1.0  # slower than the standard processor

    def test_three_paper_environments(self):
        labels = [e.label for e in PAPER_ENVIRONMENTS]
        assert labels == ["Desktop/LAN", "Laptop/WLAN", "PDA/Bluetooth"]

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceProfile("x", "os", "cpu", cpu_mhz=0, memory_mb=1)
        with pytest.raises(ValueError):
            DeviceProfile("x", "os", "cpu", cpu_mhz=1, memory_mb=0)
