"""Full-system integration tests over the in-process transport."""

import pytest

from repro.core.system import APP_ID, build_case_study
from repro.workload.profiles import PAPER_ENVIRONMENTS


@pytest.fixture(scope="module")
def system(small_corpus):
    return build_case_study(corpus=small_corpus, calibrate=False)


def parts_of(corpus, page_id, version):
    page = corpus.evolved(page_id, version)
    return [page.text, *page.images]


class TestEndToEnd:
    @pytest.mark.parametrize("env", PAPER_ENVIRONMENTS, ids=lambda e: e.label)
    def test_every_paper_environment_round_trips(self, system, env):
        client = system.make_client(env)
        old = parts_of(system.corpus, 0, 0)
        result = client.request_page(
            APP_ID, 0, old_parts=old, old_version=0, new_version=1
        )
        assert result.parts == parts_of(system.corpus, 0, 1)

    def test_negotiation_traverses_full_inp_sequence(self, system):
        client = system.make_client(PAPER_ENVIRONMENTS[0])
        outcome = client.negotiate(APP_ID, force=True)
        assert not outcome.from_cache
        assert outcome.negotiation_time_s > 0
        assert all(m.url and m.digest for m in outcome.pads)

    def test_pad_blobs_come_from_cdn_edges(self, system):
        served_before = sum(e.requests_served for e in system.deployment.edges)
        client = system.make_client(PAPER_ENVIRONMENTS[1])
        client.request_page(APP_ID, 0, new_version=0)
        served_after = sum(e.requests_served for e in system.deployment.edges)
        assert served_after > served_before

    def test_tampered_cdn_object_is_rejected(self, small_corpus):
        system = build_case_study(corpus=small_corpus, calibrate=False)
        # Corrupt the blob at the origin and purge edge caches so the
        # tampered copy is what clients receive.
        origin = system.deployment.origin
        key = next(k for k in origin.keys())
        original = origin.fetch(key)
        origin.publish(key, original[:-30] + b"x" * 30)
        for edge in system.deployment.edges:
            edge.invalidate(key)

        from repro.mobilecode import MobileCodeError, SigningError

        client = system.make_client(PAPER_ENVIRONMENTS[0])
        pad_id = key.split("/")[0]
        # Force the client to deploy exactly that PAD.
        outcome = client.negotiate(APP_ID)
        if pad_id not in {m.resolved_id for m in outcome.pads}:
            pytest.skip("negotiated path does not include the tampered PAD")
        with pytest.raises((MobileCodeError, SigningError, Exception)):
            client.request_page(APP_ID, 0, new_version=0)

    def test_many_clients_share_one_system(self, system):
        for env in PAPER_ENVIRONMENTS:
            for _ in range(3):
                client = system.make_client(env)
                result = client.request_page(APP_ID, 1, new_version=0)
                assert result.parts == parts_of(system.corpus, 1, 0)
        # Adaptation cache served the repeats.
        assert system.proxy.stats.cache_hits >= 6

    def test_version_chain_convergence(self, system):
        """Following v0->v1->v2 by delta equals downloading v2 directly."""
        client = system.make_client(PAPER_ENVIRONMENTS[2])
        parts = parts_of(system.corpus, 2, 0)
        for version in (1, 2):
            result = client.request_page(
                APP_ID, 2, old_parts=parts, old_version=version - 1,
                new_version=version,
            )
            parts = result.parts
        assert parts == parts_of(system.corpus, 2, 2)
