"""Reproducibility: two independently assembled systems agree on
everything the figures report."""

import pytest

from repro.bench.capacity import (
    negotiation_time_experiment,
    retrieval_time_experiment,
)
from repro.bench.experiments import measure_traffic, negotiated_winner
from repro.core.era import era_overheads
from repro.core.system import build_case_study
from repro.workload.pages import Corpus
from repro.workload.profiles import PAPER_ENVIRONMENTS


class TestDeterminism:
    def test_measured_traffic_identical_across_builds(self):
        a = measure_traffic(Corpus(n_pages=2), page_ids=(0,))
        b = measure_traffic(Corpus(n_pages=2), page_ids=(0,))
        for pad in a:
            assert a[pad]["traffic"] == b[pad]["traffic"]

    def test_era_winners_identical_across_builds(self):
        winners = []
        for _ in range(2):
            corpus = Corpus(n_pages=1)
            system = build_case_study(
                corpus=corpus, calibrate=True, calibration_pages=1, era=True
            )
            winners.append(
                tuple(negotiated_winner(system, env) for env in PAPER_ENVIRONMENTS)
            )
        assert winners[0] == winners[1] == ("direct", "gzip", "bitmap")

    def test_era_overheads_do_not_depend_on_wallclock(self):
        """Two calibration passes measure different wall times, but the
        era model must wash that out of the compute terms."""
        corpus = Corpus(n_pages=1)
        from repro.core.calibration import calibrate_overheads

        a = era_overheads(calibrate_overheads(corpus, n_pages=1))
        b = era_overheads(calibrate_overheads(corpus, n_pages=1))
        for pad in a:
            assert a[pad] == b[pad]

    def test_capacity_experiments_reproducible(self):
        s1 = negotiation_time_experiment(client_counts=(50, 200))
        s2 = negotiation_time_experiment(client_counts=(50, 200))
        assert s1.ys == s2.ys
        c1, d1 = retrieval_time_experiment(client_counts=(100,))
        c2, d2 = retrieval_time_experiment(client_counts=(100,))
        assert c1.ys == c2.ys and d1.ys == d2.ys

    def test_signed_module_digest_stable_across_processes(self):
        """The PAD digest in PADMeta must be a pure function of the
        source, or CDN-cached modules would spuriously fail verification."""
        from repro.protocols.padlib import build_pad_module

        assert build_pad_module("vary").digest() == build_pad_module("vary").digest()
