"""Failure injection: the system must fail loudly and recover cleanly."""

import pytest

from repro.core import inp
from repro.core.errors import ProtocolMismatchError
from repro.core.inp import INPMessage, MsgType
from repro.core.system import APP_ID, build_case_study
from repro.simnet.transport import TransportError
from repro.workload.profiles import DESKTOP_LAN, PDA_BLUETOOTH


@pytest.fixture()
def system(small_corpus):
    return build_case_study(corpus=small_corpus, calibrate=False)


class TestTransportFailures:
    def test_proxy_endpoint_down(self, system):
        client = system.make_client(DESKTOP_LAN)
        system.transport.unbind("proxy")
        with pytest.raises(TransportError):
            client.negotiate(APP_ID)

    def test_appserver_down_after_negotiation(self, system):
        client = system.make_client(DESKTOP_LAN)
        client.negotiate(APP_ID)
        system.transport.unbind("appserver")
        with pytest.raises(TransportError):
            client.request_page(APP_ID, 0, new_version=0)

    def test_garbage_from_proxy_detected(self, system):
        client = system.make_client(DESKTOP_LAN)
        system.transport.unbind("proxy")
        system.transport.bind("proxy", lambda p: b"\xff\xfegarbage")
        with pytest.raises(ProtocolMismatchError):
            client.negotiate(APP_ID)

    def test_wrong_message_type_from_proxy_detected(self, system):
        client = system.make_client(DESKTOP_LAN)

        def weird_proxy(payload: bytes) -> bytes:
            msg = inp.decode(payload)
            return inp.encode(msg.reply(MsgType.APP_REP, {}))

        system.transport.unbind("proxy")
        system.transport.bind("proxy", weird_proxy)
        with pytest.raises(ProtocolMismatchError, match="expected INIT_REP"):
            client.negotiate(APP_ID)


class TestCdnFailures:
    def test_all_edges_cold_and_origin_empty(self, system):
        """A CDN that lost every object: deploy fails after retry."""
        client = system.make_client(PDA_BLUETOOTH)
        for key in list(system.deployment.origin.keys()):
            system.deployment.origin.withdraw(key)
        for edge in system.deployment.edges:
            edge.cache.clear()
        from repro.mobilecode import MobileCodeError

        with pytest.raises(MobileCodeError, match="download"):
            client.request_page(APP_ID, 0, new_version=0)

    def test_edge_cache_repopulates_after_clear(self, system):
        client = system.make_client(DESKTOP_LAN)
        for edge in system.deployment.edges:
            edge.cache.clear()
        result = client.request_page(APP_ID, 0, new_version=0)
        page = system.corpus.evolved(0, 0)
        assert result.parts == [page.text, *page.images]
        # Pull-through repopulated at least one edge.
        assert any(e.origin_fetches > 0 for e in system.deployment.edges)


class TestTamperedPADs:
    def test_tampered_origin_blob_never_deploys(self, system):
        """Corrupt the signed PAD at the origin: the client must reject it
        with a typed error and keep its sandbox empty."""
        from repro.mobilecode import MobileCodeError, SigningError

        client = system.make_client(PDA_BLUETOOTH)
        origin = system.deployment.origin
        for key in list(origin.keys()):
            blob = bytearray(origin.fetch(key))
            blob[len(blob) // 2] ^= 0xFF
            origin.publish(key, bytes(blob))
        for edge in system.deployment.edges:
            edge.cache.clear()
        with pytest.raises((MobileCodeError, SigningError)):
            client.request_page(APP_ID, 0, new_version=0)
        assert client.loader.loaded == {}

    def test_wrong_object_served_fails_digest_not_signature(self, system):
        """Swap two validly-signed objects at the origin: signatures hold,
        the negotiated digest check must still refuse to deploy."""
        from repro.mobilecode import MobileCodeError, SigningError

        client = system.make_client(PDA_BLUETOOTH)
        origin = system.deployment.origin
        keys = origin.keys()
        assert len(keys) >= 2
        a, b = keys[0], keys[1]
        blob_a, blob_b = origin.fetch(a), origin.fetch(b)
        origin.publish(a, blob_b)
        origin.publish(b, blob_a)
        for edge in system.deployment.edges:
            edge.cache.clear()
        with pytest.raises(MobileCodeError) as err:
            client.request_page(APP_ID, 0, new_version=0)
        assert not isinstance(err.value, SigningError)
        assert client.loader.loaded == {}


class TestServerSideFailures:
    def test_bad_page_id_travels_back_as_inp_error(self, system):
        client = system.make_client(DESKTOP_LAN)
        with pytest.raises(ProtocolMismatchError):
            client.request_page(APP_ID, 999, new_version=0)

    def test_client_survives_error_and_retries_good_request(self, system):
        client = system.make_client(DESKTOP_LAN)
        with pytest.raises(ProtocolMismatchError):
            client.request_page(APP_ID, 999, new_version=0)
        result = client.request_page(APP_ID, 0, new_version=0)
        page = system.corpus.evolved(0, 0)
        assert result.parts == [page.text, *page.images]

    def test_negative_version_rejected_server_side(self, system):
        client = system.make_client(DESKTOP_LAN)
        with pytest.raises(ProtocolMismatchError):
            client.request_page(APP_ID, 0, new_version=-3)


class TestCorruptPayloads:
    def test_corrupted_app_response_detected_by_protocol(self, system):
        """Flip bytes in the APP_REP payloads: the negotiated protocol's
        own integrity checks (or reconstruction) must catch it."""
        client = system.make_client(PDA_BLUETOOTH)
        client.negotiate(APP_ID)
        original_handler = system.appserver.handle

        def corrupting(payload: bytes) -> bytes:
            response = original_handler(payload)
            msg = inp.decode(response)
            if msg.msg_type is MsgType.APP_REP:
                parts = msg.body["part_responses"]
                blob = bytearray(inp.b64d(parts[0]))
                if len(blob) > 10:
                    blob[5] ^= 0xFF
                    blob[-1] ^= 0xFF
                parts[0] = inp.b64e(bytes(blob))
            return inp.encode(msg)

        system.transport.unbind("appserver")
        system.transport.bind("appserver", corrupting)
        from repro.protocols import ProtocolError

        old = system.corpus.evolved(0, 0)
        with pytest.raises((ProtocolError, ProtocolMismatchError, AssertionError)):
            result = client.request_page(
                APP_ID, 0,
                old_parts=[old.text, *old.images], old_version=0, new_version=1,
            )
            new = system.corpus.evolved(0, 1)
            assert result.parts == [new.text, *new.images]
