"""Shape assertions for every table and figure in the paper's evaluation.

These are the reproduction's acceptance tests: who wins, what orderings
hold, and where the flips happen.  All values are deterministic (measured
traffic is byte-exact; compute comes from the era model).
"""

import pytest

from repro.bench.capacity import (
    negotiation_time_experiment,
    retrieval_time_experiment,
)
from repro.bench.experiments import (
    CASE_STUDY_PADS,
    Scenario,
    fig10_computing_overhead,
    fig11_bytes_transferred,
    fig11_total_time,
    headline_savings,
    measure_traffic,
    negotiated_winner,
)
from repro.bench.tables import table1_rows
from repro.workload.profiles import (
    DESKTOP_LAN,
    LAPTOP_WLAN,
    PAPER_ENVIRONMENTS,
    PDA_BLUETOOTH,
)


@pytest.fixture(scope="module")
def measured(era_system):
    return measure_traffic(era_system.corpus, page_ids=(0, 1))


class TestTable1:
    def test_four_pads_with_paper_columns(self):
        rows = table1_rows()
        names = [r[0] for r in rows]
        assert names == ["Direct", "Gzip", "Vary-sized blocking", "Bitmap"]
        direct = rows[0]
        assert direct[1] == "null" and direct[2] == "null"
        # Real mobile-code sizes for the non-null PADs.
        assert all(r[3] > 500 for r in rows[1:])


class TestFig9a:
    def test_negotiation_time_stays_flat(self):
        series = negotiation_time_experiment(client_counts=(1, 100, 300))
        ys = series.ys
        # "remains in a relatively stable range": no blow-up with load.
        assert max(ys) < 3 * min(ys)

    def test_cache_effect_visible(self):
        from repro.bench.capacity import ProxyServiceTimes

        slow_misses = ProxyServiceTimes(cache_miss_s=0.050, cache_hit_s=0.001)
        series = negotiation_time_experiment(
            client_counts=(1, 300), service=slow_misses
        )
        # With one client every negotiation is a miss; at 300 clients the
        # six environment kinds are cached and the mean falls.
        assert series.ys[1] < series.ys[0]


class TestFig9aRealProxy:
    def test_real_proxy_stays_flat(self, era_system):
        from repro.bench.capacity import negotiation_time_experiment_real

        series = negotiation_time_experiment_real(
            era_system, client_counts=(1, 100, 300)
        )
        assert max(series.ys) < 3 * min(series.ys)
        # The adaptation cache actually absorbed the repeats.
        assert era_system.proxy.stats.cache_hits > 300


class TestSessionTimeline:
    def test_phases_positive_and_ordered(self, era_system):
        from repro.bench.timeline import simulate_session_timeline

        lan = simulate_session_timeline(era_system, DESKTOP_LAN)
        bt = simulate_session_timeline(era_system, PDA_BLUETOOTH)
        for t in (lan, bt):
            assert t.negotiation_s > 0
            assert t.pad_retrieval_s > 0
            assert t.app_transfer_s > 0
            assert t.total_s == pytest.approx(
                t.negotiation_s + t.pad_retrieval_s + t.app_transfer_s
                + t.server_compute_s + t.client_compute_s
            )
        assert bt.total_s > lan.total_s
        assert bt.pad_ids == ("bitmap",)
        assert lan.pad_ids == ("direct",)


class TestFig9b:
    def test_centralized_grows_distributed_flat(self):
        central, dist = retrieval_time_experiment(client_counts=(25, 100, 300))
        # Centralized mean retrieval grows roughly linearly with burst size.
        assert central.ys[2] > 4 * min(central.ys)
        # Distributed stays within a small fluctuating band.
        assert max(dist.ys) < 3 * min(dist.ys)

    def test_distributed_beats_centralized_at_scale(self):
        central, dist = retrieval_time_experiment(client_counts=(300,))
        assert dist.ys[0] < central.ys[0] / 10


class TestFig10:
    def test_vary_server_compute_dominates(self, era_system, measured):
        panels = fig10_computing_overhead(era_system, measured=measured)
        static = panels["a"][Scenario.STATIC.value]
        assert static["pad"] == "vary"
        adaptive = panels["a"][Scenario.ADAPTIVE.value]
        # Vary's server compute dwarfs the adaptive choice's.
        assert static["server_comp_s"] > 10 * max(
            adaptive["server_comp_s"], 1e-9
        )

    def test_no_adaptation_has_zero_compute(self, era_system, measured):
        panels = fig10_computing_overhead(era_system, measured=measured)
        none = panels["b"][Scenario.NONE.value]
        assert none["pad"] == "direct"
        assert none["server_comp_s"] == 0.0
        assert none["client_comp_s"] == 0.0

    def test_panel_d_flips_pda_choice(self, era_system, measured):
        panels = fig10_computing_overhead(era_system, measured=measured)
        with_srv = panels["c"][Scenario.ADAPTIVE.value]["pad"]
        without_srv = panels["d"][Scenario.ADAPTIVE.value]["pad"]
        assert with_srv == "bitmap"
        assert without_srv == "vary"

    def test_measured_times_also_reported(self, era_system, measured):
        panels = fig10_computing_overhead(era_system, measured=measured)
        static = panels["a"][Scenario.STATIC.value]
        # Our real pure-Python CDC is genuinely the slowest server encoder.
        assert static["measured_server_s"] > 0.01


class TestFig11a:
    def test_traffic_ordering(self, measured):
        t = {pad: measured[pad]["traffic"] for pad in CASE_STUDY_PADS}
        assert t["direct"] > t["gzip"] > t["bitmap"] > t["vary"]

    def test_same_bytes_for_every_environment(self, era_system, measured):
        table = fig11_bytes_transferred(era_system, measured=measured)
        rows = list(table.values())
        assert all(row == rows[0] for row in rows[1:])

    def test_differencers_save_an_order_of_magnitude(self, measured):
        assert measured["vary"]["traffic"] < measured["direct"]["traffic"] / 8
        assert measured["bitmap"]["traffic"] < measured["direct"]["traffic"] / 8


class TestFig11bc:
    def test_paper_winners_with_server_compute(self, era_system, measured):
        totals = fig11_total_time(
            era_system, include_server_compute=True, measured=measured
        )
        assert totals["Desktop/LAN"]["winner"] == "direct"
        assert totals["Laptop/WLAN"]["winner"] == "gzip"
        assert totals["PDA/Bluetooth"]["winner"] == "bitmap"

    def test_paper_winners_without_server_compute(self, era_system, measured):
        totals = fig11_total_time(
            era_system, include_server_compute=False, measured=measured
        )
        assert totals["Desktop/LAN"]["winner"] == "direct"
        assert totals["Laptop/WLAN"]["winner"] == "gzip"
        assert totals["PDA/Bluetooth"]["winner"] == "vary"

    def test_winner_is_argmin_of_reported_totals(self, era_system, measured):
        for include in (True, False):
            totals = fig11_total_time(
                era_system, include_server_compute=include, measured=measured
            )
            for env, row in totals.items():
                winner = row["winner"]
                best = min(CASE_STUDY_PADS, key=lambda p: row[p])
                assert winner == best, (env, include)

    def test_adaptivity_matters(self, era_system, measured):
        """No single protocol wins everywhere (the paper's thesis)."""
        totals = fig11_total_time(
            era_system, include_server_compute=True, measured=measured
        )
        winners = {row["winner"] for row in totals.values()}
        assert len(winners) >= 3


class TestHeadline:
    def test_savings_in_paper_ballpark(self, era_system, measured):
        savings = headline_savings(era_system, measured=measured)
        pda = savings["PDA/Bluetooth"]
        # Paper: "total communication overhead reduces 41% compared with
        # no protocol adaptation ... 14% compared with the static
        # protocol adaptation" for some clients.
        assert 0.25 <= pda["vs_none"] <= 0.60
        assert pda["vs_static"] >= 0.10

    def test_adaptive_never_loses_to_baselines(self, era_system, measured):
        savings = headline_savings(era_system, measured=measured)
        for env, cell in savings.items():
            assert cell["vs_none"] >= -1e-9, env
            assert cell["vs_static"] >= -1e-9, env


class TestNegotiatedWinners:
    @pytest.mark.parametrize(
        "env,expected",
        [(DESKTOP_LAN, "direct"), (LAPTOP_WLAN, "gzip"), (PDA_BLUETOOTH, "bitmap")],
        ids=[e.label for e in PAPER_ENVIRONMENTS],
    )
    def test_paper_quote_winners(self, era_system, env, expected):
        """'Direct sending for desktop in LAN, Gzip for laptop in Wireless
        LAN, and Bitmap for PDA in Bluetooth.'"""
        assert negotiated_winner(era_system, env) == expected
