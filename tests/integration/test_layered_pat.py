"""Multi-level PAT end to end: negotiation over the Fig. 5 shape,
symbolic copies, and two-PAD stack deployment through mobile code."""

import pytest

from repro.core.layered import build_layered_case_study, measure_delta_traffic
from repro.core.system import APP_ID
from repro.workload.profiles import DESKTOP_LAN, PDA_BLUETOOTH


@pytest.fixture(scope="module")
def layered(small_corpus):
    return build_layered_case_study(corpus=small_corpus)


def parts_of(corpus, page_id, version):
    page = corpus.evolved(page_id, version)
    return [page.text, *page.images]


class TestLayeredTopology:
    def test_tree_shape(self, layered):
        pat = layered.proxy.negotiation.pat(APP_ID)
        assert pat.node("vary").children == ["plain-layer", "gzip-layer"]
        assert pat.node("bitmap").children == [
            "plain-layer@bitmap", "gzip-layer@bitmap",
        ]
        # Leaves: direct, gzip, and the four layer positions.
        assert pat.path_count() == 6

    def test_symbolic_copies_resolve(self, layered):
        pat = layered.proxy.negotiation.pat(APP_ID)
        assert pat.resolve("gzip-layer@bitmap").pad_id == "gzip-layer"
        assert pat.resolve("plain-layer@bitmap").pad_id == "plain-layer"

    def test_interior_nodes_carry_no_traffic(self, layered):
        pat = layered.proxy.negotiation.pat(APP_ID)
        assert pat.resolve("vary").overhead.traffic_std_bytes == 0.0
        assert pat.resolve("bitmap").overhead.traffic_std_bytes == 0.0

    def test_delta_compression_measurement(self, small_corpus):
        raw, compressed = measure_delta_traffic(small_corpus, "vary")
        assert 0 < compressed < raw


class TestLayeredNegotiation:
    def test_slow_network_negotiates_two_pad_path(self, layered):
        client = layered.make_client(PDA_BLUETOOTH)
        outcome = client.negotiate(APP_ID)
        resolved = [m.resolved_id for m in outcome.pads]
        # On Bluetooth the winning path is a differencing PAD plus a
        # payload layer (two nodes deep).
        assert len(resolved) == 2
        assert resolved[0] in ("vary", "bitmap")
        assert resolved[1] in ("plain-layer", "gzip-layer")

    def test_fast_network_stays_single_pad(self, layered):
        client = layered.make_client(DESKTOP_LAN)
        outcome = client.negotiate(APP_ID)
        assert [m.resolved_id for m in outcome.pads] == ["direct"]

    def test_two_pad_session_round_trips(self, layered):
        client = layered.make_client(PDA_BLUETOOTH)
        old = parts_of(layered.corpus, 0, 0)
        result = client.request_page(
            APP_ID, 0, old_parts=old, old_version=0, new_version=1
        )
        assert result.parts == parts_of(layered.corpus, 0, 1)
        assert len(result.pad_ids) == 2

    def test_two_modules_downloaded_and_loaded(self, layered):
        client = layered.make_client(PDA_BLUETOOTH)
        client.request_page(APP_ID, 1, new_version=0)
        loaded = set(client.loader.loaded)
        assert len(loaded) == 2
        assert loaded & {"vary", "bitmap"}
        assert loaded & {"plain-layer", "gzip-layer"}

    def test_stacked_traffic_not_worse_than_flat_differencer(
        self, layered, small_corpus
    ):
        client = layered.make_client(PDA_BLUETOOTH)
        old = parts_of(small_corpus, 0, 0)
        result = client.request_page(
            APP_ID, 0, old_parts=old, old_version=0, new_version=1
        )
        raw, _ = measure_delta_traffic(small_corpus, result.pad_ids[0])
        assert result.app_traffic_bytes <= raw * 1.02  # layer never hurts
