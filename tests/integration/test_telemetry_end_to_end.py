"""One negotiation+retrieval session must yield a full span tree and a
telemetry snapshot that bench/reporting can render without massaging."""

import json

import pytest

from repro.bench.reporting import render_metrics_counters, render_trace_stages
from repro.core.system import APP_ID, build_case_study
from repro.workload.profiles import PAPER_ENVIRONMENTS


@pytest.fixture(scope="module")
def system(small_corpus):
    sys = build_case_study(corpus=small_corpus, calibrate=False)
    client = sys.make_client(PAPER_ENVIRONMENTS[0])
    old = sys.corpus.evolved(0, 0)
    client.request_page(
        APP_ID, 0, old_parts=[old.text, *old.images], old_version=0, new_version=1
    )
    return sys


class TestSessionSpanTree:
    def test_session_produces_nested_span_tree(self, system):
        export = system.telemetry.tracer.export()
        assert len(export["traces"]) >= 1
        # The client's page request is the only root span; proxy and
        # server spans must have nested under it via the shared tracer.
        roots = [r for spans in export["traces"].values() for r in spans]
        sessions = [r for r in roots if r["name"] == "session"]
        assert len(sessions) == 1
        names = set()

        def collect(node):
            names.add(node["name"])
            for child in node["children"]:
                collect(child)

        collect(sessions[0])
        # Acceptance: >= 4 named stages in a single session's tree.
        assert {"session", "negotiate", "pad_retrieval", "app_exchange"} <= names
        assert "proxy.negotiate" in names  # proxy side joined the same tree

    def test_export_round_trips_through_json_into_report(self, system):
        export = json.loads(system.telemetry.tracer.to_json())
        table = render_trace_stages(export)
        assert "Per-stage time breakdown" in table
        assert "session" in table and "negotiate" in table
        assert "% of session" in table

    def test_metrics_snapshot_renders(self, system):
        snap = json.loads(system.telemetry.registry.to_json())
        table = render_metrics_counters(snap)
        assert "proxy.negotiations" in table
        assert "client.pad_download_bytes" in table

    def test_session_result_times_come_from_spans(self, system):
        export = system.telemetry.tracer.export()
        roots = [r for spans in export["traces"].values() for r in spans]
        (session,) = [r for r in roots if r["name"] == "session"]
        child_total = sum(c["duration_s"] for c in session["children"])
        assert 0.0 <= child_total <= session["duration_s"] + 1e-9
