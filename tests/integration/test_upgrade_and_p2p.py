"""PAD upgrade workflow and peer-to-peer model tests."""

import pytest

from repro.core.errors import NegotiationError
from repro.core.peer import FractalPeer
from repro.core.system import APP_ID, PROXY_ENDPOINT, build_case_study
from repro.workload.pages import Corpus
from repro.workload.profiles import DESKTOP_LAN, LAPTOP_WLAN, PDA_BLUETOOTH


@pytest.fixture()
def system(small_corpus):
    return build_case_study(corpus=small_corpus, calibrate=False)


class TestPadUpgrade:
    def _upgrade(self, system, pad_id="gzip", version="2.0"):
        return system.appserver.upgrade_pad(
            pad_id,
            system.proxy,
            system.deployment.origin,
            system.deployment.edges,
            version=version,
        )

    def test_new_version_published_old_withdrawn(self, system):
        self._upgrade(system)
        keys = system.deployment.origin.keys()
        assert "gzip/2.0" in keys
        assert "gzip/1.0" not in keys

    def test_edges_warmed_with_new_version(self, system):
        self._upgrade(system)
        assert all(
            e.has_cached("gzip/2.0") and not e.has_cached("gzip/1.0")
            for e in system.deployment.edges
        )

    def test_negotiation_hands_out_new_digest(self, system):
        client = system.make_client(LAPTOP_WLAN)
        before = {
            m.resolved_id: m.digest for m in client.negotiate(APP_ID).pads
        }
        new_digest = self._upgrade(system)
        client2 = system.make_client(LAPTOP_WLAN)
        after = {
            m.resolved_id: m.digest for m in client2.negotiate(APP_ID).pads
        }
        if "gzip" in after:
            assert after["gzip"] == new_digest
            assert after["gzip"] != before.get("gzip")

    def test_adaptation_cache_invalidated(self, system):
        client = system.make_client(LAPTOP_WLAN)
        client.negotiate(APP_ID)
        misses = system.proxy.stats.cache_misses
        self._upgrade(system)
        client2 = system.make_client(LAPTOP_WLAN)
        client2.negotiate(APP_ID)
        assert system.proxy.stats.cache_misses == misses + 1

    def test_stale_client_recovers_transparently(self, system):
        """A client that negotiated before the upgrade must still work:
        the digest check fails on the stale metadata and the client
        renegotiates once."""
        client = system.make_client(PDA_BLUETOOTH)
        outcome = client.negotiate(APP_ID)
        pad_id = outcome.pads[-1].resolved_id
        self._upgrade(system, pad_id=pad_id, version="3.1")
        result = client.request_page(APP_ID, 0, new_version=0)
        page = system.corpus.evolved(0, 0)
        assert result.parts == [page.text, *page.images]
        assert not result.negotiated_from_cache  # it had to renegotiate

    def test_unknown_pad_rejected(self, system):
        with pytest.raises(NegotiationError):
            self._upgrade(system, pad_id="quantum")


class TestPeerToPeer:
    @pytest.fixture()
    def peers(self, system):
        def make_peer(name, env, corpus):
            site = system.deployment.client_sites[0]
            redirector = system.deployment.redirector
            peer = FractalPeer(
                name,
                env,
                corpus,
                transport=system.transport,
                proxy_endpoint=PROXY_ENDPOINT,
                cdn_fetch=lambda key: redirector.fetch(site, key)[0],
                trust_store=system.trust_store,
                signer=system.appserver.signer,
                app_id=APP_ID,
            )
            peer.deploy_pads_like(system.appserver)
            return peer

        # Two peers with *distinct* corpora (different seeds).
        alice = make_peer("alice", DESKTOP_LAN, Corpus(n_pages=2, seed=11))
        bob = make_peer("bob", PDA_BLUETOOTH, Corpus(n_pages=2, seed=22))
        yield alice, bob
        alice.close()
        bob.close()

    def test_peer_fetches_from_peer(self, peers):
        alice, bob = peers
        result = alice.fetch_from(bob, 0, new_version=0)
        page = bob.corpus.evolved(0, 0)
        assert result.parts == [page.text, *page.images]

    def test_symmetric_exchange(self, peers):
        alice, bob = peers
        a_from_b = alice.fetch_from(bob, 1, new_version=0)
        b_from_a = bob.fetch_from(alice, 1, new_version=0)
        assert a_from_b.parts != b_from_a.parts  # distinct corpora
        assert b_from_a.parts == [
            alice.corpus.evolved(1, 0).text, *alice.corpus.evolved(1, 0).images
        ]

    def test_negotiation_keyed_by_requesting_peer(self, system, peers):
        """Each peer's negotiation is keyed by its *own* environment: the
        adaptation cache gains one distinct entry per requesting peer."""
        alice, bob = peers
        before = len(system.proxy.distribution)
        alice.fetch_from(bob, 0, new_version=0)
        bob.fetch_from(alice, 0, new_version=0)
        assert len(system.proxy.distribution) == before + 2

    def test_differential_sync_between_peers(self, peers):
        alice, bob = peers
        old = bob.corpus.evolved(0, 0)
        old_parts = [old.text, *old.images]
        result = alice.fetch_from(
            bob, 0, old_parts=old_parts, old_version=0, new_version=1
        )
        new = bob.corpus.evolved(0, 1)
        assert result.parts == [new.text, *new.images]

    def test_self_fetch_rejected(self, peers):
        alice, _ = peers
        with pytest.raises(ValueError):
            alice.fetch_from(alice, 0)
