"""Every example script must run to completion (they are living docs)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    p.name for p in (pathlib.Path(__file__).parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    path = pathlib.Path(__file__).parents[2] / "examples" / script
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n--- stdout ---\n{result.stdout}\n"
        f"--- stderr ---\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script} printed nothing"


def test_example_inventory():
    """The README promises at least these runnable examples."""
    assert {"quickstart.py", "medical_imaging.py", "mobile_handoff.py",
            "custom_pad.py", "content_adaptation.py"} <= set(EXAMPLES)
