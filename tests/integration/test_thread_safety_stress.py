"""Thread-safety stress tests for the serving path.

Marked ``stress``: CI runs them in their own job (py3.12 only) and the
default local run skips them via ``-m "not stress"`` only when asked —
they are fast enough (<~10 s total) to run by default too.

Every test hammers one shared structure from 8+ threads and then checks
the *ledger*: totals observed by the workers must reconcile exactly with
the structure's own counters.  Lost updates, dropped entries, or
exceptions under contention all fail the reconciliation.

The deterministic race regressions at the bottom pin down the specific
check-then-act bugs the stress tests originally exposed
(``DistributionManager.lookup``'s get→move_to_end pair,
``AdaptationProxy``'s get→del session claim, and ``LRUCache``'s
eviction counters) so they cannot quietly return.
"""

from __future__ import annotations

import threading

import pytest

from repro.cdn.cache import LRUCache
from repro.core.metadata import DevMeta, NtwkMeta
from repro.core.overhead import OverheadModel, paper_case_study_matrices
from repro.core.proxy import AdaptationProxy
from repro.core.system import build_case_study
from repro.core.inp import INPMessage, MsgType, decode, encode
from repro.telemetry.registry import MetricsRegistry
from repro.workload.pages import Corpus
from repro.workload.profiles import PAPER_ENVIRONMENTS

pytestmark = pytest.mark.stress

THREADS = 8
PER_THREAD = 400


def _run_threads(n, fn):
    """Start n threads running fn(i) after a common barrier; re-raise."""
    barrier = threading.Barrier(n)
    errors = []

    def runner(i):
        barrier.wait()
        try:
            fn(i)
        except BaseException as exc:  # noqa: BLE001 - surface in main thread
            errors.append(exc)

    threads = [threading.Thread(target=runner, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


def _dev(env) -> DevMeta:
    d = env.device
    return DevMeta(os_type=d.os_type, cpu_type=d.cpu_type,
                   cpu_mhz=d.cpu_mhz, memory_mb=d.memory_mb)


def _ntwk(env) -> NtwkMeta:
    return NtwkMeta(network_type=env.link.network_type.value,
                    bandwidth_kbps=env.link.bandwidth_bps / 1000.0)


class TestMetricsRegistryStress:
    def test_counter_increments_are_never_lost(self):
        registry = MetricsRegistry()

        def work(_i):
            # All threads race get-or-create *and* the increment itself.
            for _ in range(PER_THREAD):
                registry.counter("stress.hits").inc()
                registry.counter("stress.bytes").inc(3)

        _run_threads(THREADS, work)
        assert registry.counter("stress.hits").value == THREADS * PER_THREAD
        assert registry.counter("stress.bytes").value == THREADS * PER_THREAD * 3

    def test_histogram_observations_are_never_lost(self):
        registry = MetricsRegistry()

        def work(i):
            for k in range(PER_THREAD):
                registry.histogram("stress.lat").observe(i + k * 1e-6)

        _run_threads(THREADS, work)
        snap = registry.histogram("stress.lat").snapshot()
        assert snap["count"] == THREADS * PER_THREAD

    def test_concurrent_create_yields_one_metric(self):
        registry = MetricsRegistry()
        seen = []
        lock = threading.Lock()

        def work(_i):
            c = registry.counter("stress.unique")
            with lock:
                seen.append(c)

        _run_threads(THREADS, work)
        assert len(set(map(id, seen))) == 1


class TestLRUCacheStress:
    def test_ledger_reconciles_under_churn(self):
        registry = MetricsRegistry()
        # Tiny capacity so eviction happens constantly under contention.
        cache = LRUCache(64 * 40, registry=registry)
        hits = [0] * THREADS
        misses = [0] * THREADS

        def work(i):
            for k in range(PER_THREAD):
                key = f"k{(i * PER_THREAD + k) % 100}"
                if cache.get(key) is None:
                    misses[i] += 1
                    cache.put(key, bytes(64))
                else:
                    hits[i] += 1

        _run_threads(THREADS, work)
        # Workers' private tallies match the cache's own counters...
        assert cache.hits == sum(hits)
        assert cache.misses == sum(misses)
        assert cache.hits + cache.misses == THREADS * PER_THREAD
        # ...and the registry mirror matches the cache exactly.
        assert registry.counter("cdn.cache.hits").value == cache.hits
        assert registry.counter("cdn.cache.misses").value == cache.misses
        assert registry.counter("cdn.cache.evictions").value == cache.evictions
        # Occupancy accounting survived the churn.
        assert cache.used_bytes == sum(len(cache.peek(k)) for k in cache.keys())
        assert cache.used_bytes <= cache.capacity_bytes


class TestProxyStress:
    @pytest.fixture()
    def proxy(self) -> AdaptationProxy:
        system = build_case_study(
            corpus=Corpus(n_pages=1, text_bytes=400, image_bytes=800,
                          images_per_page=1),
            calibrate=False,
        )
        return system.proxy

    def test_negotiate_from_eight_threads(self, proxy):
        app_id = proxy.negotiation.app_ids()[0]
        per_thread = 200
        done = [0] * THREADS

        def work(i):
            env = PAPER_ENVIRONMENTS[i % len(PAPER_ENVIRONMENTS)]
            dev, ntwk = _dev(env), _ntwk(env)
            for _ in range(per_thread):
                metas = proxy.negotiate(app_id, dev, ntwk)
                assert metas, "negotiation returned an empty path"
                done[i] += 1

        _run_threads(THREADS, work)
        registry = proxy.telemetry.registry
        total = THREADS * per_thread
        assert sum(done) == total
        assert registry.counter("proxy.negotiations").value == total
        # Every negotiation is either a hit or a miss — none vanish.
        assert (
            registry.counter("proxy.cache.hits").value
            + registry.counter("proxy.cache.misses").value
            == total
        )

    def test_full_inp_handshakes_from_eight_threads(self, proxy):
        app_id = proxy.negotiation.app_ids()[0]
        per_thread = 100

        def work(i):
            env = PAPER_ENVIRONMENTS[i % len(PAPER_ENVIRONMENTS)]
            dev, ntwk = _dev(env), _ntwk(env)
            for k in range(per_thread):
                sid = f"stress-{i}-{k}"
                init = INPMessage(MsgType.INIT_REQ, sid, 0, {"app_id": app_id})
                rep = decode(proxy.handle(encode(init)))
                assert rep.msg_type is MsgType.INIT_REP, rep.body
                meta = INPMessage(
                    MsgType.CLI_META_REP, sid, rep.seq + 1,
                    {"dev_meta": dev.to_wire(), "ntwk_meta": ntwk.to_wire()},
                )
                rep = decode(proxy.handle(encode(meta)))
                assert rep.msg_type is MsgType.PAD_META_REP, rep.body

        _run_threads(THREADS, work)
        registry = proxy.telemetry.registry
        assert registry.counter("proxy.errors").value == 0
        assert registry.counter("proxy.negotiations").value == THREADS * 100
        assert proxy.pending_sessions == 0

    def test_negotiate_racing_restart_never_errors(self, proxy):
        """restart() wipes the session table while handshakes fly; wiped
        sessions surface as clean unknown-session INP errors, never as
        exceptions or stuck entries."""
        app_id = proxy.negotiation.app_ids()[0]
        stop = threading.Event()

        def restarter(_i):
            while not stop.is_set():
                proxy.restart()

        outcomes = {"ok": 0, "unknown": 0}
        lock = threading.Lock()

        def handshaker(i):
            try:
                env = PAPER_ENVIRONMENTS[i % len(PAPER_ENVIRONMENTS)]
                dev, ntwk = _dev(env), _ntwk(env)
                for k in range(150):
                    sid = f"restart-race-{i}-{k}"
                    init = INPMessage(MsgType.INIT_REQ, sid, 0, {"app_id": app_id})
                    proxy.handle(encode(init))
                    meta = INPMessage(
                        MsgType.CLI_META_REP, sid, 1,
                        {"dev_meta": dev.to_wire(), "ntwk_meta": ntwk.to_wire()},
                    )
                    rep = decode(proxy.handle(encode(meta)))
                    with lock:
                        if rep.msg_type is MsgType.PAD_META_REP:
                            outcomes["ok"] += 1
                        else:
                            assert "unknown session" in rep.body.get("error", "")
                            outcomes["unknown"] += 1
            finally:
                if i == 1:  # last handshaker to matter; harmless if early
                    stop.set()

        def work(i):
            if i == 0:
                restarter(i)
            else:
                handshaker(i)

        _run_threads(4, work)
        stop.set()
        assert outcomes["ok"] + outcomes["unknown"] == 3 * 150


# -- deterministic race regressions ------------------------------------------
#
# Each reproduces, without timing luck, the exact interleaving the locks
# must make impossible.  They drive the *same* code paths concurrent
# workers race through, with the adversarial step injected between the
# "check" and the "act".


class TestRaceRegressions:
    def _proxy(self) -> AdaptationProxy:
        a, b, r = paper_case_study_matrices()
        return AdaptationProxy(OverheadModel(cpu_matrix=a, os_matrix=b,
                                             net_matrix=r))

    def test_lookup_survives_eviction_between_check_and_act(self, monkeypatch):
        """Old bug: lookup() read the entry, then move_to_end raised
        KeyError if an invalidation snuck in between.  With the lock the
        invalidation must now wait, so the interleaving is impossible —
        simulated here by invalidating from *inside* the critical
        section via a reentrant probe."""
        system = build_case_study(
            corpus=Corpus(n_pages=1, text_bytes=300, image_bytes=600,
                          images_per_page=1),
            calibrate=False,
        )
        proxy = system.proxy
        app_id = proxy.negotiation.app_ids()[0]
        env = PAPER_ENVIRONMENTS[0]
        dev, ntwk = _dev(env), _ntwk(env)
        proxy.negotiate(app_id, dev, ntwk)  # populate the cache

        dist = proxy.distribution
        real_get = dist._cache.get
        state = {"fired": False}

        def hostile_get(key, default=None):
            value = real_get(key, default)
            if value is not None and not state["fired"]:
                state["fired"] = True
                # The adversary: a second thread trying to invalidate the
                # app mid-lookup.  The RLock makes this reentrant from
                # the same thread (here) but mutually exclusive across
                # threads (the real race) — either way move_to_end below
                # must not see a half-invalidated table.
                locked = dist._lock.acquire(blocking=False)
                assert locked, "lookup ran without holding the lock"
                dist._lock.release()
            return value

        monkeypatch.setattr(dist._cache, "get", hostile_get)
        assert proxy.negotiate(app_id, dev, ntwk)  # served from cache
        assert state["fired"], "instrumented get() never ran"

    def test_session_claim_is_single_consumer(self):
        """Old bug: CLI_META_REP did get-then-del on the session table;
        two consumers could both get, then the second del raised
        KeyError.  The pop-based claim gives exactly one winner."""
        proxy = self._proxy()
        with proxy._sessions_lock:
            proxy._sessions["s1"] = "app"
        results = [proxy._claim_session("s1") for _ in range(3)]
        assert results == ["app", None, None]
        assert proxy.pending_sessions == 0

    def test_session_claim_racing_restart(self):
        """Claim vs restart() on the same session, many rounds: every
        round ends with the table empty and no exception, whoever wins."""
        proxy = self._proxy()
        for round_no in range(200):
            sid = f"s{round_no}"
            with proxy._sessions_lock:
                proxy._sessions[sid] = "app"
            barrier = threading.Barrier(2)
            claimed = []

            def claimer():
                barrier.wait()
                claimed.append(proxy._claim_session(sid))

            def restarter():
                barrier.wait()
                proxy.restart()

            t1 = threading.Thread(target=claimer)
            t2 = threading.Thread(target=restarter)
            t1.start(); t2.start()
            t1.join(); t2.join()
            assert claimed[0] in ("app", None)
            assert proxy.pending_sessions == 0

    def test_lru_eviction_counter_is_exact(self):
        """Old bug: evictions was bumped with an unlocked += inside the
        eviction loop; concurrent puts lost increments.  Counted
        single-threaded here against ground truth, then cross-checked
        against the registry mirror after concurrent churn."""
        registry = MetricsRegistry()
        cache = LRUCache(10 * 8, registry=registry)
        for i in range(30):
            cache.put(f"k{i}", bytes(8))
        assert len(cache) == 10
        assert cache.evictions == 20
        assert registry.counter("cdn.cache.evictions").value == 20

        def churn(i):
            for k in range(200):
                cache.put(f"w{i}-{k}", bytes(8))

        _run_threads(THREADS, churn)
        assert cache.evictions == registry.counter("cdn.cache.evictions").value
        # items in cache + evictions + explicit puts all reconcile:
        # every put either still resides in the cache or was evicted.
        total_puts = 30 + THREADS * 200
        assert len(cache) + cache.evictions == total_puts
