"""The negotiation + session flow on the asyncio serving core.

Covers the tentpole end to end: async TCP transport, coroutine client,
async application server, and the kernel pool — with the pooled path
required to produce byte-identical responses to the inline path.
"""

import asyncio

import pytest

from repro.core.asyncclient import AsyncFractalClient
from repro.core.errors import ProtocolMismatchError
from repro.core.kernelpool import KernelPool
from repro.core.retry import RetryPolicy
from repro.core.system import APP_ID, bind_async_endpoints, build_case_study
from repro.simnet.asyncnet import AsyncTcpTransport
from repro.workload.profiles import DESKTOP_LAN, PAPER_ENVIRONMENTS, PDA_BLUETOOTH


def run(coro):
    return asyncio.run(coro)


async def _make_system(small_corpus, *, kernel_pool=None):
    system = build_case_study(corpus=small_corpus, calibrate=False)
    transport = AsyncTcpTransport()
    await bind_async_endpoints(system, transport, kernel_pool=kernel_pool)
    return system, transport


def _make_client(system, transport, env, name):
    return system.make_client(
        env, name=name, transport=transport, client_cls=AsyncFractalClient
    )


class TestAsyncEndToEnd:
    def test_negotiation_over_async_sockets(self, small_corpus):
        async def main():
            system, t = await _make_system(small_corpus)
            async with t:
                client = _make_client(system, t, DESKTOP_LAN, "async-cli-1")
                outcome = await client.negotiate(APP_ID)
                assert outcome.pads
                assert outcome.negotiation_time_s > 0
                # Second negotiation hits the client's protocol cache.
                again = await client.negotiate(APP_ID)
                assert again.from_cache

        run(main())

    def test_full_session_over_async_sockets(self, small_corpus):
        async def main():
            system, t = await _make_system(small_corpus)
            async with t:
                client = _make_client(system, t, PDA_BLUETOOTH, "async-cli-2")
                old_page = system.corpus.evolved(0, 0)
                result = await client.request_page(
                    APP_ID, 0,
                    old_parts=[old_page.text, *old_page.images],
                    old_version=0, new_version=1,
                )
                new_page = system.corpus.evolved(0, 1)
                assert result.parts == [new_page.text, *new_page.images]
                assert result.app_traffic_bytes > 0

        run(main())

    def test_inp_errors_cross_the_async_socket(self, small_corpus):
        async def main():
            system, t = await _make_system(small_corpus)
            async with t:
                client = _make_client(system, t, DESKTOP_LAN, "async-cli-3")
                with pytest.raises(ProtocolMismatchError):
                    await client.negotiate("no-such-application")

        run(main())

    def test_concurrent_sessions_share_one_loop(self, small_corpus):
        async def main():
            system, t = await _make_system(small_corpus)
            async with t:
                clients = [
                    _make_client(
                        system, t, PAPER_ENVIRONMENTS[i % 3], f"async-cc-{i}"
                    )
                    for i in range(6)
                ]
                old = system.corpus.evolved(0, 0)
                results = await asyncio.gather(
                    *(
                        c.request_page(
                            APP_ID, 0,
                            old_parts=[old.text, *old.images],
                            old_version=0, new_version=1,
                        )
                        for c in clients
                    )
                )
                new_page = system.corpus.evolved(0, 1)
                for r in results:
                    assert r.parts == [new_page.text, *new_page.images]

        run(main())

    def test_wire_meters_reconcile(self, small_corpus):
        async def main():
            system, t = await _make_system(small_corpus)
            async with t:
                client = _make_client(system, t, DESKTOP_LAN, "async-cli-m")
                old = system.corpus.evolved(0, 0)
                await client.request_page(
                    APP_ID, 0,
                    old_parts=[old.text, *old.images],
                    old_version=0, new_version=1,
                )
                cli = t.meter("async-cli-m")
                # The endpoint records its send in the continuation after
                # drain(); yield to the loop until the meters settle.
                for _ in range(100):
                    ep_sent = sum(
                        t.endpoint_meter(e).bytes_sent for e in t.endpoints()
                    )
                    if ep_sent == cli.bytes_received:
                        break
                    await asyncio.sleep(0.001)
                ep_recv = sum(
                    t.endpoint_meter(e).bytes_received for e in t.endpoints()
                )
                assert cli.bytes_sent == ep_recv
                assert cli.bytes_received == ep_sent

        run(main())

    def test_async_client_rejects_resilience_knobs(self, small_corpus):
        async def main():
            system, t = await _make_system(small_corpus)
            async with t:
                with pytest.raises(ValueError, match="retry_policy"):
                    system.make_client(
                        DESKTOP_LAN,
                        transport=t,
                        client_cls=AsyncFractalClient,
                        retry_policy=RetryPolicy(),
                    )

        run(main())


class TestPooledServingByteIdentity:
    def test_pool_and_inline_sessions_are_byte_identical(self, small_corpus):
        """The acceptance bar: APP_REP bytes with pool workers must equal
        the inline (workers=0) bytes for identical requests."""

        async def session(kernel_pool):
            system, t = await _make_system(small_corpus, kernel_pool=kernel_pool)
            async with t:
                client = _make_client(system, t, PDA_BLUETOOTH, "async-golden")
                old = system.corpus.evolved(0, 0)
                cold = await client.request_page(APP_ID, 0, new_version=0)
                warm = await client.request_page(
                    APP_ID, 0,
                    old_parts=[old.text, *old.images],
                    old_version=0, new_version=1,
                )
                return cold, warm

        inline_cold, inline_warm = run(session(None))
        with KernelPool(workers=2) as pool:
            pool_cold, pool_warm = run(session(pool))
        assert pool_cold.parts == inline_cold.parts
        assert pool_warm.parts == inline_warm.parts
        # Byte identity on the wire, not just after reconstruction.
        assert pool_cold.app_response_bytes == inline_cold.app_response_bytes
        assert pool_warm.app_response_bytes == inline_warm.app_response_bytes
        assert pool_cold.app_request_bytes == inline_cold.app_request_bytes
        assert pool_warm.app_request_bytes == inline_warm.app_request_bytes
