"""The same negotiation + session flow over real TCP loopback sockets."""

import pytest

from repro.core.system import (
    APP_ID,
    APPSERVER_ENDPOINT,
    PROXY_ENDPOINT,
    build_case_study,
)
from repro.core.client import FractalClient
from repro.simnet.realnet import TcpTransport
from repro.workload.profiles import DESKTOP_LAN, PDA_BLUETOOTH


@pytest.fixture(scope="module")
def tcp_system(small_corpus):
    system = build_case_study(corpus=small_corpus, calibrate=False)
    tcp = TcpTransport()
    tcp.bind(PROXY_ENDPOINT, system.proxy.handle)
    tcp.bind(APPSERVER_ENDPOINT, system.appserver.handle)
    yield system, tcp
    tcp.close()


def make_tcp_client(system, tcp, env, name):
    redirector = system.deployment.redirector
    site = system.deployment.client_sites[0]
    return FractalClient(
        name,
        env,
        transport=tcp,
        proxy_endpoint=PROXY_ENDPOINT,
        appserver_endpoint=APPSERVER_ENDPOINT,
        cdn_fetch=lambda key: redirector.fetch(site, key)[0],
        trust_store=system.trust_store,
    )


class TestTcpEndToEnd:
    def test_negotiation_over_sockets(self, tcp_system):
        system, tcp = tcp_system
        client = make_tcp_client(system, tcp, DESKTOP_LAN, "tcp-cli-1")
        outcome = client.negotiate(APP_ID)
        assert outcome.pads
        assert outcome.negotiation_time_s > 0

    def test_full_session_over_sockets(self, tcp_system):
        system, tcp = tcp_system
        client = make_tcp_client(system, tcp, PDA_BLUETOOTH, "tcp-cli-2")
        old_page = system.corpus.evolved(0, 0)
        result = client.request_page(
            APP_ID, 0,
            old_parts=[old_page.text, *old_page.images],
            old_version=0, new_version=1,
        )
        new_page = system.corpus.evolved(0, 1)
        assert result.parts == [new_page.text, *new_page.images]

    def test_inp_errors_cross_the_socket(self, tcp_system):
        system, tcp = tcp_system
        client = make_tcp_client(system, tcp, DESKTOP_LAN, "tcp-cli-3")
        from repro.core.errors import ProtocolMismatchError

        with pytest.raises(ProtocolMismatchError):
            client.negotiate("no-such-application")
