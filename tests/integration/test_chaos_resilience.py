"""Chaos acceptance: sessions survive injected faults, ledgers reconcile.

Three pillars:

* the issue's acceptance run — ≥5% Bluetooth frame loss plus a mid-run
  edge outage over a 100-client case study must complete every session
  through retry/failover/degradation, with the telemetry counters
  accounting for every injected fault;
* a disabled injector is indistinguishable from no injector — same
  session bytes, same counter snapshot;
* graceful degradation — a client that cannot negotiate at all still
  serves the page over the ``direct`` protocol.
"""

import itertools
from collections import Counter as TallyCounter

import pytest

from repro.core import client as client_mod
from repro.core.retry import RetryPolicy
from repro.core.system import APP_ID, build_case_study
from repro.faults import FaultInjector, FaultPlan, FaultRule
from repro.simnet.transport import TransportError
from repro.workload.profiles import DESKTOP_LAN, PAPER_ENVIRONMENTS

FAST_RETRIES = RetryPolicy(max_attempts=6, base_delay_s=0.02, max_delay_s=0.5)


def busiest_edge(system) -> str:
    redirector = system.deployment.redirector
    tally = TallyCounter()
    for site in system.deployment.client_sites:
        tally[redirector.resolve(site).name] += 1
    return tally.most_common(1)[0][0]


class TestAcceptanceRun:
    def test_100_clients_survive_frame_loss_and_edge_outage(self, small_corpus):
        system = build_case_study(corpus=small_corpus, calibrate=False)
        plan = FaultPlan.of(
            FaultRule.frame_loss("Bluetooth", probability=0.08),
            FaultRule.edge_outage(busiest_edge(system), after=3, duration=40),
        )
        injector = FaultInjector(plan, seed=2026).install(system)

        completed = 0
        for i in range(100):
            env = PAPER_ENVIRONMENTS[i % len(PAPER_ENVIRONMENTS)]
            client = system.make_client(
                env,
                retry_policy=FAST_RETRIES,
                degrade_to_direct=True,
                failover_fetch=True,
            )
            page_id = i % system.corpus.n_pages
            result = client.request_page(APP_ID, page_id, new_version=0)
            page = system.corpus.evolved(page_id, 0)
            assert result.parts == [page.text, *page.images]
            completed += 1
        assert completed == 100  # zero unhandled exceptions

        counters = system.telemetry.registry.snapshot()["counters"]
        injected = counters.get("faults.injected", 0)
        losses = counters.get("faults.injected.frame_loss", 0)
        outages = counters.get("faults.injected.edge_outage", 0)
        retries = counters.get("client.retries", 0)
        failovers = counters.get("cdn.failovers", 0)
        degradations = counters.get("client.degradations", 0)

        # Both planned fault kinds actually occurred...
        assert losses > 0 and outages > 0
        # ...and the ledger closes: every fault is either an edge outage
        # absorbed by exactly one CDN failover, or a wire fault absorbed
        # by a client retry (or, on exhaustion, the final degradation).
        assert injected == losses + outages
        assert failovers == outages
        assert retries + degradations == losses

    @pytest.mark.chaos
    def test_sweep_survives_every_fault_rate(self, small_corpus):
        """Heavier sweep through the bench harness itself."""
        from repro.bench.chaos import chaos_experiment

        result = chaos_experiment(
            (0.0, 0.2), n_clients=30, seed=7, corpus=small_corpus
        )
        for summary in result.summaries:
            assert summary.unhandled_errors == 0
            assert summary.success_rate == 1.0
            assert summary.faults_injected == sum(
                summary.faults_by_kind.values()
            )
        # The lossy rate must actually have injected wire faults.
        assert result.summaries[-1].faults_injected > 0
        assert result.summaries[-1].retries > 0


NOISY_PLAN = FaultPlan.of(
    FaultRule.frame_loss("Bluetooth", probability=0.5),
    FaultRule.frame_corrupt(probability=0.25),
    FaultRule.tamper_signature(probability=0.5),
    FaultRule.proxy_restart(after=2),
)


class TestDisabledInjectorIsInert:
    def _run_sessions(self, system):
        outputs = []
        for env in PAPER_ENVIRONMENTS:
            client = system.make_client(env)
            for page_id in (0, 1):
                result = client.request_page(APP_ID, page_id, new_version=0)
                outputs.append(result.content)
        return outputs

    def test_disabled_injector_changes_nothing(self, small_corpus):
        """Same corpus, same workload: a run with the injector installed
        but disabled must be byte-identical — same session content, same
        counter snapshot — to a run that never saw ``repro.faults``."""
        runs = []
        for with_injector in (False, True):
            # Pin the module-global session counter so INP session ids
            # (whose digit counts feed byte counters) align across runs.
            client_mod._session_counter = itertools.count(10_000)
            system = build_case_study(corpus=small_corpus, calibrate=False)
            if with_injector:
                FaultInjector(NOISY_PLAN, seed=1, enabled=False).install(system)
            outputs = self._run_sessions(system)
            runs.append((outputs, system.telemetry.registry.snapshot()["counters"]))
        (plain_out, plain_counters), (chaos_out, chaos_counters) = runs
        assert plain_out == chaos_out
        assert plain_counters == chaos_counters
        assert "faults.injected" not in chaos_counters

    def test_uninstall_restores_the_original_components(self, small_corpus):
        system = build_case_study(corpus=small_corpus, calibrate=False)
        transport = system.transport
        edges = list(system.deployment.edges)
        injector = FaultInjector(NOISY_PLAN, seed=1).install(system)
        assert system.transport is not transport
        injector.uninstall()
        assert system.transport is transport
        assert list(system.deployment.edges) == edges
        assert system.deployment.redirector.edges()[0] is sorted(
            edges, key=lambda e: e.name
        )[0]

    def test_double_install_rejected(self, small_corpus):
        system = build_case_study(corpus=small_corpus, calibrate=False)
        injector = FaultInjector(NOISY_PLAN, seed=1).install(system)
        with pytest.raises(RuntimeError, match="already installed"):
            injector.install(system)
        injector.uninstall()


class TestGracefulDegradation:
    def test_dead_proxy_degrades_to_direct(self, small_corpus):
        system = build_case_study(corpus=small_corpus, calibrate=False)
        client = system.make_client(
            DESKTOP_LAN,
            retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.0),
            degrade_to_direct=True,
        )
        system.transport.unbind("proxy")
        result = client.request_page(APP_ID, 0, new_version=0)
        assert result.degraded is True
        assert result.pad_ids == ("direct",)
        page = system.corpus.evolved(0, 0)
        assert result.parts == [page.text, *page.images]
        counters = system.telemetry.registry.snapshot()["counters"]
        assert counters["client.degradations"] == 1
        assert counters["client.retries"] == 1  # max_attempts=2 -> one retry

    def test_without_degradation_the_error_still_propagates(self, small_corpus):
        system = build_case_study(corpus=small_corpus, calibrate=False)
        client = system.make_client(
            DESKTOP_LAN,
            retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.0),
        )
        system.transport.unbind("proxy")
        with pytest.raises(TransportError):
            client.request_page(APP_ID, 0, new_version=0)

    def test_degraded_session_recovers_on_next_request(self, small_corpus):
        """Degradation is per-session: once the proxy is back, the next
        request negotiates a real protocol again."""
        system = build_case_study(corpus=small_corpus, calibrate=False)
        client = system.make_client(
            DESKTOP_LAN,
            retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.0),
            degrade_to_direct=True,
        )
        handler = system.proxy.handle
        system.transport.unbind("proxy")
        degraded = client.request_page(APP_ID, 0, new_version=0)
        assert degraded.degraded is True
        system.transport.bind("proxy", handler)
        recovered = client.request_page(APP_ID, 0, new_version=0)
        assert recovered.degraded is False
        assert client.negotiations == 2  # the failed one, then the real one
