"""Circuit breaker state machine under a scripted clock."""

from __future__ import annotations

import pytest

from repro.core.errors import BreakerOpenError, FractalError, OverloadError
from repro.overload import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    BreakerBoard,
    CircuitBreaker,
    ManualClock,
)
from repro.telemetry import MetricsRegistry


def make_breaker(clock, *, threshold=3, recovery=10.0, probes=1, registry=None):
    return CircuitBreaker(
        "dep",
        failure_threshold=threshold,
        recovery_timeout_s=recovery,
        half_open_probes=probes,
        clock=clock,
        registry=registry,
    )


class TestStateMachine:
    def test_trips_after_threshold_consecutive_failures(self):
        b = make_breaker(ManualClock())
        for _ in range(2):
            b.record_failure()
        assert b.state == STATE_CLOSED
        b.record_failure()
        assert b.state == STATE_OPEN
        assert b.opened == 1

    def test_success_resets_the_failure_streak(self):
        b = make_breaker(ManualClock())
        b.record_failure()
        b.record_failure()
        b.record_success()
        b.record_failure()
        b.record_failure()
        assert b.state == STATE_CLOSED

    def test_open_rejects_without_wire_and_reports_retry_in(self):
        clock = ManualClock()
        b = make_breaker(clock, recovery=10.0)
        for _ in range(3):
            b.record_failure()
        assert not b.allow()
        assert b.rejected == 1
        clock.advance(4.0)
        assert b.retry_in_s() == pytest.approx(6.0)
        err = b.reject()
        assert isinstance(err, BreakerOpenError)
        assert isinstance(err, OverloadError) and isinstance(err, FractalError)

    def test_half_open_probe_success_recloses(self):
        clock = ManualClock()
        b = make_breaker(clock, recovery=10.0)
        for _ in range(3):
            b.record_failure()
        clock.advance(10.0)
        assert b.state == STATE_HALF_OPEN
        assert b.allow()  # claims the single probe slot
        assert not b.allow()  # second caller rejected while probing
        b.record_success()
        assert b.state == STATE_CLOSED
        assert b.reclosed == 1
        assert b.allow()

    def test_half_open_probe_failure_reopens_with_fresh_window(self):
        clock = ManualClock()
        b = make_breaker(clock, recovery=10.0)
        for _ in range(3):
            b.record_failure()
        clock.advance(10.0)
        assert b.allow()
        b.record_failure()
        assert b.state == STATE_OPEN
        assert b.opened == 2
        assert b.retry_in_s() == pytest.approx(10.0)

    def test_release_probe_frees_the_slot_on_neutral_outcome(self):
        clock = ManualClock()
        b = make_breaker(clock, recovery=10.0)
        for _ in range(3):
            b.record_failure()
        clock.advance(10.0)
        assert b.allow()
        b.release_probe()  # e.g. a local, non-dependency error
        assert b.allow()  # slot is available again; no wedge

    def test_straggler_failure_while_open_does_not_extend_window(self):
        clock = ManualClock()
        b = make_breaker(clock, recovery=10.0)
        for _ in range(3):
            b.record_failure()
        clock.advance(6.0)
        b.record_failure()  # straggler from before the trip
        assert b.retry_in_s() == pytest.approx(4.0)
        assert b.opened == 1


class TestCall:
    def test_call_records_exactly_one_outcome_per_admitted_call(self):
        clock = ManualClock()
        b = make_breaker(clock, threshold=2)

        def boom():
            raise ValueError("dependency down")

        for _ in range(2):
            with pytest.raises(ValueError):
                b.call(boom, failures=(ValueError,))
        assert b.state == STATE_OPEN
        with pytest.raises(BreakerOpenError):
            b.call(lambda: "never runs")

    def test_call_neutral_exception_releases_probe(self):
        clock = ManualClock()
        b = make_breaker(clock, threshold=1, recovery=5.0)
        with pytest.raises(RuntimeError):
            b.call(lambda: (_ for _ in ()).throw(RuntimeError("dep down")))
        clock.advance(5.0)

        def neutral():
            raise KeyError("local bug, not the dependency")

        with pytest.raises(KeyError):
            b.call(neutral, failures=(RuntimeError,))
        # Probe slot was released, so a second probe may run and reclose.
        assert b.call(lambda: "ok", failures=(RuntimeError,)) == "ok"
        assert b.state == STATE_CLOSED


class TestBoardAndTelemetry:
    def test_board_builds_one_breaker_per_destination(self):
        board = BreakerBoard(failure_threshold=1, clock=ManualClock())
        proxy = board.breaker("proxy")
        assert board.breaker("proxy") is proxy
        proxy.record_failure()
        assert board.states() == {"proxy": STATE_OPEN}
        cdn = board.breaker("cdn")
        assert cdn.state == STATE_CLOSED  # isolated from the proxy's trip
        assert board.get("nope") is None
        snap = board.snapshot()
        assert snap["proxy"]["opened"] == 1 and snap["cdn"]["opened"] == 0

    def test_registry_counters_mirror_local_tallies(self):
        registry = MetricsRegistry()
        clock = ManualClock()
        b = make_breaker(clock, threshold=1, recovery=5.0, registry=registry)
        b.record_failure()
        assert not b.allow()
        clock.advance(5.0)
        assert b.allow()  # probe
        b.record_success()
        assert registry.counter("breaker.dep.opened").value == b.opened == 1
        assert registry.counter("breaker.dep.rejected").value == b.rejected == 1
        assert registry.counter("breaker.dep.probes").value == b.probes == 1
        assert registry.counter("breaker.dep.reclosed").value == b.reclosed == 1


class TestValidation:
    def test_rejects_bad_shapes(self):
        for kwargs in (
            {"failure_threshold": 0},
            {"recovery_timeout_s": 0.0},
            {"half_open_probes": 0},
        ):
            with pytest.raises(ValueError):
                CircuitBreaker("x", **kwargs)
