"""Admission control: token bucket, inflight cap, exact ledger."""

from __future__ import annotations

import pytest

from repro.core import inp
from repro.core.errors import ServerOverloadedError
from repro.core.inp import INPMessage, MsgType
from repro.core.retry import RetryPolicy
from repro.overload import (
    OVERLOADED_PREFIX,
    AdmissionController,
    ManualClock,
    overload_reply,
)
from repro.telemetry import MetricsRegistry


class TestValidation:
    def test_requires_at_least_one_limiter(self):
        with pytest.raises(ValueError):
            AdmissionController("x")

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            AdmissionController("x", max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionController("x", rate_per_s=0.0)
        with pytest.raises(ValueError):
            AdmissionController("x", max_inflight=1, burst=4)  # burst w/o rate


class TestTokenBucket:
    def test_burst_admits_then_rate_rejects_with_hint(self):
        clock = ManualClock()
        ctrl = AdmissionController("t", rate_per_s=2.0, burst=3, clock=clock)
        for _ in range(3):
            ctrl.admit().release()
        with pytest.raises(ServerOverloadedError) as exc_info:
            ctrl.admit()
        err = exc_info.value
        assert str(err).startswith(OVERLOADED_PREFIX)
        # Bucket empty: one token accrues in 1/rate seconds.
        assert err.retry_after_s == pytest.approx(0.5)
        assert ctrl.rejected_rate == 1

    def test_refill_is_proportional_and_capped_at_burst(self):
        clock = ManualClock()
        ctrl = AdmissionController("t", rate_per_s=2.0, burst=3, clock=clock)
        for _ in range(3):
            ctrl.admit().release()
        clock.advance(0.5)  # one token back
        ctrl.admit().release()
        with pytest.raises(ServerOverloadedError):
            ctrl.admit()
        clock.advance(1000.0)  # refill far past burst; cap applies
        for _ in range(3):
            ctrl.admit().release()
        with pytest.raises(ServerOverloadedError):
            ctrl.admit()

    def test_burst_defaults_to_int_rate(self):
        ctrl = AdmissionController("t", rate_per_s=5.0)
        assert ctrl.burst == 5
        assert AdmissionController("t", rate_per_s=0.25).burst == 1


class TestInflightCap:
    def test_cap_rejects_until_release(self):
        ctrl = AdmissionController("t", max_inflight=2)
        t1 = ctrl.admit()
        t2 = ctrl.admit()
        assert ctrl.inflight == 2
        with pytest.raises(ServerOverloadedError) as exc_info:
            ctrl.admit()
        assert "max inflight" in str(exc_info.value)
        assert exc_info.value.retry_after_s is None  # no time-based hint
        t1.release()
        ctrl.admit().release()
        t2.release()
        assert ctrl.inflight == 0

    def test_token_is_a_context_manager_and_release_idempotent(self):
        ctrl = AdmissionController("t", max_inflight=1)
        with ctrl.admit():
            assert ctrl.inflight == 1
        assert ctrl.inflight == 0
        token = ctrl.admit()
        token.release()
        token.release()  # double release must not go negative
        assert ctrl.inflight == 0


class TestLedger:
    def test_offered_equals_admitted_plus_rejected_and_registry_agrees(self):
        registry = MetricsRegistry()
        clock = ManualClock()
        ctrl = AdmissionController(
            "front", rate_per_s=4.0, burst=2, max_inflight=8,
            registry=registry, clock=clock,
        )
        outcomes = []
        for _ in range(5):
            try:
                ctrl.admit().release()
                outcomes.append("ok")
            except ServerOverloadedError:
                outcomes.append("shed")
        assert outcomes == ["ok", "ok", "shed", "shed", "shed"]
        assert ctrl.offered == ctrl.admitted + ctrl.rejected == 5
        assert registry.counter("overload.front.admitted").value == 2
        assert registry.counter("overload.front.rejected.rate").value == 3
        assert registry.counter("overload.front.rejected.concurrency").value == 0
        snap = ctrl.snapshot()
        assert snap == {
            "name": "front",
            "admitted": 2,
            "rejected_rate": 3,
            "rejected_concurrency": 0,
            "inflight": 0,
        }


class TestOverloadReply:
    def test_reply_carries_error_and_hint(self):
        msg = INPMessage(MsgType.INIT_REQ, "s1", 0, {"app_id": "a"})
        exc = ServerOverloadedError(
            f"{OVERLOADED_PREFIX}front rate limit", retry_after_s=0.1239
        )
        rep = overload_reply(msg, exc)
        assert rep.msg_type is MsgType.INP_ERROR
        assert rep.session_id == "s1" and rep.seq == 1
        assert rep.body["error"].startswith(OVERLOADED_PREFIX)
        assert rep.body["retry_after_ms"] == pytest.approx(123.9)
        # Round-trips through the codec (it is what goes on the wire).
        decoded = inp.decode(inp.encode(rep))
        assert decoded.body == rep.body

    def test_reply_omits_hint_when_absent(self):
        msg = INPMessage(MsgType.APP_REQ, "s2", 0, {})
        rep = overload_reply(
            msg, ServerOverloadedError(f"{OVERLOADED_PREFIX}at max inflight")
        )
        assert "retry_after_ms" not in rep.body


class TestRetryHonorsHint:
    def test_retry_delay_is_raised_to_server_hint(self):
        policy = RetryPolicy(
            max_attempts=2, base_delay_s=0.01, jitter=0.0, max_delay_s=2.0
        )
        delays = []
        calls = []

        def fn():
            calls.append(1)
            if len(calls) == 1:
                raise ServerOverloadedError("overloaded: x", retry_after_s=1.5)
            return "done"

        result = policy.call(
            fn,
            retryable=(ServerOverloadedError,),
            on_retry=lambda attempt, delay, exc: delays.append(delay),
        )
        assert result == "done"
        assert delays == [1.5]  # hint beat the 0.01s schedule

    def test_hint_is_capped_at_max_delay(self):
        policy = RetryPolicy(
            max_attempts=2, base_delay_s=0.01, jitter=0.0, max_delay_s=0.5
        )
        delays = []
        calls = []

        def fn():
            calls.append(1)
            if len(calls) == 1:
                raise ServerOverloadedError("overloaded: x", retry_after_s=60.0)
            return "done"

        policy.call(
            fn,
            retryable=(ServerOverloadedError,),
            on_retry=lambda attempt, delay, exc: delays.append(delay),
        )
        assert delays == [0.5]
