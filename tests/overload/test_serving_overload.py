"""Overload control on the real serving path: wire-level proofs.

Every test here drives the assembled case-study system through its
transport — raw INP frames or real clients — and checks both the wire
behaviour and the registry counters, mirroring the ledger discipline of
``fractal-bench overload`` at unit-test scale.
"""

from __future__ import annotations

import time

import pytest

from repro.core import inp
from repro.core.errors import (
    DeadlineExceededError,
    ProtocolMismatchError,
    ServerOverloadedError,
)
from repro.core.inp import INPMessage, MsgType
from repro.core.system import (
    APP_ID,
    APPSERVER_ENDPOINT,
    PROXY_ENDPOINT,
    build_case_study,
)
from repro.overload import (
    DEADLINE_PREFIX,
    OVERLOADED_PREFIX,
    AdmissionController,
    BreakerBoard,
    Deadline,
    ManualClock,
    TickingClock,
)
from repro.telemetry import Telemetry
from repro.workload.pages import Corpus
from repro.workload.profiles import DESKTOP_LAN


def small_system(**kwargs):
    # Small byte sizes for speed, but the paper's 1-text + 4-image page
    # layout: FractalClient probes part counts from the corpus constant.
    corpus = Corpus(n_pages=2, text_bytes=800, image_bytes=2000)
    return build_case_study(corpus=corpus, calibrate=False, **kwargs)


def raw(system, dst, msg):
    return inp.decode(system.transport.request("raw", dst, inp.encode(msg)))


def app_req_body(corpus, page):
    total_parts = 1 + corpus.images_per_page
    return {
        "pad_ids": ["direct"],
        "page_id": page,
        "old_version": -1,
        "new_version": 1,
        "part_requests": [inp.b64e(b"")] * total_parts,
    }


class TestWireDeadlineField:
    def test_dl_round_trips_and_is_omitted_when_unset(self):
        msg = INPMessage(MsgType.INIT_REQ, "s", 0, {"app_id": APP_ID})
        stamped = msg.with_deadline(1500.0)
        decoded = inp.decode(inp.encode(stamped))
        assert decoded.deadline_ms == 1500.0
        # No deadline -> no "dl" key: deadline-free traffic stays
        # byte-identical to the pre-overload wire format.
        assert b'"dl"' not in inp.encode(msg)
        assert inp.decode(inp.encode(msg)).deadline_ms is None

    def test_replies_never_carry_the_budget(self):
        msg = INPMessage(MsgType.INIT_REQ, "s", 0, {}).with_deadline(500.0)
        assert msg.reply(MsgType.INIT_REP, {}).deadline_ms is None

    def test_decode_rejects_malformed_dl(self):
        good = inp.encode(INPMessage(MsgType.INIT_REQ, "s", 0, {}))
        import json

        envelope = json.loads(good)
        for bad in (True, "100", float("inf")):
            envelope["dl"] = bad
            with pytest.raises(ProtocolMismatchError):
                inp.decode(json.dumps(envelope).encode())


class TestServerAdmissionGate:
    def test_proxy_sheds_with_hint_and_client_sees_typed_error(self):
        telemetry = Telemetry()
        registry = telemetry.registry
        clock = ManualClock()
        admission = AdmissionController(
            "proxy-admission", rate_per_s=4.0, burst=2,
            registry=registry, clock=clock,
        )
        system = small_system(telemetry=telemetry, proxy_admission=admission)
        replies = [
            raw(system, PROXY_ENDPOINT,
                INPMessage(MsgType.INIT_REQ, f"s{i}", 0, {"app_id": APP_ID}))
            for i in range(4)
        ]
        assert [r.msg_type for r in replies[:2]] == [MsgType.INIT_REP] * 2
        for r in replies[2:]:
            assert r.msg_type is MsgType.INP_ERROR
            assert str(r.body["error"]).startswith(OVERLOADED_PREFIX)
            assert r.body["retry_after_ms"] > 0
        # The typed-client view of the same shed.
        client = system.make_client(DESKTOP_LAN)
        with pytest.raises(ServerOverloadedError) as exc_info:
            client.negotiate(APP_ID)
        assert exc_info.value.retry_after_s > 0
        # Recovery is just time passing.
        clock.advance(1.0)
        rep = raw(system, PROXY_ENDPOINT,
                  INPMessage(MsgType.INIT_REQ, "s9", 0, {"app_id": APP_ID}))
        assert rep.msg_type is MsgType.INIT_REP
        assert registry.counter("overload.proxy-admission.admitted").value == 3
        assert registry.counter("overload.proxy-admission.rejected.rate").value == 3

    def test_appserver_admission_guards_encode_work(self):
        telemetry = Telemetry()
        admission = AdmissionController(
            "app-admission", rate_per_s=1.0, burst=1,
            registry=telemetry.registry, clock=ManualClock(),
        )
        system = small_system(telemetry=telemetry, appserver_admission=admission)
        body = app_req_body(system.corpus, 0)
        first = raw(system, APPSERVER_ENDPOINT,
                    INPMessage(MsgType.APP_REQ, "a0", 0, dict(body)))
        assert first.msg_type is MsgType.APP_REP
        second = raw(system, APPSERVER_ENDPOINT,
                     INPMessage(MsgType.APP_REQ, "a1", 0, dict(body)))
        assert second.msg_type is MsgType.INP_ERROR
        assert str(second.body["error"]).startswith(OVERLOADED_PREFIX)
        # The shed request did no encode work.
        total_parts = 1 + system.corpus.images_per_page
        assert (
            telemetry.registry.counter("appserver.parts_encoded").value
            == total_parts
        )


class TestServerDeadlineGates:
    def test_expired_budget_is_shed_at_both_doors(self):
        system = small_system()
        registry = system.telemetry.registry
        rep = raw(
            system, PROXY_ENDPOINT,
            INPMessage(MsgType.INIT_REQ, "d0", 0, {"app_id": APP_ID})
            .with_deadline(0.0),
        )
        assert rep.msg_type is MsgType.INP_ERROR
        assert str(rep.body["error"]).startswith(DEADLINE_PREFIX)
        assert registry.counter("proxy.overload.deadline_expired").value == 1

        body = app_req_body(system.corpus, 0)
        rep = raw(
            system, APPSERVER_ENDPOINT,
            INPMessage(MsgType.APP_REQ, "d1", 0, body).with_deadline(-5.0),
        )
        assert rep.msg_type is MsgType.INP_ERROR
        assert str(rep.body["error"]).startswith(DEADLINE_PREFIX)
        assert registry.counter("appserver.overload.deadline_entry").value == 1
        assert registry.counter("appserver.requests").value == 0

    def test_midrequest_shed_counts_exact_parts(self):
        # TickingClock, 1 s per read.  The appserver reads it once to
        # anchor the wire budget and once for the entry check; each part
        # then costs one read.  A 2.5 s budget therefore survives the
        # part-0 check (t=3.0 < 3.5) and expires on the part-1 check
        # (t=4.0), shedding exactly parts 1..N.
        system = small_system()
        registry = system.telemetry.registry
        total_parts = 1 + system.corpus.images_per_page
        system.appserver.deadline_clock = TickingClock(1.0)
        try:
            rep = raw(
                system, APPSERVER_ENDPOINT,
                INPMessage(MsgType.APP_REQ, "mid", 0,
                           app_req_body(system.corpus, 0))
                .with_deadline(2500.0),
            )
        finally:
            system.appserver.deadline_clock = time.monotonic
        assert rep.msg_type is MsgType.INP_ERROR
        assert f"shed {total_parts - 1} of {total_parts} parts" in str(
            rep.body["error"]
        )
        assert (
            registry.counter("appserver.overload.parts_shed").value
            == total_parts - 1
        )
        assert registry.counter("appserver.overload.deadline_midrequest").value == 1
        # Part 0 was encoded before the budget ran out; nothing after.
        assert registry.counter("appserver.parts_encoded").value == 1


class TestClientDeadline:
    def test_deadline_stamping_costs_correctness_nothing(self):
        system = small_system()
        client = system.make_client(DESKTOP_LAN, deadline_s=30.0)
        result = client.request_page(APP_ID, 0)
        expected = system.corpus.evolved(0, 1)
        assert not result.degraded
        assert result.parts == [expected.text, *expected.images]

    def test_exhausted_local_budget_never_touches_the_wire(self):
        system = small_system()
        registry = system.telemetry.registry
        client = system.make_client(DESKTOP_LAN)

        def tripwire(request):
            raise AssertionError("expired budget must not reach the wire")

        system.transport.unbind(PROXY_ENDPOINT)
        system.transport.bind(PROXY_ENDPOINT, tripwire)
        clock = ManualClock()
        deadline = Deadline.after(1.0, clock)
        clock.advance(2.0)
        msg = INPMessage(MsgType.INIT_REQ, "local", 0, {"app_id": APP_ID})
        with pytest.raises(DeadlineExceededError):
            client._rpc(PROXY_ENDPOINT, msg, deadline=deadline)
        assert registry.counter("client.deadline.expired_local").value == 1


class TestClientBreakerGauntlet:
    def test_outage_trips_fast_fail_degrade_and_scripted_recovery(self):
        system = small_system()
        registry = system.telemetry.registry
        clock = ManualClock()
        board = BreakerBoard(
            failure_threshold=2, recovery_timeout_s=10.0,
            clock=clock, registry=registry,
        )
        client = system.make_client(
            DESKTOP_LAN, breaker_board=board, degrade_to_direct=True
        )
        system.transport.unbind(PROXY_ENDPOINT)
        try:
            sessions = 5
            degraded = sum(
                1 if client.request_page(APP_ID, 0).degraded else 0
                for _ in range(sessions)
            )
        finally:
            system.transport.bind(PROXY_ENDPOINT, system.proxy.handle)
        assert degraded == sessions  # every session still served
        breaker = board.breaker(PROXY_ENDPOINT)
        assert breaker.state == "open"
        fast_failed = registry.counter("client.breaker.fast_fail").value
        assert fast_failed == sessions - 2  # only the first two hit the wire
        clock.advance(10.0)
        result = client.request_page(APP_ID, 0)
        assert not result.degraded
        assert breaker.state == "closed"
        assert breaker.snapshot()["reclosed"] == 1

    def test_server_overload_rejections_feed_the_breaker(self):
        telemetry = Telemetry()
        registry = telemetry.registry
        # Negotiation costs two proxy round trips; a burst of exactly two
        # tokens (and no refill on the manual clock) admits one full
        # negotiation, then sheds everything after it.
        admission = AdmissionController(
            "proxy-admission", rate_per_s=2.0, burst=2,
            registry=registry, clock=ManualClock(),
        )
        system = small_system(telemetry=telemetry, proxy_admission=admission)
        board = BreakerBoard(
            failure_threshold=2, recovery_timeout_s=10.0,
            clock=ManualClock(), registry=registry,
        )
        client = system.make_client(DESKTOP_LAN, breaker_board=board)
        client.negotiate(APP_ID)  # consumes both tokens
        for _ in range(2):
            client._protocol_cache.clear()
            with pytest.raises(ServerOverloadedError):
                client.negotiate(APP_ID)
        assert board.breaker(PROXY_ENDPOINT).state == "open"
        assert registry.counter("client.overload.rejections").value == 2
