"""Deadline propagation primitives: clocks, wire budgets, expiry."""

from __future__ import annotations

import pytest

from repro.core.errors import DeadlineExceededError, FractalError, OverloadError
from repro.overload import (
    DEADLINE_PREFIX,
    Deadline,
    ManualClock,
    TickingClock,
    deadline_error_text,
)


class TestClocks:
    def test_manual_clock_moves_only_on_advance(self):
        clock = ManualClock()
        assert clock() == 0.0
        assert clock() == 0.0
        clock.advance(2.5)
        assert clock() == 2.5

    def test_manual_clock_rejects_backwards(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-1.0)

    def test_ticking_clock_advances_per_read(self):
        clock = TickingClock(1.0)
        assert [clock(), clock(), clock()] == [1.0, 2.0, 3.0]

    def test_ticking_clock_rejects_nonpositive_step(self):
        with pytest.raises(ValueError):
            TickingClock(0.0)


class TestDeadline:
    def test_after_counts_down_on_injected_clock(self):
        clock = ManualClock()
        dl = Deadline.after(5.0, clock)
        assert dl.remaining_s() == 5.0
        clock.advance(3.0)
        assert dl.remaining_s() == 2.0
        assert not dl.expired
        clock.advance(2.0)
        assert dl.expired

    def test_after_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            Deadline.after(0.0, ManualClock())

    def test_from_wire_none_means_no_deadline(self):
        assert Deadline.from_wire_ms(None, ManualClock()) is None

    def test_from_wire_zero_or_negative_is_already_expired(self):
        clock = ManualClock()
        assert Deadline.from_wire_ms(0.0, clock).expired
        assert Deadline.from_wire_ms(-250.0, clock).expired

    def test_from_wire_reanchors_against_local_clock(self):
        clock = ManualClock(start=100.0)
        dl = Deadline.from_wire_ms(1500.0, clock)
        assert dl.remaining_ms() == pytest.approx(1500.0)
        clock.advance(1.0)
        assert dl.remaining_ms() == pytest.approx(500.0)

    def test_check_raises_typed_error_with_wire_prefix(self):
        clock = ManualClock()
        dl = Deadline.after(1.0, clock)
        dl.check("stage-x")  # within budget: no-op
        clock.advance(2.0)
        with pytest.raises(DeadlineExceededError) as exc_info:
            dl.check("stage-x")
        assert str(exc_info.value).startswith(DEADLINE_PREFIX)
        assert "stage-x" in str(exc_info.value)

    def test_error_text_shape(self):
        assert deadline_error_text("appserver entry") == (
            f"{DEADLINE_PREFIX}: appserver entry"
        )

    def test_error_is_an_overload_and_fractal_error(self):
        # degrade_to_direct catches FractalError; the typed hierarchy
        # must keep deadline sheds inside it.
        err = DeadlineExceededError("x")
        assert isinstance(err, OverloadError)
        assert isinstance(err, FractalError)

    def test_ticking_clock_expires_after_exact_read_count(self):
        # The mid-request-shedding proof in miniature: budget 2.5 steps,
        # constructed on read 1, so checks at reads 2 and 3 pass and the
        # read-4 check fails.
        clock = TickingClock(1.0)
        dl = Deadline.from_wire_ms(2500.0, clock)  # read 1 -> expires 3.5
        assert not dl.expired  # read 2: t=2.0
        assert not dl.expired  # read 3: t=3.0
        assert dl.expired  # read 4: t=4.0
