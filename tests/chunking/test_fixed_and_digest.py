"""Fixed chunking and digest-table tests."""

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.chunking.cdc import Chunk
from repro.chunking.digest import DIGEST_SIZE, DigestTable, chunk_digest
from repro.chunking.fixed import fixed_chunk_bytes, fixed_chunks


class TestFixedChunks:
    def test_exact_division(self):
        chunks = fixed_chunks(100, 25)
        assert [c.length for c in chunks] == [25, 25, 25, 25]

    def test_short_tail(self):
        chunks = fixed_chunks(10, 4)
        assert [c.length for c in chunks] == [4, 4, 2]

    def test_empty(self):
        assert fixed_chunks(0, 8) == []

    def test_block_smaller_than_one(self):
        with pytest.raises(ValueError):
            fixed_chunks(10, 0)

    def test_negative_total(self):
        with pytest.raises(ValueError):
            fixed_chunks(-1, 8)

    def test_bytes_reassemble(self):
        data = bytes(range(256)) * 3
        assert b"".join(fixed_chunk_bytes(data, 100)) == data

    @given(st.integers(0, 5000), st.integers(1, 512))
    @settings(max_examples=50, deadline=None)
    def test_tiling_property(self, total, block):
        chunks = fixed_chunks(total, block)
        pos = 0
        for c in chunks:
            assert c.offset == pos
            pos = c.end
        assert pos == total


class TestChunkDigest:
    def test_full_sha1(self):
        data = b"digest me"
        assert chunk_digest(data) == hashlib.sha1(data).digest()

    def test_truncation(self):
        assert len(chunk_digest(b"x", truncate=8)) == 8

    def test_truncation_bounds(self):
        with pytest.raises(ValueError):
            chunk_digest(b"x", truncate=3)
        with pytest.raises(ValueError):
            chunk_digest(b"x", truncate=DIGEST_SIZE + 1)


class TestDigestTable:
    def test_from_chunks_and_lookup(self):
        data = b"aaaabbbbccccaaaa"
        chunks = fixed_chunks(len(data), 4)
        table = DigestTable.from_chunks(data, chunks)
        hits = table.lookup(chunk_digest(b"aaaa"))
        assert [h.offset for h in hits] == [0, 12]  # both 'aaaa' blocks

    def test_miss_returns_empty(self):
        table = DigestTable()
        assert table.lookup(b"\x00" * DIGEST_SIZE) == []

    def test_contains_and_len(self):
        table = DigestTable(truncate=8)
        table.add(chunk_digest(b"block", 8), 0, 5)
        assert chunk_digest(b"block", 8) in table
        assert len(table) == 1

    def test_wrong_digest_length_rejected(self):
        table = DigestTable(truncate=8)
        with pytest.raises(ValueError):
            table.add(b"\x00" * 20, 0, 5)

    def test_wire_size_scales_with_chunks(self):
        data = bytes(100)
        table = DigestTable.from_chunks(data, fixed_chunks(100, 10), truncate=8)
        assert table.wire_size() == 10 * (8 + 8)

    def test_digests_insertion_ordered(self):
        table = DigestTable(truncate=8)
        d1, d2 = chunk_digest(b"one", 8), chunk_digest(b"two", 8)
        table.add(d1, 0, 3)
        table.add(d2, 3, 3)
        assert table.digests() == [d1, d2]
