"""Content-defined chunking tests."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.chunking.cdc import Chunk, ContentDefinedChunker, chunk_spans


@pytest.fixture(scope="module")
def data():
    return random.Random(1).randbytes(60_000)


@pytest.fixture(scope="module")
def chunker():
    return ContentDefinedChunker(mask_bits=10)


class TestChunk:
    def test_span_properties(self):
        c = Chunk(10, 5)
        assert c.end == 15
        assert c.slice(bytes(range(20))) == bytes(range(10, 15))


class TestChunking:
    def test_empty_input(self, chunker):
        assert chunker.chunk(b"") == []

    def test_chunks_tile_input(self, chunker, data):
        chunks = chunker.chunk(data)
        chunk_spans(chunks, len(data))  # raises on gap/overlap

    def test_chunk_bytes_reassemble(self, chunker, data):
        assert b"".join(chunker.chunk_bytes(data)) == data

    def test_size_bounds_respected(self, chunker, data):
        chunks = chunker.chunk(data)
        for c in chunks[:-1]:  # final chunk may be short
            assert chunker.min_size <= c.length <= chunker.max_size

    def test_average_size_near_expected(self, chunker, data):
        chunks = chunker.chunk(data)
        avg = len(data) / len(chunks)
        assert 0.5 * chunker.expected_size < avg < 3.0 * chunker.expected_size

    def test_deterministic(self, chunker, data):
        assert chunker.chunk(data) == chunker.chunk(data)

    def test_insertion_shifts_boundaries_locally_only(self, chunker, data):
        """The LBFS property the Vary PAD depends on."""
        edited = data[:30_000] + b"INSERTED-BYTES!!" + data[30_000:]
        before = set(chunker.boundaries(data))
        after = set(chunker.boundaries(edited))
        pre = {b for b in before if b <= 29_000}
        post = {b + 16 for b in before if b > 30_100}
        assert pre <= after
        survived = len(post & after) / max(1, len(post))
        assert survived > 0.9

    def test_deletion_preserves_downstream_boundaries(self, chunker, data):
        edited = data[:20_000] + data[20_050:]
        before = set(chunker.boundaries(data))
        after = set(chunker.boundaries(edited))
        post = {b - 50 for b in before if b > 21_000}
        assert len(post & after) / max(1, len(post)) > 0.9

    def test_constant_data_cut_at_max_size(self):
        ch = ContentDefinedChunker(mask_bits=8, magic=1)
        chunks = ch.chunk(b"\x00" * 10_000)
        for c in chunks[:-1]:
            assert c.length == ch.max_size

    def test_mask_bits_validation(self):
        with pytest.raises(ValueError):
            ContentDefinedChunker(mask_bits=3)
        with pytest.raises(ValueError):
            ContentDefinedChunker(mask_bits=25)

    def test_min_ge_max_rejected(self):
        with pytest.raises(ValueError):
            ContentDefinedChunker(mask_bits=10, min_size=4096, max_size=4096)

    def test_min_size_floored_at_window(self):
        ch = ContentDefinedChunker(mask_bits=10, min_size=8, window=48)
        assert ch.min_size == 48


class TestChunkSpansValidator:
    def test_detects_gap(self):
        with pytest.raises(ValueError, match="gap"):
            chunk_spans([Chunk(0, 5), Chunk(6, 4)], 10)

    def test_detects_short_coverage(self):
        with pytest.raises(ValueError, match="cover"):
            chunk_spans([Chunk(0, 5)], 10)

    def test_detects_empty_chunk(self):
        with pytest.raises(ValueError, match="non-positive"):
            chunk_spans([Chunk(0, 0)], 0)


class TestProperties:
    @given(st.binary(max_size=30_000))
    @settings(max_examples=15, deadline=None)
    def test_tiling_property(self, blob):
        ch = ContentDefinedChunker(mask_bits=8)
        chunks = ch.chunk(blob)
        if blob:
            chunk_spans(chunks, len(blob))
        else:
            assert chunks == []

    @given(st.binary(min_size=2000, max_size=10_000), st.binary(max_size=64),
           st.integers(0, 1999))
    @settings(max_examples=15, deadline=None)
    def test_reassembly_after_insertion(self, blob, insertion, pos):
        ch = ContentDefinedChunker(mask_bits=8)
        edited = blob[:pos] + insertion + blob[pos:]
        assert b"".join(ch.chunk_bytes(edited)) == edited
