"""Property tests: chunk boundaries are content-stable under edits.

The whole point of Rabin/content-defined chunking (the Vary-sized
blocking PAD's substrate) is that a breakpoint depends only on the
``window`` bytes before it — so an insertion near the front of a file
must leave the boundaries in the untouched tail where they were, merely
shifted by the edit length.  Fixed-size chunking has the complementary
contract: boundaries are pure arithmetic, so the same offsets always
tile the same total.  Seeded ``random.Random`` only, no extra deps.
"""

from __future__ import annotations

import random

from repro.chunking.cdc import ContentDefinedChunker, chunk_spans
from repro.chunking.fixed import fixed_chunk_bytes, fixed_chunks

SEED = 20050404


def _chunker() -> ContentDefinedChunker:
    # Small expected size (2**6 = 64 B) so a few-KB blob has many chunks.
    return ContentDefinedChunker(mask_bits=6, window=16, min_size=16, max_size=512)


def _random_blob(rng: random.Random, n: int) -> bytes:
    return rng.randbytes(n)


class TestContentDefinedProperties:
    def test_chunks_tile_input_exactly(self):
        rng = random.Random(SEED)
        chunker = _chunker()
        for _ in range(40):
            blob = _random_blob(rng, rng.randrange(0, 8192))
            chunks = chunker.chunk(blob)
            chunk_spans(chunks, len(blob))  # raises on gap/overlap
            assert b"".join(c.slice(blob) for c in chunks) == blob

    def test_chunking_is_deterministic(self):
        rng = random.Random(SEED + 1)
        blob = _random_blob(rng, 4096)
        chunker = _chunker()
        assert chunker.chunk(blob) == _chunker().chunk(blob)

    def test_boundaries_stable_under_prefix_insert(self):
        """Insert near the front; tail boundaries shift but don't move."""
        rng = random.Random(SEED + 2)
        chunker = _chunker()
        for _ in range(25):
            blob = _random_blob(rng, 4096)
            edit_at = rng.randrange(0, 256)
            insert = rng.randbytes(rng.randrange(1, 64))
            edited = blob[:edit_at] + insert + blob[edit_at:]
            shift = len(insert)

            before = set(chunker.boundaries(blob))
            after = set(chunker.boundaries(edited))

            # Any original boundary comfortably past the edit (beyond the
            # rolling window and the min-size resynchronisation horizon)
            # must reappear shifted by exactly the insert length.
            horizon = edit_at + shift + chunker.window + chunker.max_size
            tail_before = {b for b in before if b > horizon}
            assert tail_before, "corpus too small for a meaningful tail"
            missing = {b for b in tail_before if b + shift not in after}
            assert not missing, (
                f"{len(missing)}/{len(tail_before)} tail boundaries lost "
                f"after a {shift}-byte insert at {edit_at}"
            )

    def test_boundaries_stable_under_prefix_delete(self):
        rng = random.Random(SEED + 3)
        chunker = _chunker()
        for _ in range(25):
            blob = _random_blob(rng, 4096)
            del_at = rng.randrange(0, 256)
            del_len = rng.randrange(1, 64)
            edited = blob[:del_at] + blob[del_at + del_len:]

            before = set(chunker.boundaries(blob))
            after = set(chunker.boundaries(edited))
            horizon = del_at + del_len + chunker.window + chunker.max_size
            tail_before = {b for b in before if b > horizon}
            assert tail_before
            missing = {b for b in tail_before if b - del_len not in after}
            assert not missing

    def test_shared_suffix_chunks_are_shared(self):
        """The dedup property the vary PAD monetises: identical tails
        produce identical chunk payloads, so most chunks of the edited
        version already exist on the client."""
        rng = random.Random(SEED + 4)
        chunker = _chunker()
        blob = _random_blob(rng, 8192)
        edited = rng.randbytes(40) + blob
        old_chunks = set(chunker.chunk_bytes(blob))
        new_chunks = chunker.chunk_bytes(edited)
        shared = sum(1 for c in new_chunks if c in old_chunks)
        assert shared / len(new_chunks) > 0.8


class TestFixedChunkingProperties:
    def test_tiles_exactly_for_random_sizes(self):
        rng = random.Random(SEED + 5)
        for _ in range(60):
            total = rng.randrange(0, 10_000)
            block = rng.randrange(1, 512)
            chunks = fixed_chunks(total, block)
            chunk_spans(chunks, total)
            assert all(c.length == block for c in chunks[:-1])
            if chunks:
                assert 1 <= chunks[-1].length <= block

    def test_reassembly_identity(self):
        rng = random.Random(SEED + 6)
        for _ in range(40):
            blob = rng.randbytes(rng.randrange(0, 8192))
            block = rng.randrange(1, 700)
            assert b"".join(fixed_chunk_bytes(blob, block)) == blob

    def test_fixed_boundaries_are_position_defined(self):
        """The contrast property: a 1-byte prefix insert shifts *content*
        through every downstream block — no boundary is content-stable."""
        rng = random.Random(SEED + 7)
        blob = rng.randbytes(4096)
        shifted = b"X" + blob
        a = fixed_chunk_bytes(blob, 64)
        b = fixed_chunk_bytes(shifted, 64)
        # All full blocks after the edit differ (bytes slid across them).
        assert sum(x == y for x, y in zip(a, b[1:])) == 0
