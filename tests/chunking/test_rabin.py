"""Rabin fingerprinting tests."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.chunking.rabin import (
    DEFAULT_POLYNOMIAL,
    RabinFingerprint,
    is_irreducible,
    polymod,
    polymulmod,
    polynomial_degree,
)


class TestPolynomialArithmetic:
    def test_degree(self):
        assert polynomial_degree(0b1) == 0
        assert polynomial_degree(0b1000) == 3
        assert polynomial_degree(0) == -1

    def test_polymod_basics(self):
        # x^3 mod (x^3 + x + 1) = x + 1
        assert polymod(0b1000, 0b1011) == 0b011

    def test_polymod_identity_below_degree(self):
        assert polymod(0b101, 0b1011) == 0b101

    def test_polymod_of_modulus_is_zero(self):
        assert polymod(DEFAULT_POLYNOMIAL, DEFAULT_POLYNOMIAL) == 0

    def test_polymulmod_commutative(self):
        p = 0b1011
        for a in range(8):
            for b in range(8):
                assert polymulmod(a, b, p) == polymulmod(b, a, p)

    def test_polymulmod_distributes_over_xor(self):
        p = DEFAULT_POLYNOMIAL
        rng = random.Random(1)
        for _ in range(20):
            a, b, c = (rng.getrandbits(50) for _ in range(3))
            left = polymulmod(a, b ^ c, p)
            right = polymulmod(a, b, p) ^ polymulmod(a, c, p)
            assert left == right


class TestIrreducibility:
    def test_default_polynomial_is_irreducible(self):
        assert is_irreducible(DEFAULT_POLYNOMIAL)

    def test_known_irreducibles(self):
        for p in (0b111, 0b1011, 0b1101, 0b10011):  # classic small ones
            assert is_irreducible(p), bin(p)

    def test_known_reducibles(self):
        # x^2 + x = x(x+1); x^4+x^2+1 = (x^2+x+1)^2
        for p in (0b110, 0b10101):
            assert not is_irreducible(p), bin(p)

    def test_degree_zero_not_irreducible(self):
        assert not is_irreducible(0b1)


class TestRollingFingerprint:
    def test_matches_direct_computation(self):
        rng = random.Random(3)
        data = rng.randbytes(400)
        fp = RabinFingerprint(window=48)
        for i, b in enumerate(data):
            rolled = fp.roll(b)
            window = data[max(0, i - 47) : i + 1]
            direct = 0
            for byte in window:
                direct = polymod((direct << 8) | byte, fp.polynomial)
            assert rolled == direct, f"divergence at byte {i}"

    def test_fingerprint_depends_only_on_window(self):
        rng = random.Random(4)
        window = rng.randbytes(48)
        fp = RabinFingerprint()
        a = fp.fingerprint_of(rng.randbytes(333) + window)
        b = fp.fingerprint_of(rng.randbytes(77) + window)
        assert a == b

    def test_different_windows_differ(self):
        fp = RabinFingerprint()
        rng = random.Random(5)
        values = {fp.fingerprint_of(rng.randbytes(48)) for _ in range(50)}
        assert len(values) == 50  # 2^53 space; collisions would be a bug

    def test_low_bits_are_well_distributed(self):
        rng = random.Random(6)
        data = rng.randbytes(50_000)
        fp = RabinFingerprint()
        hits = sum(
            1
            for i, f in enumerate(fp.roll_bytes(data))
            if i >= 48 and (f & 0x3FF) == 0
        )
        expected = (len(data) - 48) / 1024
        assert 0.4 * expected < hits < 2.5 * expected

    def test_reset_clears_state(self):
        fp = RabinFingerprint()
        fp.roll_bytes(b"some bytes to pollute state")
        fp.reset()
        a = [fp.roll(b) for b in b"abc"]
        fp2 = RabinFingerprint()
        b = [fp2.roll(x) for x in b"abc"]
        assert a == b

    def test_window_validation(self):
        with pytest.raises(ValueError):
            RabinFingerprint(window=0)

    def test_polynomial_degree_validation(self):
        with pytest.raises(ValueError):
            RabinFingerprint(polynomial=0b1011)  # degree 3 < 8

    @given(st.binary(min_size=48, max_size=48), st.binary(max_size=100))
    @settings(max_examples=25, deadline=None)
    def test_window_purity_property(self, window, prefix):
        fp = RabinFingerprint()
        assert fp.fingerprint_of(prefix + window) == fp.fingerprint_of(window)
