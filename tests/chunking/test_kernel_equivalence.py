"""Fused/vectorized CDC kernels vs the retained per-byte reference.

``ContentDefinedChunker`` now scans three ways (numpy pair-table gather,
fused scalar loop, and the original ``boundaries_reference`` roll); these
tests pin all of them to identical boundaries, including on corpora that a
prefix edit has shifted — the insert/delete resilience the vary-sized
blocking PAD exists for.  Also covers the shared Rabin table cache.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.chunking import cdc
from repro.chunking.cdc import ContentDefinedChunker
from repro.chunking.rabin import (
    DEFAULT_POLYNOMIAL,
    DEFAULT_WINDOW,
    RabinFingerprint,
    tables_for,
)


def _reference(chunker, data):
    return list(chunker.boundaries_reference(data))


def _all_kernels(chunker, data):
    """(numpy-or-default, forced-python, reference) boundary lists."""
    fused = chunker._scan(data)
    python = chunker._scan_python(data) if len(data) >= chunker.min_size else []
    return fused, python, _reference(chunker, data)


class TestKernelEquivalence:
    @pytest.mark.parametrize("mask_bits,min_size,max_size", [
        (8, None, None),
        (10, None, None),
        (10, 64, 200),
        (13, None, None),
        (13, 48, 100),
    ])
    def test_all_kernels_agree_on_random_data(self, mask_bits, min_size, max_size):
        rng = random.Random(mask_bits * 1000 + (min_size or 0))
        chunker = ContentDefinedChunker(
            mask_bits=mask_bits, min_size=min_size, max_size=max_size
        )
        for size in (0, 47, 48, 100, 4095, 4096, 20_000):
            data = rng.randbytes(size)
            fused, python, ref = _all_kernels(chunker, data)
            assert fused == ref, (mask_bits, size)
            assert python == ref, (mask_bits, size)

    def test_prefix_mutation_shifts_boundaries_identically(self):
        """Edits near the start must not change how the kernels agree."""
        rng = random.Random(77)
        base = rng.randbytes(30_000)
        chunker = ContentDefinedChunker(mask_bits=10)
        for mutated in (
            b"x" + base,                      # one-byte insert at the front
            base[100:],                       # prefix deletion
            rng.randbytes(257) + base,        # large prefix insert
            base[:500] + b"\xff" * 16 + base[500:],  # mid-prefix splice
        ):
            fused, python, ref = _all_kernels(chunker, mutated)
            assert fused == ref
            assert python == ref

    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=0, max_size=6000), st.integers(0, 3))
    def test_property_fused_equals_reference(self, data, variant):
        chunker = ContentDefinedChunker(
            mask_bits=(8, 9, 10, 11)[variant], window=16, min_size=16
        )
        fused, python, ref = _all_kernels(chunker, data)
        assert fused == ref
        assert python == ref

    @pytest.mark.skipif(cdc._np is None, reason="numpy unavailable")
    def test_numpy_and_python_paths_both_exercised(self):
        data = random.Random(3).randbytes(10_000)
        chunker = ContentDefinedChunker(mask_bits=9)
        assert len(data) >= cdc._NUMPY_MIN_BYTES  # dispatch takes the numpy path
        assert chunker._scan_numpy(data) == chunker._scan_python(data)


class TestSharedTableCache:
    def test_two_chunkers_share_rabin_tables(self):
        a = ContentDefinedChunker(mask_bits=10)
        b = ContentDefinedChunker(mask_bits=13, min_size=64, max_size=4096)
        ta = tables_for(a.polynomial, a.window)
        tb = tables_for(b.polynomial, b.window)
        assert ta is tb  # same (polynomial, window) -> one cached build

    def test_fingerprint_and_chunker_share_tables(self):
        fp = RabinFingerprint(DEFAULT_POLYNOMIAL, DEFAULT_WINDOW)
        shift, out = tables_for(DEFAULT_POLYNOMIAL, DEFAULT_WINDOW)
        assert fp._shift_table is shift
        assert fp._out_table is out

    def test_distinct_parameters_get_distinct_tables(self):
        t48 = tables_for(DEFAULT_POLYNOMIAL, 48)
        t16 = tables_for(DEFAULT_POLYNOMIAL, 16)
        assert t48 is not t16

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            tables_for(DEFAULT_POLYNOMIAL, 0)
        with pytest.raises(ValueError):
            tables_for(0x3, 48)
