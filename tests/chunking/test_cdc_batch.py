"""Batched CDC equivalence: one corpus-wide scan, per-page boundaries.

``boundaries_batch`` concatenates every page into a single numpy scan, so
the dangerous candidates are positions whose Rabin window *straddles* a
page seam — those fingerprint the concatenation, not either page, and
must be filtered out.  These suites build corpora whose pages are
adjacent slices of one continuous buffer (every seam byte-compatible, so
a straddling window that leaks through WOULD fire) and require exact
equality with the per-page scan.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.chunking.cdc import ContentDefinedChunker, chunk_spans


@pytest.fixture(scope="module")
def chunker():
    return ContentDefinedChunker(mask_bits=10)


@pytest.fixture(scope="module")
def pages():
    rng = random.Random(20)
    return [rng.randbytes(rng.randrange(2_000, 20_000)) for _ in range(8)]


class TestBoundariesBatchEquivalence:
    def test_seeded_pages_match_per_page(self, chunker, pages):
        want = [list(chunker.boundaries(p)) for p in pages]
        assert chunker.boundaries_batch(pages) == want

    def test_pages_cut_from_one_continuous_buffer(self, chunker):
        # Adjacent slices of one buffer: every batch seam is between
        # bytes that were contiguous in the source, so any window
        # straddling a seam computes a fingerprint that DID fire in the
        # uncut buffer — the filter must still drop it.
        data = random.Random(21).randbytes(60_000)
        cuts = [0, 7_001, 7_013, 19_777, 40_000, 60_000]
        pieces = [data[a:b] for a, b in zip(cuts, cuts[1:])]
        want = [list(chunker.boundaries(p)) for p in pieces]
        assert chunker.boundaries_batch(pieces) == want

    def test_repeated_identical_pages(self, chunker):
        page = random.Random(22).randbytes(9_000)
        batch = chunker.boundaries_batch([page] * 4)
        want = list(chunker.boundaries(page))
        assert batch == [want] * 4

    def test_mixed_tiny_and_large_pages(self, chunker):
        rng = random.Random(23)
        mixed = [b"", b"xy", rng.randbytes(30_000), b"z" * 10,
                 rng.randbytes(5_000), b""]
        want = [list(chunker.boundaries(p)) for p in mixed]
        assert chunker.boundaries_batch(mixed) == want

    def test_single_page_falls_back(self, chunker):
        page = random.Random(24).randbytes(12_000)
        assert chunker.boundaries_batch([page]) == [
            list(chunker.boundaries(page))
        ]

    def test_empty_corpus(self, chunker):
        assert chunker.boundaries_batch([]) == []

    def test_odd_window_falls_back_identically(self):
        ch = ContentDefinedChunker(mask_bits=8, window=49)
        pgs = [random.Random(s).randbytes(6_000) for s in range(3)]
        assert ch.boundaries_batch(pgs) == [list(ch.boundaries(p)) for p in pgs]

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.lists(st.integers(min_value=0, max_value=8_000), min_size=2, max_size=6),
    )
    def test_property_arbitrary_slicings(self, seed, sizes):
        # Random page sizes sliced out of one continuous random buffer —
        # straddling candidates abound; equality must be exact.
        ch = ContentDefinedChunker(mask_bits=9)
        data = random.Random(seed).randbytes(sum(sizes))
        pieces, pos = [], 0
        for s in sizes:
            pieces.append(data[pos : pos + s])
            pos += s
        assert ch.boundaries_batch(pieces) == [
            list(ch.boundaries(p)) for p in pieces
        ]


class TestChunkBatch:
    def test_chunk_batch_matches_per_page(self, chunker, pages):
        assert chunker.chunk_batch(pages) == [chunker.chunk(p) for p in pages]

    def test_chunk_batch_tiles_every_page(self, chunker, pages):
        for page, chunks in zip(pages, chunker.chunk_batch(pages)):
            chunk_spans(chunks, len(page))  # raises on gap/overlap
