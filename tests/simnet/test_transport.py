"""In-process transport and SimChannel tests."""

import pytest

from repro.simnet.kernel import Simulator
from repro.simnet.link import LinkSpec, NetworkType, mbps
from repro.simnet.transport import InProcessTransport, SimChannel, TransportError


class TestInProcessTransport:
    def test_request_response(self):
        t = InProcessTransport()
        t.bind("echo", lambda payload: b"re:" + payload)
        assert t.request("cli", "echo", b"hello") == b"re:hello"

    def test_unknown_endpoint(self):
        t = InProcessTransport()
        with pytest.raises(TransportError, match="no handler"):
            t.request("cli", "ghost", b"x")

    def test_double_bind_rejected(self):
        t = InProcessTransport()
        t.bind("svc", lambda p: p)
        with pytest.raises(TransportError, match="already bound"):
            t.bind("svc", lambda p: p)

    def test_unbind_then_rebind(self):
        t = InProcessTransport()
        t.bind("svc", lambda p: b"v1")
        t.unbind("svc")
        t.bind("svc", lambda p: b"v2")
        assert t.request("cli", "svc", b"") == b"v2"

    def test_non_bytes_response_rejected(self):
        t = InProcessTransport()
        t.bind("bad", lambda p: "a string")
        with pytest.raises(TransportError, match="expected bytes"):
            t.request("cli", "bad", b"")

    def test_bytearray_response_accepted(self):
        t = InProcessTransport()
        t.bind("ba", lambda p: bytearray(b"ok"))
        assert t.request("cli", "ba", b"") == b"ok"

    def test_traffic_metering_both_sides(self):
        t = InProcessTransport()
        t.bind("svc", lambda p: b"12345")
        t.request("cli", "svc", b"123")
        assert t.meter("cli").bytes_sent == 3
        assert t.meter("cli").bytes_received == 5
        assert t.meter("svc").bytes_received == 3
        assert t.meter("svc").bytes_sent == 5
        assert t.meter("cli").total_bytes == 8

    def test_meter_reset(self):
        t = InProcessTransport()
        t.bind("svc", lambda p: b"")
        t.request("cli", "svc", b"abc")
        t.meter("cli").reset()
        assert t.meter("cli").total_bytes == 0

    def test_endpoints_listing(self):
        t = InProcessTransport()
        t.bind("b", lambda p: p)
        t.bind("a", lambda p: p)
        assert t.endpoints() == ["a", "b"]


class TestSimChannel:
    def _link(self):
        return LinkSpec(NetworkType.LAN, mbps(8), 0.010, rho=1.0)

    def test_transfer_takes_link_time(self):
        sim = Simulator()
        chan = SimChannel(sim, self._link())

        def proc():
            yield from chan.transfer(1_000_000)  # 1s at 8Mbps + 10ms
            return sim.now

        assert sim.run_process(proc()) == pytest.approx(1.010)

    def test_round_trip_includes_service(self):
        sim = Simulator()
        chan = SimChannel(sim, self._link())

        def proc():
            yield from chan.round_trip(1000, 1000, service_time=0.5)
            return sim.now

        expected = 2 * (1000 * 8 / 8e6 + 0.010) + 0.5
        assert sim.run_process(proc()) == pytest.approx(expected)

    def test_bandwidth_share_slows_transfer(self):
        sim = Simulator()
        chan = SimChannel(sim, self._link())

        def proc():
            yield from chan.round_trip(0, 8_000_000, bandwidth_share=0.5)
            return sim.now

        # 8 MB at 4 Mbps = 16s plus two latencies.
        assert sim.run_process(proc()) == pytest.approx(16.020)

    def test_invalid_share_rejected(self):
        sim = Simulator()
        chan = SimChannel(sim, self._link())
        with pytest.raises(ValueError):
            list(chan.round_trip(1, 1, bandwidth_share=0.0))

    def test_meter_counts(self):
        sim = Simulator()
        chan = SimChannel(sim, self._link())

        def proc():
            yield from chan.round_trip(100, 200)

        sim.run_process(proc())
        assert chan.meter.bytes_sent == 100
        assert chan.meter.bytes_received == 200
