"""Unit tests for the discrete-event kernel."""

import pytest

from repro.simnet.kernel import (
    Interrupt,
    Resource,
    SimError,
    Simulator,
    Store,
)


@pytest.fixture()
def sim():
    return Simulator()


class TestTimeout:
    def test_advances_time(self, sim):
        def proc():
            yield sim.timeout(5.0)
            return sim.now

        assert sim.run_process(proc()) == 5.0

    def test_zero_delay_is_legal(self, sim):
        def proc():
            yield sim.timeout(0.0)
            return sim.now

        assert sim.run_process(proc()) == 0.0

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimError):
            sim.timeout(-1.0)

    def test_timeout_carries_value(self, sim):
        def proc():
            value = yield sim.timeout(1.0, value="payload")
            return value

        assert sim.run_process(proc()) == "payload"

    def test_same_time_events_fire_in_schedule_order(self, sim):
        order = []

        def proc(tag):
            yield sim.timeout(1.0)
            order.append(tag)

        for tag in ("a", "b", "c"):
            sim.process(proc(tag))
        sim.run()
        assert order == ["a", "b", "c"]


class TestRunControl:
    def test_run_until_stops_clock(self, sim):
        def proc():
            yield sim.timeout(10.0)

        sim.process(proc())
        sim.run(until=4.0)
        assert sim.now == 4.0

    def test_run_until_then_resume(self, sim):
        done = []

        def proc():
            yield sim.timeout(10.0)
            done.append(sim.now)

        sim.process(proc())
        sim.run(until=4.0)
        assert not done
        sim.run()
        assert done == [10.0]

    def test_deadlock_detected(self, sim):
        def proc():
            yield sim.event()  # never triggered

        with pytest.raises(SimError, match="deadlock"):
            sim.run_process(proc())

    def test_events_processed_counter(self, sim):
        def proc():
            yield sim.timeout(1.0)
            yield sim.timeout(1.0)

        sim.run_process(proc())
        assert sim.events_processed >= 3  # bootstrap + 2 timeouts


class TestProcess:
    def test_return_value_propagates(self, sim):
        def child():
            yield sim.timeout(2.0)
            return 42

        def parent():
            value = yield sim.process(child())
            return value

        assert sim.run_process(parent()) == 42

    def test_exception_propagates_to_waiter(self, sim):
        def child():
            yield sim.timeout(1.0)
            raise ValueError("child failed")

        def parent():
            try:
                yield sim.process(child())
            except ValueError as exc:
                return str(exc)

        assert sim.run_process(parent()) == "child failed"

    def test_unwaited_crash_surfaces(self, sim):
        def child():
            yield sim.timeout(1.0)
            raise RuntimeError("unobserved")

        sim.process(child())
        with pytest.raises(RuntimeError, match="unobserved"):
            sim.run()

    def test_yielding_non_event_fails(self, sim):
        def proc():
            yield 42

        def parent():
            try:
                yield sim.process(proc())
            except SimError as exc:
                return "caught" in "caught" and str(exc)

        result = sim.run_process(parent())
        assert "must yield SimEvent" in result

    def test_non_generator_rejected(self, sim):
        with pytest.raises(TypeError):
            sim.process(lambda: None)

    def test_interrupt_wakes_sleeper(self, sim):
        log = []

        def sleeper():
            try:
                yield sim.timeout(100.0)
            except Interrupt as intr:
                log.append((sim.now, intr.cause))

        def interrupter(target):
            yield sim.timeout(3.0)
            target.interrupt(cause="wake up")

        target = sim.process(sleeper())
        sim.process(interrupter(target))
        sim.run()
        assert log == [(3.0, "wake up")]

    def test_interrupt_dead_process_errors(self, sim):
        def quick():
            yield sim.timeout(1.0)

        proc = sim.process(quick())
        sim.run()
        with pytest.raises(SimError):
            proc.interrupt()

    def test_is_alive_lifecycle(self, sim):
        def proc():
            yield sim.timeout(1.0)

        p = sim.process(proc())
        assert p.is_alive
        sim.run()
        assert not p.is_alive


class TestResource:
    def test_capacity_limits_concurrency(self, sim):
        active = []
        peak = []

        def worker():
            req = res.acquire()
            yield req
            active.append(1)
            peak.append(len(active))
            yield sim.timeout(1.0)
            active.pop()
            res.release()

        res = sim.resource(capacity=2)
        for _ in range(6):
            sim.process(worker())
        sim.run()
        assert max(peak) == 2
        assert sim.now == 3.0  # 6 jobs / 2 slots * 1s

    def test_fifo_ordering(self, sim):
        order = []

        def worker(tag):
            req = res.acquire()
            yield req
            order.append(tag)
            yield sim.timeout(1.0)
            res.release()

        res = sim.resource(capacity=1)
        for tag in range(5):
            sim.process(worker(tag))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_release_idle_raises(self, sim):
        res = sim.resource(capacity=1)
        with pytest.raises(SimError):
            res.release()

    def test_bad_capacity_rejected(self, sim):
        with pytest.raises(SimError):
            Resource(sim, capacity=0)

    def test_utilization_tracks_busy_time(self, sim):
        def worker():
            req = res.acquire()
            yield req
            yield sim.timeout(2.0)
            res.release()
            yield sim.timeout(2.0)  # idle tail

        res = sim.resource(capacity=1)
        sim.process(worker())
        sim.run()
        assert res.utilization() == pytest.approx(0.5)

    def test_interrupted_waiter_does_not_hold_slot(self, sim):
        """A queued waiter that is interrupted must not leak the slot."""
        got = []

        def holder():
            req = res.acquire()
            yield req
            yield sim.timeout(5.0)
            res.release()

        def waiter():
            req = res.acquire()
            try:
                yield req
            except Interrupt:
                return
            got.append("waiter ran")
            res.release()

        def late():
            yield sim.timeout(6.0)
            req = res.acquire()
            yield req
            got.append("late ran")
            res.release()

        def interrupter(target):
            yield sim.timeout(1.0)
            target.interrupt()

        res = sim.resource(capacity=1)
        sim.process(holder())
        w = sim.process(waiter())
        sim.process(interrupter(w))
        sim.process(late())
        sim.run()
        assert got == ["late ran"]
        assert res.in_use == 0

    def test_queue_stats(self, sim):
        def worker():
            req = res.acquire()
            yield req
            yield sim.timeout(1.0)
            res.release()

        res = sim.resource(capacity=1)
        for _ in range(4):
            sim.process(worker())
        sim.run()
        assert res.total_acquires == 4
        assert res.peak_queue_len == 3


class TestStore:
    def test_put_then_get(self, sim):
        store = sim.store()
        store.put("x")

        def proc():
            item = yield store.get()
            return item

        assert sim.run_process(proc()) == "x"

    def test_get_blocks_until_put(self, sim):
        def consumer():
            item = yield store.get()
            return (sim.now, item)

        def producer():
            yield sim.timeout(5.0)
            store.put("late")

        store = sim.store()
        sim.process(producer())
        assert sim.run_process(consumer()) == (5.0, "late")

    def test_fifo_item_order(self, sim):
        store = sim.store()
        for i in range(3):
            store.put(i)

        def proc():
            out = []
            for _ in range(3):
                out.append((yield store.get()))
            return out

        assert sim.run_process(proc()) == [0, 1, 2]

    def test_len(self, sim):
        store = sim.store()
        assert len(store) == 0
        store.put(1)
        assert len(store) == 1


class TestAllOf:
    def test_waits_for_all(self, sim):
        def child(delay, value):
            yield sim.timeout(delay)
            return value

        def parent():
            procs = [sim.process(child(d, d)) for d in (3.0, 1.0, 2.0)]
            results = yield sim.all_of(procs)
            return (sim.now, results)

        now, results = sim.run_process(parent())
        assert now == 3.0
        assert results == [3.0, 1.0, 2.0]

    def test_empty_fires_immediately(self, sim):
        def parent():
            results = yield sim.all_of([])
            return results

        assert sim.run_process(parent()) == []

    def test_failure_propagates(self, sim):
        def bad():
            yield sim.timeout(1.0)
            raise ValueError("boom")

        def parent():
            try:
                yield sim.all_of([sim.process(bad())])
            except ValueError:
                return "failed"

        assert sim.run_process(parent()) == "failed"


class TestEvent:
    def test_double_trigger_rejected(self, sim):
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimError):
            ev.succeed(2)

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_value_raises_stored_exception(self, sim):
        ev = sim.event()
        ev.fail(ValueError("stored"))
        sim.run()
        with pytest.raises(ValueError, match="stored"):
            _ = ev.value
