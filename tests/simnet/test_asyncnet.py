"""Asyncio TCP transport tests (real sockets on one event loop)."""

import asyncio
import socket

import pytest

from repro.simnet import realnet
from repro.simnet.asyncnet import AsyncTcpEndpoint, AsyncTcpTransport
from repro.simnet.transport import TransportError


def run(coro):
    return asyncio.run(coro)


class TestAsyncTcpTransport:
    def test_request_response_sync_handler(self):
        async def main():
            async with AsyncTcpTransport() as t:
                await t.bind("echo", lambda p: b"re:" + p)
                return await t.request("cli", "echo", b"hello")

        assert run(main()) == b"re:hello"

    def test_request_response_async_handler(self):
        async def handler(payload):
            await asyncio.sleep(0)  # prove awaitables are awaited
            return payload[::-1]

        async def main():
            async with AsyncTcpTransport() as t:
                await t.bind("rev", handler)
                return await t.request("cli", "rev", b"abc")

        assert run(main()) == b"cba"

    def test_large_frame(self):
        payload = bytes(range(256)) * 2048  # 512 KiB

        async def main():
            async with AsyncTcpTransport() as t:
                await t.bind("big", lambda p: p * 2)
                return await t.request("cli", "big", payload)

        assert run(main()) == payload * 2

    def test_handler_exception_surfaces_as_transport_error(self):
        def boom(_p):
            raise RuntimeError("server-side failure")

        async def main():
            async with AsyncTcpTransport() as t:
                await t.bind("boom", boom)
                await t.request("cli", "boom", b"")

        with pytest.raises(TransportError, match="server-side failure"):
            run(main())

    def test_unknown_endpoint(self):
        async def main():
            async with AsyncTcpTransport() as t:
                await t.request("cli", "ghost", b"")

        with pytest.raises(TransportError, match="no handler"):
            run(main())

    def test_unbind_stops_service(self):
        async def main():
            async with AsyncTcpTransport() as t:
                await t.bind("tmp", lambda p: p)
                await t.unbind("tmp")
                assert t.endpoints() == []
                await t.request("cli", "tmp", b"")

        with pytest.raises(TransportError):
            run(main())

    def test_double_bind_rejected(self):
        async def main():
            async with AsyncTcpTransport() as t:
                await t.bind("svc", lambda p: p)
                await t.bind("svc", lambda p: p)

        with pytest.raises(TransportError, match="already bound"):
            run(main())

    def test_concurrent_clients_on_one_loop(self):
        async def main():
            async with AsyncTcpTransport() as t:
                await t.bind("sum", lambda p: bytes([sum(p) % 256]))
                results = await asyncio.gather(
                    *(t.request(f"cli{i}", "sum", bytes([i, i])) for i in range(32))
                )
                return results

        results = run(main())
        for i, result in enumerate(results):
            assert result == bytes([(2 * i) % 256])


class TestPersistentConnections:
    def test_same_peer_reuses_connection(self):
        async def main():
            async with AsyncTcpTransport() as t:
                await t.bind("svc", lambda p: p)
                for _ in range(5):
                    await t.request("cli", "svc", b"x")
                return t._endpoints["svc"].connections_served

        assert run(main()) == 1

    def test_distinct_peers_get_distinct_connections(self):
        async def main():
            async with AsyncTcpTransport() as t:
                await t.bind("svc", lambda p: p)
                await t.request("cli-a", "svc", b"x")
                await t.request("cli-b", "svc", b"x")
                await t.request("cli-a", "svc", b"x")
                return t._endpoints["svc"].connections_served

        assert run(main()) == 2

    def test_idle_closed_connection_is_transparently_reopened(self):
        async def main():
            async with AsyncTcpTransport(idle_timeout_s=0.2) as t:
                await t.bind("svc", lambda p: p)
                assert await t.request("cli", "svc", b"1") == b"1"
                await asyncio.sleep(0.6)  # server idle-closes our conn
                assert await t.request("cli", "svc", b"2") == b"2"
                return t._endpoints["svc"].connections_served

        assert run(main()) == 2


class TestMeterSymmetry:
    def test_client_and_endpoint_meters_mirror(self):
        async def main():
            async with AsyncTcpTransport() as t:
                await t.bind("svc", lambda p: p + p)
                for payload in (b"", b"x", b"hello world"):
                    await t.request("cli", "svc", payload)
                cli = t.meter("cli")
                svc = t.endpoint_meter("svc")
                assert cli.bytes_sent == svc.bytes_received
                assert cli.bytes_received == svc.bytes_sent
                assert cli.messages_sent == svc.messages_received == 3
                # On-wire framing: 4-byte header + payload each way.
                assert cli.bytes_sent == 3 * 4 + len(b"x") + len(b"hello world")

        run(main())

    def test_failed_connect_counts_nothing(self):
        async def main():
            async with AsyncTcpTransport() as t:
                await t.bind("svc", lambda p: p)
                await t._endpoints["svc"].close()  # kill listener, keep entry
                with pytest.raises(TransportError):
                    await t.request("cli", "svc", b"payload")
                meter = t.meter("cli")
                assert meter.bytes_sent == 0
                assert meter.messages_sent == 0
                assert meter.bytes_received == 0

        run(main())


class TestWireCompatibility:
    def test_blocking_realnet_client_talks_to_async_endpoint(self):
        """The asyncio server speaks byte-identical realnet framing."""

        def sync_roundtrip(address):
            with socket.create_connection(address, timeout=2.0) as sock:
                sock.settimeout(2.0)
                realnet.send_frame(sock, b"ping")
                return realnet.recv_frame(sock)

        async def main():
            ep = AsyncTcpEndpoint("svc", lambda p: b"pong:" + p)
            await ep.start()
            try:
                return await asyncio.to_thread(sync_roundtrip, ep.address)
            finally:
                await ep.close()

        framed = run(main())
        assert framed == b"\x01pong:ping"

    def test_timeout_validation_matches_realnet(self):
        with pytest.raises(ValueError, match="positive"):
            AsyncTcpTransport(request_timeout_s=0.0)
        with pytest.raises(ValueError, match="positive"):
            AsyncTcpTransport(idle_timeout_s=-1.0)
        t = AsyncTcpTransport(request_timeout_s=42.0)
        assert t.idle_timeout_s == 42.0
