"""TCP loopback transport tests (real sockets)."""

import threading

import pytest

from repro.simnet.realnet import TcpTransport
from repro.simnet.transport import TransportError


@pytest.fixture()
def transport():
    t = TcpTransport()
    yield t
    t.close()


class TestTcpTransport:
    def test_request_response(self, transport):
        transport.bind("echo", lambda p: b"re:" + p)
        assert transport.request("cli", "echo", b"hello") == b"re:hello"

    def test_large_frame(self, transport):
        transport.bind("big", lambda p: p * 2)
        payload = bytes(range(256)) * 2048  # 512 KiB
        assert transport.request("cli", "big", payload) == payload * 2

    def test_handler_exception_surfaces_as_transport_error(self, transport):
        def boom(_p):
            raise RuntimeError("server-side failure")

        transport.bind("boom", boom)
        with pytest.raises(TransportError, match="server-side failure"):
            transport.request("cli", "boom", b"")

    def test_unknown_endpoint(self, transport):
        with pytest.raises(TransportError, match="no handler"):
            transport.request("cli", "ghost", b"")

    def test_unbind_stops_service(self, transport):
        transport.bind("tmp", lambda p: p)
        transport.unbind("tmp")
        with pytest.raises(TransportError):
            transport.request("cli", "tmp", b"")

    def test_concurrent_clients(self, transport):
        transport.bind("sum", lambda p: bytes([sum(p) % 256]))
        results = {}

        def worker(i):
            results[i] = transport.request(f"cli{i}", "sum", bytes([i, i]))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i in range(8):
            assert results[i] == bytes([(2 * i) % 256])

    def test_meters_count_frames(self, transport):
        transport.bind("svc", lambda p: b"xyz")
        transport.request("cli", "svc", b"ab")
        assert transport.meter("cli").bytes_sent == 2
        # Response meter includes the 1-byte status prefix.
        assert transport.meter("cli").bytes_received == 4

    def test_context_manager_closes(self):
        with TcpTransport() as t:
            t.bind("svc", lambda p: p)
            assert t.request("c", "svc", b"ok") == b"ok"
        assert t.endpoints() == []


class TestTimeouts:
    def test_invalid_timeouts_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            TcpTransport(request_timeout_s=0.0)
        with pytest.raises(ValueError, match="positive"):
            TcpTransport(connect_timeout_s=-1.0)

    def test_timeouts_are_configurable(self):
        with TcpTransport(connect_timeout_s=1.5, request_timeout_s=2.5) as t:
            assert t.connect_timeout_s == 1.5
            assert t.request_timeout_s == 2.5

    def test_wedged_handler_surfaces_as_transport_error(self):
        """A handler that never answers must not hang the caller."""
        import time

        release = threading.Event()

        def wedged(_p):
            release.wait(5.0)
            return b"too late"

        with TcpTransport(request_timeout_s=0.2) as t:
            t.bind("wedged", wedged)
            t0 = time.monotonic()
            with pytest.raises(TransportError, match="timed out"):
                t.request("cli", "wedged", b"x")
            assert time.monotonic() - t0 < 2.0
            release.set()
