"""TCP loopback transport tests (real sockets)."""

import threading

import pytest

from repro.simnet.realnet import TcpTransport
from repro.simnet.transport import TransportError


@pytest.fixture()
def transport():
    t = TcpTransport()
    yield t
    t.close()


class TestTcpTransport:
    def test_request_response(self, transport):
        transport.bind("echo", lambda p: b"re:" + p)
        assert transport.request("cli", "echo", b"hello") == b"re:hello"

    def test_large_frame(self, transport):
        transport.bind("big", lambda p: p * 2)
        payload = bytes(range(256)) * 2048  # 512 KiB
        assert transport.request("cli", "big", payload) == payload * 2

    def test_handler_exception_surfaces_as_transport_error(self, transport):
        def boom(_p):
            raise RuntimeError("server-side failure")

        transport.bind("boom", boom)
        with pytest.raises(TransportError, match="server-side failure"):
            transport.request("cli", "boom", b"")

    def test_unknown_endpoint(self, transport):
        with pytest.raises(TransportError, match="no handler"):
            transport.request("cli", "ghost", b"")

    def test_unbind_stops_service(self, transport):
        transport.bind("tmp", lambda p: p)
        transport.unbind("tmp")
        with pytest.raises(TransportError):
            transport.request("cli", "tmp", b"")

    def test_concurrent_clients(self, transport):
        transport.bind("sum", lambda p: bytes([sum(p) % 256]))
        results = {}

        def worker(i):
            results[i] = transport.request(f"cli{i}", "sum", bytes([i, i]))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i in range(8):
            assert results[i] == bytes([(2 * i) % 256])

    def test_meters_count_frames(self, transport):
        transport.bind("svc", lambda p: b"xyz")
        transport.request("cli", "svc", b"ab")
        # On-wire accounting: 4-byte length header + payload.
        assert transport.meter("cli").bytes_sent == 4 + 2
        # Response frame: header + 1-byte status prefix + 3 body bytes.
        assert transport.meter("cli").bytes_received == 4 + 4

    def test_meter_accounting_is_symmetric(self, transport):
        """Client-side and endpoint-side meters must mirror each other."""
        import time

        transport.bind("svc", lambda p: p + p)
        for payload in (b"", b"x", b"hello world"):
            transport.request("cli", "svc", payload)
        cli = transport.meter("cli")
        # The endpoint worker records its send just after the bytes hit
        # the socket, so the client can observe one GIL switch early —
        # give the worker thread a bounded moment to settle.
        deadline = time.perf_counter() + 2.0
        while (
            transport.endpoint_meter("svc").bytes_sent != cli.bytes_received
            and time.perf_counter() < deadline
        ):
            time.sleep(0.001)
        svc = transport.endpoint_meter("svc")
        assert cli.bytes_sent == svc.bytes_received
        assert cli.bytes_received == svc.bytes_sent
        assert cli.messages_sent == svc.messages_received == 3

    def test_failed_connect_counts_nothing(self, transport):
        """Regression: a refused connection must not record sent bytes."""
        transport.bind("svc", lambda p: p)
        # Kill the endpoint's listener; the transport still knows the
        # address, so the next request dies on connect.
        transport._endpoints["svc"].close()
        with pytest.raises(TransportError):
            transport.request("cli", "svc", b"payload")
        meter = transport.meter("cli")
        assert meter.bytes_sent == 0
        assert meter.messages_sent == 0
        assert meter.bytes_received == 0
        assert meter.messages_received == 0

    def test_context_manager_closes(self):
        with TcpTransport() as t:
            t.bind("svc", lambda p: p)
            assert t.request("c", "svc", b"ok") == b"ok"
        assert t.endpoints() == []


class TestWorkerReaping:
    def test_worker_threads_stay_bounded(self, transport):
        """Regression: 100 short-lived connections must not leave 100
        worker threads queued for join at close."""
        import time

        transport.bind("svc", lambda p: p)
        ep = transport._endpoints["svc"]
        for i in range(100):
            assert transport.request("cli", "svc", b"%d" % i) == b"%d" % i
        # Workers exit as soon as their connection closes; the accept
        # loop reaps them on its next iteration (<= 0.1s accept timeout).
        deadline = time.monotonic() + 3.0
        while ep.worker_count > 4 and time.monotonic() < deadline:
            time.sleep(0.02)
        assert ep.worker_count <= 4


class TestTimeouts:
    def test_invalid_timeouts_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            TcpTransport(request_timeout_s=0.0)
        with pytest.raises(ValueError, match="positive"):
            TcpTransport(connect_timeout_s=-1.0)

    def test_timeouts_are_configurable(self):
        with TcpTransport(connect_timeout_s=1.5, request_timeout_s=2.5) as t:
            assert t.connect_timeout_s == 1.5
            assert t.request_timeout_s == 2.5

    def test_invalid_idle_timeout_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            TcpTransport(idle_timeout_s=0.0)

    def test_bind_inherits_request_timeout_as_idle_timeout(self):
        """Regression: bind() used to hard-code idle_timeout_s=5.0, so a
        transport with long request timeouts hung up on its clients."""
        with TcpTransport(request_timeout_s=42.0) as t:
            t.bind("svc", lambda p: p)
            assert t.idle_timeout_s == 42.0
            assert t._endpoints["svc"].idle_timeout_s == 42.0

    def test_explicit_idle_timeout_plumbed_to_endpoint(self):
        with TcpTransport(request_timeout_s=5.0, idle_timeout_s=0.75) as t:
            t.bind("svc", lambda p: p)
            assert t._endpoints["svc"].idle_timeout_s == 0.75

    def test_idle_connection_closed_after_configured_timeout(self):
        """The server hangs up an idle connection at ~idle_timeout_s."""
        import socket
        import time

        with TcpTransport(idle_timeout_s=0.3) as t:
            t.bind("svc", lambda p: p)
            addr = t._endpoints["svc"].address
            with socket.create_connection(addr, timeout=2.0) as sock:
                time.sleep(0.8)  # idle well past the 0.3s budget
                sock.settimeout(2.0)
                assert sock.recv(1) == b""  # server closed the connection

    def test_wedged_handler_surfaces_as_transport_error(self):
        """A handler that never answers must not hang the caller."""
        import time

        release = threading.Event()

        def wedged(_p):
            release.wait(5.0)
            return b"too late"

        with TcpTransport(request_timeout_s=0.2) as t:
            t.bind("wedged", wedged)
            t0 = time.monotonic()
            with pytest.raises(TransportError, match="timed out"):
                t.request("cli", "wedged", b"x")
            assert time.monotonic() - t0 < 2.0
            release.set()


class TestConnectionCap:
    def test_invalid_max_conns_rejected(self):
        with pytest.raises(ValueError):
            TcpTransport(max_conns=0)

    def test_over_cap_connection_is_shed_with_typed_overload_error(self):
        """The cap sheds with a framed error, not a silent drop."""
        entered = threading.Event()
        release = threading.Event()

        def slow(p):
            entered.set()
            release.wait(5.0)
            return p

        with TcpTransport(max_conns=1, request_timeout_s=5.0) as t:
            t.bind("svc", slow)
            holder = threading.Thread(
                target=lambda: t.request("cli0", "svc", b"hold"), daemon=True
            )
            holder.start()
            assert entered.wait(2.0)  # the one worker slot is now taken
            try:
                with pytest.raises(TransportError, match="overloaded"):
                    t.request("cli1", "svc", b"rejected")
                endpoint = t._endpoints["svc"]
                assert endpoint.conns_shed == 1
                # Meter symmetry survives the shed: the rejected request
                # frame is recorded received and the rejection recorded
                # sent (the holder's reply isn't out yet, so sent == 1).
                assert endpoint.meter.messages_received == 2
                assert endpoint.meter.messages_sent == 1
            finally:
                release.set()
                holder.join(timeout=5.0)

    def test_shed_slot_is_reusable_after_the_holder_finishes(self):
        with TcpTransport(max_conns=1) as t:
            t.bind("echo", lambda p: p)
            # Sequential requests each close their connection first, so a
            # cap of one never sheds well-behaved clients (the accept
            # loop reaps the finished worker; wait out that small race).
            import time

            for i in range(3):
                deadline = time.monotonic() + 2.0
                while (
                    t._endpoints["echo"].worker_count
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.01)
                assert t.request("cli", "echo", b"x%d" % i) == b"x%d" % i
