"""Link model tests."""

import pytest

from repro.simnet.link import (
    DEFAULT_RHO,
    LINK_PRESETS,
    LinkSpec,
    NetworkType,
    kbps,
    mbps,
)


class TestConversions:
    def test_kbps(self):
        assert kbps(56) == 56_000

    def test_mbps(self):
        assert mbps(11) == 11_000_000


class TestNetworkType:
    def test_parse_case_insensitive(self):
        assert NetworkType.parse("bluetooth") is NetworkType.BLUETOOTH
        assert NetworkType.parse(" LAN ") is NetworkType.LAN

    def test_parse_unknown_raises(self):
        with pytest.raises(ValueError):
            NetworkType.parse("carrier-pigeon")

    def test_every_type_has_a_preset(self):
        for member in NetworkType:
            assert member in LINK_PRESETS


class TestLinkSpec:
    def test_effective_bandwidth_applies_rho(self):
        link = LinkSpec(NetworkType.LAN, mbps(100), 0.001, rho=0.8)
        assert link.effective_bandwidth_bps == pytest.approx(80e6)
        assert link.effective_bandwidth_kbps == pytest.approx(80_000)

    def test_transfer_time_serialization_plus_latency(self):
        link = LinkSpec(NetworkType.WLAN, mbps(8), 0.010, rho=1.0)
        # 1 MB at 8 Mbps = 1 second, plus 10 ms latency.
        assert link.transfer_time(1_000_000) == pytest.approx(1.010)

    def test_transfer_time_without_latency(self):
        link = LinkSpec(NetworkType.WLAN, mbps(8), 0.010, rho=1.0)
        assert link.transfer_time(1_000_000, with_latency=False) == pytest.approx(1.0)

    def test_transfer_zero_bytes_is_just_latency(self):
        link = LINK_PRESETS[NetworkType.BLUETOOTH]
        assert link.transfer_time(0) == pytest.approx(link.latency_s)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            LINK_PRESETS[NetworkType.LAN].transfer_time(-1)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            LinkSpec(NetworkType.LAN, 0.0, 0.001)

    def test_invalid_rho_rejected(self):
        with pytest.raises(ValueError):
            LinkSpec(NetworkType.LAN, mbps(1), 0.001, rho=0.0)
        with pytest.raises(ValueError):
            LinkSpec(NetworkType.LAN, mbps(1), 0.001, rho=1.5)

    def test_with_rho_returns_new_spec(self):
        base = LINK_PRESETS[NetworkType.WLAN]
        changed = base.with_rho(0.6)
        assert changed.rho == 0.6
        assert base.rho == DEFAULT_RHO  # original untouched

    def test_scaled_divides_bandwidth(self):
        base = LINK_PRESETS[NetworkType.LAN]
        half = base.scaled(0.5)
        assert half.bandwidth_bps == pytest.approx(base.bandwidth_bps / 2)
        assert base.transfer_time(10_000) < half.transfer_time(10_000)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            LINK_PRESETS[NetworkType.LAN].scaled(0.0)

    def test_presets_are_ordered_sensibly(self):
        """LAN > WLAN > Bluetooth > Dialup, the paper's environment ladder."""
        bw = {t: LINK_PRESETS[t].bandwidth_bps for t in NetworkType}
        assert (
            bw[NetworkType.LAN]
            > bw[NetworkType.WLAN]
            > bw[NetworkType.BLUETOOTH]
            > bw[NetworkType.DIALUP]
        )
