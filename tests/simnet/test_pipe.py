"""Fair-share (processor-sharing) pipe tests."""

import pytest

from repro.simnet.kernel import Simulator
from repro.simnet.pipe import FairSharePipe


def run_transfers(capacity_bps, jobs):
    """jobs: [(start_s, size_bytes)] -> {index: completion_time}."""
    sim = Simulator()
    pipe = FairSharePipe(sim, capacity_bps)
    done = {}

    def client(i, start, size):
        yield sim.timeout(start)
        yield pipe.transfer(size)
        done[i] = sim.now

    for i, (start, size) in enumerate(jobs):
        sim.process(client(i, start, size))
    sim.run()
    return done, pipe


class TestFairSharePipe:
    def test_single_flow_full_rate(self):
        done, _ = run_transfers(8000.0, [(0.0, 1000)])  # 1000 B at 1000 B/s
        assert done[0] == pytest.approx(1.0)

    def test_two_simultaneous_flows_halve_rate(self):
        done, _ = run_transfers(8000.0, [(0.0, 1000), (0.0, 1000)])
        assert done[0] == pytest.approx(2.0)
        assert done[1] == pytest.approx(2.0)

    def test_staggered_arrival_processor_sharing(self):
        # Classic PS: flow 0 runs alone 0.5s, shares 1s, finishes at 1.5;
        # flow 1 shares 1s then runs alone 0.5s, finishes at 2.0.
        done, _ = run_transfers(8000.0, [(0.0, 1000), (0.5, 1000)])
        assert done[0] == pytest.approx(1.5)
        assert done[1] == pytest.approx(2.0)

    def test_short_flow_departs_early_speeding_long_flow(self):
        done, _ = run_transfers(8000.0, [(0.0, 2000), (0.0, 500)])
        # Shared until short flow done at t=1.0 (500B at 500B/s);
        # long flow then has 1500B left at 1000B/s -> 2.5s total.
        assert done[1] == pytest.approx(1.0)
        assert done[0] == pytest.approx(2.5)

    def test_mean_time_scales_linearly_with_burst_size(self):
        """The centralized-PAD-server effect behind Fig. 9(b)."""
        means = []
        for n in (10, 20, 40):
            done, _ = run_transfers(8000.0, [(0.0, 1000)] * n)
            means.append(sum(done.values()) / n)
        assert means[1] == pytest.approx(2 * means[0], rel=0.05)
        assert means[2] == pytest.approx(4 * means[0], rel=0.05)

    def test_zero_byte_transfer_completes_immediately(self):
        done, _ = run_transfers(8000.0, [(0.0, 0)])
        assert done[0] == 0.0

    def test_negative_size_rejected(self):
        sim = Simulator()
        pipe = FairSharePipe(sim, 1000.0)
        with pytest.raises(ValueError):
            pipe.transfer(-1)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            FairSharePipe(Simulator(), 0.0)

    def test_counters(self):
        done, pipe = run_transfers(8000.0, [(0.0, 100), (0.0, 100), (0.0, 100)])
        assert pipe.transfers_completed == 3
        assert pipe.peak_concurrency == 3
        assert pipe.active == 0

    def test_transfer_event_carries_duration(self):
        sim = Simulator()
        pipe = FairSharePipe(sim, 8000.0)

        def proc():
            duration = yield pipe.transfer(1000)
            return duration

        assert sim.run_process(proc()) == pytest.approx(1.0)

    def test_many_tiny_flows_terminate(self):
        """Regression: float residue must not stall simulated time."""
        done, _ = run_transfers(1e9, [(i * 1e-7, 7) for i in range(200)])
        assert len(done) == 200
