"""Topology tests."""

import pytest

from repro.simnet.topology import HostSite, Topology


@pytest.fixture()
def topo():
    t = Topology()
    t.add("a", 0.0, 0.0)
    t.add("b", 3.0, 4.0)          # 5 units from a
    t.add("c", 30.0, 40.0)        # 50 units from a
    t.add("slow", 1.0, 0.0, access_latency_s=0.050)
    return t


class TestTopology:
    def test_latency_is_distance_scaled(self, topo):
        # 5 units at 1 ms/unit.
        assert topo.latency_s("a", "b") == pytest.approx(0.005)

    def test_latency_symmetric(self, topo):
        assert topo.latency_s("a", "c") == pytest.approx(topo.latency_s("c", "a"))

    def test_access_latency_added_on_both_ends(self, topo):
        base = topo.latency_s("a", "b")
        with_access = topo.latency_s("a", "slow")
        assert with_access == pytest.approx(0.001 + 0.050)
        assert with_access > base

    def test_self_latency_is_access_only(self, topo):
        assert topo.latency_s("a", "a") == 0.0
        assert topo.latency_s("slow", "slow") == pytest.approx(0.050)

    def test_nearest(self, topo):
        assert topo.nearest("a", ["b", "c"]) == "b"

    def test_nearest_tie_breaks_on_name(self):
        t = Topology()
        t.add("origin", 0.0, 0.0)
        t.add("zeta", 1.0, 0.0)
        t.add("alpha", -1.0, 0.0)
        assert t.nearest("origin", ["zeta", "alpha"]) == "alpha"

    def test_nearest_no_candidates_raises(self, topo):
        with pytest.raises(ValueError):
            topo.nearest("a", [])

    def test_ranked_order(self, topo):
        # slow's 50 ms access penalty pushes it behind c (50 units away).
        assert topo.ranked("a", ["c", "b", "slow"]) == ["b", "c", "slow"]

    def test_duplicate_site_rejected(self, topo):
        with pytest.raises(ValueError):
            topo.add("a", 9.0, 9.0)

    def test_unknown_site_raises(self, topo):
        with pytest.raises(KeyError):
            topo.latency_s("a", "nowhere")

    def test_graph_view_edges_carry_latency(self, topo):
        g = topo.graph()
        assert g.number_of_nodes() == 4
        assert g["a"]["b"]["latency_s"] == pytest.approx(0.005)

    def test_random_plane_deterministic(self):
        names = [f"n{i}" for i in range(10)]
        t1 = Topology.random_plane(names, seed=42)
        t2 = Topology.random_plane(names, seed=42)
        for n in names:
            assert t1.get(n).x == t2.get(n).x
            assert t1.get(n).y == t2.get(n).y

    def test_random_plane_seed_changes_layout(self):
        names = [f"n{i}" for i in range(10)]
        t1 = Topology.random_plane(names, seed=1)
        t2 = Topology.random_plane(names, seed=2)
        assert any(t1.get(n).x != t2.get(n).x for n in names)

    def test_contains_and_len(self, topo):
        assert "a" in topo and "nowhere" not in topo
        assert len(topo) == 4

    def test_hostsite_distance(self):
        a = HostSite("a", 0.0, 0.0)
        b = HostSite("b", 3.0, 4.0)
        assert a.distance_to(b) == pytest.approx(5.0)
