"""RunningStats / percentile / Series tests, including hypothesis checks."""

import math
import statistics

import pytest
from hypothesis import given, strategies as st

from repro.simnet.stats import RunningStats, Series, percentile


class TestRunningStats:
    def test_empty_mean_is_nan(self):
        assert math.isnan(RunningStats().mean)

    def test_single_sample(self):
        s = RunningStats()
        s.add(3.5)
        assert s.mean == 3.5
        assert s.variance == 0.0
        assert s.minimum == s.maximum == 3.5

    def test_matches_statistics_module(self):
        data = [1.5, 2.0, 2.5, 10.0, -3.0, 0.25]
        s = RunningStats()
        s.extend(data)
        assert s.mean == pytest.approx(statistics.mean(data))
        assert s.variance == pytest.approx(statistics.variance(data))
        assert s.stdev == pytest.approx(statistics.stdev(data))

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=200))
    def test_welford_agrees_with_naive(self, data):
        s = RunningStats()
        s.extend(data)
        assert s.mean == pytest.approx(statistics.fmean(data), abs=1e-6)
        assert s.variance == pytest.approx(statistics.variance(data), abs=1e-3)

    @given(
        st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=50),
        st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=50),
    )
    def test_merge_equals_concatenation(self, a, b):
        sa, sb, sc = RunningStats(), RunningStats(), RunningStats()
        sa.extend(a)
        sb.extend(b)
        sc.extend(a + b)
        merged = sa.merge(sb)
        assert merged.count == sc.count
        assert merged.mean == pytest.approx(sc.mean, abs=1e-6)
        assert merged.variance == pytest.approx(sc.variance, abs=1e-3)
        assert merged.minimum == sc.minimum
        assert merged.maximum == sc.maximum

    def test_merge_with_empty(self):
        a = RunningStats()
        a.extend([1.0, 2.0])
        merged = a.merge(RunningStats())
        assert merged.count == 2
        assert merged.mean == pytest.approx(1.5)


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    def test_extremes(self):
        data = [5.0, 1.0, 9.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 9.0

    def test_single_element(self):
        assert percentile([7.0], 99) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=60))
    def test_bounded_by_min_max(self, data):
        for q in (0, 25, 50, 75, 100):
            p = percentile(data, q)
            assert min(data) <= p <= max(data)


class TestSeries:
    def test_add_and_rows(self):
        s = Series("demo")
        s.add(1, 10.0)
        s.add(2, 20.0)
        assert len(s) == 2
        assert s.rows() == [(1, 10.0), (2, 20.0)]
