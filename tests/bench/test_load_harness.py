"""Unit tests for the closed-loop load harness (repro.bench.load)."""

from __future__ import annotations

import pytest

from repro.bench.load import (
    AsyncLatencyTransport,
    LatencyTransport,
    LoadPoint,
    WorkerTally,
    run_async_load_point,
    run_load_point,
    sweep_worker_counts,
)
from repro.bench.runner import main as bench_main


class _RecordingTransport:
    def __init__(self):
        self.calls = []

    def request(self, src, dst, payload):
        self.calls.append((src, dst, payload))
        return b"pong:" + payload


class TestLatencyTransport:
    def test_delegates_and_returns_inner_response(self):
        inner = _RecordingTransport()
        wire = LatencyTransport(inner, 0.0)
        assert wire.request("a", "b", b"ping") == b"pong:ping"
        assert inner.calls == [("a", "b", b"ping")]

    def test_charges_round_trip(self):
        import time

        wire = LatencyTransport(_RecordingTransport(), 0.05)
        t0 = time.perf_counter()
        wire.request("a", "b", b"x")
        assert time.perf_counter() - t0 >= 0.05

    def test_rejects_negative_rtt(self):
        with pytest.raises(ValueError):
            LatencyTransport(_RecordingTransport(), -1.0)


class TestSweepWorkerCounts:
    def test_doubles_and_includes_max(self):
        assert sweep_worker_counts(1) == [1]
        assert sweep_worker_counts(2) == [1, 2]
        assert sweep_worker_counts(8) == [1, 2, 4, 8]
        assert sweep_worker_counts(6) == [1, 2, 4, 6]

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            sweep_worker_counts(0)


class TestRunLoadPoint:
    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            run_load_point(0)
        with pytest.raises(ValueError):
            run_load_point(1, transport="carrier-pigeon")

    def test_single_worker_point_reconciles(self):
        point = run_load_point(1, 0.3, rtt_ms=2.0)
        assert isinstance(point, LoadPoint)
        assert point.errors == 0
        assert point.sessions > 0
        assert point.reconciled
        assert point.throughput_rps > 0
        # Percentiles are ordered.
        assert (
            point.p50_negotiation_s
            <= point.p95_negotiation_s
            <= point.p99_negotiation_s
        )
        # Every ledger row balances exactly.
        for name, (workers_sum, registry_sum) in point.ledger.items():
            assert workers_sum == registry_sum, name

    def test_two_workers_reconcile(self):
        point = run_load_point(2, 0.3, rtt_ms=2.0)
        assert point.errors == 0
        assert point.reconciled
        assert len(point.per_worker) == 2
        assert all(isinstance(t, WorkerTally) for t in point.per_worker)
        assert sum(t.sessions for t in point.per_worker) == point.sessions

    def test_speedup_vs_self_is_one(self):
        point = run_load_point(1, 0.2, rtt_ms=2.0)
        assert point.speedup_vs(point) == pytest.approx(1.0)

    def test_tcp_point_has_exact_wire_symmetry(self):
        """After the metering fix, client and endpoint byte meters must
        mirror each other exactly over real TCP — the ledger carries the
        symmetry rows and they must balance to the byte."""
        point = run_load_point(2, 0.3, transport="tcp", rtt_ms=2.0)
        assert point.errors == 0
        wire_rows = [k for k in point.ledger if k.startswith("wire bytes")]
        assert len(wire_rows) == 2
        for name in wire_rows:
            a, b = point.ledger[name]
            assert a == b, name
            assert a > 0, name
        assert point.reconciled


class TestAsyncLatencyTransport:
    def test_delegates_and_returns_inner_response(self):
        import asyncio

        class _AsyncRecording:
            def __init__(self):
                self.calls = []

            async def request(self, src, dst, payload):
                self.calls.append((src, dst, payload))
                return b"pong:" + payload

        inner = _AsyncRecording()
        wire = AsyncLatencyTransport(inner, 0.0)
        assert asyncio.run(wire.request("a", "b", b"ping")) == b"pong:ping"
        assert inner.calls == [("a", "b", b"ping")]

    def test_rejects_negative_rtt(self):
        with pytest.raises(ValueError):
            AsyncLatencyTransport(object(), -1.0)


class TestRunAsyncLoadPoint:
    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            run_async_load_point(0)
        with pytest.raises(ValueError):
            run_async_load_point(1, pool_workers=-1)

    def test_inline_async_point_reconciles(self):
        """4 client tasks on one loop, kernels inline: the same 6-way
        ledger as the threaded harness plus exact wire symmetry."""
        point = run_async_load_point(4, 0.3, pool_workers=0, rtt_ms=2.0)
        assert point.mode == "async"
        assert point.pool_workers == 0
        assert point.errors == 0, point.per_worker[0].first_error
        assert point.sessions > 0
        assert point.reconciled
        for name, (a, b) in point.ledger.items():
            assert a == b, name
        wire_rows = [k for k in point.ledger if k.startswith("wire bytes")]
        assert len(wire_rows) == 2

    def test_pooled_async_point_reconciles(self):
        """Kernel work through spawned worker processes must leave every
        ledger row — bytes included — exactly balanced: pool placement
        can never change what goes on the wire."""
        point = run_async_load_point(2, 0.3, pool_workers=1, rtt_ms=2.0)
        assert point.pool_workers == 1
        assert point.errors == 0, point.per_worker[0].first_error
        assert point.sessions > 0
        assert point.reconciled
        for name, (a, b) in point.ledger.items():
            assert a == b, name


def test_cli_load_experiment(capsys):
    assert bench_main(["load", "--workers", "2", "--duration", "0.2"]) == 0
    out = capsys.readouterr().out
    assert "Load: closed-loop workers" in out
    assert "ledger reconciled exactly" in out
    assert "MISMATCH" not in out


def test_cli_async_load_experiment(capsys, tmp_path):
    out_json = tmp_path / "load.json"
    assert (
        bench_main(
            ["load", "--mode", "async", "--pool-workers", "0",
             "--workers", "2", "--duration", "0.2",
             "--json", str(out_json)]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "kernel-pool scaling" in out
    assert "ledger reconciled exactly" in out
    assert "MISMATCH" not in out
    import json

    payload = json.loads(out_json.read_text())
    assert payload["load"]["mode"] == "async"
    assert payload["load"]["host_cpus"] >= 1
    assert all(p["reconciled"] for p in payload["load"]["points"])
