"""Unit tests for the closed-loop load harness (repro.bench.load)."""

from __future__ import annotations

import pytest

from repro.bench.load import (
    LatencyTransport,
    LoadPoint,
    WorkerTally,
    run_load_point,
    sweep_worker_counts,
)
from repro.bench.runner import main as bench_main


class _RecordingTransport:
    def __init__(self):
        self.calls = []

    def request(self, src, dst, payload):
        self.calls.append((src, dst, payload))
        return b"pong:" + payload


class TestLatencyTransport:
    def test_delegates_and_returns_inner_response(self):
        inner = _RecordingTransport()
        wire = LatencyTransport(inner, 0.0)
        assert wire.request("a", "b", b"ping") == b"pong:ping"
        assert inner.calls == [("a", "b", b"ping")]

    def test_charges_round_trip(self):
        import time

        wire = LatencyTransport(_RecordingTransport(), 0.05)
        t0 = time.perf_counter()
        wire.request("a", "b", b"x")
        assert time.perf_counter() - t0 >= 0.05

    def test_rejects_negative_rtt(self):
        with pytest.raises(ValueError):
            LatencyTransport(_RecordingTransport(), -1.0)


class TestSweepWorkerCounts:
    def test_doubles_and_includes_max(self):
        assert sweep_worker_counts(1) == [1]
        assert sweep_worker_counts(2) == [1, 2]
        assert sweep_worker_counts(8) == [1, 2, 4, 8]
        assert sweep_worker_counts(6) == [1, 2, 4, 6]

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            sweep_worker_counts(0)


class TestRunLoadPoint:
    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            run_load_point(0)
        with pytest.raises(ValueError):
            run_load_point(1, transport="carrier-pigeon")

    def test_single_worker_point_reconciles(self):
        point = run_load_point(1, 0.3, rtt_ms=2.0)
        assert isinstance(point, LoadPoint)
        assert point.errors == 0
        assert point.sessions > 0
        assert point.reconciled
        assert point.throughput_rps > 0
        # Percentiles are ordered.
        assert (
            point.p50_negotiation_s
            <= point.p95_negotiation_s
            <= point.p99_negotiation_s
        )
        # Every ledger row balances exactly.
        for name, (workers_sum, registry_sum) in point.ledger.items():
            assert workers_sum == registry_sum, name

    def test_two_workers_reconcile(self):
        point = run_load_point(2, 0.3, rtt_ms=2.0)
        assert point.errors == 0
        assert point.reconciled
        assert len(point.per_worker) == 2
        assert all(isinstance(t, WorkerTally) for t in point.per_worker)
        assert sum(t.sessions for t in point.per_worker) == point.sessions

    def test_speedup_vs_self_is_one(self):
        point = run_load_point(1, 0.2, rtt_ms=2.0)
        assert point.speedup_vs(point) == pytest.approx(1.0)


def test_cli_load_experiment(capsys):
    assert bench_main(["load", "--workers", "2", "--duration", "0.2"]) == 0
    out = capsys.readouterr().out
    assert "Load: closed-loop workers" in out
    assert "ledger reconciled exactly" in out
    assert "MISMATCH" not in out
