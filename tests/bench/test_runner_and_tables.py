"""CLI runner and Table 1 generator tests."""

import pytest

from repro.bench import runner
from repro.bench.tables import table1_rows


class TestTable1:
    def test_paper_pads_default(self):
        rows = table1_rows()
        assert len(rows) == 4
        assert rows[2][0] == "Vary-sized blocking"
        assert rows[2][1] == "Differencing files using Fingerprint"

    def test_extension_pad_available(self):
        rows = table1_rows(("direct", "fixed"))
        assert rows[1][0].startswith("Fix-sized blocking")

    def test_sizes_are_real_module_sizes(self):
        from repro.protocols.padlib import build_pad_module

        rows = table1_rows(("gzip",))
        assert rows[0][3] == build_pad_module("gzip").size


class TestRunnerCli:
    def test_table1_command(self, capsys):
        assert runner.main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Vary-sized blocking" in out

    def test_fig9a_command(self, capsys):
        assert runner.main(["fig9a"]) == 0
        out = capsys.readouterr().out
        assert "Fig 9(a)" in out
        assert "300" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            runner.main(["fig99"])

    def test_requires_at_least_one_experiment(self):
        with pytest.raises(SystemExit):
            runner.main([])
