"""Capacity-curve reproducibility: explicit, injectable randomness."""

import random

from repro.bench.capacity import (
    derive_rng,
    negotiation_time_experiment,
    retrieval_time_experiment,
)

COUNTS = (1, 10)


class TestReproducibility:
    def test_negotiation_curve_is_a_pure_function_of_seed(self):
        a = negotiation_time_experiment(COUNTS, seed=5)
        b = negotiation_time_experiment(COUNTS, seed=5)
        assert a.xs == b.xs and a.ys == b.ys
        c = negotiation_time_experiment(COUNTS, seed=6)
        assert a.ys != c.ys

    def test_retrieval_curves_are_pure_functions_of_seed(self):
        a_cen, a_dist = retrieval_time_experiment(COUNTS, seed=5)
        b_cen, b_dist = retrieval_time_experiment(COUNTS, seed=5)
        assert a_cen.ys == b_cen.ys
        assert a_dist.ys == b_dist.ys

    def test_points_are_independent_of_other_points(self):
        """Each client count derives its own RNG, so dropping a point
        from the sweep must not move the others."""
        full = negotiation_time_experiment((1, 10, 25), seed=5)
        partial = negotiation_time_experiment((10,), seed=5)
        assert partial.ys[0] == full.ys[full.xs.index(10)]


class TestRngFactory:
    def test_default_factory_matches_derive_rng(self):
        implicit = negotiation_time_experiment(COUNTS, seed=5)
        explicit = negotiation_time_experiment(
            COUNTS, seed=999, rng_factory=lambda n: derive_rng(5, n)
        )
        assert implicit.ys == explicit.ys

    def test_custom_factory_changes_the_draws(self):
        default = negotiation_time_experiment(COUNTS, seed=5)
        custom = negotiation_time_experiment(
            COUNTS, seed=5, rng_factory=lambda n: random.Random(n * 1_000_003)
        )
        assert default.ys != custom.ys

    def test_derive_rng_is_deterministic(self):
        assert derive_rng(7, 100).random() == derive_rng(7, 100).random()
        assert derive_rng(7, 100).random() != derive_rng(7, 101).random()
