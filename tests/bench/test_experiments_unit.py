"""Unit tests for the experiment drivers (cheap, default-overhead system)."""

import pytest

from repro.bench.capacity import ProxyServiceTimes, measure_proxy_service_times
from repro.bench.experiments import (
    CASE_STUDY_PADS,
    Scenario,
    env_meta,
    evaluate_environment,
    fig11_bytes_transferred,
    fig11_total_time,
    headline_savings,
    measure_traffic,
    negotiated_winner,
)
from repro.workload.profiles import DESKTOP_LAN, PAPER_ENVIRONMENTS


@pytest.fixture(scope="module")
def measured(session_system):
    return measure_traffic(session_system.corpus, page_ids=(0,))


class TestMeasureTraffic:
    def test_deterministic(self, session_system):
        a = measure_traffic(session_system.corpus, ("direct",), page_ids=(0,))
        b = measure_traffic(session_system.corpus, ("direct",), page_ids=(0,))
        assert a["direct"]["traffic"] == b["direct"]["traffic"]

    def test_direct_equals_page_size(self, session_system, measured):
        page = session_system.corpus.evolved(0, 1)
        expected = len(page.text) + sum(len(i) for i in page.images)
        assert measured["direct"]["traffic"] == expected

    def test_all_case_study_pads_covered(self, measured):
        assert set(measured) == set(CASE_STUDY_PADS)
        for stats in measured.values():
            assert {"traffic", "server_s", "client_s"} <= set(stats)


class TestEnvMeta:
    def test_env_meta_mirrors_profile(self):
        dev, ntwk = env_meta(DESKTOP_LAN)
        assert dev.cpu_mhz == 2000.0
        assert ntwk.network_type == "LAN"
        assert ntwk.bandwidth_kbps == pytest.approx(100_000.0)


class TestEvaluateEnvironment:
    def test_every_pad_costed(self, session_system, measured):
        costs = evaluate_environment(session_system, DESKTOP_LAN, measured=measured)
        assert set(costs) == set(CASE_STUDY_PADS)
        for cost in costs.values():
            assert cost.total_s > 0 or cost.pad_id == "direct"

    def test_breakdown_sums_to_total(self, session_system, measured):
        costs = evaluate_environment(session_system, DESKTOP_LAN, measured=measured)
        for cost in costs.values():
            b = cost.breakdown
            assert cost.total_s == pytest.approx(
                b.download_s + b.server_comp_s + b.client_comp_s + b.transmission_s
            )

    def test_server_compute_toggle(self, session_system, measured):
        with_srv = evaluate_environment(
            session_system, DESKTOP_LAN, measured=measured,
            include_server_compute=True,
        )
        without = evaluate_environment(
            session_system, DESKTOP_LAN, measured=measured,
            include_server_compute=False,
        )
        assert without["vary"].total_s < with_srv["vary"].total_s


class TestScenarioPlumbing:
    def test_winner_is_a_case_study_pad(self, session_system):
        for env in PAPER_ENVIRONMENTS:
            assert negotiated_winner(session_system, env) in CASE_STUDY_PADS

    def test_fig11a_environment_invariance(self, session_system, measured):
        table = fig11_bytes_transferred(session_system, measured=measured)
        rows = list(table.values())
        assert all(r == rows[0] for r in rows)

    def test_fig11_winner_consistency(self, session_system, measured):
        totals = fig11_total_time(
            session_system, include_server_compute=True, measured=measured
        )
        for row in totals.values():
            assert row["winner"] == min(CASE_STUDY_PADS, key=lambda p: row[p])

    def test_headline_fields(self, session_system, measured):
        out = headline_savings(session_system, measured=measured)
        for cell in out.values():
            assert {"adaptive_s", "none_s", "static_s", "vs_none",
                    "vs_static"} <= set(cell)
            assert cell["vs_none"] <= 1.0

    def test_scenario_enum_values(self):
        assert {s.value for s in Scenario} == {
            "no-adaptation", "fixed-adaptation", "adaptive-adaptation",
        }


class TestProxyServiceMeasurement:
    def test_measured_times_positive_and_ordered(self, session_system):
        service = measure_proxy_service_times(session_system)
        assert service.cache_miss_s > 0
        assert service.cache_hit_s > 0
        assert isinstance(service, ProxyServiceTimes)
