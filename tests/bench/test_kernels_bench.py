"""Kernel microbenchmark plumbing (payload shape, drift check, CLI)."""

import json

import pytest

from repro.bench import kernels
from repro.bench.kernels import (
    CALIBRATION_KERNEL,
    SEED_BASELINES,
    TOLERANCE_BANDS,
    KernelResult,
    compare_to_baseline,
    render_kernels,
    results_to_payload,
)


@pytest.fixture()
def fake_results():
    return [
        KernelResult("cdc_scan", 269754, 0.01, 26.9754, SEED_BASELINES["cdc_scan"]["mb_s"]),
        KernelResult("lz77_tokenize", 134770, 0.1, 1.3477, SEED_BASELINES["lz77_tokenize"]["mb_s"]),
    ]


class TestPayload:
    def test_payload_shape(self, fake_results):
        payload = results_to_payload(fake_results, quick=True)
        assert payload["quick"] is True
        cell = payload["kernels"]["cdc_scan"]
        assert cell["bytes"] == 269754
        assert cell["seed_mb_s"] == SEED_BASELINES["cdc_scan"]["mb_s"]
        assert cell["speedup"] == pytest.approx(26.9754 / 1.892, abs=0.01)

    def test_render_includes_speedup_column(self, fake_results):
        table = render_kernels(fake_results)
        assert "speedup" in table
        assert "cdc_scan" in table

    def test_baselines_cover_all_measured_kernels(self):
        # run_kernels records these names; a rename must update the baselines.
        for name in ("cdc_scan", "cdc_scan_vary", "cdc_scan_batch",
                     "lz77_tokenize", "lz77_tokenize_batch",
                     "gzip_pure_compress", "gzip_batch_compress",
                     "gzip_zlib_compress", "gzip_pure_decompress",
                     "fixed_scan", "vary_respond", "host_calibration"):
            assert name in SEED_BASELINES

    def test_every_gated_kernel_has_a_band(self):
        # Every baseline except the calibration normalizer must resolve
        # to an explicit tolerance band (or the default).
        assert "default" in TOLERANCE_BANDS
        for name in SEED_BASELINES:
            if name == CALIBRATION_KERNEL:
                continue
            band = TOLERANCE_BANDS.get(name, TOLERANCE_BANDS["default"])
            assert 0.0 < band < 1.0


class TestDriftCompare:
    def test_within_tolerance_is_quiet(self, tmp_path, fake_results):
        payload = results_to_payload(fake_results)
        base = tmp_path / "base.json"
        base.write_text(json.dumps(payload))
        assert compare_to_baseline(payload, str(base)) is None

    def test_large_regression_is_reported(self, tmp_path, fake_results):
        payload = results_to_payload(fake_results)
        base = tmp_path / "base.json"
        inflated = json.loads(json.dumps(payload))
        inflated["kernels"]["cdc_scan"]["mb_s"] *= 10
        base.write_text(json.dumps(inflated))
        warning = compare_to_baseline(payload, str(base))
        assert warning is not None and "cdc_scan" in warning

    def test_missing_baseline_is_quiet(self, tmp_path, fake_results):
        payload = results_to_payload(fake_results)
        assert compare_to_baseline(payload, str(tmp_path / "nope.json")) is None

    def _payload_with_calibration(self, mb_s, cal_mb_s):
        return {
            "quick": False,
            "kernels": {
                "cdc_scan": {"bytes": 269754, "mb_s": mb_s},
                CALIBRATION_KERNEL: {"bytes": 65536, "mb_s": cal_mb_s},
            },
        }

    def test_slow_host_scales_expectation_down(self, tmp_path):
        # Half-speed host (calibration 6 vs committed 12): a kernel at
        # half the committed MB/s is exactly on trend, not a regression.
        base = tmp_path / "base.json"
        base.write_text(json.dumps(self._payload_with_calibration(20.0, 12.0)))
        measured = self._payload_with_calibration(10.0, 6.0)
        assert compare_to_baseline(measured, str(base)) is None
        # ...but the same absolute drop WITHOUT the host slowdown gates:
        # 10 < 20 * 1.0 * 0.45.
        measured_fast_host = self._payload_with_calibration(8.0, 12.0)
        report = compare_to_baseline(measured_fast_host, str(base))
        assert report is not None and "cdc_scan" in report
        assert "host scale 1.00" in report

    def test_calibration_kernel_itself_never_gated(self, tmp_path):
        # Only the calibration kernel moved (10x slower) — nothing to
        # report, because it IS the normalizer.
        base = tmp_path / "base.json"
        payload = {
            "quick": False,
            "kernels": {CALIBRATION_KERNEL: {"bytes": 65536, "mb_s": 12.0}},
        }
        base.write_text(json.dumps(payload))
        slow = {
            "quick": False,
            "kernels": {CALIBRATION_KERNEL: {"bytes": 65536, "mb_s": 1.2}},
        }
        assert compare_to_baseline(slow, str(base)) is None

    def test_quick_payload_gets_extra_slack(self, tmp_path):
        # Just under the full-run floor (0.45) but inside the widened
        # quick band (0.30): gates in full mode, passes in quick mode.
        base = tmp_path / "base.json"
        base.write_text(json.dumps(self._payload_with_calibration(20.0, 12.0)))
        borderline = self._payload_with_calibration(20.0 * 0.40, 12.0)
        assert compare_to_baseline(borderline, str(base)) is not None
        borderline["quick"] = True
        assert compare_to_baseline(borderline, str(base)) is None


class TestGateCli:
    def _write(self, path, payload):
        path.write_text(json.dumps(payload))
        return str(path)

    def test_exit_zero_within_bands(self, tmp_path, capsys, fake_results):
        payload = results_to_payload(fake_results)
        measured = self._write(tmp_path / "m.json", payload)
        baseline = self._write(tmp_path / "b.json", payload)
        assert kernels.main(["--measured", measured, "--baseline", baseline]) == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys, fake_results):
        payload = results_to_payload(fake_results)
        inflated = json.loads(json.dumps(payload))
        inflated["kernels"]["cdc_scan"]["mb_s"] *= 10
        measured = self._write(tmp_path / "m.json", payload)
        baseline = self._write(tmp_path / "b.json", inflated)
        assert kernels.main(["--measured", measured, "--baseline", baseline]) == 1
        out = capsys.readouterr().out
        assert "cdc_scan" in out
        assert "bench-flake" in out  # the escape hatch is documented

    def test_missing_baseline_passes(self, tmp_path, fake_results):
        measured = self._write(
            tmp_path / "m.json", results_to_payload(fake_results)
        )
        assert kernels.main(
            ["--measured", measured, "--baseline", str(tmp_path / "no.json")]
        ) == 0


class TestKernelHistoryRoll:
    def _roll(self):
        from repro.bench.runner import _roll_kernel_history

        return _roll_kernel_history

    def test_previous_run_folds_into_history(self, tmp_path, fake_results):
        from repro.bench.kernels import write_json

        path = tmp_path / "BENCH_kernels.json"
        old = results_to_payload(fake_results, quick=True)
        write_json(old, str(path))
        new = results_to_payload(fake_results)
        self._roll()(new, str(path))
        assert len(new["history"]) == 1
        entry = new["history"][0]
        assert entry["quick"] is True
        assert entry["kernels"]["cdc_scan"] == {
            "mb_s": old["kernels"]["cdc_scan"]["mb_s"],
            "speedup": old["kernels"]["cdc_scan"]["speedup"],
        }

    def test_history_is_bounded(self, tmp_path, fake_results):
        from repro.bench.runner import _HISTORY_KEEP
        from repro.bench.kernels import write_json

        path = tmp_path / "BENCH_kernels.json"
        payload = results_to_payload(fake_results)
        write_json(payload, str(path))
        for _ in range(_HISTORY_KEEP + 5):
            nxt = results_to_payload(fake_results)
            self._roll()(nxt, str(path))
            write_json(nxt, str(path))
        assert len(nxt["history"]) == _HISTORY_KEEP

    def test_no_previous_file_leaves_payload_alone(self, tmp_path, fake_results):
        payload = results_to_payload(fake_results)
        self._roll()(payload, str(tmp_path / "absent.json"))
        assert "history" not in payload


class TestKernelsCli:
    def test_quick_run_writes_json(self, tmp_path, capsys):
        from repro.bench import runner

        out = tmp_path / "BENCH_kernels.json"
        assert runner.main(["kernels", "--quick", "--json", str(out)]) == 0
        table = capsys.readouterr().out
        assert "Data-plane kernel throughput" in table
        payload = json.loads(out.read_text())
        assert payload["quick"] is True
        measured = payload["kernels"]
        assert set(measured) == set(SEED_BASELINES)
        for cell in measured.values():
            assert cell["mb_s"] > 0
            assert cell["speedup"] > 0
