"""Kernel microbenchmark plumbing (payload shape, drift check, CLI)."""

import json

import pytest

from repro.bench import kernels
from repro.bench.kernels import (
    SEED_BASELINES,
    KernelResult,
    compare_to_baseline,
    render_kernels,
    results_to_payload,
)


@pytest.fixture()
def fake_results():
    return [
        KernelResult("cdc_scan", 269754, 0.01, 26.9754, SEED_BASELINES["cdc_scan"]["mb_s"]),
        KernelResult("lz77_tokenize", 134770, 0.1, 1.3477, SEED_BASELINES["lz77_tokenize"]["mb_s"]),
    ]


class TestPayload:
    def test_payload_shape(self, fake_results):
        payload = results_to_payload(fake_results, quick=True)
        assert payload["quick"] is True
        cell = payload["kernels"]["cdc_scan"]
        assert cell["bytes"] == 269754
        assert cell["seed_mb_s"] == SEED_BASELINES["cdc_scan"]["mb_s"]
        assert cell["speedup"] == pytest.approx(26.9754 / 1.892, abs=0.01)

    def test_render_includes_speedup_column(self, fake_results):
        table = render_kernels(fake_results)
        assert "speedup" in table
        assert "cdc_scan" in table

    def test_baselines_cover_all_measured_kernels(self):
        # run_kernels records these names; a rename must update the baselines.
        for name in ("cdc_scan", "cdc_scan_vary", "lz77_tokenize",
                     "gzip_pure_compress", "gzip_pure_decompress",
                     "fixed_scan", "vary_respond"):
            assert name in SEED_BASELINES


class TestDriftCompare:
    def test_within_tolerance_is_quiet(self, tmp_path, fake_results):
        payload = results_to_payload(fake_results)
        base = tmp_path / "base.json"
        base.write_text(json.dumps(payload))
        assert compare_to_baseline(payload, str(base)) is None

    def test_large_regression_is_reported(self, tmp_path, fake_results):
        payload = results_to_payload(fake_results)
        base = tmp_path / "base.json"
        inflated = json.loads(json.dumps(payload))
        inflated["kernels"]["cdc_scan"]["mb_s"] *= 10
        base.write_text(json.dumps(inflated))
        warning = compare_to_baseline(payload, str(base))
        assert warning is not None and "cdc_scan" in warning

    def test_missing_baseline_is_quiet(self, tmp_path, fake_results):
        payload = results_to_payload(fake_results)
        assert compare_to_baseline(payload, str(tmp_path / "nope.json")) is None


class TestKernelsCli:
    def test_quick_run_writes_json(self, tmp_path, capsys):
        from repro.bench import runner

        out = tmp_path / "BENCH_kernels.json"
        assert runner.main(["kernels", "--quick", "--json", str(out)]) == 0
        table = capsys.readouterr().out
        assert "Data-plane kernel throughput" in table
        payload = json.loads(out.read_text())
        assert payload["quick"] is True
        measured = payload["kernels"]
        assert set(measured) == set(SEED_BASELINES)
        for cell in measured.values():
            assert cell["mb_s"] > 0
            assert cell["speedup"] > 0
