"""`fractal-bench overload`: the four-phase proof harness and its CLI."""

import json

import pytest

from repro.bench import runner
from repro.bench.overload import (
    render_report,
    report_to_payload,
    run_overload_experiment,
)


class TestHarness:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            run_overload_experiment(transport="carrier-pigeon")
        with pytest.raises(ValueError, match="events"):
            run_overload_experiment(events=2)

    @pytest.mark.attacks
    def test_all_four_ledgers_reconcile_exactly(self):
        report = run_overload_experiment(seed=0, events=8)
        assert report.reconciled
        for phase in (report.admission, report.deadline, report.breaker,
                      report.pool):
            assert phase["ledger_exact"]
        # Phase arithmetic is event-counted, not timed.
        assert report.admission["admitted"] == report.admission["burst"] + 1
        assert report.breaker["degraded"] == 8
        assert report.breaker["fast_failed"] == 8 - 3
        assert report.pool["restarts_total"] == 4

    @pytest.mark.attacks
    def test_payload_is_a_pure_function_of_the_arguments(self):
        a = report_to_payload(run_overload_experiment(seed=5, events=6))
        b = report_to_payload(run_overload_experiment(seed=5, events=6))
        assert a == b
        json.dumps(a)  # must be JSON-serialisable as-is

    @pytest.mark.attacks
    def test_render_reports_every_phase_and_reconciliation(self):
        text = render_report(run_overload_experiment(seed=0, events=8))
        for phase in ("admission", "deadline", "breaker", "pool"):
            assert phase in text
        assert "all four ledgers reconciled exactly" in text


class TestTcpTransport:
    @pytest.mark.attacks
    def test_ledgers_reconcile_over_real_sockets(self):
        report = run_overload_experiment(seed=1, transport="tcp", events=6)
        assert report.transport == "tcp"
        assert report.reconciled


class TestCli:
    @pytest.mark.attacks
    def test_overload_command_writes_reconciled_json(self, tmp_path, capsys):
        out = tmp_path / "overload.json"
        assert (
            runner.main(
                [
                    "overload",
                    "--seed", "0",
                    "--overload-events", "8",
                    "--json", str(out),
                ]
            )
            == 0
        )
        assert "all four ledgers reconciled exactly" in capsys.readouterr().out
        payload = json.loads(out.read_text())["overload"]
        assert payload["reconciled"] is True
        assert payload["events"] == 8
        assert payload["transport"] == "inproc"
