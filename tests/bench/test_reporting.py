"""Reporting helper tests."""

import pytest

from repro.bench.reporting import fmt_kb, fmt_ms, render_series, render_table
from repro.simnet.stats import Series


class TestFormatters:
    def test_fmt_ms(self):
        assert fmt_ms(0.1234) == "123.4"
        assert fmt_ms(0.0) == "0.0"

    def test_fmt_kb(self):
        assert fmt_kb(2048) == "2.0"
        assert fmt_kb(1536) == "1.5"


class TestRenderTable:
    def test_alignment_and_separator(self):
        out = render_table("Title", ["col", "longer"], [["a", "b"], ["cc", "dd"]])
        lines = out.splitlines()
        assert lines[0] == "Title"
        assert "col" in lines[1] and "longer" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        # All data rows align to header width.
        assert len(lines[3]) == len(lines[1])

    def test_non_string_cells_coerced(self):
        out = render_table("t", ["n"], [[42], [3.5]])
        assert "42" in out and "3.5" in out

    def test_empty_rows(self):
        out = render_table("t", ["a"], [])
        assert out.splitlines()[0] == "t"


class TestRenderSeries:
    def test_multi_series(self):
        s1 = Series("one", [1, 2], [10.0, 20.0])
        s2 = Series("two", [1, 2], [1.5, 2.5])
        out = render_series("T", [s1, s2], "x", "y")
        assert "one" in out and "two" in out
        assert "10" in out and "2.5" in out

    def test_mismatched_x_rejected(self):
        s1 = Series("one", [1, 2], [1.0, 2.0])
        s2 = Series("two", [1, 3], [1.0, 2.0])
        with pytest.raises(ValueError, match="share x points"):
            render_series("T", [s1, s2], "x", "y")
