"""`fractal-bench attacks`: the campaign harness and its CLI surface."""

import json

import pytest

from repro.attacks import KIND_ORDER, SLOWLORIS
from repro.bench import runner
from repro.bench.attacks import (
    EVENTS_PER_SECOND,
    campaign_to_payload,
    render_campaign,
    run_attack_campaign,
)


class TestCampaignHarness:
    def test_event_budget_is_a_deterministic_scalar(self):
        campaign = run_attack_campaign(
            seed=3, duration_s=2.0, intensity=2.0, kinds=[SLOWLORIS]
        )
        assert campaign.events_per_attack == round(2.0 * EVENTS_PER_SECOND * 2.0)
        assert campaign.bound == max(8, campaign.events_per_attack // 2)
        assert campaign.result.reconciled

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="duration_s"):
            run_attack_campaign(duration_s=0.0)
        with pytest.raises(ValueError, match="intensity"):
            run_attack_campaign(intensity=-1.0)

    @pytest.mark.attacks
    def test_payload_carries_params_and_exact_ledger(self):
        campaign = run_attack_campaign(seed=1, duration_s=2.0)
        payload = campaign_to_payload(campaign)
        assert payload["seed"] == 1
        assert payload["strategy"] == "hottest-edge"
        assert payload["reconciled"] is True
        assert [o["kind"] for o in payload["outcomes"]] == list(KIND_ORDER)
        totals = payload["totals"]
        assert totals["launched"] == totals["absorbed"] + totals["degraded"]
        for o in payload["outcomes"]:
            assert o["launched"] == o["absorbed"] + o["degraded"]
        json.dumps(payload)  # must be JSON-serialisable as-is

    @pytest.mark.attacks
    def test_render_reports_every_class_and_reconciliation(self):
        campaign = run_attack_campaign(seed=0, duration_s=2.0)
        text = render_campaign(campaign)
        for kind in KIND_ORDER:
            assert kind in text
        assert "reconciled exactly" in text


class TestAttacksCli:
    @pytest.mark.attacks
    def test_attacks_command_writes_reconciled_json(self, tmp_path, capsys):
        out = tmp_path / "attacks.json"
        assert (
            runner.main(
                ["attacks", "--duration", "2", "--seed", "2", "--json", str(out)]
            )
            == 0
        )
        assert "reconciled exactly" in capsys.readouterr().out
        payload = json.loads(out.read_text())["attacks"]
        assert payload["reconciled"] is True
        assert len(payload["outcomes"]) == len(KIND_ORDER)

    def test_attack_flag_restricts_the_campaign(self, tmp_path, capsys):
        out = tmp_path / "attacks.json"
        assert (
            runner.main(
                [
                    "attacks",
                    "--duration", "2",
                    "--attack", "slowloris",
                    "--strategy", "highest-degree",
                    "--json", str(out),
                ]
            )
            == 0
        )
        capsys.readouterr()
        payload = json.loads(out.read_text())["attacks"]
        assert [o["kind"] for o in payload["outcomes"]] == [SLOWLORIS]
        assert payload["strategy"] == "highest-degree"

    def test_unknown_attack_rejected(self):
        with pytest.raises(SystemExit):
            runner.main(["attacks", "--attack", "teardrop"])


class TestTcpCampaign:
    @pytest.mark.attacks
    def test_campaign_reconciles_over_real_sockets(self):
        campaign = run_attack_campaign(
            seed=2, duration_s=2.0, transport="tcp", kinds=[SLOWLORIS]
        )
        assert campaign.transport == "tcp"
        assert campaign.result.reconciled
        assert campaign_to_payload(campaign)["transport"] == "tcp"

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            run_attack_campaign(transport="carrier-pigeon")

    @pytest.mark.attacks
    def test_cli_attack_transport_flag(self, tmp_path, capsys):
        out = tmp_path / "attacks.json"
        assert (
            runner.main(
                [
                    "attacks",
                    "--duration", "2",
                    "--attack", "slowloris",
                    "--attack-transport", "tcp",
                    "--json", str(out),
                ]
            )
            == 0
        )
        capsys.readouterr()
        payload = json.loads(out.read_text())["attacks"]
        assert payload["transport"] == "tcp"
        assert payload["reconciled"] is True
