"""Ranked redirection and failover fetching."""

import pytest

from repro.cdn.planetlab import build_deployment
from repro.cdn.redirector import FailoverFetcher, RedirectError
from repro.telemetry import MetricsRegistry


@pytest.fixture()
def deployment():
    d = build_deployment(n_edges=4, n_client_sites=6, seed=3)
    d.origin.publish("pad/1", b"signed-pad-bytes")
    d.origin.publish("other/1", b"other-bytes")
    return d


class _BrokenEdge:
    """Stands in for a registered edge; every serve raises."""

    def __init__(self, inner):
        self.inner = inner

    def serve(self, key):
        raise RuntimeError(f"edge {self.name} is down")

    def __getattr__(self, name):
        return getattr(self.inner, name)


class TestRanked:
    def test_first_ranked_is_what_resolve_returns(self, deployment):
        site = deployment.client_sites[0]
        ranked = deployment.redirector.ranked(site, "pad/1")
        assert ranked[0].name == deployment.redirector.resolve(site, "pad/1").name
        assert len(ranked) == 4

    def test_ranking_is_nearest_first(self, deployment):
        site = deployment.client_sites[0]
        topo = deployment.topology
        ranked = deployment.redirector.ranked(site, key=None)
        latencies = [topo.latency_s(site, e.name) for e in ranked]
        assert latencies == sorted(latencies)

    def test_warm_edges_precede_cold(self, deployment):
        site = deployment.client_sites[0]
        ranked_cold = deployment.redirector.ranked(site, "pad/1")
        # Warm the farthest edge only.
        farthest = ranked_cold[-1]
        farthest.preload("pad/1")
        ranked = deployment.redirector.ranked(site, "pad/1")
        assert ranked[0].name == farthest.name

    def test_replace_edge_swaps_and_returns_previous(self, deployment):
        redirector = deployment.redirector
        original = redirector.edges()[0]
        wrapper = _BrokenEdge(original)
        assert redirector.replace_edge(wrapper) is original
        assert redirector.edges()[0] is wrapper
        redirector.replace_edge(original)  # restore

    def test_replace_unknown_edge_rejected(self, deployment):
        class Ghost:
            name = "edge99"

        with pytest.raises(RedirectError, match="no edge registered"):
            deployment.redirector.replace_edge(Ghost())


class TestFetchWithFailover:
    def test_walks_past_a_dead_edge(self, deployment):
        registry = MetricsRegistry()
        redirector = deployment.redirector
        site = deployment.client_sites[0]
        nearest = redirector.ranked(site, "pad/1")[0]
        redirector.replace_edge(_BrokenEdge(nearest))
        blob, edge = redirector.fetch_with_failover(
            site, "pad/1", registry=registry
        )
        assert blob == b"signed-pad-bytes"
        assert edge.name != nearest.name
        assert registry.snapshot()["counters"]["cdn.failovers"] == 1

    def test_skip_set_is_honored(self, deployment):
        redirector = deployment.redirector
        site = deployment.client_sites[0]
        ranked = redirector.ranked(site, "pad/1")
        _blob, edge = redirector.fetch_with_failover(
            site, "pad/1", skip=frozenset({ranked[0].name})
        )
        assert edge.name == ranked[1].name

    def test_all_edges_dead_raises_redirect_error(self, deployment):
        redirector = deployment.redirector
        for edge in list(redirector.edges()):
            redirector.replace_edge(_BrokenEdge(edge))
        with pytest.raises(RedirectError, match="all 4 candidate edges failed"):
            redirector.fetch_with_failover(deployment.client_sites[0], "pad/1")

    def test_everything_skipped_raises(self, deployment):
        redirector = deployment.redirector
        with pytest.raises(RedirectError, match="no candidate edges"):
            redirector.fetch_with_failover(
                deployment.client_sites[0],
                "pad/1",
                skip=frozenset(redirector.edge_names()),
            )


class TestFailoverFetcher:
    def test_acts_as_cdn_fetch_callable(self, deployment):
        fetcher = FailoverFetcher(deployment.redirector, deployment.client_sites[0])
        assert fetcher("pad/1") == b"signed-pad-bytes"
        assert fetcher.last_edge("pad/1") is not None

    def test_mark_bad_moves_to_next_edge(self, deployment):
        registry = MetricsRegistry()
        fetcher = FailoverFetcher(
            deployment.redirector, deployment.client_sites[0], registry=registry
        )
        fetcher("pad/1")
        first = fetcher.last_edge("pad/1")
        fetcher.mark_bad("pad/1")
        fetcher("pad/1")
        assert fetcher.last_edge("pad/1") != first
        assert registry.snapshot()["counters"]["cdn.edges_marked_bad"] == 1

    def test_mark_bad_before_any_fetch_is_a_noop(self, deployment):
        fetcher = FailoverFetcher(deployment.redirector, deployment.client_sites[0])
        fetcher.mark_bad("pad/1")  # nothing served yet: nothing to blame
        assert fetcher("pad/1") == b"signed-pad-bytes"

    def test_slate_wiped_when_every_edge_is_bad(self, deployment):
        fetcher = FailoverFetcher(deployment.redirector, deployment.client_sites[0])
        for _ in range(len(deployment.edges)):
            fetcher("pad/1")
            fetcher.mark_bad("pad/1")
        # All four edges are blacklisted; the wipe must let this succeed.
        assert fetcher("pad/1") == b"signed-pad-bytes"
