"""Origin / edge / redirector / replication tests."""

import pytest

from repro.cdn.edge import EdgeServer
from repro.cdn.origin import OriginError, OriginServer
from repro.cdn.planetlab import build_deployment
from repro.cdn.redirector import RedirectError, Redirector
from repro.cdn.replication import (
    PopularityTracker,
    invalidate_everywhere,
    push_all,
    push_popular,
)
from repro.simnet.topology import Topology


@pytest.fixture()
def origin():
    o = OriginServer()
    o.publish("pad/1", b"pad-one-bytes")
    o.publish("pad/2", b"pad-two-bytes!")
    return o


class TestOrigin:
    def test_publish_fetch(self, origin):
        assert origin.fetch("pad/1") == b"pad-one-bytes"
        assert origin.requests_served == 1
        assert origin.bytes_served == 13

    def test_fetch_unknown_raises(self, origin):
        with pytest.raises(OriginError):
            origin.fetch("nope")

    def test_republish_replaces(self, origin):
        origin.publish("pad/1", b"v2")
        assert origin.fetch("pad/1") == b"v2"

    def test_withdraw(self, origin):
        origin.withdraw("pad/1")
        assert not origin.has("pad/1")

    def test_empty_key_rejected(self, origin):
        with pytest.raises(OriginError):
            origin.publish("", b"x")

    def test_keys_sorted(self, origin):
        assert origin.keys() == ["pad/1", "pad/2"]

    def test_size_of(self, origin):
        assert origin.size_of("pad/1") == 13
        assert origin.size_of("nope") is None


class TestEdge:
    def test_pull_through_on_miss(self, origin):
        edge = EdgeServer("e0", origin)
        assert edge.serve("pad/1") == b"pad-one-bytes"
        assert edge.origin_fetches == 1
        # Second request hits the cache: no new origin fetch.
        edge.serve("pad/1")
        assert edge.origin_fetches == 1
        assert edge.requests_served == 2

    def test_preload_warms_cache(self, origin):
        edge = EdgeServer("e0", origin)
        edge.preload("pad/2")
        assert edge.has_cached("pad/2")
        edge.serve("pad/2")
        assert edge.origin_fetches == 0

    def test_try_serve_cached(self, origin):
        edge = EdgeServer("e0", origin)
        assert edge.try_serve_cached("pad/1") is None
        edge.preload("pad/1")
        assert edge.try_serve_cached("pad/1") == b"pad-one-bytes"

    def test_invalidate_then_refetch(self, origin):
        edge = EdgeServer("e0", origin)
        edge.serve("pad/1")
        origin.publish("pad/1", b"upgraded")
        assert edge.invalidate("pad/1")
        assert edge.serve("pad/1") == b"upgraded"

    def test_unknown_object_propagates(self, origin):
        edge = EdgeServer("e0", origin)
        with pytest.raises(OriginError):
            edge.serve("missing")


class TestRedirector:
    def _build(self, origin):
        topo = Topology()
        topo.add("client", 0.0, 0.0)
        topo.add("near", 1.0, 0.0)
        topo.add("far", 50.0, 0.0)
        r = Redirector(topo)
        near = EdgeServer("near", origin)
        far = EdgeServer("far", origin)
        r.register_edge(near)
        r.register_edge(far)
        return r, near, far

    def test_resolves_nearest(self, origin):
        r, near, _far = self._build(origin)
        assert r.resolve("client") is near

    def test_prefers_cached_copy(self, origin):
        r, _near, far = self._build(origin)
        far.preload("pad/1")
        assert r.resolve("client", "pad/1") is far
        # Without prefer_cached, locality wins.
        assert r.resolve("client", "pad/1", prefer_cached=False).name == "near"

    def test_fetch_returns_blob_and_edge(self, origin):
        r, near, _ = self._build(origin)
        blob, edge = r.fetch("client", "pad/2")
        assert blob == b"pad-two-bytes!"
        assert edge is near

    def test_no_edges_raises(self, origin):
        r = Redirector(Topology())
        with pytest.raises(RedirectError):
            r.resolve("anywhere")

    def test_edge_must_be_in_topology(self, origin):
        r = Redirector(Topology())
        with pytest.raises(RedirectError, match="no site"):
            r.register_edge(EdgeServer("ghost", origin))

    def test_duplicate_edge_rejected(self, origin):
        r, near, _ = self._build(origin)
        with pytest.raises(RedirectError, match="duplicate"):
            r.register_edge(near)


class TestReplication:
    def test_push_all(self, origin):
        edges = [EdgeServer(f"e{i}", origin) for i in range(3)]
        pushed = push_all(origin, edges)
        assert pushed == 6  # 2 objects x 3 edges
        assert all(e.has_cached("pad/1") and e.has_cached("pad/2") for e in edges)

    def test_popularity_tracker_top(self):
        t = PopularityTracker()
        for key, n in (("a", 3), ("b", 5), ("c", 1)):
            for _ in range(n):
                t.record(key)
        assert t.top(2) == ["b", "a"]

    def test_popularity_tie_breaks_on_key(self):
        t = PopularityTracker()
        t.record("z")
        t.record("a")
        assert t.top(2) == ["a", "z"]

    def test_top_negative_rejected(self):
        with pytest.raises(ValueError):
            PopularityTracker().top(-1)

    def test_push_popular_only_hot_objects(self, origin):
        edges = [EdgeServer("e0", origin)]
        tracker = PopularityTracker()
        tracker.record("pad/2")
        pushed = push_popular(origin, edges, tracker, k=1)
        assert pushed == 1
        assert edges[0].has_cached("pad/2")
        assert not edges[0].has_cached("pad/1")

    def test_invalidate_everywhere(self, origin):
        edges = [EdgeServer(f"e{i}", origin) for i in range(3)]
        push_all(origin, edges)
        purged = invalidate_everywhere(edges, "pad/1")
        assert purged == 3
        assert all(not e.has_cached("pad/1") for e in edges)


class TestDeployment:
    def test_build_shape(self):
        d = build_deployment(n_edges=5, n_client_sites=4)
        assert len(d.edges) == 5
        assert len(d.client_sites) == 4
        assert "origin" in d.topology and "proxy" in d.topology

    def test_deterministic(self):
        d1 = build_deployment(seed=3)
        d2 = build_deployment(seed=3)
        for a, b in zip(d1.topology.sites(), d2.topology.sites()):
            assert (a.name, a.x, a.y) == (b.name, b.x, b.y)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_deployment(n_edges=0)
        with pytest.raises(ValueError):
            build_deployment(n_client_sites=0)
