"""LRU cache tests."""

import pytest

from repro.cdn.cache import LRUCache


class TestLRUCache:
    def test_put_get(self):
        c = LRUCache(100)
        c.put("a", b"12345")
        assert c.get("a") == b"12345"

    def test_miss_returns_none(self):
        c = LRUCache(100)
        assert c.get("ghost") is None

    def test_eviction_in_lru_order(self):
        c = LRUCache(10)
        c.put("a", b"1234")
        c.put("b", b"1234")
        c.get("a")  # refresh a
        c.put("c", b"1234")  # evicts b, the least recent
        assert "b" not in c
        assert "a" in c and "c" in c

    def test_byte_accounting(self):
        c = LRUCache(100)
        c.put("a", b"123")
        c.put("b", b"4567")
        assert c.used_bytes == 7
        c.put("a", b"1")  # replacement shrinks usage
        assert c.used_bytes == 5

    def test_eviction_counter(self):
        c = LRUCache(4)
        c.put("a", b"1234")
        c.put("b", b"1234")
        assert c.evictions == 1

    def test_oversized_object_rejected(self):
        c = LRUCache(4)
        with pytest.raises(ValueError, match="exceeds cache capacity"):
            c.put("big", b"12345")

    def test_hit_miss_counters(self):
        c = LRUCache(100)
        c.put("a", b"x")
        c.get("a")
        c.get("a")
        c.get("nope")
        assert c.hits == 2 and c.misses == 1
        assert c.hit_ratio == pytest.approx(2 / 3)

    def test_peek_does_not_touch_stats_or_recency(self):
        c = LRUCache(8)
        c.put("a", b"1234")
        c.put("b", b"1234")
        c.peek("a")
        c.put("c", b"1234")  # should evict a (peek didn't refresh it)
        assert "a" not in c
        assert c.hits == 0 and c.misses == 0

    def test_invalidate(self):
        c = LRUCache(100)
        c.put("a", b"123")
        assert c.invalidate("a")
        assert not c.invalidate("a")
        assert c.used_bytes == 0

    def test_clear(self):
        c = LRUCache(100)
        c.put("a", b"1")
        c.put("b", b"2")
        c.clear()
        assert len(c) == 0 and c.used_bytes == 0

    def test_clear_preserves_stat_counters(self):
        # clear() drops contents only: hit/miss/eviction history is
        # traffic served, not occupancy — it must survive a clear.
        c = LRUCache(4)
        c.put("a", b"1234")
        c.get("a")
        c.get("nope")
        c.put("b", b"1234")  # evicts a
        c.clear()
        assert c.hits == 1 and c.misses == 1 and c.evictions == 1
        assert len(c) == 0 and c.used_bytes == 0

    def test_reset_stats_starts_fresh_epoch(self):
        c = LRUCache(100)
        c.put("a", b"1")
        c.get("a")
        c.get("nope")
        c.reset_stats()
        assert c.hits == 0 and c.misses == 0 and c.evictions == 0
        assert c.hit_ratio == 0.0
        # Contents untouched: the epoch boundary is about counters only.
        assert c.get("a") == b"1"
        assert c.hits == 1 and c.hit_ratio == 1.0

    def test_registry_mirror_counts_hits_misses_evictions(self):
        from repro.telemetry import MetricsRegistry

        reg = MetricsRegistry()
        c = LRUCache(4, registry=reg)
        c.put("a", b"1234")
        c.get("a")
        c.get("nope")
        c.put("b", b"1234")  # evicts a
        assert reg.counter("cdn.cache.hits").value == 1
        assert reg.counter("cdn.cache.misses").value == 1
        assert reg.counter("cdn.cache.evictions").value == 1

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_keys_order(self):
        c = LRUCache(100)
        c.put("a", b"1")
        c.put("b", b"2")
        c.get("a")
        assert c.keys() == ["b", "a"]  # recency order, oldest first
