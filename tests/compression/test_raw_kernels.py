"""Packed-token (raw) LZSS kernels and the detokenize copy fast path.

``tokenize_raw``/``detokenize_raw`` are the flat-int internals the coder
runs on; ``tokenize``/``detokenize`` wrap them in dataclasses at the API
boundary.  These tests pin the two layers together and cover the
slice-extend copy in ``detokenize`` over every distance/length regime.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.lz77 import (
    Literal,
    LZError,
    Match,
    detokenize,
    detokenize_raw,
    tokenize,
    tokenize_raw,
)


def _pack(tokens):
    return [
        t.byte if isinstance(t, Literal) else (t.length << 16) | t.distance
        for t in tokens
    ]


class TestRawTokenizeEquivalence:
    @pytest.mark.parametrize("seed,size", [(1, 100), (2, 3000), (3, 20_000)])
    def test_raw_matches_wrapped(self, seed, size):
        data = random.Random(seed).randbytes(size)
        assert _pack(tokenize(data)) == tokenize_raw(data)

    def test_raw_on_compressible_text(self):
        data = b"she sells sea shells by the sea shore " * 200
        raw = tokenize_raw(data)
        assert _pack(tokenize(data)) == raw
        assert detokenize_raw(raw) == data

    @settings(max_examples=40, deadline=None)
    @given(st.binary(max_size=4000))
    def test_property_raw_roundtrip(self, data):
        assert detokenize_raw(tokenize_raw(data)) == data

    def test_max_chain_validation_matches(self):
        with pytest.raises(ValueError):
            tokenize_raw(b"abc", max_chain=0)


class TestDetokenizeCopyRegimes:
    def test_non_overlapping_copy(self):
        # distance > length: plain slice out of already-emitted output.
        toks = [Literal(c) for c in b"abcdefgh"] + [Match(4, 8)]
        assert detokenize(toks) == b"abcdefghabcd"

    def test_exactly_adjacent_copy(self):
        # distance == length: the boundary of the slice fast path.
        toks = [Literal(c) for c in b"wxyz"] + [Match(4, 4)]
        assert detokenize(toks) == b"wxyzwxyz"

    def test_overlapping_run_copy(self):
        # distance < length: RLE-style self-overlap must replicate forward.
        toks = [Literal(ord("a")), Match(9, 1)]
        assert detokenize(toks) == b"a" * 10

    def test_overlapping_pattern_copy(self):
        toks = [Literal(ord("a")), Literal(ord("b")), Match(7, 2)]
        assert detokenize(toks) == b"ababababa"

    def test_overlap_one_byte_short_of_boundary(self):
        # distance = length - 1: smallest possible overlap.
        toks = [Literal(c) for c in b"abc"] + [Match(4, 3)]
        assert detokenize(toks) == b"abcabca"

    def test_distance_beyond_output_rejected(self):
        with pytest.raises(LZError, match="exceeds output length"):
            detokenize([Literal(0), Match(3, 2)])

    def test_raw_and_wrapped_agree_on_overlaps(self):
        cases = [
            [Literal(ord("q")), Match(200, 1)],
            [Literal(c) for c in b"0123456789"] + [Match(30, 10), Match(5, 40)],
            [Literal(c) for c in b"ab"] + [Match(3, 2), Match(6, 5), Match(4, 4)],
        ]
        for toks in cases:
            assert detokenize_raw(_pack(toks)) == detokenize(toks)

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_property_overlap_matches_naive_copy(self, data):
        prefix = data.draw(st.binary(min_size=1, max_size=32))
        out = bytearray(prefix)
        for _ in range(data.draw(st.integers(1, 6))):
            distance = data.draw(st.integers(1, len(out)))
            length = data.draw(st.integers(3, 40))
            start = len(out) - distance
            naive = bytes(out[start + (i % distance)] for i in range(length))
            out += naive
        toks = [Literal(c) for c in prefix]
        # Rebuild the same output through detokenize's copy path.
        replay = bytearray(prefix)
        ops = []
        pos = len(prefix)
        while pos < len(out):
            remaining = len(out) - pos
            length = min(remaining, 40)
            if length < 3:
                ops.extend(Literal(c) for c in out[pos : pos + length])
            else:
                # Find a distance that reproduces this span by self-copy.
                for distance in range(1, pos + 1):
                    start = pos - distance
                    if all(
                        out[pos + i] == out[start + (i % distance)]
                        for i in range(length)
                    ):
                        ops.append(Match(length, distance))
                        break
                else:
                    ops.extend(Literal(c) for c in out[pos : pos + length])
            pos += length
        assert detokenize(toks + ops) == bytes(out)
