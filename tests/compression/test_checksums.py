"""From-scratch checksums must match zlib bit-for-bit."""

import zlib

import pytest
from hypothesis import given, strategies as st

from repro.compression.checksums import adler32, crc32


class TestAdler32:
    def test_empty(self):
        assert adler32(b"") == 1 == zlib.adler32(b"")

    def test_known_value(self):
        # "Wikipedia" is the canonical worked example.
        assert adler32(b"Wikipedia") == 0x11E60398

    def test_matches_zlib_on_text(self):
        data = b"the quick brown fox jumps over the lazy dog" * 100
        assert adler32(data) == zlib.adler32(data)

    def test_block_boundary(self):
        # Cross the 5552-byte deferred-modulo block boundary.
        data = bytes(i % 251 for i in range(20_000))
        assert adler32(data) == zlib.adler32(data)

    def test_incremental_matches_one_shot(self):
        data = b"abcdefgh" * 500
        running = 1
        for i in range(0, len(data), 777):
            running = adler32(data[i : i + 777], running)
        assert running == adler32(data)

    @given(st.binary(max_size=4096))
    def test_matches_zlib_property(self, data):
        assert adler32(data) == zlib.adler32(data)


class TestCrc32:
    def test_empty(self):
        assert crc32(b"") == 0 == zlib.crc32(b"")

    def test_known_value(self):
        assert crc32(b"123456789") == 0xCBF43926

    def test_incremental_matches_one_shot(self):
        data = bytes(range(256)) * 10
        running = 0
        for i in range(0, len(data), 100):
            running = crc32(data[i : i + 100], running)
        assert running == crc32(data)

    @given(st.binary(max_size=4096))
    def test_matches_zlib_property(self, data):
        assert crc32(data) == zlib.crc32(data)
