"""Canonical Huffman tests."""

import collections

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.bitio import BitReader, BitWriter
from repro.compression.huffman import (
    CanonicalCode,
    HuffmanError,
    code_lengths_from_freqs,
)


class TestCodeLengths:
    def test_empty_alphabet_rejected(self):
        with pytest.raises(HuffmanError):
            code_lengths_from_freqs({})

    def test_nonpositive_freq_rejected(self):
        with pytest.raises(HuffmanError):
            code_lengths_from_freqs({0: 0})

    def test_single_symbol_gets_one_bit(self):
        assert code_lengths_from_freqs({7: 100}) == {7: 1}

    def test_two_symbols(self):
        lens = code_lengths_from_freqs({0: 10, 1: 1})
        assert lens == {0: 1, 1: 1}

    def test_skewed_freqs_give_shorter_codes_to_common_symbols(self):
        lens = code_lengths_from_freqs({0: 1000, 1: 10, 2: 10, 3: 1})
        assert lens[0] < lens[3]

    def test_kraft_inequality_holds(self):
        freqs = {i: (i + 1) ** 2 for i in range(40)}
        lens = code_lengths_from_freqs(freqs)
        assert sum(2.0 ** -l for l in lens.values()) <= 1.0 + 1e-12

    def test_length_limit_enforced(self):
        # Fibonacci-ish frequencies force deep unrestricted trees.
        freqs = {}
        a, b = 1, 1
        for i in range(30):
            freqs[i] = a
            a, b = b, a + b
        lens = code_lengths_from_freqs(freqs, max_bits=10)
        assert max(lens.values()) <= 10
        assert sum(2.0 ** -l for l in lens.values()) <= 1.0 + 1e-12

    def test_too_many_symbols_for_limit_rejected(self):
        with pytest.raises(HuffmanError):
            code_lengths_from_freqs({i: 1 for i in range(5)}, max_bits=2)

    def test_optimality_against_entropy(self):
        """Average code length within one bit of entropy (Huffman bound)."""
        import math

        freqs = {i: 100 // (i + 1) for i in range(20)}
        total = sum(freqs.values())
        lens = code_lengths_from_freqs(freqs)
        avg = sum(freqs[s] * l for s, l in lens.items()) / total
        entropy = -sum(
            (f / total) * math.log2(f / total) for f in freqs.values()
        )
        assert entropy <= avg <= entropy + 1.0


class TestCanonicalCode:
    def test_roundtrip_symbols(self):
        freqs = collections.Counter(b"abracadabra alakazam")
        code = CanonicalCode.from_freqs(dict(freqs), 256)
        w = BitWriter()
        data = list(b"abracadabra alakazam")
        code.encode_symbols(data, w)
        r = BitReader(w.getvalue())
        assert code.decode_symbols(r, len(data)) == data

    def test_lengths_fully_determine_code(self):
        freqs = {0: 5, 1: 3, 2: 2, 3: 1}
        c1 = CanonicalCode.from_freqs(freqs, 4)
        c2 = CanonicalCode(c1.lengths)
        assert c1.encoder() == c2.encoder()

    def test_canonical_assignment_is_sorted(self):
        code = CanonicalCode((2, 1, 3, 3))
        enc = code.encoder()
        # Shorter codes numerically precede longer ones when left-aligned.
        assert enc[1] == (0, 1)
        assert enc[0] == (0b10, 2)
        assert enc[2] == (0b110, 3)
        assert enc[3] == (0b111, 3)

    def test_kraft_violation_rejected(self):
        with pytest.raises(HuffmanError):
            CanonicalCode((1, 1, 1))

    def test_no_symbols_rejected(self):
        with pytest.raises(HuffmanError):
            CanonicalCode((0, 0, 0))

    def test_unknown_symbol_rejected_on_encode(self):
        code = CanonicalCode.from_freqs({0: 1, 1: 1}, 4)
        with pytest.raises(HuffmanError):
            code.encode_symbols([3], BitWriter())

    def test_truncated_stream_raises(self):
        code = CanonicalCode.from_freqs({0: 3, 1: 2, 2: 1}, 4)
        w = BitWriter()
        code.encode_symbols([2], w)
        blob = w.getvalue()
        r = BitReader(b"")
        with pytest.raises(HuffmanError):
            code.decode_symbol(r)

    def test_symbol_outside_alphabet_rejected(self):
        with pytest.raises(HuffmanError):
            CanonicalCode.from_freqs({9: 1}, 4)

    @given(st.dictionaries(st.integers(0, 63), st.integers(1, 1000),
                           min_size=1, max_size=64))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, freqs):
        code = CanonicalCode.from_freqs(freqs, 64)
        symbols = [s for s, f in freqs.items() for _ in range(min(f, 5))]
        w = BitWriter()
        code.encode_symbols(symbols, w)
        r = BitReader(w.getvalue())
        assert code.decode_symbols(r, len(symbols)) == symbols
