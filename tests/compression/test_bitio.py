"""Bit-level I/O tests."""

import pytest
from hypothesis import given, strategies as st

from repro.compression.bitio import BitReader, BitWriter, BitstreamError


class TestBitWriter:
    def test_lsb_first_packing(self):
        w = BitWriter()
        w.write_bits(1, 1)  # bit 0
        w.write_bits(0, 1)  # bit 1
        w.write_bits(1, 1)  # bit 2
        assert w.getvalue() == bytes([0b101])

    def test_multibyte_value(self):
        w = BitWriter()
        w.write_bits(0x1234, 16)
        assert w.getvalue() == bytes([0x34, 0x12])

    def test_partial_byte_zero_padded(self):
        w = BitWriter()
        w.write_bits(0b11, 2)
        assert w.getvalue() == bytes([0b11])

    def test_value_too_wide_rejected(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_bits(4, 2)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(0, -1)

    def test_bit_length_tracks(self):
        w = BitWriter()
        w.write_bits(0, 5)
        assert w.bit_length == 5
        w.write_bits(0, 5)
        assert w.bit_length == 10

    def test_write_code_msb_first(self):
        w = BitWriter()
        w.write_code(0b110, 3)  # 1 then 1 then 0
        r = BitReader(w.getvalue())
        assert [r.read_bit() for _ in range(3)] == [1, 1, 0]


class TestBitReader:
    def test_roundtrip_simple(self):
        w = BitWriter()
        w.write_bits(0b10110, 5)
        r = BitReader(w.getvalue())
        assert r.read_bits(5) == 0b10110

    def test_read_past_end_raises(self):
        r = BitReader(b"\x01")
        r.read_bits(8)
        with pytest.raises(BitstreamError):
            r.read_bit()

    def test_bits_remaining(self):
        r = BitReader(b"\x00\x00")
        assert r.bits_remaining == 16
        r.read_bits(3)
        assert r.bits_remaining == 13

    @given(st.lists(st.tuples(st.integers(0, 2**16 - 1), st.integers(1, 16)),
                    min_size=1, max_size=100))
    def test_roundtrip_property(self, fields):
        w = BitWriter()
        clipped = []
        for value, count in fields:
            value &= (1 << count) - 1
            clipped.append((value, count))
            w.write_bits(value, count)
        r = BitReader(w.getvalue())
        for value, count in clipped:
            assert r.read_bits(count) == value
