"""LZSS tokenizer tests."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.lz77 import (
    MAX_MATCH,
    MIN_MATCH,
    WINDOW_SIZE,
    Literal,
    LZError,
    Match,
    detokenize,
    tokenize,
)


class TestTokens:
    def test_literal_range_enforced(self):
        with pytest.raises(LZError):
            Literal(256)

    def test_match_length_bounds(self):
        with pytest.raises(LZError):
            Match(MIN_MATCH - 1, 1)
        with pytest.raises(LZError):
            Match(MAX_MATCH + 1, 1)

    def test_match_distance_bounds(self):
        with pytest.raises(LZError):
            Match(4, 0)
        with pytest.raises(LZError):
            Match(4, WINDOW_SIZE + 1)


class TestTokenize:
    def test_empty_input(self):
        assert tokenize(b"") == []

    def test_all_literals_for_unique_bytes(self):
        data = bytes(range(64))
        tokens = tokenize(data)
        assert all(isinstance(t, Literal) for t in tokens)
        assert detokenize(tokens) == data

    def test_repetition_produces_matches(self):
        data = b"abcabcabcabcabcabc"
        tokens = tokenize(data)
        assert any(isinstance(t, Match) for t in tokens)
        assert detokenize(tokens) == data

    def test_run_of_single_byte_uses_overlapping_match(self):
        data = b"a" * 300
        tokens = tokenize(data)
        # One literal then overlapping matches (distance 1).
        assert isinstance(tokens[0], Literal)
        matches = [t for t in tokens if isinstance(t, Match)]
        assert matches and all(m.distance == 1 for m in matches)
        assert detokenize(tokens) == data

    def test_compression_on_text(self):
        data = (b"the quick brown fox. " * 150)
        tokens = tokenize(data)
        # Token count should be far below input length for repetitive text.
        assert len(tokens) < len(data) / 4
        assert detokenize(tokens) == data

    def test_lazy_beats_or_ties_greedy_on_text(self):
        data = b"abcde_bcdef_abcdef" * 50
        lazy = tokenize(data, lazy=True)
        greedy = tokenize(data, lazy=False)
        assert detokenize(lazy) == detokenize(greedy) == data
        assert len(lazy) <= len(greedy) + 2  # lazy should not be worse

    def test_max_chain_validated(self):
        with pytest.raises(ValueError):
            tokenize(b"abc", max_chain=0)

    def test_deterministic(self):
        rng = random.Random(5)
        data = bytes(rng.randrange(8) for _ in range(3000))
        assert tokenize(data) == tokenize(data)


class TestDetokenize:
    def test_rejects_distance_beyond_output(self):
        with pytest.raises(LZError):
            detokenize([Match(3, 5)])

    def test_rejects_unknown_token(self):
        with pytest.raises(LZError):
            detokenize(["bogus"])


class TestRoundtripProperties:
    @given(st.binary(max_size=3000))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_arbitrary_bytes(self, data):
        assert detokenize(tokenize(data)) == data

    @given(st.binary(min_size=1, max_size=40), st.integers(2, 60))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_repeated_pattern(self, pattern, reps):
        data = pattern * reps
        assert detokenize(tokenize(data)) == data

    @given(st.binary(max_size=1500))
    @settings(max_examples=20, deadline=None)
    def test_matches_reference_window_constraint(self, data):
        """Every match must copy from within the sliding window."""
        pos = 0
        for tok in tokenize(data):
            if isinstance(tok, Match):
                assert tok.distance <= pos
                pos += tok.length
            else:
                pos += 1
        assert pos == len(data)
