"""Property-based round-trip tests for the compression stack.

Plain seeded ``random.Random`` generators, no extra dependencies: each
test draws a few hundred adversarial inputs (random bytes, low-entropy
runs, repeated motifs, near-duplicates) and asserts encode→decode
identity.  The corpus generator lives here so the chunking property
tests can reuse it.
"""

from __future__ import annotations

import random

import pytest

from repro.compression.bitio import BitReader, BitWriter
from repro.compression.gziplike import compress, decompress
from repro.compression.huffman import CanonicalCode
from repro.compression.lz77 import detokenize, tokenize

SEED = 20050404  # IPPS 2005; fixed so failures replay exactly


def random_blobs(rng: random.Random, count: int, max_len: int = 4096):
    """A mix of input shapes a codec must survive, deterministically."""
    alphabets = [
        bytes(range(256)),           # full byte range
        b"abcdef",                   # tiny alphabet -> deep Huffman trees
        b"\x00\xff",                 # two symbols -> degenerate code
        b"the quick brown fox ",     # English-ish, LZ-friendly
    ]
    for _ in range(count):
        shape = rng.randrange(4)
        n = rng.randrange(0, max_len)
        if shape == 0:  # uniform random over a chosen alphabet
            alphabet = rng.choice(alphabets)
            yield bytes(rng.choice(alphabet) for _ in range(n))
        elif shape == 1:  # long runs (RLE-like worst/best cases)
            out = bytearray()
            while len(out) < n:
                out += bytes([rng.randrange(256)]) * rng.randrange(1, 64)
            yield bytes(out[:n])
        elif shape == 2:  # repeated motif with point mutations
            motif = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 32)))
            out = bytearray((motif * (n // max(len(motif), 1) + 1))[:n])
            for _ in range(rng.randrange(0, 8)):
                if out:
                    out[rng.randrange(len(out))] = rng.randrange(256)
            yield bytes(out)
        else:  # two concatenated halves of different character
            half = bytes(rng.randrange(256) for _ in range(n // 2))
            yield half + bytes([rng.randrange(256)]) * (n - len(half))


class TestGziplikeRoundTrip:
    def test_random_corpus_identity(self):
        rng = random.Random(SEED)
        for blob in random_blobs(rng, 120, max_len=4096):
            assert decompress(compress(blob)) == blob

    def test_edge_lengths(self):
        for blob in (b"", b"x", b"ab", b"\x00" * 3, bytes(range(256))):
            assert decompress(compress(blob)) == blob

    def test_incompressible_survives(self):
        rng = random.Random(SEED + 1)
        blob = rng.randbytes(8192)
        assert decompress(compress(blob)) == blob

    def test_highly_compressible_shrinks(self):
        blob = b"a" * 10_000
        packed = compress(blob)
        assert decompress(packed) == blob
        assert len(packed) < len(blob) // 4


class TestLZ77RoundTrip:
    def test_random_corpus_identity(self):
        rng = random.Random(SEED + 2)
        for blob in random_blobs(rng, 120, max_len=4096):
            assert detokenize(tokenize(blob)) == blob

    def test_match_parameters_swept(self):
        rng = random.Random(SEED + 3)
        blob = next(random_blobs(rng, 1, max_len=2048))
        for max_chain in (1, 4, 64):
            assert detokenize(tokenize(blob, max_chain=max_chain)) == blob


class TestHuffmanRoundTrip:
    def test_random_symbol_streams(self):
        rng = random.Random(SEED + 4)
        for _ in range(80):
            n_symbols = rng.randrange(2, 64)
            stream = [rng.randrange(n_symbols) for _ in range(rng.randrange(1, 2000))]
            freqs = {}
            for s in stream:
                freqs[s] = freqs.get(s, 0) + 1
            code = CanonicalCode.from_freqs(freqs, n_symbols)
            writer = BitWriter()
            code.encode_symbols(stream, writer)
            reader = BitReader(writer.getvalue())
            assert code.decode_symbols(reader, len(stream)) == stream

    def test_single_symbol_alphabet(self):
        code = CanonicalCode.from_freqs({7: 100}, 8)
        writer = BitWriter()
        code.encode_symbols([7] * 25, writer)
        reader = BitReader(writer.getvalue())
        assert code.decode_symbols(reader, 25) == [7] * 25

    def test_skewed_distribution(self):
        rng = random.Random(SEED + 5)
        # 1 symbol takes ~99% of the mass: deep tree for the rest.
        stream = [0 if rng.random() < 0.99 else rng.randrange(1, 40)
                  for _ in range(5000)]
        freqs = {}
        for s in stream:
            freqs[s] = freqs.get(s, 0) + 1
        code = CanonicalCode.from_freqs(freqs, 40)
        writer = BitWriter()
        code.encode_symbols(stream, writer)
        assert code.decode_symbols(BitReader(writer.getvalue()), len(stream)) == stream


def test_gzip_then_lz_agree_on_identity():
    """Differential: both codecs must invert on the same corpus."""
    rng = random.Random(SEED + 6)
    for blob in random_blobs(rng, 40, max_len=2048):
        assert decompress(compress(blob)) == detokenize(tokenize(blob)) == blob
