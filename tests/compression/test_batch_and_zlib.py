"""Batched-kernel equivalence and the zlib fast path.

Two invariants guard the corpus-granularity batch APIs:

* **Batching is invisible.** ``tokenize_batch`` must return exactly the
  per-buffer ``tokenize_raw`` tables, and ``compress_batch`` exactly the
  per-message ``compress`` containers — byte for byte, so the golden
  wire vectors hold no matter how messages are grouped.  The batched
  scan concatenates every buffer into one array; the dangerous inputs
  are therefore *adjacent* buffers whose bytes would match across the
  seam, which these suites construct deliberately.
* **zlib is equivalent, never identical.** The ``backend="zlib"``
  container must round-trip through the one shared ``decompress`` (which
  dispatches on the container flag — that IS the pure-decodes-zlib cross
  path) and produce the same plaintext as the pure container on every
  golden corpus, while the wire bytes differ (the golden SHA-1s pin the
  pure backend only).
"""

import hashlib
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression import gziplike
from repro.compression.dictionaries import builtin_dictionary
from repro.compression.lz77 import tokenize_batch, tokenize_raw
from repro.workload.pages import Corpus

from ..protocols.test_golden_wire import GZIPLIKE_GOLDEN


def _sha1(data: bytes) -> str:
    return hashlib.sha1(data).hexdigest()


def golden_inputs() -> dict[str, bytes]:
    """The exact inputs behind the frozen GZIPLIKE_GOLDEN digests."""
    corpus = Corpus(text_bytes=2048, image_bytes=4096, images_per_page=2)
    rng = random.Random(1905)
    return {
        "empty": b"",
        "text": b"the quick brown fox jumps over the lazy dog. " * 200,
        "runs": b"A" * 5000 + b"B" * 5000,
        "random": rng.randbytes(8192),
        "small_page": corpus.evolved(0, 1).encode(),
    }


@pytest.fixture(scope="module")
def goldens():
    return golden_inputs()


def _seeded_buffers(seed: int, count: int, size: int) -> list[bytes]:
    """Repetitive-but-distinct buffers: worst case for match confusion."""
    rng = random.Random(seed)
    alphabet = bytes(rng.randrange(256) for _ in range(8))
    out = []
    for i in range(count):
        body = bytearray()
        while len(body) < size:
            run = alphabet[rng.randrange(8) : rng.randrange(1, 9)]
            body += run * rng.randrange(1, 20)
        out.append(bytes(body[:size]))
    return out


class TestTokenizeBatchEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_seeded_corpora_match_per_buffer(self, seed):
        buffers = _seeded_buffers(seed, count=5, size=4096)
        assert tokenize_batch(buffers) == [tokenize_raw(b) for b in buffers]

    def test_identical_adjacent_buffers(self):
        # Equal content side by side in the concatenated scan: a match
        # found in buffer k must never reference buffer k-1's copy.
        page = _seeded_buffers(99, count=1, size=3000)[0]
        buffers = [page, page, page]
        assert tokenize_batch(buffers) == [tokenize_raw(b) for b in buffers]

    def test_shared_prefix_suffix_seam(self):
        # b ends with the exact bytes a begins with — a cross-seam match
        # would be found by a naive concatenated scan.
        a = b"SEAMSEAMSEAM" * 300
        b = (b"x" * 2000) + b"SEAMSEAMSEAM" * 100
        buffers = [b, a, b]
        assert tokenize_batch(buffers) == [tokenize_raw(x) for x in buffers]

    def test_mixed_sizes_and_empties(self):
        buffers = [b"", b"ab", _seeded_buffers(3, 1, 5000)[0], b"q" * 2, b""]
        assert tokenize_batch(buffers) == [tokenize_raw(b) for b in buffers]

    def test_small_total_falls_back_identically(self):
        buffers = [b"abcabcabc", b"xyzxyzxyz"]
        assert tokenize_batch(buffers) == [tokenize_raw(b) for b in buffers]

    def test_corpus_pages(self):
        corpus = Corpus(text_bytes=2048, image_bytes=4096, images_per_page=2)
        pages = [corpus.evolved(p, v).encode() for p in range(3) for v in (0, 1)]
        assert tokenize_batch(pages) == [tokenize_raw(p) for p in pages]

    def test_max_chain_threads_through(self):
        buffers = _seeded_buffers(7, count=3, size=4096)
        assert tokenize_batch(buffers, max_chain=4) == [
            tokenize_raw(b, max_chain=4) for b in buffers
        ]

    def test_lazy_off_threads_through(self):
        buffers = _seeded_buffers(11, count=3, size=4096)
        assert tokenize_batch(buffers, lazy=False) == [
            tokenize_raw(b, lazy=False) for b in buffers
        ]

    def test_bad_max_chain_rejected(self):
        with pytest.raises(ValueError):
            tokenize_batch([b"abc"], max_chain=0)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.binary(min_size=0, max_size=2000)
            | st.builds(
                lambda pat, n: pat * n,
                st.binary(min_size=1, max_size=8),
                st.integers(min_value=1, max_value=400),
            ),
            min_size=2,
            max_size=6,
        )
    )
    def test_property_batch_equals_per_buffer(self, buffers):
        assert tokenize_batch(buffers) == [tokenize_raw(b) for b in buffers]


class TestCompressBatchIdentity:
    def test_batch_matches_per_message_pure(self, goldens):
        datas = list(goldens.values())
        batch = gziplike.compress_batch(datas, backend="pure")
        assert batch == [gziplike.compress(d, backend="pure") for d in datas]

    def test_batch_matches_golden_sha1(self, goldens):
        names = sorted(goldens)
        batch = gziplike.compress_batch([goldens[n] for n in names])
        for name, blob in zip(names, batch):
            assert _sha1(blob) == GZIPLIKE_GOLDEN[name]

    def test_batch_matches_per_message_zlib(self, goldens):
        datas = list(goldens.values())
        batch = gziplike.compress_batch(datas, backend="zlib")
        assert batch == [gziplike.compress(d, backend="zlib") for d in datas]

    def test_batch_matches_per_message_with_dictionary(self, goldens):
        d = builtin_dictionary("text")
        datas = [goldens["text"], goldens["runs"], b""]
        batch = gziplike.compress_batch(datas, dictionary=d)
        assert batch == [gziplike.compress(x, dictionary=d) for x in datas]

    def test_empty_batch(self):
        assert gziplike.compress_batch([]) == []

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            gziplike.compress_batch([b"x"], backend="snappy")

    def test_dictionary_requires_pure(self):
        with pytest.raises(ValueError):
            gziplike.compress_batch(
                [b"x"], backend="zlib", dictionary=builtin_dictionary("text")
            )


class TestZlibBackend:
    @pytest.mark.parametrize("name", sorted(GZIPLIKE_GOLDEN))
    def test_roundtrip_every_golden_corpus(self, goldens, name):
        data = goldens[name]
        blob = gziplike.compress(data, backend="zlib")
        assert gziplike.decompress(blob) == data

    @pytest.mark.parametrize("name", sorted(GZIPLIKE_GOLDEN))
    def test_cross_decode_pure_and_zlib_agree(self, goldens, name):
        # One decompress() serves both containers (flag dispatch): the
        # pure-side decoder reading a zlib container IS the cross path,
        # and both must yield the same plaintext.
        data = goldens[name]
        pure = gziplike.compress(data, backend="pure")
        zl = gziplike.compress(data, backend="zlib")
        assert gziplike.decompress(pure) == gziplike.decompress(zl) == data

    @pytest.mark.parametrize("name", sorted(GZIPLIKE_GOLDEN))
    def test_zlib_container_never_byte_identical_to_golden(self, goldens, name):
        # Equivalent, not identical: the golden SHA-1s pin ONLY the pure
        # backend.  (The empty container is header-only either way, but
        # the flag byte still differs.)
        blob = gziplike.compress(goldens[name], backend="zlib")
        assert _sha1(blob) != GZIPLIKE_GOLDEN[name]

    def test_pure_wire_bytes_unchanged_by_backend_existence(self, goldens):
        # The default path stays byte-identical to the frozen vectors.
        for name, data in goldens.items():
            assert _sha1(gziplike.compress(data)) == GZIPLIKE_GOLDEN[name]

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=0, max_size=5000))
    def test_property_zlib_roundtrip(self, data):
        blob = gziplike.compress(data, backend="zlib")
        assert gziplike.decompress(blob) == data


class TestCompressionCacheBounds:
    def test_no_unbounded_lru_caches_in_compression_package(self):
        # Cache keys in this package are attacker-influenceable (wire
        # dictionary ids, configured content-class names): every
        # lru_cache must declare a finite maxsize.
        import functools
        import inspect

        import repro.compression.dictionaries as dmod
        import repro.compression.huffman as hmod

        for mod in (dmod, hmod):
            for name, obj in vars(mod).items():
                if isinstance(obj, functools._lru_cache_wrapper):
                    maxsize = obj.cache_info().maxsize
                    assert maxsize is not None, (
                        f"{mod.__name__}.{name} has an unbounded lru_cache"
                    )
                    assert maxsize <= 1024

    def test_dictionary_caches_still_serve_all_classes(self):
        from repro.compression.dictionaries import (
            CONTENT_CLASSES,
            dictionary_by_id,
        )

        for cls in CONTENT_CLASSES:
            d = builtin_dictionary(cls)
            assert dictionary_by_id(d.dict_id) is d
