"""Deflate-lite container tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.gziplike import (
    MAGIC,
    CompressionError,
    compress,
    decompress,
)


class TestContainer:
    def test_roundtrip_text(self):
        data = b"hello compression world " * 100
        assert decompress(compress(data)) == data

    def test_roundtrip_empty(self):
        assert decompress(compress(b"")) == b""

    def test_roundtrip_single_byte(self):
        assert decompress(compress(b"x")) == b"x"

    def test_zlib_backend_roundtrip(self):
        data = bytes(range(256)) * 64
        blob = compress(data, backend="zlib")
        assert decompress(blob) == data

    def test_backends_interchangeable_on_decode(self):
        data = b"shared container format " * 50
        assert decompress(compress(data, backend="pure")) == decompress(
            compress(data, backend="zlib")
        )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            compress(b"x", backend="lzma")

    def test_compresses_repetitive_data(self):
        data = b"abcdef" * 2000
        assert len(compress(data)) < len(data) / 5

    def test_incompressible_data_expands_bounded(self):
        import random

        data = random.Random(0).randbytes(4096)
        blob = compress(data)
        # Huffman headers cost ~160 bytes; growth must stay small.
        assert len(blob) < len(data) * 1.15


class TestCorruptionDetection:
    def test_bad_magic(self):
        blob = bytearray(compress(b"data"))
        blob[0] ^= 0xFF
        with pytest.raises(CompressionError, match="magic"):
            decompress(bytes(blob))

    def test_truncated_container(self):
        with pytest.raises(CompressionError):
            decompress(MAGIC)

    def test_crc_mismatch_detected(self):
        data = b"the payload that will be corrupted" * 20
        blob = bytearray(compress(data))
        blob[-1] ^= 0x01
        with pytest.raises(CompressionError):
            decompress(bytes(blob))

    def test_zlib_payload_corruption_detected(self):
        blob = bytearray(compress(b"z" * 500, backend="zlib"))
        blob[20] ^= 0xFF
        with pytest.raises(CompressionError):
            decompress(bytes(blob))

    def test_length_field_mismatch_detected(self):
        data = b"abc" * 100
        blob = bytearray(compress(data))
        # The varint length sits right after magic+flags; nudge it.
        blob[len(MAGIC) + 1] ^= 0x01
        with pytest.raises(CompressionError):
            decompress(bytes(blob))


class TestRoundtripProperties:
    @given(st.binary(max_size=4000))
    @settings(max_examples=30, deadline=None)
    def test_pure_roundtrip(self, data):
        assert decompress(compress(data)) == data

    @given(st.binary(max_size=20_000))
    @settings(max_examples=20, deadline=None)
    def test_zlib_roundtrip(self, data):
        assert decompress(compress(data, backend="zlib")) == data

    @given(st.text(alphabet="abcdefgh \n", max_size=5000))
    @settings(max_examples=20, deadline=None)
    def test_low_entropy_always_shrinks(self, text):
        data = text.encode()
        if len(data) > 500:
            assert len(compress(data)) < len(data)
