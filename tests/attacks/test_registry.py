"""AttackRegistry: the declarative catalogue and its seeded sampling."""

import random

import pytest

from repro.attacks import (
    ATTACK_KINDS,
    BYZANTINE_PAD,
    CACHE_POISON,
    KIND_ORDER,
    NEGOTIATION_HERD,
    SLOWLORIS,
    TARGETED_OUTAGE,
    AttackBehavior,
    AttackRegistry,
)


class TestBehaviorValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown attack kind"):
            AttackBehavior("dns_rebinding")

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="weight"):
            AttackBehavior(SLOWLORIS, weight=-0.5)

    def test_zero_weight_accepted(self):
        assert AttackBehavior(SLOWLORIS, weight=0.0).weight == 0.0

    def test_params_carried(self):
        b = AttackBehavior(BYZANTINE_PAD, params={"fragile_every": 2})
        assert b.params["fragile_every"] == 2


class TestRegistry:
    def test_default_registers_all_kinds_in_canonical_order(self):
        registry = AttackRegistry.default()
        assert registry.kinds() == list(KIND_ORDER)
        assert len(registry) == len(ATTACK_KINDS) == 5
        assert all(kind in registry for kind in ATTACK_KINDS)

    def test_kind_order_covers_exactly_the_kind_set(self):
        assert set(KIND_ORDER) == ATTACK_KINDS
        assert len(KIND_ORDER) == len(ATTACK_KINDS)

    def test_duplicate_registration_rejected(self):
        registry = AttackRegistry().register(AttackBehavior(SLOWLORIS))
        with pytest.raises(ValueError, match="already registered"):
            registry.register(AttackBehavior(SLOWLORIS, weight=2.0))

    def test_get_unregistered_raises_keyerror(self):
        with pytest.raises(KeyError, match="not registered"):
            AttackRegistry().get(CACHE_POISON)

    def test_iteration_preserves_registration_order(self):
        registry = (
            AttackRegistry()
            .register(AttackBehavior(TARGETED_OUTAGE))
            .register(AttackBehavior(NEGOTIATION_HERD))
        )
        assert [b.kind for b in registry] == [TARGETED_OUTAGE, NEGOTIATION_HERD]


class TestSampling:
    def test_same_seed_same_draws(self):
        registry = AttackRegistry.default()
        a = registry.sample(random.Random(7), 50)
        b = registry.sample(random.Random(7), 50)
        assert a == b
        assert set(a) <= ATTACK_KINDS

    def test_weights_bias_the_draw(self):
        registry = (
            AttackRegistry()
            .register(AttackBehavior(SLOWLORIS, weight=100.0))
            .register(AttackBehavior(CACHE_POISON, weight=1.0))
        )
        draws = registry.sample(random.Random(0), 200)
        assert draws.count(SLOWLORIS) > draws.count(CACHE_POISON)

    def test_zero_weight_never_drawn(self):
        registry = (
            AttackRegistry()
            .register(AttackBehavior(SLOWLORIS, weight=0.0))
            .register(AttackBehavior(CACHE_POISON, weight=1.0))
        )
        assert set(registry.sample(random.Random(3), 100)) == {CACHE_POISON}

    def test_kinds_filter_restricts_the_pool(self):
        registry = AttackRegistry.default()
        draws = registry.sample(random.Random(1), 40, kinds=[BYZANTINE_PAD])
        assert set(draws) == {BYZANTINE_PAD}

    def test_empty_pool_rejected(self):
        registry = AttackRegistry().register(
            AttackBehavior(SLOWLORIS, weight=0.0)
        )
        with pytest.raises(ValueError, match="positive weight"):
            registry.sample(random.Random(0), 1)
