"""VictimSelector: strategies are deterministic functions of live state."""

import random

import pytest

from repro.attacks import STRATEGIES, VictimSelector
from repro.cdn.planetlab import build_deployment
from repro.telemetry import MetricsRegistry


@pytest.fixture()
def deployment():
    return build_deployment(n_edges=5, n_client_sites=4, seed=11)


def selector(deployment, registry=None, seed=0):
    return VictimSelector(
        deployment, registry=registry, rng=random.Random(seed)
    )


class TestRandomStrategy:
    def test_seeded_draws_are_reproducible(self, deployment):
        a = [selector(deployment, seed=5).select_edge("random") for _ in range(1)]
        b = [selector(deployment, seed=5).select_edge("random") for _ in range(1)]
        assert a == b
        assert a[0] in {e.name for e in deployment.edges}

    def test_unknown_strategy_rejected(self, deployment):
        with pytest.raises(ValueError, match="unknown victim strategy"):
            selector(deployment).select_edge("nuke-from-orbit")

    def test_strategies_tuple_is_the_cli_surface(self):
        assert STRATEGIES == ("random", "hottest-edge", "highest-degree")


class TestHottestEdge:
    def test_picks_the_edge_with_the_highest_request_gauge(self, deployment):
        registry = MetricsRegistry()
        registry.gauge("cdn.edge.edge01.requests").set(3)
        registry.gauge("cdn.edge.edge03.requests").set(9)
        sel = selector(deployment, registry=registry)
        assert sel.select_edge("hottest-edge") == "edge03"

    def test_ties_break_on_name(self, deployment):
        registry = MetricsRegistry()
        registry.gauge("cdn.edge.edge04.requests").set(7)
        registry.gauge("cdn.edge.edge02.requests").set(7)
        assert (
            selector(deployment, registry=registry).select_edge("hottest-edge")
            == "edge02"
        )

    def test_cold_system_falls_back_to_seeded_random(self, deployment):
        registry = MetricsRegistry()  # no gauge has moved
        a = selector(deployment, registry=registry, seed=9)
        b = selector(deployment, registry=registry, seed=9)
        assert a.select_edge("hottest-edge") == b.select_edge("hottest-edge")


class TestHighestDegree:
    def test_pick_is_deterministic_and_a_real_edge(self, deployment):
        names = {e.name for e in deployment.edges}
        picks = {
            selector(deployment, seed=s).select_edge("highest-degree")
            for s in range(3)
        }
        # Centrality ignores the RNG entirely: every seed agrees.
        assert len(picks) == 1
        assert picks <= names

    def test_pick_minimises_total_latency_to_client_sites(self, deployment):
        pick = selector(deployment).select_edge("highest-degree")
        topology = deployment.topology

        def closeness(edge_name):
            return sum(
                topology.latency_s(site, edge_name)
                for site in deployment.client_sites
            )

        best = min(closeness(e.name) for e in deployment.edges)
        assert closeness(pick) == pytest.approx(best)


class TestServingGeometry:
    def test_sites_served_by_partitions_the_client_sites(self, deployment):
        sel = selector(deployment)
        covered = []
        for edge in deployment.edges:
            covered.extend(sel.sites_served_by(edge.name))
        # Every client site is served by exactly one nearest edge.
        assert sorted(covered) == sorted(deployment.client_sites)

    def test_nearest_site_is_the_latency_argmin(self, deployment):
        sel = selector(deployment)
        site = sel.nearest_site("edge00")
        topology = deployment.topology
        best = min(
            topology.latency_s(s, "edge00") for s in deployment.client_sites
        )
        assert topology.latency_s(site, "edge00") == pytest.approx(best)

    def test_no_edges_rejected(self, deployment):
        deployment.edges.clear()
        with pytest.raises(ValueError, match="no edges"):
            selector(deployment).select_edge("random")
