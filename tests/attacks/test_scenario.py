"""AttackScenario: exact ledgers, seeded reproducibility, zero poisonings.

These tests pin the acceptance criteria of the adversarial subsystem:

* every attack class satisfies ``launched == absorbed + degraded`` and
  the campaign reconciles its local tallies against the shared registry
  exactly;
* the same seed produces the same ledger, payload-for-payload, on a
  fresh system;
* cache poisoning never lands — and golden SHA-1 wire vectors are still
  served byte-identical *warm* from a store that just survived a
  poisoning campaign.
"""

import hashlib

import pytest

from repro.attacks import (
    BYZANTINE_PAD,
    CACHE_POISON,
    KIND_ORDER,
    NEGOTIATION_HERD,
    SLOWLORIS,
    TARGETED_OUTAGE,
    AttackBehavior,
    AttackOutcome,
    AttackRegistry,
    AttackScenario,
)
from repro.compression import gziplike
from repro.core.system import build_case_study
from repro.faults.injector import FaultingTransport
from repro.store.chunkstore import content_key
from repro.workload.pages import Corpus

from tests.protocols.test_golden_wire import GZIPLIKE_GOLDEN

BOUND = 8


def attacked_system(bound=BOUND):
    """A fresh case-study system with adversarial-scale LRU bounds."""
    return build_case_study(
        dedup=True,
        n_edges=6,
        proxy_max_sessions=bound,
        proxy_dist_max_entries=bound,
    )


class TestOutcomeIdentity:
    def test_ledger_identity_enforced_at_construction(self):
        with pytest.raises(ValueError, match="launched"):
            AttackOutcome(
                kind=SLOWLORIS, target="proxy.sessions",
                launched=3, absorbed=1, degraded=1,
            )

    def test_survival_fraction(self):
        o = AttackOutcome(
            kind=SLOWLORIS, target="proxy.sessions",
            launched=4, absorbed=3, degraded=1,
        )
        assert o.survival == pytest.approx(0.75)


class TestScenarioValidation:
    def test_unknown_kind_rejected(self):
        scenario = AttackScenario(attacked_system())
        try:
            with pytest.raises(ValueError, match="unknown attack kinds"):
                scenario.run(["ddos"])
        finally:
            scenario.uninstall()

    def test_zero_event_budget_rejected(self):
        scenario = AttackScenario(attacked_system())
        try:
            with pytest.raises(ValueError, match="events_per_attack"):
                scenario.run(events_per_attack=0)
        finally:
            scenario.uninstall()

    def test_cache_poison_requires_a_fleet_store(self):
        system = build_case_study(n_edges=6)  # dedup=False: no store
        scenario = AttackScenario(system)
        try:
            with pytest.raises(ValueError, match="dedup=True"):
                scenario.run([CACHE_POISON])
        finally:
            scenario.uninstall()

    def test_uninstall_restores_the_unwrapped_transport(self):
        system = attacked_system()
        scenario = AttackScenario(system)
        assert isinstance(system.transport, FaultingTransport)
        scenario.uninstall()
        assert not isinstance(system.transport, FaultingTransport)


@pytest.mark.attacks
class TestFullCampaign:
    def test_every_class_reconciles_exactly(self):
        system = attacked_system()
        result = AttackScenario(system, seed=5).run(events_per_attack=8)
        assert [o.kind for o in result.outcomes] == list(KIND_ORDER)
        assert result.reconciled
        for o in result.outcomes:
            assert o.launched == 8
            assert o.launched == o.absorbed + o.degraded
            assert 0.0 <= o.survival <= 1.0
        assert result.launched == 8 * len(KIND_ORDER)
        assert result.launched == result.absorbed + result.degraded
        # Local tallies and registry window deltas agree, name by name.
        assert all(local == reg for local, reg in result.ledger.values())
        metrics = system.telemetry.registry
        for kind in KIND_ORDER:
            launched = metrics.counter(f"attacks.launched.{kind}").value
            absorbed = metrics.counter(f"attacks.absorbed.{kind}").value
            degraded = metrics.counter(f"attacks.degraded.{kind}").value
            assert launched == absorbed + degraded == 8

    def test_same_seed_same_ledger_on_a_fresh_system(self):
        payloads = [
            AttackScenario(attacked_system(), seed=13)
            .run(events_per_attack=8)
            .to_payload()
            for _ in range(2)
        ]
        assert payloads[0] == payloads[1]
        assert payloads[0]["reconciled"] is True

    def test_kinds_subset_runs_in_canonical_order(self):
        result = AttackScenario(attacked_system(), seed=2).run(
            [TARGETED_OUTAGE, SLOWLORIS], events_per_attack=4
        )
        # Request order does not matter; KIND_ORDER does.
        assert [o.kind for o in result.outcomes] == [SLOWLORIS, TARGETED_OUTAGE]
        assert result.reconciled


@pytest.mark.attacks
class TestNegotiationHerd:
    def test_storm_evicts_the_victim_exactly_once(self):
        result = AttackScenario(attacked_system(), seed=1).run(
            [NEGOTIATION_HERD], events_per_attack=12
        )
        (outcome,) = result.outcomes
        # 12 unique crafted DevMetas against an 8-entry cache: the bound
        # absorbs the flood; the victim's one entry is evicted once.
        assert outcome.degraded == 1
        assert outcome.detail["cache_entries"] <= BOUND
        assert outcome.detail["cache_evictions"] >= 1
        assert outcome.detail["storm_errors"] == 0


@pytest.mark.attacks
class TestSlowloris:
    def test_flood_under_the_bound_is_fully_absorbed(self):
        result = AttackScenario(attacked_system(bound=32), seed=4).run(
            [SLOWLORIS], events_per_attack=4
        )
        (outcome,) = result.outcomes
        assert outcome.degraded == 0
        assert outcome.survival == 1.0
        assert outcome.detail["victims_starved"] == 0
        assert outcome.detail["victims_completed"] == outcome.detail["victims"]

    def test_overflowing_flood_starves_every_victim(self):
        result = AttackScenario(attacked_system(), seed=4).run(
            [SLOWLORIS], events_per_attack=16
        )
        (outcome,) = result.outcomes
        # 4 victims + 16 half-open INITs against an 8-slot table: each
        # victim is pushed out exactly once → 4 degraded events.
        assert outcome.detail["victims"] == 4
        assert outcome.degraded == 4
        assert outcome.detail["victims_starved"] == 4
        assert outcome.detail["victims_completed"] == 0
        assert outcome.detail["pending_sessions"] <= BOUND
        assert outcome.detail["sessions_dropped"] >= 4


@pytest.mark.attacks
class TestCachePoison:
    def test_no_poison_lands_and_golden_bytes_survive_warm(self):
        system = attacked_system()
        store = system.chunk_store
        # Pre-seed the attacked store with the frozen wire vectors under
        # their self-certifying keys (the digests pinned by the golden
        # wire tests — any byte drift here is a protocol break).
        pages = Corpus(text_bytes=2048, image_bytes=4096, images_per_page=2)
        inputs = {
            "text": b"the quick brown fox jumps over the lazy dog. " * 200,
            "small_page": pages.evolved(0, 1).encode(),
        }
        keys = {}
        for name, raw in inputs.items():
            blob = gziplike.compress(raw, backend="pure")
            assert hashlib.sha1(blob).hexdigest() == GZIPLIKE_GOLDEN[name]
            keys[name] = content_key(blob)
            store.put(keys[name], blob)

        result = AttackScenario(system, seed=9).run(
            [CACHE_POISON], events_per_attack=10
        )
        (outcome,) = result.outcomes
        assert outcome.degraded == 0
        assert outcome.survival == 1.0
        assert outcome.detail["poisoned_entries"] == 0
        # Half the events were store submissions, every one refused.
        assert outcome.detail["store_rejected"] == 5

        # Served *warm* from the attacked store: still the golden bytes.
        for name, key in keys.items():
            served = store.get(key)
            assert served is not None
            assert hashlib.sha1(served).hexdigest() == GZIPLIKE_GOLDEN[name]
            assert gziplike.decompress(served) == inputs[name]


@pytest.mark.attacks
class TestByzantineAndOutage:
    def test_resilient_clients_absorb_fragile_ones_degrade(self):
        system = attacked_system()
        result = AttackScenario(system, seed=6).run(
            [BYZANTINE_PAD, TARGETED_OUTAGE], events_per_attack=8
        )
        byz, outage = result.outcomes
        edge_names = {e.name for e in system.deployment.edges}

        assert byz.kind == BYZANTINE_PAD
        # fragile_every=4 → events 3 and 7 ran without failover.
        assert byz.degraded == 2
        assert byz.target in edge_names
        assert byz.detail["stale_replays"] > 0
        assert byz.detail["target_pad"] != "direct"

        assert outage.kind == TARGETED_OUTAGE
        assert outage.degraded == 2
        assert outage.target in edge_names
        assert outage.detail["outages_fired"] > 0
        assert outage.detail["strategy"] == "hottest-edge"
        assert result.reconciled

    def test_all_fragile_clients_still_reconcile(self):
        # Even a worst-case population (every client degrades to direct)
        # keeps the ledger exact — degradation is counted, not crashed.
        registry = AttackRegistry().register(
            AttackBehavior(TARGETED_OUTAGE, params={"fragile_every": 1})
        )
        result = AttackScenario(
            attacked_system(), seed=3, registry=registry
        ).run([TARGETED_OUTAGE], events_per_attack=4)
        (outcome,) = result.outcomes
        assert outcome.degraded == 4
        assert outcome.survival == 0.0
        assert result.reconciled
