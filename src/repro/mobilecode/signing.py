"""Code signing and trust management for mobile code.

The paper's second security mechanism (§3.5): the client manages a list of
entities it trusts, and verifies each PAD was signed by one of them.  A
:class:`SignedModule` bundles a module's canonical bytes with the signer's
identity and an RSA signature; a :class:`TrustStore` maps signer names to
public keys.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from .module import MobileCodeError, MobileCodeModule
from .rsa import PrivateKey, PublicKey, sign as rsa_sign, verify as rsa_verify

__all__ = ["SigningError", "SignedModule", "Signer", "TrustStore"]


class SigningError(Exception):
    """Raised for untrusted signers or invalid signatures."""


@dataclass(frozen=True)
class SignedModule:
    """A mobile-code module plus its provenance."""

    module: MobileCodeModule
    signer: str
    signature: bytes

    def to_wire(self) -> bytes:
        envelope = {
            "signer": self.signer,
            "signature": self.signature.hex(),
            "module": self.module.canonical_bytes().decode("utf-8"),
        }
        return json.dumps(envelope, sort_keys=True, separators=(",", ":")).encode()

    @classmethod
    def from_wire(cls, blob: bytes) -> "SignedModule":
        try:
            envelope = json.loads(blob.decode("utf-8"))
            signer = envelope["signer"]
            signature = bytes.fromhex(envelope["signature"])
            module = MobileCodeModule.from_canonical_bytes(
                envelope["module"].encode("utf-8")
            )
        except (KeyError, TypeError, ValueError, UnicodeDecodeError) as exc:
            raise MobileCodeError(f"malformed signed module: {exc}") from exc
        return cls(module=module, signer=signer, signature=signature)

    @property
    def wire_size(self) -> int:
        return len(self.to_wire())


class Signer:
    """An entity (the application server) that signs the PADs it publishes."""

    def __init__(self, name: str, private_key: PrivateKey):
        if not name:
            raise SigningError("signer name must be non-empty")
        self.name = name
        self._key = private_key

    @property
    def public_key(self) -> PublicKey:
        return self._key.public

    def sign(self, module: MobileCodeModule) -> SignedModule:
        signature = rsa_sign(self._key, module.canonical_bytes())
        return SignedModule(module=module, signer=self.name, signature=signature)


class TrustStore:
    """The client's list of trusted entities (paper §3.5)."""

    def __init__(self) -> None:
        self._keys: dict[str, PublicKey] = {}

    def trust(self, name: str, key: PublicKey) -> None:
        existing = self._keys.get(name)
        if existing is not None and existing != key:
            raise SigningError(
                f"refusing to silently replace key for {name!r}; revoke first"
            )
        self._keys[name] = key

    def revoke(self, name: str) -> None:
        self._keys.pop(name, None)

    def is_trusted(self, name: str) -> bool:
        return name in self._keys

    def trusted_names(self) -> list[str]:
        return sorted(self._keys)

    def verify(self, signed: SignedModule) -> MobileCodeModule:
        """Return the module iff its signer is trusted and the signature holds."""
        key = self._keys.get(signed.signer)
        if key is None:
            raise SigningError(f"signer {signed.signer!r} is not in the trust list")
        if not rsa_verify(key, signed.module.canonical_bytes(), signed.signature):
            raise SigningError(
                f"invalid signature on module {signed.module.name!r} "
                f"from {signed.signer!r}"
            )
        return signed.module
