"""From-scratch SHA-1 (FIPS 180-1), the paper's message-digest primitive.

``PADMeta``'s "message digest is computed using the SHA-1 function" [10].
The hot paths use :mod:`hashlib`'s C implementation; this pure-Python one
exists so the substrate is self-contained and auditable, and the test
suite proves the two identical bit-for-bit.  It also supports streaming
(``update``/``hexdigest``) with the same API shape as hashlib.
"""

from __future__ import annotations

import struct

__all__ = ["Sha1", "sha1_hexdigest"]

_CHUNK = 64  # bytes per block


def _rol(value: int, count: int) -> int:
    value &= 0xFFFFFFFF
    return ((value << count) | (value >> (32 - count))) & 0xFFFFFFFF


class Sha1:
    """Streaming SHA-1 with hashlib-like update()/digest()/hexdigest()."""

    digest_size = 20
    block_size = _CHUNK

    def __init__(self, data: bytes = b""):
        self._h = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)
        self._buffer = b""
        self._length = 0  # total message bytes
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        self._length += len(data)
        buffer = self._buffer + data
        offset = 0
        while offset + _CHUNK <= len(buffer):
            self._compress(buffer[offset : offset + _CHUNK])
            offset += _CHUNK
        self._buffer = buffer[offset:]

    def _compress(self, block: bytes) -> None:
        w = list(struct.unpack(">16I", block))
        for i in range(16, 80):
            w.append(_rol(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1))
        a, b, c, d, e = self._h
        for i in range(80):
            if i < 20:
                f = (b & c) | (~b & d)
                k = 0x5A827999
            elif i < 40:
                f = b ^ c ^ d
                k = 0x6ED9EBA1
            elif i < 60:
                f = (b & c) | (b & d) | (c & d)
                k = 0x8F1BBCDC
            else:
                f = b ^ c ^ d
                k = 0xCA62C1D6
            a, b, c, d, e = (
                (_rol(a, 5) + f + e + k + w[i]) & 0xFFFFFFFF,
                a,
                _rol(b, 30),
                c,
                d,
            )
        self._h = tuple(
            (x + y) & 0xFFFFFFFF for x, y in zip(self._h, (a, b, c, d, e))
        )

    def digest(self) -> bytes:
        # Pad a copy so digest() can be called mid-stream like hashlib.
        clone = Sha1()
        clone._h = self._h
        clone._length = self._length
        clone._buffer = self._buffer
        bit_length = clone._length * 8
        padding = b"\x80" + b"\x00" * ((55 - clone._length) % 64)
        tail = clone._buffer + padding + struct.pack(">Q", bit_length)
        for offset in range(0, len(tail), _CHUNK):
            clone._compress(tail[offset : offset + _CHUNK])
        return struct.pack(">5I", *clone._h)

    def hexdigest(self) -> str:
        return self.digest().hex()


def sha1_hexdigest(data: bytes) -> str:
    """One-shot convenience matching ``hashlib.sha1(data).hexdigest()``."""
    return Sha1(data).hexdigest()
