"""Mobile code module packaging.

A PAD travels the network as a :class:`MobileCodeModule`: Python source
plus a manifest (name, version, entry point, declared capabilities) and a
SHA-1 message digest — SHA-1 because that is the integrity primitive the
paper specifies in ``PADMeta`` (§3.2, FIPS 180-1).  Signatures (added by
``repro.mobilecode.signing``) cover the canonical serialized form.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

__all__ = ["MobileCodeError", "MobileCodeModule"]

WIRE_VERSION = 1


class MobileCodeError(Exception):
    """Raised for malformed or tampered modules."""


@dataclass(frozen=True)
class MobileCodeModule:
    """An executable unit shipped as data.

    ``entry_point`` names the class or factory the loader instantiates
    after exec'ing ``source``.  ``capabilities`` declares what the module
    needs from the sandbox (e.g. ``"hashlib"``); the sandbox grants imports
    only from its allowlist intersected with this declaration.
    """

    name: str
    version: str
    source: str
    entry_point: str
    capabilities: tuple[str, ...] = ()
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise MobileCodeError(f"invalid module name: {self.name!r}")
        if not self.entry_point.isidentifier():
            raise MobileCodeError(f"entry point must be an identifier: {self.entry_point!r}")

    # -- canonical serialization --------------------------------------------

    def canonical_bytes(self) -> bytes:
        """Deterministic byte form; the thing digests and signatures cover."""
        payload = {
            "wire_version": WIRE_VERSION,
            "name": self.name,
            "version": self.version,
            "entry_point": self.entry_point,
            "capabilities": list(self.capabilities),
            "metadata": self.metadata,
            "source": self.source,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()

    def digest(self) -> str:
        """SHA-1 hex digest of the canonical form (the PADMeta 'message digest')."""
        return hashlib.sha1(self.canonical_bytes()).hexdigest()

    @property
    def size(self) -> int:
        """Wire size in bytes (the PADMeta 'PAD size')."""
        return len(self.canonical_bytes())

    @classmethod
    def from_canonical_bytes(cls, blob: bytes) -> "MobileCodeModule":
        try:
            payload = json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise MobileCodeError(f"undecodable module: {exc}") from exc
        if not isinstance(payload, dict):
            raise MobileCodeError("module payload must be an object")
        if payload.get("wire_version") != WIRE_VERSION:
            raise MobileCodeError(
                f"unsupported wire version: {payload.get('wire_version')!r}"
            )
        try:
            return cls(
                name=payload["name"],
                version=payload["version"],
                source=payload["source"],
                entry_point=payload["entry_point"],
                capabilities=tuple(payload.get("capabilities", ())),
                metadata=dict(payload.get("metadata", {})),
            )
        except KeyError as exc:
            raise MobileCodeError(f"missing module field: {exc}") from exc

    def verify_digest(self, expected_hex: str) -> None:
        """Raise :class:`MobileCodeError` unless the digest matches."""
        actual = self.digest()
        if actual != expected_hex.lower():
            raise MobileCodeError(
                f"digest mismatch for {self.name!r}: expected {expected_hex}, got {actual}"
            )
