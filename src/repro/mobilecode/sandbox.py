"""Restricted execution environment for mobile code.

The paper's first security mechanism (§3.5) is a sandbox limiting the
privileges of downloaded PADs.  Python's analogue of the JDK sandbox is a
controlled ``exec``: we hand the module a curated ``__builtins__`` (no
``open``, no ``eval``/``exec``, no attribute backdoors) and an ``__import__``
that only admits an allowlist of side-effect-free stdlib modules plus the
substrate packages a protocol adaptor legitimately needs.

This confines honest-but-buggy and casually-malicious code — the threat
model of the paper's prototype.  It is not a jail against a determined
adversary (no CPython-level sandbox is), and the docstring is the place to
say so plainly.
"""

from __future__ import annotations

import builtins as _builtins
from typing import Any, Mapping, Optional

__all__ = ["SandboxViolation", "Sandbox", "DEFAULT_ALLOWED_IMPORTS"]


class SandboxViolation(Exception):
    """A mobile-code module attempted something outside its privileges."""


# Side-effect-free modules any protocol adaptor may use, plus the local
# substrates PADs are built on.  Everything else is denied.
DEFAULT_ALLOWED_IMPORTS = frozenset(
    {
        "__future__",
        "math",
        "struct",
        "hashlib",
        "zlib",
        "binascii",
        "itertools",
        "functools",
        "collections",
        "dataclasses",
        "time",  # protocols time their own phases via perf_counter
        "typing",
        "enum",
        "repro.compression",
        "repro.chunking",
        "repro.protocols.base",
    }
)

_SAFE_BUILTIN_NAMES = (
    "abs", "all", "any", "ascii", "bin", "bool", "bytearray", "bytes",
    "callable", "chr", "dict", "dir", "divmod", "enumerate", "filter", "float",
    "hasattr",
    "format", "frozenset", "hash", "hex", "int", "isinstance", "issubclass",
    "iter", "len", "list", "map", "max", "min", "next", "object", "oct",
    "ord", "pow", "print", "property", "range", "repr", "reversed", "round",
    "set", "slice", "sorted", "staticmethod", "classmethod", "str", "sum",
    "super", "tuple", "type", "zip",
    # Exceptions a well-behaved module raises or catches.
    "ArithmeticError", "AssertionError", "AttributeError", "BaseException",
    "Exception", "IndexError", "KeyError", "LookupError", "MemoryError",
    "NotImplementedError", "OverflowError", "RuntimeError", "StopIteration",
    "TypeError", "ValueError", "ZeroDivisionError",
    # Constants.
    "True", "False", "None", "NotImplemented", "Ellipsis",
    "__build_class__",  # required for 'class' statements
)


class Sandbox:
    """Executes mobile-code source in a restricted namespace."""

    def __init__(
        self,
        allowed_imports: Optional[frozenset[str]] = None,
        extra_globals: Optional[Mapping[str, Any]] = None,
    ):
        self.allowed_imports = (
            allowed_imports if allowed_imports is not None else DEFAULT_ALLOWED_IMPORTS
        )
        self.extra_globals = dict(extra_globals or {})
        self.import_log: list[str] = []

    def _guarded_import(
        self,
        name: str,
        globals_: Any = None,
        locals_: Any = None,
        fromlist: Any = (),
        level: int = 0,
    ) -> Any:
        if level != 0:
            raise SandboxViolation("relative imports are not permitted in mobile code")
        if name not in self.allowed_imports:
            raise SandboxViolation(f"import of {name!r} is not permitted")
        self.import_log.append(name)
        # Plain `import a.b.c` expects the top package back (the import
        # statement binds "a" and walks attributes itself); `from a.b
        # import x` passes a fromlist and gets the leaf. Standard
        # __import__ already implements both, so hand through unchanged.
        return __import__(name, globals_, locals_, fromlist, level)

    def _build_builtins(self) -> dict[str, Any]:
        safe: dict[str, Any] = {}
        for name in _SAFE_BUILTIN_NAMES:
            obj = getattr(_builtins, name, None)
            if obj is not None:
                safe[name] = obj
        safe["__import__"] = self._guarded_import

        def _denied(name: str):
            def stub(*_a: Any, **_k: Any) -> Any:
                raise SandboxViolation(f"builtin {name!r} is not available in the sandbox")

            return stub

        for dangerous in ("open", "eval", "exec", "compile", "input",
                          "globals", "locals", "vars", "getattr", "setattr",
                          "delattr", "memoryview", "breakpoint", "exit", "quit"):
            safe[dangerous] = _denied(dangerous)
        return safe

    def execute(self, source: str, module_name: str = "<mobile-code>") -> dict[str, Any]:
        """Exec ``source`` in a fresh restricted namespace; return it.

        Any exception from the module body is re-raised wrapped in
        :class:`SandboxViolation` only if it *was* a violation; genuine
        bugs propagate as themselves so callers can distinguish.
        """
        code = compile(source, module_name, "exec")
        namespace: dict[str, Any] = {
            "__builtins__": self._build_builtins(),
            "__name__": module_name,
        }
        namespace.update(self.extra_globals)
        exec(code, namespace)  # noqa: S102 - the whole point, confined above
        return namespace
