"""Loading and instantiating verified mobile-code modules.

The full client-side pipeline the paper describes: verify the SHA-1 digest
from ``PADMeta``, verify the code signature against the trust list, exec
the source in the sandbox, and hand back an instance of the module's entry
point.  Each step raises a distinct exception type so callers (and tests)
can tell tampering from mistrust from plain bugs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from .module import MobileCodeError, MobileCodeModule
from .sandbox import Sandbox, SandboxViolation
from .signing import SignedModule, SigningError, TrustStore

__all__ = ["LoadedModule", "ModuleLoader"]


@dataclass
class LoadedModule:
    """A deployed PAD: the module, its namespace, and its entry instance."""

    module: MobileCodeModule
    namespace: dict[str, Any]
    instance: Any


class ModuleLoader:
    """Verifies and deploys mobile code on the client."""

    def __init__(
        self,
        trust_store: TrustStore,
        sandbox: Optional[Sandbox] = None,
        *,
        require_signature: bool = True,
    ):
        self.trust_store = trust_store
        self.sandbox = sandbox or Sandbox()
        self.require_signature = require_signature
        self.loaded: dict[str, LoadedModule] = {}

    def verify(
        self,
        signed: SignedModule,
        *,
        expected_digest: Optional[str] = None,
    ) -> MobileCodeModule:
        """Verification half of the pipeline: signature + digest checks.

        ``expected_digest`` is the SHA-1 from the negotiated ``PADMeta`` —
        pass it whenever available so a CDN serving stale or tampered bytes
        is caught before any code runs.
        """
        if self.require_signature:
            module = self.trust_store.verify(signed)
        else:
            module = signed.module
        if expected_digest is not None:
            module.verify_digest(expected_digest)
        return module

    def deploy(
        self,
        module: MobileCodeModule,
        *,
        init_args: tuple = (),
        init_kwargs: Optional[dict] = None,
    ) -> LoadedModule:
        """Deployment half: sandbox-exec a *verified* module, instantiate it."""
        namespace = self.sandbox.execute(module.source, f"<pad:{module.name}>")
        entry = namespace.get(module.entry_point)
        if entry is None:
            raise MobileCodeError(
                f"module {module.name!r} does not define entry point "
                f"{module.entry_point!r}"
            )
        if not callable(entry):
            raise MobileCodeError(
                f"entry point {module.entry_point!r} of {module.name!r} is not callable"
            )
        instance = entry(*init_args, **(init_kwargs or {}))
        loaded = LoadedModule(module=module, namespace=namespace, instance=instance)
        self.loaded[module.name] = loaded
        return loaded

    def load(
        self,
        signed: SignedModule,
        *,
        expected_digest: Optional[str] = None,
        init_args: tuple = (),
        init_kwargs: Optional[dict] = None,
    ) -> LoadedModule:
        """Verify then deploy; returns the live entry-point instance."""
        module = self.verify(signed, expected_digest=expected_digest)
        return self.deploy(module, init_args=init_args, init_kwargs=init_kwargs)

    def unload(self, name: str) -> None:
        self.loaded.pop(name, None)

    def get(self, name: str) -> Optional[LoadedModule]:
        return self.loaded.get(name)
