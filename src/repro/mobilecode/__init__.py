"""Mobile code substrate: packaging, sandboxing, signing, and loading PADs."""

from .loader import LoadedModule, ModuleLoader
from .module import MobileCodeError, MobileCodeModule
from .rsa import PrivateKey, PublicKey, RSAError, generate_keypair
from .rsa import sign as rsa_sign
from .rsa import verify as rsa_verify
from .sha1 import Sha1, sha1_hexdigest
from .sandbox import DEFAULT_ALLOWED_IMPORTS, Sandbox, SandboxViolation
from .signing import SignedModule, Signer, SigningError, TrustStore

__all__ = [
    "Sha1",
    "sha1_hexdigest",
    "LoadedModule",
    "ModuleLoader",
    "MobileCodeError",
    "MobileCodeModule",
    "PrivateKey",
    "PublicKey",
    "RSAError",
    "generate_keypair",
    "rsa_sign",
    "rsa_verify",
    "DEFAULT_ALLOWED_IMPORTS",
    "Sandbox",
    "SandboxViolation",
    "SignedModule",
    "Signer",
    "SigningError",
    "TrustStore",
]
