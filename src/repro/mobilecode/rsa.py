"""From-scratch RSA for code signing.

Key generation with Miller–Rabin primality testing, deterministic
PKCS#1-v1.5-style signing of SHA-256 digests.  This exists so the code-
signing path (paper §3.5) has a real asymmetric primitive without any
external crypto dependency.  Obviously not constant-time; it secures a
simulation, not production traffic.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass

__all__ = ["RSAError", "PublicKey", "PrivateKey", "generate_keypair", "sign", "verify"]

# Deterministic prefix identifying the digest algorithm (like the DER
# DigestInfo in PKCS#1 v1.5, simplified to a fixed tag).
_DIGEST_TAG = b"FRACTAL-SHA256:"

_SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59,
                 61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113]


class RSAError(Exception):
    """Raised for malformed keys or signatures."""


def _is_probable_prime(n: int, rounds: int = 40) -> bool:
    """Miller–Rabin with ``rounds`` random bases (error < 4^-rounds)."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = secrets.randbelow(n - 3) + 2
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int) -> int:
    while True:
        candidate = secrets.randbits(bits) | (1 << (bits - 1)) | 1
        if _is_probable_prime(candidate):
            return candidate


@dataclass(frozen=True)
class PublicKey:
    n: int
    e: int

    @property
    def byte_size(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def to_wire(self) -> dict:
        return {"n": hex(self.n), "e": self.e}

    @classmethod
    def from_wire(cls, obj: dict) -> "PublicKey":
        try:
            return cls(n=int(obj["n"], 16), e=int(obj["e"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise RSAError(f"malformed public key: {exc}") from exc

    def fingerprint(self) -> str:
        """Stable short identifier for trust stores."""
        blob = f"{self.n:x}:{self.e:x}".encode()
        return hashlib.sha256(blob).hexdigest()[:16]


@dataclass(frozen=True)
class PrivateKey:
    n: int
    e: int
    d: int

    @property
    def public(self) -> PublicKey:
        return PublicKey(self.n, self.e)

    @property
    def byte_size(self) -> int:
        return (self.n.bit_length() + 7) // 8


def generate_keypair(bits: int = 1024, e: int = 65537) -> PrivateKey:
    """Generate an RSA keypair with an n of roughly ``bits`` bits."""
    if bits < 512:
        raise RSAError(f"modulus too small for signing: {bits} bits")
    while True:
        p = _random_prime(bits // 2)
        q = _random_prime(bits - bits // 2)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        try:
            d = pow(e, -1, phi)
        except ValueError:
            continue  # e not invertible mod phi; rare, retry
        return PrivateKey(n=n, e=e, d=d)


def _encode_digest(digest: bytes, size: int) -> int:
    """Pad TAG||digest to ``size`` bytes: 0x00 0x01 FF..FF 0x00 payload."""
    payload = _DIGEST_TAG + digest
    pad_len = size - len(payload) - 3
    if pad_len < 8:
        raise RSAError("modulus too small for digest encoding")
    block = b"\x00\x01" + b"\xff" * pad_len + b"\x00" + payload
    return int.from_bytes(block, "big")


def sign(key: PrivateKey, message: bytes) -> bytes:
    """Sign SHA-256(message); returns a signature of key.byte_size bytes."""
    digest = hashlib.sha256(message).digest()
    m = _encode_digest(digest, key.byte_size)
    sig = pow(m, key.d, key.n)
    return sig.to_bytes(key.byte_size, "big")


def verify(key: PublicKey, message: bytes, signature: bytes) -> bool:
    """True iff ``signature`` is a valid signature of ``message``."""
    if len(signature) != key.byte_size:
        return False
    sig = int.from_bytes(signature, "big")
    if sig >= key.n:
        return False
    digest = hashlib.sha256(message).digest()
    try:
        expected = _encode_digest(digest, key.byte_size)
    except RSAError:
        return False
    return pow(sig, key.e, key.n) == expected
