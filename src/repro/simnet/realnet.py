"""Real TCP loopback transport.

The negotiation protocol is byte-framed, so running it over actual sockets
costs nothing extra and proves the codec survives a real network stack.
Frames are ``[4-byte big-endian length][payload]``.  One server thread per
endpoint; requests are served sequentially per connection, which is all the
integration tests need.

Byte accounting convention (ledger truth): every meter on this transport
counts **on-wire frame sizes** — the 4-byte length header plus the payload
(for responses the payload includes the 1-byte status prefix) — and records
a frame only *after* it was successfully sent or fully received.  A refused
or timed-out connection therefore counts nothing, and the client-side
meters reconcile exactly against the endpoint-side meters: client
``bytes_sent`` == endpoint ``bytes_received`` and vice versa.  The load
harness asserts this symmetry in its ledger.

This module deliberately has no dependency on the rest of the package: it
moves bytes, nothing more.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from typing import Callable, Optional

from .transport import TrafficMeter, TransportError

__all__ = ["TcpEndpoint", "TcpTransport", "send_frame", "recv_frame"]

_LEN = struct.Struct(">I")
MAX_FRAME = 64 * 1024 * 1024  # sanity bound; PADs and pages are far smaller


def send_frame(sock: socket.socket, payload: bytes) -> None:
    if len(payload) > MAX_FRAME:
        raise TransportError(f"frame too large: {len(payload)} bytes")
    sock.sendall(_LEN.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise TransportError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> bytes:
    header = _recv_exact(sock, _LEN.size)
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise TransportError(f"incoming frame too large: {length} bytes")
    return _recv_exact(sock, length)


class TcpEndpoint:
    """A request/response server on 127.0.0.1 with an ephemeral port.

    ``idle_timeout_s`` bounds how long a worker blocks reading the next
    frame from a connected client before giving up on the connection.

    ``max_conns`` caps concurrent connection workers.  A connection
    accepted past the cap is *shed*, not silently dropped: the endpoint
    reads its first request frame (short timeout), replies with a framed
    ``overloaded: connection limit reached`` error, and closes — so the
    client sees a typed rejection instead of a hang, and the byte meters
    stay symmetric (both the request and the rejection frame are
    recorded).  ``conns_shed`` ledgers every shed connection.
    """

    def __init__(
        self,
        name: str,
        handler: Callable[[bytes], bytes],
        *,
        idle_timeout_s: float = 5.0,
        max_conns: Optional[int] = None,
    ):
        if idle_timeout_s <= 0:
            raise ValueError(f"idle_timeout_s must be positive, got {idle_timeout_s}")
        if max_conns is not None and max_conns < 1:
            raise ValueError(f"max_conns must be >= 1, got {max_conns}")
        self.name = name
        self.handler = handler
        self.idle_timeout_s = idle_timeout_s
        self.max_conns = max_conns
        self.conns_shed = 0
        self.meter = TrafficMeter()
        self._workers: list[threading.Thread] = []
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._server.bind(("127.0.0.1", 0))
        self._server.listen(16)
        # Set the accept timeout before the thread starts so close() can
        # never race the thread's first socket operation.
        self._server.settimeout(0.1)
        self.address: tuple[str, int] = self._server.getsockname()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._serve, name=f"tcp-endpoint-{name}", daemon=True
        )
        self._thread.start()

    def _serve(self) -> None:
        # Reap finished workers on every accept-loop iteration (including
        # idle timeouts): a long-lived endpoint serving many short-lived
        # connections would otherwise grow the worker list without bound
        # and pay an O(connections-ever) join at close.
        while not self._stop.is_set():
            self._workers = [w for w in self._workers if w.is_alive()]
            try:
                conn, _addr = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            if (
                self.max_conns is not None
                and len(self._workers) >= self.max_conns
            ):
                self.conns_shed += 1
                self._shed_conn(conn)
                continue
            worker = threading.Thread(
                target=self._serve_conn, args=(conn,), daemon=True
            )
            worker.start()
            self._workers.append(worker)
        # Bounded shutdown: only still-live workers remain, and the total
        # join budget is capped rather than 1s per thread.
        deadline = time.monotonic() + 1.0
        for w in self._workers:
            w.join(timeout=max(0.0, deadline - time.monotonic()))
        self._workers = [w for w in self._workers if w.is_alive()]

    @property
    def worker_count(self) -> int:
        """Connection-worker threads not yet reaped (bounded under load)."""
        return len(self._workers)

    def _shed_conn(self, conn: socket.socket) -> None:
        """Reject one over-cap connection with a framed overload error.

        Runs inline in the accept loop, so the read timeout is short: a
        client that connected but sends nothing (slowloris) may stall
        accepts only briefly, and a well-formed client gets a typed
        error it can map to backoff.  Meter symmetry is preserved — the
        request frame is recorded received and the rejection recorded
        sent, exactly like a served exchange.
        """
        with conn:
            conn.settimeout(min(self.idle_timeout_s, 0.5))
            try:
                request = recv_frame(conn)
            except (TransportError, socket.timeout, OSError):
                return
            self.meter.record_receive(_LEN.size + len(request))
            response = b"\x00ERR overloaded: connection limit reached"
            try:
                send_frame(conn, response)
            except OSError:
                return
            self.meter.record_send(_LEN.size + len(response))

    def _serve_conn(self, conn: socket.socket) -> None:
        with conn:
            conn.settimeout(self.idle_timeout_s)
            while not self._stop.is_set():
                try:
                    request = recv_frame(conn)
                except (TransportError, socket.timeout, OSError):
                    return
                self.meter.record_receive(_LEN.size + len(request))
                try:
                    response = self.handler(request)
                except Exception as exc:  # noqa: BLE001 - report to caller
                    response = b"\x00ERR " + str(exc).encode("utf-8", "replace")
                else:
                    response = b"\x01" + response
                try:
                    send_frame(conn, response)
                except OSError:
                    return
                self.meter.record_send(_LEN.size + len(response))

    def close(self) -> None:
        self._stop.set()
        try:
            self._server.close()
        except OSError:
            pass
        self._thread.join(timeout=2.0)


class TcpTransport:
    """Transport facade matching :class:`InProcessTransport`'s interface.

    Endpoints live in the same process but all traffic crosses the kernel's
    loopback TCP stack.

    ``connect_timeout_s`` bounds connection establishment and
    ``request_timeout_s`` bounds each send/receive once connected; a dead
    or wedged endpoint surfaces as :class:`TransportError` instead of
    hanging the caller forever.  ``idle_timeout_s`` is how long a bound
    endpoint's worker waits for the next frame on an open connection; it
    defaults to ``request_timeout_s`` so a transport configured for slow
    requests does not have its server side hang up early.
    ``max_conns`` caps concurrent connections per bound endpoint (see
    :class:`TcpEndpoint`); ``None`` (the default) keeps the historical
    unbounded behaviour.
    """

    def __init__(
        self,
        *,
        connect_timeout_s: float = 5.0,
        request_timeout_s: float = 5.0,
        idle_timeout_s: Optional[float] = None,
        max_conns: Optional[int] = None,
    ) -> None:
        if connect_timeout_s <= 0 or request_timeout_s <= 0:
            raise ValueError("timeouts must be positive")
        if idle_timeout_s is not None and idle_timeout_s <= 0:
            raise ValueError("timeouts must be positive")
        if max_conns is not None and max_conns < 1:
            raise ValueError(f"max_conns must be >= 1, got {max_conns}")
        self.connect_timeout_s = connect_timeout_s
        self.request_timeout_s = request_timeout_s
        self.idle_timeout_s = (
            idle_timeout_s if idle_timeout_s is not None else request_timeout_s
        )
        self.max_conns = max_conns
        self._endpoints: dict[str, TcpEndpoint] = {}
        self.meters: dict[str, TrafficMeter] = {}
        self._lock = threading.Lock()

    def bind(self, endpoint: str, handler: Callable[[bytes], bytes]) -> None:
        with self._lock:
            if endpoint in self._endpoints:
                raise TransportError(f"endpoint already bound: {endpoint!r}")
            self._endpoints[endpoint] = TcpEndpoint(
                endpoint,
                handler,
                idle_timeout_s=self.idle_timeout_s,
                max_conns=self.max_conns,
            )
            self.meters.setdefault(endpoint, TrafficMeter())

    def unbind(self, endpoint: str) -> None:
        with self._lock:
            ep = self._endpoints.pop(endpoint, None)
        if ep is not None:
            ep.close()

    def endpoints(self) -> list[str]:
        with self._lock:
            return sorted(self._endpoints)

    def meter(self, endpoint: str) -> TrafficMeter:
        with self._lock:
            return self.meters.setdefault(endpoint, TrafficMeter())

    def endpoint_meter(self, endpoint: str) -> TrafficMeter:
        """The server-side meter of a bound endpoint (ledger symmetry)."""
        with self._lock:
            ep = self._endpoints.get(endpoint)
        if ep is None:
            raise TransportError(f"no handler bound for endpoint {endpoint!r}")
        return ep.meter

    def request(self, src: str, dst: str, payload: bytes) -> bytes:
        with self._lock:
            ep = self._endpoints.get(dst)
        if ep is None:
            raise TransportError(f"no handler bound for endpoint {dst!r}")
        meter = self.meter(src)
        try:
            with socket.create_connection(
                ep.address, timeout=self.connect_timeout_s
            ) as sock:
                sock.settimeout(self.request_timeout_s)
                send_frame(sock, payload)
                # Only a frame that actually went out counts: a refused or
                # timed-out connection must leave the ledger untouched.
                meter.record_send(_LEN.size + len(payload))
                framed = recv_frame(sock)
        except socket.timeout as exc:
            raise TransportError(
                f"timed out talking to endpoint {dst!r} at {ep.address}: {exc}"
            ) from exc
        except ConnectionError as exc:
            raise TransportError(
                f"connection to endpoint {dst!r} at {ep.address} failed: {exc}"
            ) from exc
        meter.record_receive(_LEN.size + len(framed))
        if not framed:
            raise TransportError("empty response frame")
        status, body = framed[0], framed[1:]
        if status != 1:
            raise TransportError(body.decode("utf-8", "replace"))
        return body

    def close(self) -> None:
        with self._lock:
            endpoints = list(self._endpoints.values())
            self._endpoints.clear()
        for ep in endpoints:
            ep.close()

    def __enter__(self) -> "TcpTransport":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
