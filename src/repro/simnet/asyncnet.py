"""Asyncio-native TCP transport — the event-loop sibling of ``realnet``.

Wire format is **identical** to :mod:`repro.simnet.realnet`: frames are
``[4-byte big-endian length][payload]`` and responses carry a 1-byte
status prefix (``0x01`` ok, ``0x00`` error).  A client built on one
transport can talk to an endpoint served by the other — the test suite
proves it by crossing a blocking-socket client with an asyncio server.

What changes is the serving model:

* One asyncio event loop owns every endpoint and every client
  connection.  There is no thread per connection, so tens of thousands
  of concurrent sessions fit in one process.
* Client connections are **persistent per (src, dst) peer**: the first
  request opens a connection, later requests reuse it.  (``realnet``
  opens a connection per request.)  One request is in flight per peer
  connection at a time — the endpoint serves frames sequentially per
  connection — and concurrency comes from many peers, which matches the
  many-clients serving model.  A connection the server idle-closed is
  transparently reopened and the request retried once.
* Handlers may be plain callables (run inline on the loop) or return an
  awaitable (awaited), which is how the application server offloads
  CPU-bound kernel work to a process pool without blocking the loop.

Byte accounting matches the ``realnet`` convention: both sides count
on-wire frame sizes (4-byte header + payload, responses including the
status byte), recorded only after the frame was actually sent or fully
received, so client meters and endpoint meters reconcile exactly.
"""

from __future__ import annotations

import asyncio
import contextlib
import inspect
from typing import Awaitable, Callable, Optional, Union

from .realnet import _LEN, MAX_FRAME
from .transport import TrafficMeter, TransportError

__all__ = [
    "AsyncTcpEndpoint",
    "AsyncTcpTransport",
    "send_frame_async",
    "recv_frame_async",
]

AsyncHandler = Callable[[bytes], Union[bytes, Awaitable[bytes]]]


async def send_frame_async(writer: asyncio.StreamWriter, payload: bytes) -> None:
    if len(payload) > MAX_FRAME:
        raise TransportError(f"frame too large: {len(payload)} bytes")
    writer.write(_LEN.pack(len(payload)) + payload)
    await writer.drain()


async def recv_frame_async(reader: asyncio.StreamReader) -> bytes:
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        raise TransportError("connection closed mid-frame") from exc
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise TransportError(f"incoming frame too large: {length} bytes")
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise TransportError("connection closed mid-frame") from exc


class AsyncTcpEndpoint:
    """A request/response server on 127.0.0.1 with an ephemeral port.

    ``idle_timeout_s`` bounds how long the per-connection task waits for
    the next frame before hanging up.  ``connections_served`` counts
    accepted connections — the persistent-connection tests read it to
    prove reuse actually happens.
    """

    def __init__(
        self,
        name: str,
        handler: AsyncHandler,
        *,
        idle_timeout_s: float = 5.0,
    ):
        if idle_timeout_s <= 0:
            raise ValueError(f"idle_timeout_s must be positive, got {idle_timeout_s}")
        self.name = name
        self.handler = handler
        self.idle_timeout_s = idle_timeout_s
        self.meter = TrafficMeter()
        self.connections_served = 0
        self.address: Optional[tuple[str, int]] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: set[asyncio.StreamWriter] = set()

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_conn, "127.0.0.1", 0
        )
        self.address = self._server.sockets[0].getsockname()

    async def _serve_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_served += 1
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        recv_frame_async(reader), self.idle_timeout_s
                    )
                except (
                    TransportError,
                    asyncio.TimeoutError,
                    ConnectionError,
                    OSError,
                ):
                    return
                self.meter.record_receive(_LEN.size + len(request))
                try:
                    result = self.handler(request)
                    if inspect.isawaitable(result):
                        result = await result
                    response = b"\x01" + result
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # noqa: BLE001 - report to caller
                    response = b"\x00ERR " + str(exc).encode("utf-8", "replace")
                try:
                    await send_frame_async(writer, response)
                except (ConnectionError, OSError):
                    return
                self.meter.record_send(_LEN.size + len(response))
        finally:
            self._writers.discard(writer)
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(ConnectionError, OSError):
                await self._server.wait_closed()
            self._server = None
        for writer in list(self._writers):
            writer.close()
        # Let per-connection tasks observe their closed sockets and exit.
        await asyncio.sleep(0)


class _PeerConn:
    """One persistent client connection; at most one request in flight."""

    __slots__ = ("reader", "writer", "requests_done")

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        self.requests_done = 0

    def close(self) -> None:
        with contextlib.suppress(ConnectionError, OSError):
            self.writer.close()


class AsyncTcpTransport:
    """Asyncio transport facade mirroring :class:`realnet.TcpTransport`.

    ``bind``/``unbind``/``request``/``close`` are coroutines; everything
    runs on the calling task's event loop.  ``idle_timeout_s`` defaults
    to ``request_timeout_s``, exactly like the (fixed) sync transport.
    """

    def __init__(
        self,
        *,
        connect_timeout_s: float = 5.0,
        request_timeout_s: float = 5.0,
        idle_timeout_s: Optional[float] = None,
    ) -> None:
        if connect_timeout_s <= 0 or request_timeout_s <= 0:
            raise ValueError("timeouts must be positive")
        if idle_timeout_s is not None and idle_timeout_s <= 0:
            raise ValueError("timeouts must be positive")
        self.connect_timeout_s = connect_timeout_s
        self.request_timeout_s = request_timeout_s
        self.idle_timeout_s = (
            idle_timeout_s if idle_timeout_s is not None else request_timeout_s
        )
        self._endpoints: dict[str, AsyncTcpEndpoint] = {}
        self.meters: dict[str, TrafficMeter] = {}
        self._conns: dict[tuple[str, str], _PeerConn] = {}
        self._peer_locks: dict[tuple[str, str], asyncio.Lock] = {}

    # -- server side -----------------------------------------------------------

    async def bind(self, endpoint: str, handler: AsyncHandler) -> None:
        if endpoint in self._endpoints:
            raise TransportError(f"endpoint already bound: {endpoint!r}")
        ep = AsyncTcpEndpoint(endpoint, handler, idle_timeout_s=self.idle_timeout_s)
        await ep.start()
        self._endpoints[endpoint] = ep
        self.meters.setdefault(endpoint, TrafficMeter())

    async def unbind(self, endpoint: str) -> None:
        ep = self._endpoints.pop(endpoint, None)
        if ep is not None:
            await ep.close()

    def endpoints(self) -> list[str]:
        return sorted(self._endpoints)

    def meter(self, endpoint: str) -> TrafficMeter:
        return self.meters.setdefault(endpoint, TrafficMeter())

    def endpoint_meter(self, endpoint: str) -> TrafficMeter:
        """The server-side meter of a bound endpoint (ledger symmetry)."""
        ep = self._endpoints.get(endpoint)
        if ep is None:
            raise TransportError(f"no handler bound for endpoint {endpoint!r}")
        return ep.meter

    # -- client side -----------------------------------------------------------

    async def _connect(self, dst: str, address: tuple[str, int]) -> _PeerConn:
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(*address), self.connect_timeout_s
            )
        except (asyncio.TimeoutError, ConnectionError, OSError) as exc:
            raise TransportError(
                f"connection to endpoint {dst!r} at {address} failed: {exc}"
            ) from exc
        return _PeerConn(reader, writer)

    @staticmethod
    async def _exchange(conn: _PeerConn, payload: bytes) -> bytes:
        await send_frame_async(conn.writer, payload)
        framed = await recv_frame_async(conn.reader)
        conn.requests_done += 1
        return framed

    async def request(self, src: str, dst: str, payload: bytes) -> bytes:
        ep = self._endpoints.get(dst)
        if ep is None:
            raise TransportError(f"no handler bound for endpoint {dst!r}")
        key = (src, dst)
        lock = self._peer_locks.setdefault(key, asyncio.Lock())
        async with lock:
            conn = self._conns.get(key)
            fresh = conn is None
            if conn is None:
                conn = await self._connect(dst, ep.address)
                self._conns[key] = conn
            try:
                framed = await asyncio.wait_for(
                    self._exchange(conn, payload), self.request_timeout_s
                )
            except asyncio.TimeoutError as exc:
                self._drop(key, conn)
                raise TransportError(
                    f"timed out talking to endpoint {dst!r} at {ep.address}: {exc}"
                ) from exc
            except (TransportError, ConnectionError, OSError) as exc:
                self._drop(key, conn)
                if fresh:
                    raise TransportError(
                        f"exchange with endpoint {dst!r} at {ep.address} "
                        f"failed: {exc}"
                    ) from exc
                # A reused connection may have been idle-closed by the
                # server since our last request (it read nothing of this
                # frame, so no double count) — retry once on a fresh one.
                conn = await self._connect(dst, ep.address)
                self._conns[key] = conn
                try:
                    framed = await asyncio.wait_for(
                        self._exchange(conn, payload), self.request_timeout_s
                    )
                except (
                    asyncio.TimeoutError,
                    TransportError,
                    ConnectionError,
                    OSError,
                ) as retry_exc:
                    self._drop(key, conn)
                    raise TransportError(
                        f"exchange with endpoint {dst!r} at {ep.address} "
                        f"failed after reconnect: {retry_exc}"
                    ) from retry_exc
        # Meter only completed exchanges, on-wire frame sizes both ways —
        # the same convention as realnet, so client/endpoint meters and
        # the load-harness ledger reconcile exactly.
        meter = self.meter(src)
        meter.record_send(_LEN.size + len(payload))
        meter.record_receive(_LEN.size + len(framed))
        if not framed:
            raise TransportError("empty response frame")
        status, body = framed[0], framed[1:]
        if status != 1:
            raise TransportError(body.decode("utf-8", "replace"))
        return body

    def _drop(self, key: tuple[str, str], conn: _PeerConn) -> None:
        if self._conns.get(key) is conn:
            del self._conns[key]
        conn.close()

    async def close(self) -> None:
        for conn in list(self._conns.values()):
            conn.close()
        self._conns.clear()
        for ep in list(self._endpoints.values()):
            await ep.close()
        self._endpoints.clear()

    async def __aenter__(self) -> "AsyncTcpTransport":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()
