"""Discrete-event simulation kernel.

A small, deterministic, generator-based discrete-event simulator in the
spirit of SimPy, sized for Fractal's capacity experiments (Fig. 9).  A
*process* is a Python generator that yields :class:`Timeout`,
:class:`AcquireRequest`, or other :class:`SimEvent` objects; the simulator
advances virtual time only, so a 300-client negotiation experiment runs in
milliseconds of wall time and is exactly reproducible.

Design notes (per the HPC guides: make it work, make it testable, then make
it fast): the event queue is a binary heap keyed on ``(time, seq)`` where
``seq`` is a monotonically increasing tiebreaker — two events scheduled for
the same instant always fire in schedule order, which makes every experiment
deterministic without any reliance on hash ordering.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "SimError",
    "Interrupt",
    "SimEvent",
    "Timeout",
    "AcquireRequest",
    "Process",
    "Resource",
    "Store",
    "Simulator",
]


class SimError(Exception):
    """Base class for simulation errors."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class SimEvent:
    """An occurrence at a point in simulated time.

    Processes wait on events by ``yield``-ing them.  An event may succeed
    with a ``value`` (delivered as the result of the ``yield``) or fail with
    an exception (raised inside the waiting process).
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "triggered", "processed")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list[Callable[["SimEvent"], None]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self.triggered = False  # scheduled to fire
        self.processed = False  # callbacks have run

    @property
    def value(self) -> Any:
        if self._exc is not None:
            raise self._exc
        return self._value

    def succeed(self, value: Any = None) -> "SimEvent":
        """Schedule this event to fire successfully at the current time."""
        if self.triggered:
            raise SimError("event already triggered")
        self.triggered = True
        self._value = value
        self.sim._schedule(self.sim.now, self)
        return self

    def fail(self, exc: BaseException) -> "SimEvent":
        """Schedule this event to fire by raising ``exc`` in waiters."""
        if self.triggered:
            raise SimError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self.triggered = True
        self._exc = exc
        self.sim._schedule(self.sim.now, self)
        return self


class Timeout(SimEvent):
    """Fires after a fixed delay of simulated time."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self.triggered = True
        self._value = value
        sim._schedule(sim.now + delay, self)


class Process(SimEvent):
    """A running simulation process wrapping a generator.

    The process is itself an event that fires when the generator returns
    (successfully, with the generator's return value) or raises (failing
    waiters with the same exception).
    """

    __slots__ = ("gen", "name", "_target", "_alive")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(gen, "send"):
            raise TypeError(f"process body must be a generator, got {type(gen)!r}")
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._target: Optional[SimEvent] = None
        self._alive = True
        # Bootstrap: resume the generator at the current instant.
        boot = SimEvent(sim)
        boot.callbacks.append(self._resume)
        boot.succeed()

    @property
    def is_alive(self) -> bool:
        return self._alive

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process is an error; interrupting a process
        twice before it resumes keeps only the first cause.
        """
        if not self._alive:
            raise SimError(f"cannot interrupt dead process {self.name!r}")
        target = self._target
        if target is not None and not target.triggered:
            # Detach from whatever we were waiting for.
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
            if isinstance(target, AcquireRequest):
                target.cancel()
        kick = SimEvent(self.sim)
        kick._exc = Interrupt(cause)
        kick.triggered = True
        kick.callbacks.append(self._resume)
        self.sim._schedule(self.sim.now, kick)
        self._target = None

    def _resume(self, event: SimEvent) -> None:
        if not self._alive:
            return
        self._target = None
        try:
            if event._exc is not None:
                exc = event._exc
                if isinstance(exc, Interrupt):
                    nxt = self.gen.throw(exc)
                else:
                    nxt = self.gen.throw(type(exc), exc)
            else:
                nxt = self.gen.send(event._value)
        except StopIteration as stop:
            self._alive = False
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into waiters
            self._alive = False
            if not self.callbacks and not isinstance(exc, SimError):
                # Nobody is waiting: surface the crash instead of losing it.
                self._alive = False
                raise
            self.fail(exc)
            return
        if not isinstance(nxt, SimEvent):
            self._alive = False
            err = SimError(
                f"process {self.name!r} yielded {nxt!r}; processes must yield SimEvent"
            )
            self.fail(err)
            return
        if nxt.processed:
            self._alive = False
            self.fail(SimError("cannot wait on an already-processed event"))
            return
        self._target = nxt
        nxt.callbacks.append(self._resume)


class AcquireRequest(SimEvent):
    """Pending request for one slot of a :class:`Resource`."""

    __slots__ = ("resource", "_cancelled")

    def __init__(self, sim: "Simulator", resource: "Resource"):
        super().__init__(sim)
        self.resource = resource
        self._cancelled = False

    def cancel(self) -> None:
        """Withdraw the request (used when the waiter is interrupted)."""
        self._cancelled = True
        if self.triggered and not self.processed:
            # Slot was granted but never consumed; give it back.
            self.resource.release()


class Resource:
    """A server with ``capacity`` identical slots and a FIFO wait queue.

    Models the adaptation proxy and the centralized PAD server: clients
    acquire a slot, hold it for a service time, and release it.  Utilization
    and queueing statistics are tracked for the capacity experiments.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise SimError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: deque[AcquireRequest] = deque()
        # Statistics.
        self.total_acquires = 0
        self.peak_queue_len = 0
        self._busy_area = 0.0  # integral of in_use over time
        self._last_change = sim.now

    def _account(self) -> None:
        now = self.sim.now
        self._busy_area += self.in_use * (now - self._last_change)
        self._last_change = now

    @property
    def queue_len(self) -> int:
        return len(self._waiters)

    def utilization(self) -> float:
        """Average busy fraction per slot since simulation start."""
        self._account()
        elapsed = self.sim.now
        if elapsed <= 0:
            return 0.0
        return self._busy_area / (elapsed * self.capacity)

    def acquire(self) -> AcquireRequest:
        req = AcquireRequest(self.sim, self)
        self._account()
        if self.in_use < self.capacity:
            self.in_use += 1
            self.total_acquires += 1
            req.succeed()
        else:
            self._waiters.append(req)
            self.peak_queue_len = max(self.peak_queue_len, len(self._waiters))
        return req

    def release(self) -> None:
        self._account()
        while self._waiters:
            nxt = self._waiters.popleft()
            if nxt._cancelled:
                continue
            self.total_acquires += 1
            nxt.succeed()
            return
        if self.in_use <= 0:
            raise SimError(f"release() on idle resource {self.name!r}")
        self.in_use -= 1


class Store:
    """Unbounded FIFO message store (mailbox) for inter-process messages."""

    def __init__(self, sim: "Simulator", name: str = "store"):
        self.sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[SimEvent] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        while self._getters:
            getter = self._getters.popleft()
            if getter.triggered:
                continue
            getter.succeed(item)
            return
        self._items.append(item)

    def get(self) -> SimEvent:
        ev = SimEvent(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev


@dataclass(order=True)
class _QueueEntry:
    time: float
    seq: int
    event: SimEvent = field(compare=False)


class Simulator:
    """The event loop: a priority queue of (time, seq, event)."""

    def __init__(self):
        self.now: float = 0.0
        self._queue: list[_QueueEntry] = []
        self._seq = itertools.count()
        self.events_processed = 0

    # -- scheduling ---------------------------------------------------------

    def _schedule(self, at: float, event: SimEvent) -> None:
        if at < self.now:
            raise SimError(f"cannot schedule in the past ({at} < {self.now})")
        heapq.heappush(self._queue, _QueueEntry(at, next(self._seq), event))

    def event(self) -> SimEvent:
        return SimEvent(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name=name)

    def resource(self, capacity: int = 1, name: str = "resource") -> Resource:
        return Resource(self, capacity, name)

    def store(self, name: str = "store") -> Store:
        return Store(self, name)

    def all_of(self, events: Iterable[SimEvent]) -> SimEvent:
        """Event that fires once every event in ``events`` has fired."""
        events = list(events)
        done = self.event()
        remaining = len(events)
        results: list[Any] = [None] * remaining
        if remaining == 0:
            done.succeed([])
            return done
        state = {"remaining": remaining}

        def make_cb(i: int):
            def cb(ev: SimEvent) -> None:
                if done.triggered:
                    return
                if ev._exc is not None:
                    done.fail(ev._exc)
                    return
                results[i] = ev._value
                state["remaining"] -= 1
                if state["remaining"] == 0:
                    done.succeed(results)

            return cb

        for i, ev in enumerate(events):
            if ev.processed:
                cb = make_cb(i)
                cb(ev)
            else:
                ev.callbacks.append(make_cb(i))
        return done

    # -- running ------------------------------------------------------------

    def step(self) -> None:
        entry = heapq.heappop(self._queue)
        self.now = entry.time
        event = entry.event
        event.processed = True
        callbacks, event.callbacks = event.callbacks, []
        self.events_processed += 1
        for cb in callbacks:
            cb(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or simulated time reaches ``until``."""
        while self._queue:
            if until is not None and self._queue[0].time > until:
                self.now = until
                return
            self.step()
        if until is not None:
            self.now = max(self.now, until)

    def run_process(self, gen: Generator, name: str = "") -> Any:
        """Convenience: run ``gen`` as a process to completion, return its value."""
        proc = self.process(gen, name=name)
        self.run()
        if not proc.triggered:
            raise SimError(f"process {proc.name!r} deadlocked (queue drained)")
        return proc.value
