"""Network simulation substrate.

Discrete-event kernel, link models, latency topology, and three
interchangeable message transports (in-process, simulated, real TCP).
"""

from .kernel import (
    AcquireRequest,
    Interrupt,
    Process,
    Resource,
    SimError,
    SimEvent,
    Simulator,
    Store,
    Timeout,
)
from .pipe import FairSharePipe
from .link import DEFAULT_RHO, LINK_PRESETS, LinkSpec, NetworkType, kbps, mbps
from .stats import RunningStats, Series, percentile
from .topology import HostSite, Topology
from .transport import InProcessTransport, SimChannel, TrafficMeter, TransportError

__all__ = [
    "FairSharePipe",
    "AcquireRequest",
    "Interrupt",
    "Process",
    "Resource",
    "SimError",
    "SimEvent",
    "Simulator",
    "Store",
    "Timeout",
    "DEFAULT_RHO",
    "LINK_PRESETS",
    "LinkSpec",
    "NetworkType",
    "kbps",
    "mbps",
    "RunningStats",
    "Series",
    "percentile",
    "HostSite",
    "Topology",
    "InProcessTransport",
    "SimChannel",
    "TrafficMeter",
    "TransportError",
]
