"""Message transports.

Fractal components (client, adaptation proxy, application server, CDN
servers) exchange framed byte messages.  Three interchangeable transports
implement the same tiny interface so the framework code is oblivious to
whether it runs in-process (unit tests), on the discrete-event simulator
(capacity experiments), or over real TCP loopback sockets (integration
tests, per the repro hint that Python networking is easy):

* :class:`InProcessTransport` — synchronous function call, zero latency,
  but still counts bytes so traffic experiments work.
* :class:`SimChannel` — byte-accurate latency/bandwidth on the simulator.
* ``repro.simnet.realnet.TcpTransport`` — length-prefixed frames over TCP.

Handlers are registered per *endpoint name*; a request is
``(dst, payload) -> response payload``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

from ..telemetry import DEFAULT_TIME_BUCKETS_S, MetricsRegistry
from .kernel import Simulator
from .link import LinkSpec

__all__ = ["TransportError", "TrafficMeter", "InProcessTransport", "SimChannel"]

Handler = Callable[[bytes], bytes]


class TransportError(Exception):
    """Raised for unknown endpoints or framing failures."""


@dataclass
class TrafficMeter:
    """Byte/message counters, the ground truth for Fig. 11(a).

    Thread-safe: a shared endpoint meter is updated by every transport
    worker serving that endpoint, so the read-modify-write pairs sit
    behind a lock (byte totals must reconcile exactly under load).
    """

    bytes_sent: int = 0
    bytes_received: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record_send(self, n: int) -> None:
        with self._lock:
            self.bytes_sent += n
            self.messages_sent += 1

    def record_receive(self, n: int) -> None:
        with self._lock:
            self.bytes_received += n
            self.messages_received += 1

    @property
    def total_bytes(self) -> int:
        return self.bytes_sent + self.bytes_received

    def reset(self) -> None:
        with self._lock:
            self.bytes_sent = self.bytes_received = 0
            self.messages_sent = self.messages_received = 0


class InProcessTransport:
    """Direct-call transport: request() invokes the handler synchronously.

    With a ``registry``, aggregate traffic is mirrored into
    ``transport.bytes``/``transport.requests`` counters and each
    request's handler time lands in the ``transport.request_seconds``
    histogram (per-endpoint byte truth stays on the meters).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._handlers: dict[str, Handler] = {}
        self.meters: dict[str, TrafficMeter] = {}
        self._registry = registry
        self._lock = threading.Lock()  # guards handler/meter maps, not requests

    def bind(self, endpoint: str, handler: Handler) -> None:
        with self._lock:
            if endpoint in self._handlers:
                raise TransportError(f"endpoint already bound: {endpoint!r}")
            self._handlers[endpoint] = handler
            self.meters.setdefault(endpoint, TrafficMeter())

    def unbind(self, endpoint: str) -> None:
        with self._lock:
            self._handlers.pop(endpoint, None)

    def endpoints(self) -> list[str]:
        with self._lock:
            return sorted(self._handlers)

    def meter(self, endpoint: str) -> TrafficMeter:
        with self._lock:
            return self.meters.setdefault(endpoint, TrafficMeter())

    def request(self, src: str, dst: str, payload: bytes) -> bytes:
        with self._lock:
            handler = self._handlers.get(dst)
        if handler is None:
            raise TransportError(f"no handler bound for endpoint {dst!r}")
        self.meter(src).record_send(len(payload))
        self.meter(dst).record_receive(len(payload))
        if self._registry is not None:
            with self._registry.timer("transport.request_seconds"):
                response = handler(payload)
        else:
            response = handler(payload)
        if not isinstance(response, (bytes, bytearray)):
            raise TransportError(
                f"handler for {dst!r} returned {type(response)!r}, expected bytes"
            )
        response = bytes(response)
        self.meter(dst).record_send(len(response))
        self.meter(src).record_receive(len(response))
        if self._registry is not None:
            self._registry.counter("transport.requests").inc()
            self._registry.counter("transport.bytes").inc(
                len(payload) + len(response)
            )
        return response


class SimChannel:
    """A request/response channel across one link on the simulator.

    ``round_trip`` yields a process-friendly generator: serialize request
    up, propagate, invoke handler (optionally holding a service
    :class:`~repro.simnet.kernel.Resource` for a service time), serialize
    response back.
    """

    def __init__(
        self,
        sim: Simulator,
        link: LinkSpec,
        *,
        name: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.sim = sim
        self.link = link
        self.name = name or link.network_type.value
        # Per-link telemetry under *simulated* time: the registry's clock
        # is ignored here — latency observations are sim.now deltas.
        self._registry = registry
        self.meter = TrafficMeter()

    def _record(self, nbytes: int, elapsed_s: float) -> None:
        if self._registry is None:
            return
        self._registry.counter(f"simnet.link.{self.name}.bytes").inc(nbytes)
        self._registry.histogram(
            f"simnet.link.{self.name}.latency_s", DEFAULT_TIME_BUCKETS_S
        ).observe(elapsed_s)

    def transfer(self, size_bytes: int) -> Generator:
        """Process: occupy the link while ``size_bytes`` serialize."""
        self.meter.record_send(size_bytes)
        t0 = self.sim.now
        yield self.sim.timeout(self.link.transfer_time(size_bytes))
        self._record(size_bytes, self.sim.now - t0)

    def round_trip(
        self,
        request_bytes: int,
        response_bytes: int,
        *,
        service_time: float = 0.0,
        bandwidth_share: float = 1.0,
    ) -> Generator:
        """Process: request up, optional service delay, response down.

        ``bandwidth_share`` in (0, 1] splits the link among concurrent
        users (the centralized PAD server in Fig. 9(b) divides its uplink
        across all simultaneous downloaders).
        """
        if not 0.0 < bandwidth_share <= 1.0:
            raise ValueError(f"bandwidth_share must be in (0,1], got {bandwidth_share}")
        link = self.link if bandwidth_share == 1.0 else self.link.scaled(bandwidth_share)
        t0 = self.sim.now
        self.meter.record_send(request_bytes)
        yield self.sim.timeout(link.transfer_time(request_bytes))
        if service_time > 0.0:
            yield self.sim.timeout(service_time)
        self.meter.record_receive(response_bytes)
        yield self.sim.timeout(link.transfer_time(response_bytes))
        self._record(request_bytes + response_bytes, self.sim.now - t0)
