"""Latency topology: where hosts sit relative to each other.

The CDN substrate needs a notion of "closest edgeserver" (the paper
delegates edge selection to the CDN).  We embed hosts in a 2-D coordinate
plane — the standard synthetic-PlanetLab trick — and derive pairwise
latencies from Euclidean distance plus a per-host access penalty.  A
`networkx` graph view is exposed for experiments that want routing or
visualisation.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable, Optional

import networkx as nx

__all__ = ["HostSite", "Topology"]

# Speed-of-light-ish propagation: ~1 ms of one-way latency per coordinate
# unit.  Coordinates are laid out so that continental spans are ~60 units.
_MS_PER_UNIT = 1.0


@dataclass(frozen=True)
class HostSite:
    """A named host pinned at a plane coordinate.

    ``access_latency_s`` models the last-mile penalty added to every path
    that starts or ends at this host (e.g. a Bluetooth hop).
    """

    name: str
    x: float
    y: float
    access_latency_s: float = 0.0

    def distance_to(self, other: "HostSite") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)


class Topology:
    """A collection of sites with derived pairwise latencies."""

    def __init__(self) -> None:
        self._sites: dict[str, HostSite] = {}

    def add_site(self, site: HostSite) -> None:
        if site.name in self._sites:
            raise ValueError(f"duplicate site name: {site.name!r}")
        self._sites[site.name] = site

    def add(
        self, name: str, x: float, y: float, access_latency_s: float = 0.0
    ) -> HostSite:
        site = HostSite(name, x, y, access_latency_s)
        self.add_site(site)
        return site

    def __contains__(self, name: str) -> bool:
        return name in self._sites

    def __len__(self) -> int:
        return len(self._sites)

    def sites(self) -> list[HostSite]:
        return list(self._sites.values())

    def get(self, name: str) -> HostSite:
        try:
            return self._sites[name]
        except KeyError:
            raise KeyError(f"unknown site: {name!r}") from None

    def latency_s(self, a: str, b: str) -> float:
        """One-way latency between two sites."""
        sa, sb = self.get(a), self.get(b)
        if a == b:
            return sa.access_latency_s
        prop = sa.distance_to(sb) * _MS_PER_UNIT / 1000.0
        return prop + sa.access_latency_s + sb.access_latency_s

    def nearest(self, origin: str, candidates: Iterable[str]) -> str:
        """The candidate site with least latency from ``origin``.

        Ties break on name so selection is deterministic.
        """
        best: Optional[tuple[float, str]] = None
        for cand in candidates:
            key = (self.latency_s(origin, cand), cand)
            if best is None or key < best:
                best = key
        if best is None:
            raise ValueError("nearest() requires at least one candidate")
        return best[1]

    def ranked(self, origin: str, candidates: Iterable[str]) -> list[str]:
        """Candidates sorted by latency from ``origin`` (then by name)."""
        return [
            name
            for _, name in sorted(
                (self.latency_s(origin, c), c) for c in candidates
            )
        ]

    def graph(self) -> nx.Graph:
        """Complete `networkx` graph with ``latency_s`` edge attributes."""
        g = nx.Graph()
        names = list(self._sites)
        for name in names:
            site = self._sites[name]
            g.add_node(name, x=site.x, y=site.y)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                g.add_edge(a, b, latency_s=self.latency_s(a, b))
        return g

    @classmethod
    def random_plane(
        cls,
        names: Iterable[str],
        *,
        span: float = 60.0,
        seed: int = 2005,
    ) -> "Topology":
        """Scatter ``names`` uniformly over a ``span`` x ``span`` plane."""
        rng = random.Random(seed)
        topo = cls()
        for name in names:
            topo.add(name, rng.uniform(0.0, span), rng.uniform(0.0, span))
        return topo
