"""Network link models.

Fractal's evaluation (Fig. 7) uses three access networks — LAN, 802.11b
wireless LAN, and Bluetooth — and the overhead model (Eq. 3) multiplies
nominal bandwidth by an application-level efficiency factor ``rho``
(0.6–0.8 in the paper; 0.8 in their implementation).  This module provides
nominal link presets from the paper's era plus the transfer-time arithmetic
used throughout the reproduction.

Units: bandwidth in **bits per second**, sizes in **bytes**, time in
**seconds**.  Conversion helpers are provided so callers never hand-roll the
8x factor.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

__all__ = [
    "NetworkType",
    "LinkSpec",
    "LINK_PRESETS",
    "DEFAULT_RHO",
    "kbps",
    "mbps",
]

DEFAULT_RHO = 0.8  # the paper approximates rho as 0.8


def kbps(value: float) -> float:
    """Kilobits/s -> bits/s."""
    return value * 1_000.0


def mbps(value: float) -> float:
    """Megabits/s -> bits/s."""
    return value * 1_000_000.0


class NetworkType(str, enum.Enum):
    """Access network families known to the negotiation manager.

    The string values appear verbatim inside ``NtwkMeta`` on the wire.
    """

    LAN = "LAN"
    WLAN = "WLAN"
    BLUETOOTH = "Bluetooth"
    DIALUP = "Dialup"
    CELLULAR_3G = "3G"
    CABLE = "Cable"

    @classmethod
    def parse(cls, text: str) -> "NetworkType":
        for member in cls:
            if member.value.lower() == text.strip().lower():
                return member
        raise ValueError(f"unknown network type: {text!r}")


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point link with nominal bandwidth and one-way latency.

    ``rho`` captures the achievable application-level fraction of nominal
    bandwidth (protocol headers, MAC contention, TCP dynamics).  The paper
    observed 0.6–0.8 and fixed 0.8; the ablation bench sweeps it.
    """

    network_type: NetworkType
    bandwidth_bps: float
    latency_s: float
    rho: float = DEFAULT_RHO

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth_bps}")
        if self.latency_s < 0:
            raise ValueError(f"latency must be non-negative, got {self.latency_s}")
        if not 0.0 < self.rho <= 1.0:
            raise ValueError(f"rho must be in (0, 1], got {self.rho}")

    @property
    def effective_bandwidth_bps(self) -> float:
        return self.bandwidth_bps * self.rho

    @property
    def effective_bandwidth_kbps(self) -> float:
        return self.effective_bandwidth_bps / 1_000.0

    def transfer_time(self, size_bytes: int, *, with_latency: bool = True) -> float:
        """Seconds to move ``size_bytes`` across the link.

        The serialization term uses the rho-degraded bandwidth, matching the
        first and last terms of Eq. 3.
        """
        if size_bytes < 0:
            raise ValueError(f"size must be non-negative, got {size_bytes}")
        serialize = (size_bytes * 8.0) / self.effective_bandwidth_bps
        return serialize + (self.latency_s if with_latency else 0.0)

    def with_rho(self, rho: float) -> "LinkSpec":
        return replace(self, rho=rho)

    def scaled(self, factor: float) -> "LinkSpec":
        """A link with bandwidth scaled by ``factor`` (for contention models)."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return replace(self, bandwidth_bps=self.bandwidth_bps * factor)


# Nominal 2004/2005-era presets matching the paper's testbed (Fig. 7):
# switched 100 Mbps Ethernet, 11 Mbps 802.11b, and Bluetooth 1.x (~723 kbps
# asymmetric data rate).  Dialup/3G/cable presets support the handoff example.
LINK_PRESETS: dict[NetworkType, LinkSpec] = {
    NetworkType.LAN: LinkSpec(NetworkType.LAN, mbps(100), 0.0005),
    NetworkType.WLAN: LinkSpec(NetworkType.WLAN, mbps(11), 0.003),
    NetworkType.BLUETOOTH: LinkSpec(NetworkType.BLUETOOTH, kbps(723), 0.030),
    NetworkType.DIALUP: LinkSpec(NetworkType.DIALUP, kbps(56), 0.150),
    NetworkType.CELLULAR_3G: LinkSpec(NetworkType.CELLULAR_3G, kbps(384), 0.120),
    NetworkType.CABLE: LinkSpec(NetworkType.CABLE, mbps(3), 0.015),
}
