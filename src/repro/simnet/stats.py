"""Lightweight statistics accumulators for simulation experiments.

The capacity experiments (Fig. 9) report average negotiation/retrieval time
per client-count point; these helpers keep the arithmetic in one audited
place.  Implemented with Welford's online algorithm so a million samples
cost O(1) memory and no catastrophic cancellation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = ["RunningStats", "Series", "percentile"]


class RunningStats:
    """Online mean/variance/min/max accumulator (Welford)."""

    __slots__ = ("count", "_mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, x: float) -> None:
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        if x < self.minimum:
            self.minimum = x
        if x > self.maximum:
            self.maximum = x

    def extend(self, xs: Iterable[float]) -> None:
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Combine two accumulators (parallel-friendly reduction)."""
        out = RunningStats()
        n = self.count + other.count
        if n == 0:
            return out
        delta = other._mean - self._mean
        out.count = n
        out._mean = self._mean + delta * (other.count / n)
        out._m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / n
        out.minimum = min(self.minimum, other.minimum)
        out.maximum = max(self.maximum, other.maximum)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunningStats(n={self.count}, mean={self.mean:.6g}, "
            f"stdev={self.stdev:.6g})"
        )


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, q in [0, 100]."""
    if not samples:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    data = sorted(samples)
    if len(data) == 1:
        return data[0]
    pos = (q / 100.0) * (len(data) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return data[lo]
    frac = pos - lo
    # a + frac*(b-a) is exact when a == b (the weighted-sum form can be
    # off by one ulp, which breaks the min<=p<=max invariant).
    return data[lo] + frac * (data[hi] - data[lo])


@dataclass
class Series:
    """An (x, y) result series, as printed for each figure."""

    name: str
    xs: list[float] = field(default_factory=list)
    ys: list[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.xs.append(x)
        self.ys.append(y)

    def __len__(self) -> int:
        return len(self.xs)

    def rows(self) -> list[tuple[float, float]]:
        return list(zip(self.xs, self.ys))
