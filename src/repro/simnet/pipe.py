"""Fair-share (processor-sharing) pipe for concurrent transfers.

The Fig. 9(b) experiment needs the defining behaviour of a centralized PAD
server: N simultaneous downloads share one uplink, so per-client time
grows with N, while CDN edges each see only N/edges of the load.  This
models a link as a processor-sharing server: at any instant every active
transfer progresses at ``capacity / n_active``.  Event-driven: rates are
recomputed only when a transfer starts or finishes, which keeps the whole
300-client experiment at O(transfers²) events worst case and exactly
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .kernel import SimEvent, Simulator

__all__ = ["FairSharePipe"]

# A flow with less than half a bit outstanding is complete; using a
# half-bit floor also keeps completion timers strictly positive.
_DONE_BITS = 0.5


@dataclass
class _Flow:
    remaining_bits: float
    done: SimEvent
    started_at: float


class FairSharePipe:
    """A shared link where active transfers split bandwidth equally."""

    def __init__(self, sim: Simulator, capacity_bps: float, name: str = "pipe"):
        if capacity_bps <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bps}")
        self.sim = sim
        self.capacity_bps = capacity_bps
        self.name = name
        self._flows: list[_Flow] = []
        self._last_update = 0.0
        self._next_completion: Optional[SimEvent] = None
        self.transfers_completed = 0
        self.peak_concurrency = 0

    @property
    def active(self) -> int:
        return len(self._flows)

    def _drain_progress(self) -> None:
        """Apply progress accrued since the last rate change."""
        now = self.sim.now
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed <= 0 or not self._flows:
            return
        rate = self.capacity_bps / len(self._flows)
        for flow in self._flows:
            flow.remaining_bits -= rate * elapsed

    def _schedule_next(self) -> None:
        """(Re)arm the completion timer for the flow that finishes first."""
        self._next_completion = None
        if not self._flows:
            return
        rate = self.capacity_bps / len(self._flows)
        soonest = min(f.remaining_bits for f in self._flows)
        # Never schedule a zero-length step: below half a bit a flow is
        # done, and a sub-ulp delay would stall simulated time forever.
        delay = max(soonest, _DONE_BITS) / rate
        timer = self.sim.timeout(delay)
        self._next_completion = timer
        timer.callbacks.append(self._on_completion_timer)

    def _on_completion_timer(self, event: SimEvent) -> None:
        if event is not self._next_completion:
            return  # superseded by a newer rate change
        self._drain_progress()
        finished = [f for f in self._flows if f.remaining_bits <= _DONE_BITS]
        self._flows = [f for f in self._flows if f.remaining_bits > _DONE_BITS]
        for flow in finished:
            self.transfers_completed += 1
            flow.done.succeed(self.sim.now - flow.started_at)
        self._schedule_next()

    def transfer(self, size_bytes: int) -> SimEvent:
        """Start a transfer now; the returned event fires with its duration."""
        if size_bytes < 0:
            raise ValueError(f"size must be non-negative, got {size_bytes}")
        self._drain_progress()
        done = self.sim.event()
        if size_bytes == 0:
            done.succeed(0.0)
            return done
        self._flows.append(
            _Flow(remaining_bits=size_bytes * 8.0, done=done, started_at=self.sim.now)
        )
        self.peak_concurrency = max(self.peak_concurrency, len(self._flows))
        self._schedule_next()
        return done
