"""LZSS (LZ77-family) match finding and tokenization.

The Gzip PAD's algorithmic core: a sliding-window dictionary coder with a
hash-chain match finder, the same family as zlib's deflate.  Output is a
token stream of literals and (length, distance) copies, later entropy-coded
by the Huffman stage.

Parameters mirror deflate: window up to 32 KiB, match lengths 3..258.

Tokenizer strategy
------------------
The public :func:`tokenize` parse is defined by the original hash-chain
walker, but the hot path runs one of two fused kernels that produce the
identical token stream:

* ``_match_table_numpy`` — the key observation is that the parse's match
  candidates do not depend on the parse itself: at every probe position
  ``P`` the inserted dictionary is exactly ``{q < P}``, so the hash chains
  are position-global and can be built up front (stable argsort on the
  3-byte hashes).  From the chains the kernel materializes all
  (position, candidate) pairs level by level (window-pruned, chain-capped),
  filters them by a vectorized 3-byte probe, extends match lengths in bulk,
  and picks each position's winner with a first-max score reduction that
  reproduces the walker's tie-breaking (nearest candidate wins ties, stop
  at the length limit).  The remaining greedy/lazy parse is a cheap scalar
  pass over the precomputed (best_length, best_distance) table.  Degenerate
  inputs whose chains explode (e.g. one repeated byte) bail out early to
  the scalar walker, which handles them quickly via its early-exit on
  limit-length matches.
* ``_tokenize_walker`` — fused scalar walker: match finder inlined into the
  parse loop with hoisted locals, a one-byte probe at the current best
  length before any full comparison, 64-byte slice equality for the length
  extension, and reuse of the lazy lookahead result after a deferral.

Internally tokens travel as packed ints (:func:`tokenize_raw`): a literal
is its byte value (< 256) and a match is ``length << 16 | distance``
(>= ``MIN_MATCH << 16``, so the two ranges cannot collide).  The dataclass
stream remains the public API boundary.

Session-granularity batching
----------------------------
:func:`tokenize_batch` builds the match tables for *several* independent
buffers (concurrent sessions' payloads) in one vectorized pass.  The
buffers concatenate into a single working buffer; hash chains are built
with one stable argsort over ``buffer_id * HASH_SIZE + hash`` keys, so a
chain can never cross a buffer edge (equal key implies same buffer *and*
same 3-byte hash), and positions whose 3-byte probe would straddle an
edge are excluded up front.  Window pruning clamps against each
position's own buffer start, and match lengths clamp against the owning
buffer's end — the bulk 4-byte extension may momentarily compare bytes
across an edge, but every byte below the clamp is in-buffer for both
sides, so the clamped result is exact (same argument as the single-buffer
zero padding).  Each buffer's token stream is byte-identical to
:func:`tokenize_raw` run on it alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

try:  # pragma: no cover - exercised via both paths in tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["Literal", "Match", "Token", "tokenize", "detokenize", "LZError",
           "tokenize_raw", "detokenize_raw", "tokenize_batch",
           "MIN_MATCH", "MAX_MATCH", "WINDOW_SIZE"]

MIN_MATCH = 3
MAX_MATCH = 258
WINDOW_SIZE = 32 * 1024
_HASH_BITS = 15
_HASH_SIZE = 1 << _HASH_BITS
_HASH_MASK = _HASH_SIZE - 1

# Below this size the scalar walker beats numpy setup overhead.
_NUMPY_MIN_BYTES = 2048
# Bail-out budgets for the vectorized match table (multiples of len(data)):
# highly repetitive inputs make the candidate pair set quadratic, where the
# scalar walker's early exits win anyway.
_PAIR_BUDGET = 16
_EXTEND_BUDGET = 12  # counted in 4-byte block compares


class LZError(Exception):
    """Raised when a token stream is internally inconsistent."""


@dataclass(frozen=True)
class Literal:
    byte: int

    def __post_init__(self) -> None:
        if not 0 <= self.byte <= 255:
            raise LZError(f"literal out of range: {self.byte}")


@dataclass(frozen=True)
class Match:
    length: int
    distance: int

    def __post_init__(self) -> None:
        if not MIN_MATCH <= self.length <= MAX_MATCH:
            raise LZError(f"match length out of range: {self.length}")
        if not 1 <= self.distance <= WINDOW_SIZE:
            raise LZError(f"match distance out of range: {self.distance}")


Token = Union[Literal, Match]


def _hash3(data: bytes, pos: int) -> int:
    return ((data[pos] << 10) ^ (data[pos + 1] << 5) ^ data[pos + 2]) & _HASH_MASK


def _chains_python(data: bytes) -> list[int]:
    """prev[p] = nearest q < p sharing p's 3-byte hash, else -1."""
    n = len(data)
    head = [-1] * _HASH_SIZE
    prev = [-1] * n
    mask = _HASH_MASK
    for p in range(n - 2):
        h = ((data[p] << 10) ^ (data[p + 1] << 5) ^ data[p + 2]) & mask
        prev[p] = head[h]
        head[h] = p
    return prev


def _chains_numpy(data: bytes):
    """Same chains as :func:`_chains_python`, built with a stable argsort."""
    n = len(data)
    a = _np.frombuffer(data, dtype=_np.uint8).astype(_np.int32)
    # The 15-bit hash fits uint16, where numpy's stable argsort is a cheap
    # two-pass radix sort.
    h = (((a[:-2] << 10) ^ (a[1:-1] << 5) ^ a[2:]) & _HASH_MASK).astype(_np.uint16)
    order = _np.argsort(h, kind="stable")
    hs = h[order]
    same = hs[1:] == hs[:-1]
    prev = _np.full(n - 2, -1, dtype=_np.int32)
    prev[order[1:][same]] = order[:-1][same]
    return prev


def _match_table_numpy(data: bytes, max_chain: int):
    """Per-position (best_length, best_distance) table, or None to bail.

    Reproduces the walker's choice exactly: scan up to ``max_chain``
    in-window chain candidates nearest-first, keep the first strictly
    longer match, stop once a match reaches the per-position length limit.
    """
    n = len(data)
    prev = _chains_numpy(data)
    # w4[i] = bytes i..i+3 packed big-endian into one word; equality of
    # words is equality of 4-byte blocks, and w4 >> 8 compares the 3-byte
    # prefixes that decide minimum-match viability.  The zero padding lets
    # the length extension run guard-free past every per-pair limit (the
    # loop stops by MAX_MATCH + 4 and lengths are clamped afterwards).
    m = n + MAX_MATCH + 4
    b8 = _np.frombuffer(data + b"\x00" * (MAX_MATCH + 8), dtype=_np.uint8)
    w4 = (
        (b8[:m].astype(_np.uint32) << 24)
        | (b8[1 : m + 1].astype(_np.uint32) << 16)
        | (b8[2 : m + 2].astype(_np.uint32) << 8)
        | b8[3 : m + 3]
    )

    # Materialize the chain walk level by level: level k holds, for every
    # still-live position P, its (k+1)-th nearest same-hash candidate.
    # Chains are strictly decreasing, so window pruning is final.  Only
    # pairs whose first MIN_MATCH bytes really match are emitted (the hash
    # is not injective) — non-matching candidates still advance the chain
    # so the max_chain visit cap stays exact.  Pairs concatenate in level
    # order, which the winner scatter below relies on.
    P = _np.arange(n - 2, dtype=_np.int32)
    lo = _np.maximum(P - WINDOW_SIZE, 0)
    C = prev
    key3 = w4 >> 8
    pair_budget = _PAIR_BUDGET * n
    p_parts, c_parts = [], []
    total = 0
    for _k in range(max_chain):
        keep = C >= lo
        if not keep.any():
            break
        P, C, lo = P[keep], C[keep], lo[keep]
        total += len(P)
        if total > pair_budget:
            return None
        m3 = key3[C] == key3[P]
        p_parts.append(P[m3])
        c_parts.append(C[m3])
        C = prev[C]
    if not p_parts:
        return [0] * n
    pp = _np.concatenate(p_parts)
    cp = _np.concatenate(c_parts)
    if not len(pp):
        return [0] * n

    # Bulk length extension, 4-byte blocks at a time.  A failing block's
    # XOR pinpoints the mismatch byte (big-endian packing puts the earliest
    # byte on top), so no scalar tail pass is needed.  Per-pair limits are
    # ignored during the loop — the padding makes out-of-range compares
    # safe — and clamped once at the end.
    lengths = _np.full(len(pp), MIN_MATCH, dtype=_np.int32)
    x0 = w4[cp] ^ w4[pp]  # top 3 bytes already known equal
    act = _np.nonzero(x0 == 0)[0].astype(_np.int32)
    lengths[act] = 4
    off = 4
    work = 0
    work_budget = _EXTEND_BUDGET * n
    while act.size and off <= MAX_MATCH:
        work += act.size
        if work > work_budget:
            return None
        x = w4[cp[act] + off] ^ w4[pp[act] + off]
        eq = x == 0
        neq = ~eq
        failed = act[neq]
        if failed.size:
            xf = x[neq]
            lengths[failed] = (
                off + (xf <= 0xFFFFFF) + (xf <= 0xFFFF) + (xf <= 0xFF)
            )
        act = act[eq]
        off += 4
        lengths[act] = off
    _np.minimum(lengths, _np.minimum(n - pp, MAX_MATCH).astype(_np.int32),
                out=lengths)

    # First-strict-max reduction per position, walking level slices in
    # chain order: a later (farther) candidate only displaces the running
    # best when strictly longer — identical to the walker's scan order,
    # including its early exit at the limit (no later candidate can exceed
    # it).  Positions are unique within a level, so plain scatter is safe.
    # The result is packed like the raw token stream: length << 16 | dist.
    bl = _np.zeros(n, dtype=_np.int32)
    packed = _np.zeros(n, dtype=_np.int32)
    start = 0
    for part in p_parts:
        stop = start + len(part)
        if stop == start:
            start = stop
            continue
        pk = pp[start:stop]
        lk = lengths[start:stop]
        better = lk > bl[pk]
        idx = pk[better]
        lb = lk[better]
        bl[idx] = lb
        packed[idx] = (lb << 16) | (idx - cp[start:stop][better])
        start = stop
    return packed.tolist()


def _match_tables_batch(buffers: list[bytes], max_chain: int):
    """Per-buffer packed best-match tables, or None to bail out.

    :func:`_match_table_numpy` over the concatenation of ``buffers``:
    chains are keyed by ``(buffer start, hash)`` so equal keys imply the
    same buffer, the window floor clamps to each position's buffer start,
    and lengths clamp to the owning buffer's end.  Each returned table is
    exactly what the single-buffer kernel would produce for that buffer.
    """
    sizes = [len(b) for b in buffers]
    n = sum(sizes)
    if n < MIN_MATCH:
        return [[0] * s for s in sizes]
    data = b"".join(buffers)
    sz = _np.asarray(sizes, dtype=_np.int64)
    off = _np.zeros(len(buffers) + 1, dtype=_np.int64)
    _np.cumsum(sz, out=off[1:])
    # Owning buffer's [start, end) offsets, per byte of the concatenation.
    starts = _np.repeat(off[:-1], sz)
    ends = _np.repeat(off[1:], sz)

    a = _np.frombuffer(data, dtype=_np.uint8).astype(_np.int32)
    h = ((a[:-2] << 10) ^ (a[1:-1] << 5) ^ a[2:]) & _HASH_MASK
    pos = _np.arange(n - 2, dtype=_np.int64)
    # Only positions whose 3-byte probe stays inside their buffer take
    # part; the excluded tail positions tokenize as literals, exactly as
    # the per-buffer kernel treats its last two positions.
    idx = pos[pos + 2 < ends[: n - 2]]
    if not len(idx):
        return [[0] * s for s in sizes]
    # Buffer starts are distinct per buffer, so this composite key is
    # equal iff both the buffer and the 3-byte hash agree — one stable
    # argsort builds every buffer's chains without any cross-edge link.
    key = starts[idx] * _HASH_SIZE + h[idx]
    order = _np.argsort(key, kind="stable")
    si = idx[order]
    ks = key[order]
    same = ks[1:] == ks[:-1]
    prev = _np.full(n - 2, -1, dtype=_np.int64)
    prev[si[1:][same]] = si[:-1][same]

    m = n + MAX_MATCH + 4
    b8 = _np.frombuffer(data + b"\x00" * (MAX_MATCH + 8), dtype=_np.uint8)
    w4 = (
        (b8[:m].astype(_np.uint32) << 24)
        | (b8[1 : m + 1].astype(_np.uint32) << 16)
        | (b8[2 : m + 2].astype(_np.uint32) << 8)
        | b8[3 : m + 3]
    )

    P = idx
    lo = _np.maximum(P - WINDOW_SIZE, starts[P])
    C = prev[P]
    key3 = w4 >> 8
    pair_budget = _PAIR_BUDGET * n
    p_parts, c_parts = [], []
    total = 0
    for _k in range(max_chain):
        keep = C >= lo
        if not keep.any():
            break
        P, C, lo = P[keep], C[keep], lo[keep]
        total += len(P)
        if total > pair_budget:
            return None
        m3 = key3[C] == key3[P]
        p_parts.append(P[m3])
        c_parts.append(C[m3])
        C = prev[C]
    if not p_parts:
        return [[0] * s for s in sizes]
    pp = _np.concatenate(p_parts)
    cp = _np.concatenate(c_parts)
    if not len(pp):
        return [[0] * s for s in sizes]

    # Bulk extension as in the single-buffer kernel.  Compares beyond a
    # buffer's end read the next buffer's bytes rather than zero padding,
    # but every byte below the end clamp is in-buffer for both sides of a
    # pair (cp < pp, same buffer), so the clamped lengths are exact.
    lengths = _np.full(len(pp), MIN_MATCH, dtype=_np.int64)
    x0 = w4[cp] ^ w4[pp]
    act = _np.nonzero(x0 == 0)[0]
    lengths[act] = 4
    step = 4
    work = 0
    work_budget = _EXTEND_BUDGET * n
    while act.size and step <= MAX_MATCH:
        work += act.size
        if work > work_budget:
            return None
        x = w4[cp[act] + step] ^ w4[pp[act] + step]
        eq = x == 0
        neq = ~eq
        failed = act[neq]
        if failed.size:
            xf = x[neq]
            lengths[failed] = (
                step + (xf <= 0xFFFFFF) + (xf <= 0xFFFF) + (xf <= 0xFF)
            )
        act = act[eq]
        step += 4
        lengths[act] = step
    _np.minimum(lengths, _np.minimum(ends[pp] - pp, MAX_MATCH), out=lengths)

    bl = _np.zeros(n, dtype=_np.int64)
    packed = _np.zeros(n, dtype=_np.int64)
    start = 0
    for part in p_parts:
        stop = start + len(part)
        if stop == start:
            start = stop
            continue
        pk = pp[start:stop]
        lk = lengths[start:stop]
        better = lk > bl[pk]
        widx = pk[better]
        lb = lk[better]
        bl[widx] = lb
        packed[widx] = (lb << 16) | (widx - cp[start:stop][better])
        start = stop
    return [
        packed[off[i] : off[i + 1]].astype(_np.int32).tolist()
        for i in range(len(buffers))
    ]


def _tokenize_precomputed(data: bytes, table: list[int], lazy: bool) -> list[int]:
    """Greedy/lazy parse over a precomputed packed best-match table."""
    out: list[int] = []
    append = out.append
    n = len(data)
    pos = 0
    while pos < n:
        tok = table[pos]
        if tok:
            if lazy and pos + 1 < n and (table[pos + 1] >> 16) > (tok >> 16):
                append(data[pos])
                pos += 1
                continue
            append(tok)
            pos += tok >> 16
        else:
            append(data[pos])
            pos += 1
    return out


def _tokenize_walker(data: bytes, max_chain: int, lazy: bool) -> list[int]:
    """Fused scalar tokenizer: match finder inlined, locals hoisted."""
    n = len(data)
    if _np is not None and n >= _NUMPY_MIN_BYTES:
        prev = _chains_numpy(data).tolist()
    else:
        prev = _chains_python(data)
    out: list[int] = []
    append = out.append
    n3 = n - MIN_MATCH

    def find(p: int) -> tuple[int, int]:
        if p > n3:
            return 0, 0
        limit = n - p
        if limit > MAX_MATCH:
            limit = MAX_MATCH
        best_len = MIN_MATCH - 1
        best_dist = 0
        cand = prev[p]
        low = p - WINDOW_SIZE
        if low < 0:
            low = 0
        chain = max_chain
        while cand >= low and chain > 0:
            # One-byte probe: a candidate that cannot extend past the
            # current best is rejected without a full comparison.
            if data[cand + best_len] == data[p + best_len]:
                length = 0
                while length + 64 <= limit and \
                        data[cand + length:cand + length + 64] == \
                        data[p + length:p + length + 64]:
                    length += 64
                while length < limit and data[cand + length] == data[p + length]:
                    length += 1
                if length > best_len:
                    best_len = length
                    best_dist = p - cand
                    if length >= limit:
                        break
            cand = prev[cand]
            chain -= 1
        if best_dist == 0:
            return 0, 0
        return best_len, best_dist

    pos = 0
    cached_pos = -1
    cached = (0, 0)
    while pos < n:
        if pos == cached_pos:
            length, dist = cached
        else:
            length, dist = find(pos)
        if length:
            if lazy and pos + 1 < n:
                nxt = find(pos + 1)
                if nxt[0] > length:
                    append(data[pos])
                    pos += 1
                    cached_pos = pos  # reuse the lookahead next iteration
                    cached = nxt
                    continue
            append((length << 16) | dist)
            pos += length
        else:
            append(data[pos])
            pos += 1
    return out


def tokenize_raw(
    data: bytes,
    *,
    max_chain: int = 64,
    lazy: bool = True,
) -> list[int]:
    """:func:`tokenize`, but returning packed int tokens.

    A literal is its byte value; a match packs as ``length << 16 |
    distance``.  This is the representation the gzip-like encoder consumes
    directly, skipping per-token dataclass construction on the hot path.
    """
    if max_chain < 1:
        raise ValueError(f"max_chain must be >= 1, got {max_chain}")
    n = len(data)
    if n == 0:
        return []
    if _np is not None and n >= _NUMPY_MIN_BYTES:
        table = _match_table_numpy(data, max_chain)
        if table is not None:
            return _tokenize_precomputed(data, table, lazy)
    return _tokenize_walker(data, max_chain, lazy)


def tokenize_batch(
    buffers: list[bytes],
    *,
    max_chain: int = 64,
    lazy: bool = True,
) -> list[list[int]]:
    """:func:`tokenize_raw` for several independent buffers in one pass.

    All match tables are built with one vectorized pass over the
    concatenated corpus (see the module docstring).  Falls back to the
    per-buffer kernels when numpy is unavailable, the corpus is small,
    or the batched table builder bails out — every path produces the
    identical per-buffer token streams.
    """
    if max_chain < 1:
        raise ValueError(f"max_chain must be >= 1, got {max_chain}")
    buffers = list(buffers)
    total = sum(len(b) for b in buffers)
    if _np is None or len(buffers) < 2 or total < _NUMPY_MIN_BYTES:
        return [tokenize_raw(b, max_chain=max_chain, lazy=lazy) for b in buffers]
    tables = _match_tables_batch(buffers, max_chain)
    if tables is None:
        return [tokenize_raw(b, max_chain=max_chain, lazy=lazy) for b in buffers]
    return [
        _tokenize_precomputed(b, t, lazy) for b, t in zip(buffers, tables)
    ]


def tokenize(
    data: bytes,
    *,
    max_chain: int = 64,
    lazy: bool = True,
) -> list[Token]:
    """Greedy/lazy LZSS parse of ``data``.

    ``max_chain`` bounds how many previous positions with the same 3-byte
    hash are probed per position (the compression-vs-speed lever, like
    deflate levels).  ``lazy`` enables one-step lazy matching: defer a match
    if the next position offers a strictly longer one.
    """
    return [
        Literal(t) if t < 256 else Match(t >> 16, t & 0xFFFF)
        for t in tokenize_raw(data, max_chain=max_chain, lazy=lazy)
    ]


def _extend_copy(out: bytearray, distance: int, length: int) -> None:
    """Append a back-reference copy, slice-based even when overlapping."""
    start = len(out) - distance
    if distance >= length:
        out += out[start : start + length]
    else:
        # Overlapping copy: the source repeats with period ``distance``.
        reps = length // distance + 1
        out += (out[start:] * reps)[:length]


def detokenize(tokens: Iterable[Token]) -> bytes:
    """Reconstruct the original bytes from a token stream."""
    out = bytearray()
    for tok in tokens:
        if isinstance(tok, Literal):
            out.append(tok.byte)
        elif isinstance(tok, Match):
            if tok.distance > len(out):
                raise LZError(
                    f"match distance {tok.distance} exceeds output length {len(out)}"
                )
            _extend_copy(out, tok.distance, tok.length)
        else:
            raise LZError(f"unknown token type: {type(tok)!r}")
    return bytes(out)


def detokenize_raw(tokens: Iterable[int]) -> bytes:
    """Reconstruct bytes from packed int tokens (see :func:`tokenize_raw`)."""
    out = bytearray()
    append = out.append
    for tok in tokens:
        if tok < 256:
            append(tok)
        else:
            distance = tok & 0xFFFF
            if distance > len(out):
                raise LZError(
                    f"match distance {distance} exceeds output length {len(out)}"
                )
            _extend_copy(out, distance, tok >> 16)
    return bytes(out)
