"""LZSS (LZ77-family) match finding and tokenization.

The Gzip PAD's algorithmic core: a sliding-window dictionary coder with a
hash-chain match finder, the same family as zlib's deflate.  Output is a
token stream of literals and (length, distance) copies, later entropy-coded
by the Huffman stage.

Parameters mirror deflate: window up to 32 KiB, match lengths 3..258.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

__all__ = ["Literal", "Match", "Token", "tokenize", "detokenize", "LZError",
           "MIN_MATCH", "MAX_MATCH", "WINDOW_SIZE"]

MIN_MATCH = 3
MAX_MATCH = 258
WINDOW_SIZE = 32 * 1024
_HASH_BITS = 15
_HASH_SIZE = 1 << _HASH_BITS
_HASH_MASK = _HASH_SIZE - 1


class LZError(Exception):
    """Raised when a token stream is internally inconsistent."""


@dataclass(frozen=True)
class Literal:
    byte: int

    def __post_init__(self) -> None:
        if not 0 <= self.byte <= 255:
            raise LZError(f"literal out of range: {self.byte}")


@dataclass(frozen=True)
class Match:
    length: int
    distance: int

    def __post_init__(self) -> None:
        if not MIN_MATCH <= self.length <= MAX_MATCH:
            raise LZError(f"match length out of range: {self.length}")
        if not 1 <= self.distance <= WINDOW_SIZE:
            raise LZError(f"match distance out of range: {self.distance}")


Token = Union[Literal, Match]


def _hash3(data: bytes, pos: int) -> int:
    return ((data[pos] << 10) ^ (data[pos + 1] << 5) ^ data[pos + 2]) & _HASH_MASK


def tokenize(
    data: bytes,
    *,
    max_chain: int = 64,
    lazy: bool = True,
) -> list[Token]:
    """Greedy/lazy LZSS parse of ``data``.

    ``max_chain`` bounds how many previous positions with the same 3-byte
    hash are probed per position (the compression-vs-speed lever, like
    deflate levels).  ``lazy`` enables one-step lazy matching: defer a match
    if the next position offers a strictly longer one.
    """
    if max_chain < 1:
        raise ValueError(f"max_chain must be >= 1, got {max_chain}")
    n = len(data)
    tokens: list[Token] = []
    if n == 0:
        return tokens

    head = [-1] * _HASH_SIZE          # hash -> most recent position
    prev = [-1] * n                   # position -> previous same-hash position

    def insert(pos: int) -> None:
        if pos + MIN_MATCH <= n:
            h = _hash3(data, pos)
            prev[pos] = head[h]
            head[h] = pos

    def find_match(pos: int) -> tuple[int, int]:
        """Best (length, distance) at ``pos``, or (0, 0)."""
        if pos + MIN_MATCH > n:
            return (0, 0)
        limit = min(MAX_MATCH, n - pos)
        best_len = MIN_MATCH - 1
        best_dist = 0
        candidate = head[_hash3(data, pos)]
        chain = max_chain
        lo = pos - WINDOW_SIZE
        while candidate >= 0 and candidate >= lo and chain > 0:
            if candidate < pos:
                length = 0
                while (
                    length < limit
                    and data[candidate + length] == data[pos + length]
                ):
                    length += 1
                if length > best_len:
                    best_len = length
                    best_dist = pos - candidate
                    if length >= limit:
                        break
            candidate = prev[candidate]
            chain -= 1
        if best_dist == 0:
            return (0, 0)
        return (best_len, best_dist)

    pos = 0
    while pos < n:
        length, dist = find_match(pos)
        if length >= MIN_MATCH:
            if lazy and pos + 1 < n:
                insert(pos)
                nlen, ndist = find_match(pos + 1)
                if nlen > length:
                    # Defer: emit a literal, take the better match next loop.
                    tokens.append(Literal(data[pos]))
                    pos += 1
                    continue
                # Keep current match; positions inside it still enter the
                # dictionary so later matches can reference them.
                tokens.append(Match(length, dist))
                for p in range(pos + 1, pos + length):
                    insert(p)
                pos += length
                continue
            tokens.append(Match(length, dist))
            for p in range(pos, pos + length):
                insert(p)
            pos += length
        else:
            insert(pos)
            tokens.append(Literal(data[pos]))
            pos += 1
    return tokens


def detokenize(tokens: Iterable[Token]) -> bytes:
    """Reconstruct the original bytes from a token stream."""
    out = bytearray()
    for tok in tokens:
        if isinstance(tok, Literal):
            out.append(tok.byte)
        elif isinstance(tok, Match):
            start = len(out) - tok.distance
            if start < 0:
                raise LZError(
                    f"match distance {tok.distance} exceeds output length {len(out)}"
                )
            # Overlapping copies (distance < length) must copy byte-by-byte.
            for i in range(tok.length):
                out.append(out[start + i])
        else:
            raise LZError(f"unknown token type: {type(tok)!r}")
    return bytes(out)
