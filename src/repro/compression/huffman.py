"""Canonical Huffman coding.

Builds optimal prefix codes from symbol frequencies (package-merge length
limiting keeps every code <= ``max_bits``), converts them to canonical form
so only the code *lengths* need shipping, and encodes/decodes symbol
sequences against a :class:`BitWriter`/:class:`BitReader`.
"""

from __future__ import annotations

import functools
import heapq
from dataclasses import dataclass
from typing import Sequence

from .bitio import BitReader, BitWriter, BitstreamError, reverse_bits

__all__ = ["HuffmanError", "CanonicalCode", "code_lengths_from_freqs"]

# Width of the one-shot decode lookup table.  Codes no longer than this
# decode in a single peek+skip; longer ones fall back to the bit-at-a-time
# walk (rare: canonical codes put frequent symbols in short codes).
_LUT_MAX_BITS = 11


class HuffmanError(Exception):
    """Raised for invalid code tables or corrupt streams."""


def _tree_code_lengths(freqs: dict[int, int]) -> dict[int, int]:
    """Unrestricted Huffman code lengths via the classic heap algorithm."""
    heap: list[tuple[int, int, tuple[int, ...]]] = []
    tie = 0
    for sym, f in sorted(freqs.items()):
        heap.append((f, tie, (sym,)))
        tie += 1
    heapq.heapify(heap)
    lengths = {sym: 0 for sym in freqs}
    if len(heap) == 1:
        # A single distinct symbol still needs one bit on the wire.
        only = next(iter(freqs))
        return {only: 1}
    while len(heap) > 1:
        f1, _, s1 = heapq.heappop(heap)
        f2, _, s2 = heapq.heappop(heap)
        for sym in s1 + s2:
            lengths[sym] += 1
        heapq.heappush(heap, (f1 + f2, tie, s1 + s2))
        tie += 1
    return lengths


def code_lengths_from_freqs(
    freqs: dict[int, int], max_bits: int = 15
) -> dict[int, int]:
    """Optimal (length-limited) code lengths for the given frequencies.

    If the unrestricted Huffman tree exceeds ``max_bits``, lengths are
    rebalanced with the standard overflow-repair used by zlib: repeatedly
    shorten an over-long code by lengthening a shorter one, preserving the
    Kraft inequality.
    """
    if not freqs:
        raise HuffmanError("cannot build a code for an empty alphabet")
    if any(f <= 0 for f in freqs.values()):
        raise HuffmanError("frequencies must be positive")
    if max_bits < 1:
        raise HuffmanError(f"max_bits must be >= 1, got {max_bits}")
    if len(freqs) > (1 << max_bits):
        raise HuffmanError(
            f"{len(freqs)} symbols cannot fit in {max_bits}-bit codes"
        )
    lengths = _tree_code_lengths(freqs)
    if max(lengths.values()) <= max_bits:
        return lengths

    # Overflow repair: clamp, then fix Kraft sum K = sum(2^-len) to 1.
    for sym in lengths:
        if lengths[sym] > max_bits:
            lengths[sym] = max_bits
    # Work in units of 2^-max_bits so everything is integral.
    kraft = sum(1 << (max_bits - l) for l in lengths.values())
    budget = 1 << max_bits
    # Lengthen the cheapest (least frequent) codes until the Kraft sum fits.
    by_freq = sorted(lengths, key=lambda s: (freqs[s], s))
    while kraft > budget:
        for sym in by_freq:
            if lengths[sym] < max_bits:
                kraft -= 1 << (max_bits - lengths[sym] - 1)
                lengths[sym] += 1
                break
        else:  # pragma: no cover - unreachable given the size check above
            raise HuffmanError("cannot satisfy Kraft inequality")
    # Tighten: shorten codes where there is slack (keeps optimality close).
    improved = True
    while improved:
        improved = False
        for sym in sorted(lengths, key=lambda s: (-freqs[s], s)):
            if lengths[sym] > 1:
                gain = 1 << (max_bits - lengths[sym])
                if kraft + gain <= budget:
                    kraft += gain
                    lengths[sym] -= 1
                    improved = True
    return lengths


@functools.lru_cache(maxsize=256)
def _assignment(lengths: tuple[int, ...]) -> dict[int, tuple[int, int]]:
    """symbol -> (code, length) in canonical order.  Treated as immutable."""
    used = sorted((l, s) for s, l in enumerate(lengths) if l > 0)
    codes: dict[int, tuple[int, int]] = {}
    code = 0
    prev_len = used[0][0]
    for length, sym in used:
        code <<= length - prev_len
        codes[sym] = (code, length)
        code += 1
        prev_len = length
    return codes


@functools.lru_cache(maxsize=256)
def _decoder_map(lengths: tuple[int, ...]) -> dict[tuple[int, int], int]:
    """(code, length) -> symbol, for the bit-at-a-time fallback."""
    return {cl: sym for sym, cl in _assignment(lengths).items()}


@functools.lru_cache(maxsize=256)
def _fast_encoder(lengths: tuple[int, ...]):
    """Per-symbol (bit-reversed code, length), or None for unused symbols.

    LSB-first bit order means writing the reversed code with ``write_bits``
    equals writing the canonical code MSB-first, so encoding one symbol is
    a single accumulator update instead of a per-bit loop.
    """
    table: list[tuple[int, int] | None] = [None] * len(lengths)
    for sym, (code, length) in _assignment(lengths).items():
        table[sym] = (reverse_bits(code, length), length)
    return tuple(table)


@functools.lru_cache(maxsize=256)
def _decode_lut(lengths: tuple[int, ...]):
    """(table, table_bits, max_len) one-shot decode table.

    ``table[next_bits]`` holds ``length << 16 | symbol`` for every
    ``table_bits``-wide window whose prefix is a code of ``length`` bits
    (0 marks codes longer than the table, resolved by the fallback walk).
    """
    max_len = max(lengths)
    table_bits = min(max_len, _LUT_MAX_BITS)
    table = [0] * (1 << table_bits)
    step_total = 1 << table_bits
    for sym, (code, length) in _assignment(lengths).items():
        if length <= table_bits:
            rev = reverse_bits(code, length)
            packed = (length << 16) | sym
            for idx in range(rev, step_total, 1 << length):
                table[idx] = packed
    return table, table_bits, max_len


@dataclass(frozen=True)
class CanonicalCode:
    """A canonical Huffman code over symbols ``0..alphabet_size-1``.

    ``lengths[sym]`` is the code length in bits, 0 meaning the symbol does
    not occur.  Codes are assigned in (length, symbol) order, the canonical
    convention, so the lengths array fully determines the code.
    """

    lengths: tuple[int, ...]

    @classmethod
    def from_freqs(
        cls, freqs: dict[int, int], alphabet_size: int, max_bits: int = 15
    ) -> "CanonicalCode":
        if any(not 0 <= s < alphabet_size for s in freqs):
            raise HuffmanError("symbol outside alphabet")
        lens = code_lengths_from_freqs(freqs, max_bits=max_bits)
        arr = [0] * alphabet_size
        for sym, l in lens.items():
            arr[sym] = l
        return cls(tuple(arr))

    def __post_init__(self) -> None:
        used = [(l, s) for s, l in enumerate(self.lengths) if l > 0]
        if not used:
            raise HuffmanError("code has no symbols")
        # Kraft check: canonical assignment must not overflow.
        max_len = max(l for l, _ in used)
        kraft = sum(1 << (max_len - l) for l, _ in used)
        if kraft > (1 << max_len):
            raise HuffmanError("code lengths violate the Kraft inequality")

    def _assign(self) -> dict[int, tuple[int, int]]:
        """symbol -> (code, length), canonical order."""
        return dict(_assignment(self.lengths))

    def encoder(self) -> dict[int, tuple[int, int]]:
        return dict(_assignment(self.lengths))

    def decoder(self) -> dict[tuple[int, int], int]:
        """(code, length) -> symbol map for bit-at-a-time decoding."""
        return dict(_decoder_map(self.lengths))

    # -- stream helpers ------------------------------------------------------

    def encode_symbols(self, symbols: Sequence[int], writer: BitWriter) -> None:
        enc = _fast_encoder(self.lengths)
        size = len(enc)
        write = writer.write_bits
        for sym in symbols:
            entry = enc[sym] if 0 <= sym < size else None
            if entry is None:
                raise HuffmanError(f"symbol {sym} has no code")
            write(entry[0], entry[1])

    def _decode_slow(self, reader: BitReader, dec, max_len: int) -> int:
        code = 0
        length = 0
        while length <= max_len:
            try:
                code = (code << 1) | reader.read_bit()
            except BitstreamError:
                raise HuffmanError("bitstream ended mid-symbol") from None
            length += 1
            sym = dec.get((code, length))
            if sym is not None:
                return sym
        raise HuffmanError("invalid Huffman code in stream")

    def decode_symbol(self, reader: BitReader, _dec=None) -> int:
        table, table_bits, max_len = _decode_lut(self.lengths)
        peek = getattr(reader, "peek_bits", None)
        if peek is not None:
            window = peek(table_bits)
            if window is not None:
                entry = table[window]
                if entry:
                    reader.skip_bits(entry >> 16)
                    return entry & 0xFFFF
        # Long code, short tail, or a reader without peek support.
        dec = _dec if _dec is not None else _decoder_map(self.lengths)
        return self._decode_slow(reader, dec, max_len)

    def decode_symbols(self, reader: BitReader, count: int) -> list[int]:
        table, table_bits, max_len = _decode_lut(self.lengths)
        peek = getattr(reader, "peek_bits", None)
        if peek is None:
            dec = _decoder_map(self.lengths)
            return [self._decode_slow(reader, dec, max_len) for _ in range(count)]
        skip = reader.skip_bits
        dec = _decoder_map(self.lengths)
        out: list[int] = []
        append = out.append
        for _ in range(count):
            window = peek(table_bits)
            if window is not None:
                entry = table[window]
                if entry:
                    skip(entry >> 16)
                    append(entry & 0xFFFF)
                    continue
            append(self._decode_slow(reader, dec, max_len))
        return out
