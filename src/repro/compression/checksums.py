"""From-scratch checksums used by the compression container and chunk tables.

Adler-32 (as in zlib streams) and CRC-32 (IEEE 802.3 polynomial, as in gzip
members).  Both match the stdlib `zlib` implementations bit-for-bit — the
test suite cross-checks them — but are implemented here so the substrate has
no opaque dependencies.
"""

from __future__ import annotations

__all__ = ["adler32", "crc32"]

_ADLER_MOD = 65521  # largest prime < 2**16

# Process Adler-32 in blocks: the accumulators fit comfortably in Python
# ints, and deferring the modulo to once per block is the classic speed
# trick (5552 is the largest n such that 255*n*(n+1)/2 + (n+1)*(MOD-1)
# stays below 2**32).
_ADLER_NMAX = 5552


def adler32(data: bytes, value: int = 1) -> int:
    """Adler-32 of ``data``, continuing from ``value`` (default fresh)."""
    a = value & 0xFFFF
    b = (value >> 16) & 0xFFFF
    pos = 0
    n = len(data)
    while pos < n:
        end = min(pos + _ADLER_NMAX, n)
        for byte in data[pos:end]:
            a += byte
            b += a
        a %= _ADLER_MOD
        b %= _ADLER_MOD
        pos = end
    return (b << 16) | a


def _build_crc_table() -> tuple[int, ...]:
    poly = 0xEDB88320  # reflected IEEE polynomial
    table = []
    for i in range(256):
        crc = i
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ poly
            else:
                crc >>= 1
        table.append(crc)
    return tuple(table)


_CRC_TABLE = _build_crc_table()


def crc32(data: bytes, value: int = 0) -> int:
    """CRC-32 (gzip/zip flavour) of ``data``, continuing from ``value``."""
    crc = value ^ 0xFFFFFFFF
    table = _CRC_TABLE
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF
