"""Compression substrate: from-scratch LZSS + canonical Huffman.

Public surface: :func:`compress` / :func:`decompress` (deflate-lite
container), plus the building blocks (tokenizer, Huffman coder, checksums,
bit I/O) for tests and for protocol authors.
"""

from .bitio import BitReader, BitWriter, BitstreamError
from .checksums import adler32, crc32
from .dictionaries import (
    CONTENT_CLASSES,
    DictionaryError,
    HuffmanDictionary,
    builtin_dictionary,
    dictionary_by_id,
    train_dictionary,
)
from .gziplike import CompressionError, compress, compress_batch, decompress
from .huffman import CanonicalCode, HuffmanError, code_lengths_from_freqs
from .lz77 import (
    MAX_MATCH,
    MIN_MATCH,
    WINDOW_SIZE,
    Literal,
    LZError,
    Match,
    detokenize,
    tokenize,
)

__all__ = [
    "BitReader",
    "BitWriter",
    "BitstreamError",
    "adler32",
    "crc32",
    "CONTENT_CLASSES",
    "DictionaryError",
    "HuffmanDictionary",
    "builtin_dictionary",
    "dictionary_by_id",
    "train_dictionary",
    "CompressionError",
    "compress",
    "compress_batch",
    "decompress",
    "CanonicalCode",
    "HuffmanError",
    "code_lengths_from_freqs",
    "MAX_MATCH",
    "MIN_MATCH",
    "WINDOW_SIZE",
    "Literal",
    "LZError",
    "Match",
    "detokenize",
    "tokenize",
]
