""""Deflate-lite" container: LZSS tokens entropy-coded with canonical Huffman.

This is the Gzip PAD's wire format.  It follows DEFLATE's architecture —
one literal/length alphabet with extra bits, one distance alphabet with
extra bits, canonical code lengths shipped in the header — without being
bit-compatible with RFC 1951.  A ``backend="zlib"`` fast path produces the
same container around a real zlib stream for benchmarks where pure-Python
coding speed is not the object of study.

Container layout::

    magic   4 bytes  b"FZL1"
    flags   1 byte   bit0: 0=pure, 1=zlib payload; bit1: shared dictionary
    dictid  1 byte   only when bit1 is set: the shared-dictionary id
    origlen varint
    crc32   4 bytes  big-endian CRC-32 of the original data
    payload ...

An empty input is legal and produces an empty payload.

With ``dictionary=`` (a pre-trained
:class:`~repro.compression.dictionaries.HuffmanDictionary`), the pure
backend encodes tokens against the shared code tables instead of
building a per-message Huffman tree: the 158-byte code-length header
disappears and only the 1-byte dictionary id travels in-band.  The
decoder resolves the id through the deterministic built-in registry.
Without a dictionary the format is byte-for-byte the pre-dictionary one
(the golden wire vectors pin this), so dictionaries are a pure opt-in.

The pure-backend coder works on packed integer tokens end to end
(``tokenize_raw``/``detokenize_raw``): match lengths and distances map to
``(symbol, extra_value, extra_bits)`` through flat precomputed tables
(``_LEN_SYM``/``_DIST_SYM``), symbols map to pre-reversed Huffman codes, and
the bitstream is built in a single int accumulator flushed 32 bits at a
time.  Decoding drives the one-shot lookup tables from
:mod:`repro.compression.huffman` directly.  The wire format is byte-for-byte
identical to the token-object/per-bit implementation it replaced.
"""

from __future__ import annotations

import struct
import zlib as _zlib
from typing import Optional

from .bitio import BitReader, BitWriter, BitstreamError

# The container checksums with CRC-32.  Our from-scratch implementation in
# .checksums is bit-identical to zlib's (the test suite proves it); the hot
# path uses zlib's C implementation so container overhead doesn't distort
# protocol timing measurements.
from zlib import crc32
from .huffman import CanonicalCode, HuffmanError, _decode_lut, _fast_encoder
from .lz77 import (
    Literal,
    Match,
    Token,
    detokenize_raw,
    tokenize_batch,
    tokenize_raw,
)

__all__ = ["compress", "compress_batch", "decompress", "CompressionError",
           "MAGIC"]

MAGIC = b"FZL1"
_FLAG_ZLIB = 0x01
_FLAG_DICT = 0x02

_EOB = 256  # end-of-block symbol in the literal/length alphabet

# Deflate-style length codes: (base_length, extra_bits) for symbols 257..284,
# plus symbol 285 = length 258 exactly.
_LENGTH_TABLE: list[tuple[int, int]] = []


def _build_length_table() -> None:
    base = 3
    for extra in (0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2,
                  3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5):
        _LENGTH_TABLE.append((base, extra))
        base += 1 << extra
    _LENGTH_TABLE.append((258, 0))  # symbol 285


_build_length_table()
_LITLEN_ALPHABET = 257 + len(_LENGTH_TABLE)  # 286

# Deflate-style distance codes: 30 codes covering 1..32768.
_DIST_TABLE: list[tuple[int, int]] = []


def _build_dist_table() -> None:
    base = 1
    extras = [0, 0, 0, 0] + [e for e in range(1, 14) for _ in (0, 1)]
    for extra in extras:
        _DIST_TABLE.append((base, extra))
        base += 1 << extra


_build_dist_table()
_DIST_ALPHABET = len(_DIST_TABLE)  # 30

# Flat length/distance -> packed (symbol, extra_value, extra_bits) tables,
# replacing the reverse range scans on the hot encode path.
#   _LEN_SYM[length]    = symbol << 8 | extra_value << 3 | extra_bits
#   _DIST_SYM[distance] = symbol << 17 | extra_value << 4 | extra_bits
_LEN_SYM = [0] * 259
_DIST_SYM = [0] * 32769


def _build_sym_tables() -> None:
    for i, (base, extra) in enumerate(_LENGTH_TABLE[:-1]):  # symbols 257..284
        for l in range(base, min(base + (1 << extra), 259)):
            _LEN_SYM[l] = ((257 + i) << 8) | ((l - base) << 3) | extra
    _LEN_SYM[258] = 285 << 8  # symbol 285 encodes 258 with no extra bits
    for i, (base, extra) in enumerate(_DIST_TABLE):
        for d in range(base, min(base + (1 << extra), 32769)):
            _DIST_SYM[d] = (i << 17) | ((d - base) << 4) | extra


_build_sym_tables()


class CompressionError(Exception):
    """Raised on malformed containers or internal inconsistencies."""


def _length_symbol(length: int) -> tuple[int, int, int]:
    """(symbol, extra_value, extra_bits) for a match length."""
    if not 3 <= length <= 258:
        raise CompressionError(f"length {length} out of range")
    e = _LEN_SYM[length]
    return (e >> 8, (e >> 3) & 31, e & 7)


def _dist_symbol(distance: int) -> tuple[int, int, int]:
    """(symbol, extra_value, extra_bits) for a match distance."""
    if not 1 <= distance <= 32768:
        raise CompressionError(f"distance {distance} out of range")
    e = _DIST_SYM[distance]
    return (e >> 17, (e >> 4) & 0x1FFF, e & 15)


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise CompressionError("varint must be non-negative")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, pos: int) -> tuple[int, int]:
    value = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CompressionError("truncated varint")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift > 63:
            raise CompressionError("varint too long")


def _write_lengths(writer: BitWriter, lengths: tuple[int, ...]) -> None:
    for l in lengths:
        if l > 15:
            raise CompressionError(f"code length {l} exceeds 15")
        writer.write_bits(l, 4)


def _read_lengths(reader: BitReader, count: int) -> tuple[int, ...]:
    return tuple(reader.read_bits(4) for _ in range(count))


def _encode_tokens_raw(
    raw: list[int],
    codes: Optional[tuple[tuple[int, ...], tuple[int, ...]]] = None,
) -> bytes:
    """Entropy-code packed tokens (literal byte, or ``length<<16|distance``).

    Single fused pass per stage: flat-table symbol stats, then one
    accumulator loop emitting pre-reversed codes and extra bits, flushed 32
    bits at a time.  The 316 header nibbles occupy exactly 158 bytes, so the
    token bitstream starts byte-aligned and the header is written directly.

    With ``codes`` (shared-dictionary ``(lit_lengths, dist_lengths)``),
    the per-message statistics pass, tree construction, and code-length
    header are all skipped: the bitstream starts at byte 0 and uses the
    shared tables (every symbol has a code, so validation moves inline).
    """
    len_sym = _LEN_SYM
    dist_sym = _DIST_SYM
    if codes is not None:
        lit_lengths, dist_lengths = codes
        out = bytearray()
        for tok in raw:
            if tok >= 256:
                length = tok >> 16
                distance = tok & 0xFFFF
                if not 3 <= length <= 258:
                    raise CompressionError(f"length {length} out of range")
                if not 1 <= distance <= 32768:
                    raise CompressionError(f"distance {distance} out of range")
    else:
        # Pass 1: symbol statistics (and range validation).
        lit_counts = [0] * _LITLEN_ALPHABET
        dist_counts = [0] * _DIST_ALPHABET
        for tok in raw:
            if tok < 256:
                lit_counts[tok] += 1
            else:
                length = tok >> 16
                distance = tok & 0xFFFF
                if not 3 <= length <= 258:
                    raise CompressionError(f"length {length} out of range")
                if not 1 <= distance <= 32768:
                    raise CompressionError(f"distance {distance} out of range")
                lit_counts[len_sym[length] >> 8] += 1
                dist_counts[dist_sym[distance] >> 17] += 1
        lit_counts[_EOB] += 1
        lit_freqs = {s: c for s, c in enumerate(lit_counts) if c}
        dist_freqs = {s: c for s, c in enumerate(dist_counts) if c}
        lit_code = CanonicalCode.from_freqs(lit_freqs, _LITLEN_ALPHABET)
        # The distance alphabet may be empty (no matches at all); reserve a
        # one-symbol placeholder code so the header stays fixed-shape.
        dist_code = CanonicalCode.from_freqs(dist_freqs or {0: 1}, _DIST_ALPHABET)
        lit_lengths, dist_lengths = lit_code.lengths, dist_code.lengths

        lens = lit_lengths + dist_lengths
        out = bytearray()
        for i in range(0, len(lens), 2):
            lo, hi = lens[i], lens[i + 1]
            if lo > 15 or hi > 15:
                raise CompressionError(
                    f"code length {lo if lo > 15 else hi} exceeds 15"
                )
            out.append(lo | (hi << 4))

    lit_enc = _fast_encoder(lit_lengths)
    dist_enc = _fast_encoder(dist_lengths)
    acc = 0
    nb = 0
    for tok in raw:
        if tok < 256:
            code, clen = lit_enc[tok]
            acc |= code << nb
            nb += clen
        else:
            e = len_sym[tok >> 16]
            code, clen = lit_enc[e >> 8]
            acc |= code << nb
            nb += clen
            ebits = e & 7
            if ebits:
                acc |= ((e >> 3) & 31) << nb
                nb += ebits
            d = dist_sym[tok & 0xFFFF]
            code, clen = dist_enc[d >> 17]
            acc |= code << nb
            nb += clen
            debits = d & 15
            if debits:
                acc |= ((d >> 4) & 0x1FFF) << nb
                nb += debits
        # A match emits up to 48 bits (15+5+15+13), so drain every token.
        while nb >= 32:
            out += (acc & 0xFFFFFFFF).to_bytes(4, "little")
            acc >>= 32
            nb -= 32
    code, clen = lit_enc[_EOB]
    acc |= code << nb
    nb += clen
    while nb > 0:
        out.append(acc & 0xFF)
        acc >>= 8
        nb -= 8
    return bytes(out)


def _decode_tokens_raw(
    payload: bytes,
    codes: Optional[tuple[tuple[int, ...], tuple[int, ...]]] = None,
) -> list[int]:
    """Inverse of :func:`_encode_tokens_raw`: payload -> packed tokens.

    ``codes`` supplies shared-dictionary tables; without it the code
    lengths come from the per-message header at the front of ``payload``.
    """
    reader = BitReader(payload)
    try:
        if codes is not None:
            lit_code = CanonicalCode(codes[0])
            dist_code = CanonicalCode(codes[1])
        else:
            lit_code = CanonicalCode(_read_lengths(reader, _LITLEN_ALPHABET))
            dist_code = CanonicalCode(_read_lengths(reader, _DIST_ALPHABET))
    except HuffmanError as exc:
        raise CompressionError(f"bad code table: {exc}") from exc
    except BitstreamError:
        raise CompressionError("bad code table: truncated header") from None
    lit_lut, lit_bits, lit_max = _decode_lut(lit_code.lengths)
    dist_lut, dist_bits, dist_max = _decode_lut(dist_code.lengths)
    lit_dec = lit_code.decoder()
    dist_dec = dist_code.decoder()
    peek = reader.peek_bits
    skip = reader.skip_bits
    read_bits = reader.read_bits
    len_table = _LENGTH_TABLE
    num_len = len(len_table)
    d_table = _DIST_TABLE
    raw: list[int] = []
    append = raw.append
    while True:
        window = peek(lit_bits)
        entry = lit_lut[window] if window is not None else 0
        if entry:
            skip(entry >> 16)
            sym = entry & 0xFFFF
        else:
            # Long code or short tail: bit-at-a-time against the full map.
            try:
                sym = lit_code._decode_slow(reader, lit_dec, lit_max)
            except HuffmanError as exc:
                raise CompressionError(f"corrupt stream: {exc}") from exc
        if sym < 256:
            append(sym)
            continue
        if sym == _EOB:
            return raw
        idx = sym - 257
        if idx >= num_len:
            raise CompressionError(f"invalid length symbol {sym}")
        base, extra = len_table[idx]
        length = base + (read_bits(extra) if extra else 0)
        window = peek(dist_bits)
        entry = dist_lut[window] if window is not None else 0
        if entry:
            skip(entry >> 16)
            dsym = entry & 0xFFFF
        else:
            try:
                dsym = dist_code._decode_slow(reader, dist_dec, dist_max)
            except HuffmanError as exc:
                raise CompressionError(f"corrupt distance: {exc}") from exc
        dbase, dextra = d_table[dsym]
        distance = dbase + (read_bits(dextra) if dextra else 0)
        append((length << 16) | distance)


def _encode_tokens(tokens: list[Token]) -> bytes:
    """Token-object front end for :func:`_encode_tokens_raw`."""
    raw: list[int] = []
    append = raw.append
    for tok in tokens:
        if isinstance(tok, Literal):
            append(tok.byte)
        else:
            if not 3 <= tok.length <= 258:
                raise CompressionError(f"length {tok.length} out of range")
            if not 1 <= tok.distance <= 32768:
                raise CompressionError(f"distance {tok.distance} out of range")
            append((tok.length << 16) | tok.distance)
    return _encode_tokens_raw(raw)


def _decode_tokens(payload: bytes) -> list[Token]:
    """Token-object front end for :func:`_decode_tokens_raw`."""
    return [
        Literal(t) if t < 256 else Match(t >> 16, t & 0xFFFF)
        for t in _decode_tokens_raw(payload)
    ]


def compress(
    data: bytes,
    *,
    backend: str = "pure",
    max_chain: int = 64,
    dictionary=None,
) -> bytes:
    """Compress ``data`` into a deflate-lite container.

    ``backend="pure"`` uses the from-scratch LZSS+Huffman pipeline;
    ``backend="zlib"`` wraps a zlib stream in the same container (fast path
    for large benchmark corpora).  ``dictionary`` (a
    :class:`~repro.compression.dictionaries.HuffmanDictionary`) switches
    the pure backend to shared code tables: no per-message tree, no
    158-byte header, 1-byte dictionary id in-band instead.
    """
    _check_backend(backend, dictionary)
    header = _container_header(data, backend, dictionary)
    if not data:
        return bytes(header)
    if backend == "zlib":
        payload = _zlib.compress(data, 6)
    elif dictionary is not None:
        payload = _encode_tokens_raw(
            tokenize_raw(data, max_chain=max_chain),
            (dictionary.lit_lengths, dictionary.dist_lengths),
        )
    else:
        payload = _encode_tokens_raw(tokenize_raw(data, max_chain=max_chain))
    return bytes(header) + payload


def _check_backend(backend: str, dictionary) -> None:
    if backend not in ("pure", "zlib"):
        raise ValueError(f"unknown backend: {backend!r}")
    if dictionary is not None and backend != "pure":
        raise ValueError("shared dictionaries require the pure backend")


def _container_header(data: bytes, backend: str, dictionary) -> bytearray:
    header = bytearray(MAGIC)
    if dictionary is not None:
        header.append(_FLAG_DICT)
        header.append(dictionary.dict_id)
    else:
        header.append(_FLAG_ZLIB if backend == "zlib" else 0)
    _write_varint(header, len(data))
    header += struct.pack(">I", crc32(data))
    return header


def compress_batch(
    datas: list[bytes],
    *,
    backend: str = "pure",
    max_chain: int = 64,
    dictionary=None,
) -> list[bytes]:
    """:func:`compress` for several payloads in one batched pass.

    The pure backend tokenizes every non-empty payload through
    :func:`~repro.compression.lz77.tokenize_batch`, amortizing the
    vectorized match-table build across the whole batch; entropy coding
    and container framing stay per-payload.  Every container is
    byte-identical to calling :func:`compress` on that payload alone.
    """
    _check_backend(backend, dictionary)
    datas = list(datas)
    out = [bytes(_container_header(d, backend, dictionary)) for d in datas]
    if backend == "zlib":
        return [
            h + _zlib.compress(d, 6) if d else h
            for h, d in zip(out, datas)
        ]
    codes = (
        (dictionary.lit_lengths, dictionary.dist_lengths)
        if dictionary is not None
        else None
    )
    live = [i for i, d in enumerate(datas) if d]
    tokens = tokenize_batch([datas[i] for i in live], max_chain=max_chain)
    for i, raw in zip(live, tokens):
        out[i] += _encode_tokens_raw(raw, codes)
    return out


def _resolve_wire_dictionary(dict_id: int):
    """In-band id -> dictionary via the deterministic built-in registry."""
    # Imported lazily: dictionaries trains from the workload generators,
    # which must not load just to decompress a dictionary-less container.
    from .dictionaries import DictionaryError, dictionary_by_id

    try:
        return dictionary_by_id(dict_id)
    except DictionaryError as exc:
        raise CompressionError(str(exc)) from exc


def decompress(blob: bytes) -> bytes:
    """Decompress a deflate-lite container, verifying length and CRC."""
    if len(blob) < len(MAGIC) + 1:
        raise CompressionError("container too short")
    if blob[: len(MAGIC)] != MAGIC:
        raise CompressionError("bad magic")
    flags = blob[len(MAGIC)]
    pos = len(MAGIC) + 1
    dictionary = None
    if flags & _FLAG_DICT:
        if flags & _FLAG_ZLIB:
            raise CompressionError("dictionary flag on a zlib payload")
        if pos >= len(blob):
            raise CompressionError("truncated header")
        dictionary = _resolve_wire_dictionary(blob[pos])
        pos += 1
    origlen, pos = _read_varint(blob, pos)
    if pos + 4 > len(blob):
        raise CompressionError("truncated header")
    (expected_crc,) = struct.unpack(">I", blob[pos : pos + 4])
    payload = blob[pos + 4 :]
    if origlen == 0:
        data = b""
    elif flags & _FLAG_ZLIB:
        try:
            data = _zlib.decompress(payload)
        except _zlib.error as exc:
            raise CompressionError(f"zlib payload corrupt: {exc}") from exc
    elif dictionary is not None:
        data = detokenize_raw(
            _decode_tokens_raw(
                payload, (dictionary.lit_lengths, dictionary.dist_lengths)
            )
        )
    else:
        data = detokenize_raw(_decode_tokens_raw(payload))
    if len(data) != origlen:
        raise CompressionError(
            f"length mismatch: header says {origlen}, got {len(data)}"
        )
    if crc32(data) != expected_crc:
        raise CompressionError("CRC mismatch")
    return data
