""""Deflate-lite" container: LZSS tokens entropy-coded with canonical Huffman.

This is the Gzip PAD's wire format.  It follows DEFLATE's architecture —
one literal/length alphabet with extra bits, one distance alphabet with
extra bits, canonical code lengths shipped in the header — without being
bit-compatible with RFC 1951.  A ``backend="zlib"`` fast path produces the
same container around a real zlib stream for benchmarks where pure-Python
coding speed is not the object of study.

Container layout::

    magic   4 bytes  b"FZL1"
    flags   1 byte   bit0: 0=pure, 1=zlib payload
    origlen varint
    crc32   4 bytes  big-endian CRC-32 of the original data
    payload ...

An empty input is legal and produces an empty payload.
"""

from __future__ import annotations

import struct
import zlib as _zlib
from collections import Counter

from .bitio import BitReader, BitWriter

# The container checksums with CRC-32.  Our from-scratch implementation in
# .checksums is bit-identical to zlib's (the test suite proves it); the hot
# path uses zlib's C implementation so container overhead doesn't distort
# protocol timing measurements.
from zlib import crc32
from .huffman import CanonicalCode, HuffmanError
from .lz77 import Literal, Match, Token, detokenize, tokenize

__all__ = ["compress", "decompress", "CompressionError", "MAGIC"]

MAGIC = b"FZL1"
_FLAG_ZLIB = 0x01

_EOB = 256  # end-of-block symbol in the literal/length alphabet

# Deflate-style length codes: (base_length, extra_bits) for symbols 257..284,
# plus symbol 285 = length 258 exactly.
_LENGTH_TABLE: list[tuple[int, int]] = []


def _build_length_table() -> None:
    base = 3
    for extra in (0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2,
                  3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5):
        _LENGTH_TABLE.append((base, extra))
        base += 1 << extra
    _LENGTH_TABLE.append((258, 0))  # symbol 285


_build_length_table()
_LITLEN_ALPHABET = 257 + len(_LENGTH_TABLE)  # 286

# Deflate-style distance codes: 30 codes covering 1..32768.
_DIST_TABLE: list[tuple[int, int]] = []


def _build_dist_table() -> None:
    base = 1
    extras = [0, 0, 0, 0] + [e for e in range(1, 14) for _ in (0, 1)]
    for extra in extras:
        _DIST_TABLE.append((base, extra))
        base += 1 << extra


_build_dist_table()
_DIST_ALPHABET = len(_DIST_TABLE)  # 30


class CompressionError(Exception):
    """Raised on malformed containers or internal inconsistencies."""


def _length_symbol(length: int) -> tuple[int, int, int]:
    """(symbol, extra_value, extra_bits) for a match length."""
    if length == 258:
        return (257 + len(_LENGTH_TABLE) - 1, 0, 0)
    for i in range(len(_LENGTH_TABLE) - 1, -1, -1):
        base, extra = _LENGTH_TABLE[i]
        if base <= length < base + (1 << extra):
            return (257 + i, length - base, extra)
    raise CompressionError(f"length {length} out of range")


def _dist_symbol(distance: int) -> tuple[int, int, int]:
    """(symbol, extra_value, extra_bits) for a match distance."""
    for i in range(len(_DIST_TABLE) - 1, -1, -1):
        base, extra = _DIST_TABLE[i]
        if base <= distance < base + (1 << extra):
            return (i, distance - base, extra)
    raise CompressionError(f"distance {distance} out of range")


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise CompressionError("varint must be non-negative")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, pos: int) -> tuple[int, int]:
    value = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CompressionError("truncated varint")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift > 63:
            raise CompressionError("varint too long")


def _write_lengths(writer: BitWriter, lengths: tuple[int, ...]) -> None:
    for l in lengths:
        if l > 15:
            raise CompressionError(f"code length {l} exceeds 15")
        writer.write_bits(l, 4)


def _read_lengths(reader: BitReader, count: int) -> tuple[int, ...]:
    return tuple(reader.read_bits(4) for _ in range(count))


def _encode_tokens(tokens: list[Token]) -> bytes:
    # Pass 1: symbol statistics.
    lit_freqs: Counter[int] = Counter()
    dist_freqs: Counter[int] = Counter()
    for tok in tokens:
        if isinstance(tok, Literal):
            lit_freqs[tok.byte] += 1
        else:
            sym, _, _ = _length_symbol(tok.length)
            lit_freqs[sym] += 1
            dsym, _, _ = _dist_symbol(tok.distance)
            dist_freqs[dsym] += 1
    lit_freqs[_EOB] += 1
    lit_code = CanonicalCode.from_freqs(dict(lit_freqs), _LITLEN_ALPHABET)
    # The distance alphabet may be empty (no matches at all); reserve a
    # one-symbol placeholder code so the header stays fixed-shape.
    if dist_freqs:
        dist_code = CanonicalCode.from_freqs(dict(dist_freqs), _DIST_ALPHABET)
    else:
        dist_code = CanonicalCode.from_freqs({0: 1}, _DIST_ALPHABET)

    writer = BitWriter()
    _write_lengths(writer, lit_code.lengths)
    _write_lengths(writer, dist_code.lengths)

    lit_enc = lit_code.encoder()
    dist_enc = dist_code.encoder()
    for tok in tokens:
        if isinstance(tok, Literal):
            code, length = lit_enc[tok.byte]
            writer.write_code(code, length)
        else:
            sym, extra_val, extra_bits = _length_symbol(tok.length)
            code, length = lit_enc[sym]
            writer.write_code(code, length)
            if extra_bits:
                writer.write_bits(extra_val, extra_bits)
            dsym, dextra_val, dextra_bits = _dist_symbol(tok.distance)
            code, length = dist_enc[dsym]
            writer.write_code(code, length)
            if dextra_bits:
                writer.write_bits(dextra_val, dextra_bits)
    code, length = lit_enc[_EOB]
    writer.write_code(code, length)
    return writer.getvalue()


def _decode_tokens(payload: bytes) -> list[Token]:
    reader = BitReader(payload)
    try:
        lit_code = CanonicalCode(_read_lengths(reader, _LITLEN_ALPHABET))
        dist_code = CanonicalCode(_read_lengths(reader, _DIST_ALPHABET))
    except HuffmanError as exc:
        raise CompressionError(f"bad code table: {exc}") from exc
    lit_dec = lit_code.decoder()
    dist_dec = dist_code.decoder()
    tokens: list[Token] = []
    while True:
        try:
            sym = lit_code.decode_symbol(reader, lit_dec)
        except HuffmanError as exc:
            raise CompressionError(f"corrupt stream: {exc}") from exc
        if sym == _EOB:
            return tokens
        if sym < 256:
            tokens.append(Literal(sym))
            continue
        idx = sym - 257
        if idx >= len(_LENGTH_TABLE):
            raise CompressionError(f"invalid length symbol {sym}")
        base, extra = _LENGTH_TABLE[idx]
        length = base + (reader.read_bits(extra) if extra else 0)
        try:
            dsym = dist_code.decode_symbol(reader, dist_dec)
        except HuffmanError as exc:
            raise CompressionError(f"corrupt distance: {exc}") from exc
        dbase, dextra = _DIST_TABLE[dsym]
        distance = dbase + (reader.read_bits(dextra) if dextra else 0)
        tokens.append(Match(length, distance))


def compress(data: bytes, *, backend: str = "pure", max_chain: int = 64) -> bytes:
    """Compress ``data`` into a deflate-lite container.

    ``backend="pure"`` uses the from-scratch LZSS+Huffman pipeline;
    ``backend="zlib"`` wraps a zlib stream in the same container (fast path
    for large benchmark corpora).
    """
    if backend not in ("pure", "zlib"):
        raise ValueError(f"unknown backend: {backend!r}")
    header = bytearray(MAGIC)
    header.append(_FLAG_ZLIB if backend == "zlib" else 0)
    _write_varint(header, len(data))
    header += struct.pack(">I", crc32(data))
    if not data:
        return bytes(header)
    if backend == "zlib":
        payload = _zlib.compress(data, 6)
    else:
        payload = _encode_tokens(tokenize(data, max_chain=max_chain))
    return bytes(header) + payload


def decompress(blob: bytes) -> bytes:
    """Decompress a deflate-lite container, verifying length and CRC."""
    if len(blob) < len(MAGIC) + 1:
        raise CompressionError("container too short")
    if blob[: len(MAGIC)] != MAGIC:
        raise CompressionError("bad magic")
    flags = blob[len(MAGIC)]
    origlen, pos = _read_varint(blob, len(MAGIC) + 1)
    if pos + 4 > len(blob):
        raise CompressionError("truncated header")
    (expected_crc,) = struct.unpack(">I", blob[pos : pos + 4])
    payload = blob[pos + 4 :]
    if origlen == 0:
        data = b""
    elif flags & _FLAG_ZLIB:
        try:
            data = _zlib.decompress(payload)
        except _zlib.error as exc:
            raise CompressionError(f"zlib payload corrupt: {exc}") from exc
    else:
        data = detokenize(_decode_tokens(payload))
    if len(data) != origlen:
        raise CompressionError(
            f"length mismatch: header says {origlen}, got {len(data)}"
        )
    if crc32(data) != expected_crc:
        raise CompressionError("CRC mismatch")
    return data
