"""Bit-level I/O for the Huffman coder.

LSB-first bit order (as in DEFLATE): the first bit written occupies the
least-significant bit of the first byte.  Huffman codes are written
MSB-of-code-first via :meth:`BitWriter.write_code` so canonical codes sort
correctly.

The writer accumulates into a single int and flushes 32-bit chunks (LSB
first means little-endian byte order), so the per-call cost is a shift and
an or rather than a byte loop.  The reader exposes :meth:`BitReader.peek_bits`
/ :meth:`BitReader.skip_bits` so table-driven Huffman decoding can consume a
whole code in one step.
"""

from __future__ import annotations

__all__ = ["BitWriter", "BitReader", "BitstreamError"]


class BitstreamError(Exception):
    """Raised on reads past the end of the stream."""


def reverse_bits(code: int, length: int) -> int:
    """The low ``length`` bits of ``code``, reversed.

    Writing the reversed code LSB-first is identical to writing the
    original code MSB-first, which is what lets :meth:`BitWriter.write_code`
    collapse into a single :meth:`BitWriter.write_bits` call.
    """
    if length <= 0:
        return 0
    return int(format(code & ((1 << length) - 1), f"0{length}b")[::-1], 2)


class BitWriter:
    __slots__ = ("_buffer", "_acc", "_nbits")

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._acc = 0
        self._nbits = 0

    def write_bits(self, value: int, count: int) -> None:
        """Write ``count`` bits of ``value``, LSB first."""
        if count < 0:
            raise ValueError(f"negative bit count: {count}")
        if value < 0 or (count < value.bit_length()):
            raise ValueError(f"value {value} does not fit in {count} bits")
        self._acc |= value << self._nbits
        nbits = self._nbits + count
        if nbits >= 32:
            acc = self._acc
            buffer = self._buffer
            while nbits >= 32:
                buffer += (acc & 0xFFFFFFFF).to_bytes(4, "little")
                acc >>= 32
                nbits -= 32
            self._acc = acc
        self._nbits = nbits

    def write_code(self, code: int, length: int) -> None:
        """Write a Huffman code of ``length`` bits, MSB of the code first."""
        if length > 0:
            self.write_bits(reverse_bits(code, length), length)

    @property
    def bit_length(self) -> int:
        return len(self._buffer) * 8 + self._nbits

    def getvalue(self) -> bytes:
        """Flush (zero-padding the final partial byte) and return bytes."""
        out = bytearray(self._buffer)
        acc = self._acc
        nbits = self._nbits
        while nbits > 0:
            out.append(acc & 0xFF)
            acc >>= 8
            nbits -= 8
        return bytes(out)


class BitReader:
    __slots__ = ("_data", "_pos", "_acc", "_nbits")

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0
        self._acc = 0
        self._nbits = 0

    def read_bits(self, count: int) -> int:
        """Read ``count`` bits, LSB first (inverse of write_bits)."""
        if count < 0:
            raise ValueError(f"negative bit count: {count}")
        while self._nbits < count:
            if self._pos >= len(self._data):
                raise BitstreamError("read past end of bitstream")
            self._acc |= self._data[self._pos] << self._nbits
            self._pos += 1
            self._nbits += 8
        value = self._acc & ((1 << count) - 1)
        self._acc >>= count
        self._nbits -= count
        return value

    def read_bit(self) -> int:
        return self.read_bits(1)

    def peek_bits(self, count: int) -> int | None:
        """The next ``count`` bits without consuming, or None if the stream
        holds fewer (a shorter symbol may still be decodable bit-by-bit)."""
        while self._nbits < count:
            if self._pos >= len(self._data):
                return None
            self._acc |= self._data[self._pos] << self._nbits
            self._pos += 1
            self._nbits += 8
        return self._acc & ((1 << count) - 1)

    def skip_bits(self, count: int) -> None:
        """Consume ``count`` bits already buffered by :meth:`peek_bits`."""
        self._acc >>= count
        self._nbits -= count

    @property
    def bits_remaining(self) -> int:
        return (len(self._data) - self._pos) * 8 + self._nbits
