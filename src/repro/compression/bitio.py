"""Bit-level I/O for the Huffman coder.

LSB-first bit order (as in DEFLATE): the first bit written occupies the
least-significant bit of the first byte.  Huffman codes are written
MSB-of-code-first via :meth:`BitWriter.write_code` so canonical codes sort
correctly.
"""

from __future__ import annotations

__all__ = ["BitWriter", "BitReader", "BitstreamError"]


class BitstreamError(Exception):
    """Raised on reads past the end of the stream."""


class BitWriter:
    __slots__ = ("_buffer", "_acc", "_nbits")

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._acc = 0
        self._nbits = 0

    def write_bits(self, value: int, count: int) -> None:
        """Write ``count`` bits of ``value``, LSB first."""
        if count < 0:
            raise ValueError(f"negative bit count: {count}")
        if value < 0 or (count < value.bit_length()):
            raise ValueError(f"value {value} does not fit in {count} bits")
        self._acc |= value << self._nbits
        self._nbits += count
        while self._nbits >= 8:
            self._buffer.append(self._acc & 0xFF)
            self._acc >>= 8
            self._nbits -= 8

    def write_code(self, code: int, length: int) -> None:
        """Write a Huffman code of ``length`` bits, MSB of the code first."""
        for shift in range(length - 1, -1, -1):
            self.write_bits((code >> shift) & 1, 1)

    @property
    def bit_length(self) -> int:
        return len(self._buffer) * 8 + self._nbits

    def getvalue(self) -> bytes:
        """Flush (zero-padding the final partial byte) and return bytes."""
        out = bytearray(self._buffer)
        if self._nbits:
            out.append(self._acc & 0xFF)
        return bytes(out)


class BitReader:
    __slots__ = ("_data", "_pos", "_acc", "_nbits")

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0
        self._acc = 0
        self._nbits = 0

    def read_bits(self, count: int) -> int:
        """Read ``count`` bits, LSB first (inverse of write_bits)."""
        if count < 0:
            raise ValueError(f"negative bit count: {count}")
        while self._nbits < count:
            if self._pos >= len(self._data):
                raise BitstreamError("read past end of bitstream")
            self._acc |= self._data[self._pos] << self._nbits
            self._pos += 1
            self._nbits += 8
        value = self._acc & ((1 << count) - 1)
        self._acc >>= count
        self._nbits -= count
        return value

    def read_bit(self) -> int:
        return self.read_bits(1)

    @property
    def bits_remaining(self) -> int:
        return (len(self._data) - self._pos) * 8 + self._nbits
