"""Pre-trained canonical-Huffman dictionaries per content class.

The deflate-lite container ships a 158-byte code-length header and
builds a fresh Huffman tree for *every* message.  For the small
responses the serving path mostly emits (delta ops, short text parts),
that per-message tree construction dominates and the header can rival
the payload.  A :class:`HuffmanDictionary` is a pair of canonical code
tables trained **once** per content class on seeded sample corpora; a
message compressed against one carries only a 1-byte dictionary id
in-band (see :mod:`repro.compression.gziplike`), and both sides skip
the tree build entirely.

Determinism is load-bearing twice over: the same dictionary must
materialize in every process (kernel-pool workers spawn fresh and
re-train from scratch), and the cold path — ``dictionary=None`` — must
remain byte-identical to the pre-dictionary wire format, which the
golden wire vectors freeze.  Training therefore draws only on the
seeded workload generators and applies +1 smoothing to every symbol of
both alphabets, so any token stream is encodable regardless of how far
it strays from the training sample.

This module lives under ``repro.compression`` (not ``repro.store``)
because the gzip PAD's mobile-code sandbox allowlists exactly this
package; a dictionary id received over the wire must resolve inside the
client's restricted import environment.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable

from .huffman import CanonicalCode
from .lz77 import tokenize_raw

__all__ = [
    "HuffmanDictionary",
    "DictionaryError",
    "CONTENT_CLASSES",
    "train_dictionary",
    "builtin_dictionary",
    "dictionary_by_id",
]

# Alphabet sizes mirror gziplike's deflate-style tables (importing them
# from gziplike would be circular: gziplike resolves dictionaries
# lazily, this module must import cleanly first).
_LITLEN_ALPHABET = 286
_DIST_ALPHABET = 30
_EOB = 256

# Built-in classes and their wire ids.  Ids are part of the container
# format: never renumber, only append.
CONTENT_CLASSES = ("text", "image", "delta")
_CLASS_IDS = {"text": 1, "image": 2, "delta": 3}

_TRAIN_SEED = 7001  # private seed: training input never collides with tests


class DictionaryError(Exception):
    """Unknown dictionary id/class or untrainable sample set."""


@dataclass(frozen=True)
class HuffmanDictionary:
    """One shared code pair: literal/length + distance tables."""

    dict_id: int
    content_class: str
    lit_lengths: tuple[int, ...]
    dist_lengths: tuple[int, ...]

    def __post_init__(self) -> None:
        if not 1 <= self.dict_id <= 255:
            raise DictionaryError(
                f"dict_id must fit one wire byte, got {self.dict_id}"
            )
        if len(self.lit_lengths) != _LITLEN_ALPHABET:
            raise DictionaryError(
                f"literal table has {len(self.lit_lengths)} entries, "
                f"expected {_LITLEN_ALPHABET}"
            )
        if len(self.dist_lengths) != _DIST_ALPHABET:
            raise DictionaryError(
                f"distance table has {len(self.dist_lengths)} entries, "
                f"expected {_DIST_ALPHABET}"
            )
        if 0 in self.lit_lengths or 0 in self.dist_lengths:
            raise DictionaryError(
                "dictionary must assign a code to every symbol "
                "(smoothing guarantees encodability)"
            )


# Length/distance -> symbol maps, rebuilt here from the same deflate
# tables gziplike uses (shape-frozen; gziplike's golden vectors pin it).
def _length_symbol_table() -> list[int]:
    table = [0] * 259
    base, sym = 3, 257
    for extra in (0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2,
                  3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5):
        for l in range(base, min(base + (1 << extra), 259)):
            table[l] = sym
        base += 1 << extra
        sym += 1
    table[258] = 285
    return table


def _distance_symbol_table() -> list[int]:
    table = [0] * 32769
    base, sym = 1, 0
    extras = [0, 0, 0, 0] + [e for e in range(1, 14) for _ in (0, 1)]
    for extra in extras:
        for d in range(base, min(base + (1 << extra), 32769)):
            table[d] = sym
        base += 1 << extra
        sym += 1
    return table


_LEN_TO_SYM = _length_symbol_table()
_DIST_TO_SYM = _distance_symbol_table()


def train_dictionary(
    samples: Iterable[bytes],
    *,
    dict_id: int,
    content_class: str,
    max_chain: int = 64,
) -> HuffmanDictionary:
    """Train one dictionary from sample payloads (deterministic in input).

    Samples are tokenized exactly like the encoder tokenizes messages,
    symbol frequencies accumulate across all samples (one EOB per
    sample, like one per message), and every symbol of both alphabets
    starts at count 1 so no future message is unencodable.
    """
    lit_counts = [1] * _LITLEN_ALPHABET
    dist_counts = [1] * _DIST_ALPHABET
    n_samples = 0
    for sample in samples:
        n_samples += 1
        for tok in tokenize_raw(bytes(sample), max_chain=max_chain):
            if tok < 256:
                lit_counts[tok] += 1
            else:
                lit_counts[_LEN_TO_SYM[tok >> 16]] += 1
                dist_counts[_DIST_TO_SYM[tok & 0xFFFF]] += 1
        lit_counts[_EOB] += 1
    if n_samples == 0:
        raise DictionaryError("cannot train a dictionary from zero samples")
    lit = CanonicalCode.from_freqs(
        dict(enumerate(lit_counts)), _LITLEN_ALPHABET
    )
    dist = CanonicalCode.from_freqs(
        dict(enumerate(dist_counts)), _DIST_ALPHABET
    )
    return HuffmanDictionary(
        dict_id=dict_id,
        content_class=content_class,
        lit_lengths=lit.lengths,
        dist_lengths=dist.lengths,
    )


# -- built-in per-class corpora ------------------------------------------------


def _text_samples() -> list[bytes]:
    from ..workload.text import TextGenerator

    gen = TextGenerator(_TRAIN_SEED)
    return [
        gen.generate(1500, seed=(_TRAIN_SEED, "dict-text", i)) for i in range(6)
    ]


def _image_samples() -> list[bytes]:
    from ..workload.images import generate_image

    return [
        generate_image(3000, seed=(_TRAIN_SEED + i) & 0x7FFFFFFF)
        for i in range(4)
    ]


def _delta_samples() -> list[bytes]:
    """COPY/DATA delta streams, like the vary/bitmap responses look."""
    from ..protocols.vary_blocking import VaryBlockingProtocol
    from ..workload.text import TextGenerator

    gen = TextGenerator(_TRAIN_SEED + 1)
    proto = VaryBlockingProtocol()
    samples = []
    for i in range(4):
        old = gen.generate(2000, seed=(_TRAIN_SEED, "dict-delta", i, "old"))
        new = old[:400] + gen.generate(
            300, seed=(_TRAIN_SEED, "dict-delta", i, "edit")
        ) + old[400:]
        samples.append(proto.server_respond(b"", old, new))
    return samples


_CLASS_SAMPLES = {
    "text": _text_samples,
    "image": _image_samples,
    "delta": _delta_samples,
}


# Bounded: lookup keys are attacker-influenceable (content-class names
# arrive via PAD configuration, wire ids via in-band bytes), so these
# caches must have a hard cap — adversarial key churn may cost retrains
# but can never grow memory without limit.  16 slots cover the built-in
# classes many times over.
@lru_cache(maxsize=16)
def builtin_dictionary(content_class: str) -> HuffmanDictionary:
    """The pre-trained dictionary for one built-in content class."""
    if content_class not in _CLASS_IDS:
        raise DictionaryError(
            f"unknown content class {content_class!r}; "
            f"known: {sorted(_CLASS_IDS)}"
        )
    return train_dictionary(
        _CLASS_SAMPLES[content_class](),
        dict_id=_CLASS_IDS[content_class],
        content_class=content_class,
    )


@lru_cache(maxsize=16)
def dictionary_by_id(dict_id: int) -> HuffmanDictionary:
    """Resolve an in-band wire id to its dictionary (decode side)."""
    for content_class, cid in _CLASS_IDS.items():
        if cid == dict_id:
            return builtin_dictionary(content_class)
    raise DictionaryError(f"unknown dictionary id {dict_id}")
