"""Fractal: mobile-code based dynamic application protocol adaptation.

A full reproduction of Lufei & Shi, *Fractal: A Mobile Code Based
Framework for Dynamic Application Protocol Adaptation in Pervasive
Computing* (IPPS 2005).

Quickstart::

    from repro.core import build_case_study
    from repro.workload import PDA_BLUETOOTH

    system = build_case_study()
    client = system.make_client(PDA_BLUETOOTH)
    result = client.request_page("medical-web", page_id=0, new_version=1)
    print(result.pad_ids, result.app_traffic_bytes)

Subpackages:

* ``repro.core``        — the Fractal framework (paper §3)
* ``repro.protocols``   — the four case-study PADs + extensions (§4.1)
* ``repro.mobilecode``  — packaging/sandboxing/signing mobile code (§3.5)
* ``repro.cdn``         — origin/edge/redirector substrate (§2.2)
* ``repro.simnet``      — discrete-event simulator, links, transports
* ``repro.compression`` — from-scratch LZSS + Huffman
* ``repro.chunking``    — Rabin fingerprinting, CDC, fixed blocks
* ``repro.workload``    — the 75-page corpus and device profiles (§4.2)
* ``repro.bench``       — experiment harness for every table/figure (§4.4)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
