"""Chaos experiment: session survival under injected faults.

Not a paper figure — the paper assumes every link delivers and every
edgeserver answers.  This experiment measures what the resilience layer
(client retry, ranked CDN failover, graceful degradation to ``direct``)
buys when they don't: a sweep over frame-loss rates on the wireless
links, with a mid-run edge outage, PAD tampering proportional to the
loss rate, and one proxy restart, all driven by one seeded
:class:`~repro.faults.FaultInjector` so every row is reproducible.

Per (fault rate × environment) the experiment reports sessions run,
sessions completed, and degradations; per rate it reconciles the
telemetry ledger — faults injected vs retries, failovers, and restarts.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.retry import RetryPolicy
from ..core.system import APP_ID, CaseStudySystem, build_case_study
from ..faults import FaultInjector, FaultPlan, FaultRule
from ..workload.pages import Corpus
from ..workload.profiles import PAPER_ENVIRONMENTS

__all__ = [
    "DEFAULT_FAULT_RATES",
    "DEFAULT_CHAOS_RETRY_POLICY",
    "ChaosEnvRow",
    "ChaosRateSummary",
    "ChaosResult",
    "chaos_plan",
    "chaos_experiment",
    "result_to_payload",
]

DEFAULT_FAULT_RATES = (0.0, 0.05, 0.10, 0.20)

# Generous attempts, tight (simulated) backoff: chaos sweeps push loss
# rates far past what a production policy would be tuned for.
DEFAULT_CHAOS_RETRY_POLICY = RetryPolicy(
    max_attempts=6, base_delay_s=0.02, multiplier=2.0, max_delay_s=1.0
)


@dataclass
class ChaosEnvRow:
    """One (fault rate, environment) cell."""

    fault_rate: float
    env_label: str
    sessions: int = 0
    completed: int = 0
    degraded: int = 0
    unhandled_errors: int = 0

    @property
    def success_rate(self) -> float:
        return self.completed / self.sessions if self.sessions else 0.0


@dataclass
class ChaosRateSummary:
    """Telemetry reconciliation for one fault rate."""

    fault_rate: float
    sessions: int
    completed: int
    faults_injected: int
    faults_by_kind: dict[str, int]
    retries: int
    failovers: int
    degradations: int
    proxy_restarts: int
    unhandled_errors: int

    @property
    def success_rate(self) -> float:
        return self.completed / self.sessions if self.sessions else 0.0


@dataclass
class ChaosResult:
    env_rows: list[ChaosEnvRow] = field(default_factory=list)
    summaries: list[ChaosRateSummary] = field(default_factory=list)


def result_to_payload(result: ChaosResult) -> dict:
    """JSON-ready dict for ``fractal-bench chaos --json`` (no dataclasses)."""
    return {
        "env_rows": [
            {
                "fault_rate": r.fault_rate,
                "env": r.env_label,
                "sessions": r.sessions,
                "completed": r.completed,
                "success_rate": round(r.success_rate, 4),
                "degraded": r.degraded,
                "unhandled_errors": r.unhandled_errors,
            }
            for r in result.env_rows
        ],
        "summaries": [
            {
                "fault_rate": s.fault_rate,
                "sessions": s.sessions,
                "completed": s.completed,
                "success_rate": round(s.success_rate, 4),
                "faults_injected": s.faults_injected,
                "faults_by_kind": dict(s.faults_by_kind),
                "retries": s.retries,
                "failovers": s.failovers,
                "degradations": s.degradations,
                "proxy_restarts": s.proxy_restarts,
                "unhandled_errors": s.unhandled_errors,
            }
            for s in result.summaries
        ],
    }


def _busiest_edge(system: CaseStudySystem) -> str:
    """The edge most client sites resolve to — a worthwhile outage target."""
    redirector = system.deployment.redirector
    tally: TallyCounter = TallyCounter()
    for site in system.deployment.client_sites:
        tally[redirector.resolve(site).name] += 1
    return tally.most_common(1)[0][0]


def chaos_plan(
    fault_rate: float,
    *,
    outage_edge: str,
    outage_after: int = 3,
    outage_duration: int = 40,
    restart_after: int = 30,
) -> FaultPlan:
    """The sweep's standard plan at one frame-loss rate.

    Frame loss hits the Bluetooth link at the full rate and 802.11b at
    half (the paper's lossy access networks); LAN stays clean.  Tampering
    scales at a quarter of the rate, split between wrong-object (digest
    mismatch) and bad-signature.  The edge outage and proxy restart are
    schedule-driven, so they occur even in the ``fault_rate=0`` baseline
    row — that row isolates what pure infrastructure faults cost.
    """
    return FaultPlan.of(
        FaultRule.frame_loss("Bluetooth", probability=fault_rate),
        FaultRule.frame_loss("WLAN", probability=fault_rate / 2.0),
        FaultRule.frame_corrupt("Bluetooth", probability=fault_rate / 4.0),
        FaultRule.edge_outage(
            outage_edge, after=outage_after, duration=outage_duration
        ),
        FaultRule.tamper_digest(probability=fault_rate / 8.0),
        FaultRule.tamper_signature(probability=fault_rate / 8.0),
        FaultRule.proxy_restart(after=restart_after),
    )


def chaos_experiment(
    fault_rates: Sequence[float] = DEFAULT_FAULT_RATES,
    *,
    n_clients: int = 100,
    seed: int = 2026,
    retry_policy: Optional[RetryPolicy] = None,
    corpus: Optional[Corpus] = None,
) -> ChaosResult:
    """Run the sweep; every row is deterministic in (args, seed).

    Each fault rate gets a fresh case-study system and injector;
    ``n_clients`` resilient clients (cycling through the paper's three
    environments) each retrieve one page.  Sessions must complete via
    retry/failover/degradation — an unhandled exception is counted, not
    raised, so a regression shows up as a non-zero column instead of a
    crashed bench.
    """
    retry_policy = retry_policy or DEFAULT_CHAOS_RETRY_POLICY
    result = ChaosResult()
    for rate in fault_rates:
        system = build_case_study(
            corpus=corpus or Corpus(n_pages=3), calibrate=False
        )
        plan = chaos_plan(rate, outage_edge=_busiest_edge(system))
        FaultInjector(plan, seed=seed).install(system)
        rows = {
            env.label: ChaosEnvRow(fault_rate=rate, env_label=env.label)
            for env in PAPER_ENVIRONMENTS
        }
        for i in range(n_clients):
            env = PAPER_ENVIRONMENTS[i % len(PAPER_ENVIRONMENTS)]
            client = system.make_client(
                env,
                retry_policy=retry_policy,
                degrade_to_direct=True,
                failover_fetch=True,
            )
            row = rows[env.label]
            row.sessions += 1
            try:
                session = client.request_page(
                    APP_ID, i % system.corpus.n_pages, new_version=0
                )
            except Exception:  # noqa: BLE001 - resilience failed: tally it
                row.unhandled_errors += 1
            else:
                row.completed += 1
                if session.degraded:
                    row.degraded += 1
        registry = system.telemetry.registry
        counters = registry.snapshot()["counters"]
        by_kind = {
            name.removeprefix("faults.injected."): int(value)
            for name, value in sorted(counters.items())
            if name.startswith("faults.injected.")
        }
        result.env_rows.extend(rows[env.label] for env in PAPER_ENVIRONMENTS)
        result.summaries.append(
            ChaosRateSummary(
                fault_rate=rate,
                sessions=sum(r.sessions for r in rows.values()),
                completed=sum(r.completed for r in rows.values()),
                faults_injected=int(counters.get("faults.injected", 0)),
                faults_by_kind=by_kind,
                retries=int(counters.get("client.retries", 0)),
                failovers=int(counters.get("cdn.failovers", 0)),
                degradations=int(counters.get("client.degradations", 0)),
                proxy_restarts=int(counters.get("proxy.restarts", 0)),
                unhandled_errors=sum(r.unhandled_errors for r in rows.values()),
            )
        )
    return result
