"""Command-line harness: regenerate any table or figure of the paper.

Usage::

    fractal-bench table1
    fractal-bench fig9a fig9b
    fractal-bench fig10 fig11 headline
    fractal-bench load --workers 8 --duration 2
    fractal-bench all
"""

from __future__ import annotations

import argparse
import json
import sys

from ..simnet.stats import Series
from . import capacity, experiments, tables
from .reporting import (
    fmt_kb,
    fmt_ms,
    render_metrics_counters,
    render_series,
    render_table,
    render_trace_stages,
)

__all__ = ["main"]

_EXPERIMENTS = ("table1", "fig9a", "fig9b", "fig10", "fig11", "headline",
                "timeline", "stages", "chaos", "load", "kernels", "attacks",
                "overload")


def _build_system(era: bool = True):
    from ..core.system import build_case_study

    return build_case_study(calibrate=True, calibration_pages=2, era=era)


def run_table1() -> str:
    rows = tables.table1_rows()
    return render_table(
        "Table 1: PAD functions and implementations",
        ["PAD name", "Function", "Implementation", "Mobile code bytes"],
        rows,
    )


def run_fig9a() -> str:
    series = capacity.negotiation_time_experiment()
    ms = Series(series.name, series.xs, [y * 1000 for y in series.ys])
    return render_series(
        "Fig 9(a): average negotiation time vs clients",
        [ms], "clients", "negotiation time (ms)",
    )


def run_fig9b() -> str:
    central, dist = capacity.retrieval_time_experiment()
    central_ms = Series(central.name, central.xs, [y * 1000 for y in central.ys])
    dist_ms = Series(dist.name, dist.xs, [y * 1000 for y in dist.ys])
    return render_series(
        "Fig 9(b): average PAD retrieval time vs clients",
        [central_ms, dist_ms], "clients", "retrieval time (ms)",
    )


def run_fig10(system=None) -> str:
    system = system or _build_system()
    panels = experiments.fig10_computing_overhead(system)
    blocks = []
    for panel, cells in panels.items():
        rows = []
        for scenario, cell in cells.items():
            rows.append(
                [
                    scenario,
                    cell["pad"],
                    fmt_ms(cell["server_comp_s"]),
                    fmt_ms(cell["client_comp_s"]),
                    fmt_ms(cell["measured_server_s"]),
                    fmt_ms(cell["measured_client_s"]),
                ]
            )
        blocks.append(
            render_table(
                f"Fig 10({panel}): computing overhead",
                ["scenario", "PAD", "server ms (era)", "client ms (era)",
                 "server ms (this host)", "client ms (this host)"],
                rows,
            )
        )
    return "\n\n".join(blocks)


def run_fig11(system=None) -> str:
    system = system or _build_system()
    measured = experiments.measure_traffic(system.corpus)
    blocks = []
    traffic = experiments.fig11_bytes_transferred(system, measured=measured)
    rows = [
        [env] + [fmt_kb(cols[p]) for p in experiments.CASE_STUDY_PADS]
        for env, cols in traffic.items()
    ]
    blocks.append(
        render_table(
            "Fig 11(a): KBytes transferred per protocol",
            ["environment", *experiments.CASE_STUDY_PADS],
            rows,
        )
    )
    for include, tag in ((True, "b"), (False, "c")):
        totals = experiments.fig11_total_time(
            system, include_server_compute=include, measured=measured
        )
        rows = []
        for env, cols in totals.items():
            rows.append(
                [env]
                + [fmt_ms(cols[p]) for p in experiments.CASE_STUDY_PADS]
                + [cols["winner"]]
            )
        label = "with" if include else "without"
        blocks.append(
            render_table(
                f"Fig 11({tag}): total time (ms), {label} server-side computing",
                ["environment", *experiments.CASE_STUDY_PADS, "adaptive choice"],
                rows,
            )
        )
    return "\n\n".join(blocks)


def run_headline(system=None) -> str:
    system = system or _build_system()
    savings = experiments.headline_savings(system)
    rows = []
    for env, cell in savings.items():
        rows.append(
            [
                env,
                fmt_ms(cell["adaptive_s"]),
                fmt_ms(cell["none_s"]),
                fmt_ms(cell["static_s"]),
                f"{cell['vs_none'] * 100:.0f}%",
                f"{cell['vs_static'] * 100:.0f}%",
            ]
        )
    return render_table(
        "Headline: total-overhead reduction (paper: 41% vs none, 14% vs static, "
        "for some clients)",
        ["environment", "adaptive ms", "none ms", "static ms",
         "saving vs none", "saving vs static"],
        rows,
    )


def run_timeline(system=None) -> str:
    from ..workload.profiles import PAPER_ENVIRONMENTS
    from .timeline import simulate_session_timeline

    system = system or _build_system()
    rows = []
    for env in PAPER_ENVIRONMENTS:
        t = simulate_session_timeline(system, env)
        rows.append(
            [
                t.env_label,
                "+".join(t.pad_ids),
                fmt_ms(t.negotiation_s),
                fmt_ms(t.pad_retrieval_s),
                fmt_ms(t.app_transfer_s),
                fmt_ms(t.server_compute_s),
                fmt_ms(t.client_compute_s),
                fmt_ms(t.total_s),
            ]
        )
    return render_table(
        "Session timeline (Fig. 4 sequence, ms)",
        ["environment", "PAD", "negotiate", "PAD dl", "app xfer",
         "srv comp", "cli comp", "TOTAL"],
        rows,
    )


def run_stages(system=None) -> str:
    """Per-stage breakdown of real sessions, from the telemetry subsystem.

    Runs one full negotiation+retrieval session per paper environment,
    then renders the tracer's *JSON export* (round-tripped through
    ``json`` to prove the on-disk form suffices) as the Fig.-11-style
    stage table, plus the registry counter snapshot.
    """
    from ..workload.profiles import PAPER_ENVIRONMENTS

    system = system or _build_system()
    system.telemetry.tracer.clear()
    for env in PAPER_ENVIRONMENTS:
        client = system.make_client(env)
        old = system.corpus.evolved(0, 0)
        client.request_page(
            system.appserver.app_id,
            0,
            old_parts=[old.text, *old.images],
            old_version=0,
            new_version=1,
        )
    export = json.loads(system.telemetry.tracer.to_json())
    blocks = [
        render_trace_stages(
            export,
            "Per-stage session breakdown (measured spans, all paper environments)",
        ),
        render_metrics_counters(system.telemetry.registry.snapshot()),
    ]
    return "\n\n".join(blocks)


def run_chaos(json_sink: dict | None = None) -> str:
    """Fault-rate sweep: session survival via retry/failover/degradation."""
    from . import chaos

    result = chaos.chaos_experiment()
    if json_sink is not None:
        json_sink["chaos"] = chaos.result_to_payload(result)
    env_rows = []
    for row in result.env_rows:
        env_rows.append(
            [
                f"{row.fault_rate * 100:.0f}%",
                row.env_label,
                row.sessions,
                f"{row.success_rate * 100:.0f}%",
                row.degraded,
                row.unhandled_errors,
            ]
        )
    blocks = [
        render_table(
            "Chaos: session outcome per environment "
            "(frame loss + edge outage + tampering + proxy restart)",
            ["fault rate", "environment", "sessions", "success", "degraded",
             "errors"],
            env_rows,
        )
    ]
    summary_rows = []
    for s in result.summaries:
        summary_rows.append(
            [
                f"{s.fault_rate * 100:.0f}%",
                s.sessions,
                f"{s.success_rate * 100:.0f}%",
                s.faults_injected,
                s.retries,
                s.failovers,
                s.degradations,
                s.proxy_restarts,
                s.unhandled_errors,
            ]
        )
    blocks.append(
        render_table(
            "Chaos: injected faults vs recovery actions per fault rate",
            ["fault rate", "sessions", "success", "faults", "retries",
             "failovers", "degraded", "restarts", "errors"],
            summary_rows,
        )
    )
    return "\n\n".join(blocks)


def run_kernels(quick: bool = False, json_sink: dict | None = None) -> str:
    """Data-plane kernel throughput vs the recorded seed numbers."""
    from . import kernels

    results = kernels.run_kernels(quick=quick)
    if json_sink is not None:
        json_sink["kernels"] = kernels.results_to_payload(results, quick=quick)
    return kernels.render_kernels(results, quick=quick)


def run_load(
    workers: int = 8,
    duration_s: float = 2.0,
    transport: str = "simnet",
    rtt_ms: float = 4.0,
    mode: str = "threads",
    pool_workers: int = 4,
    json_sink: dict | None = None,
    dedup: bool = False,
) -> str:
    """Closed-loop load sweep on one shared system.

    ``mode="threads"`` sweeps worker-thread counts 1..N over the chosen
    transport (the original harness).  ``mode="async"`` keeps ``workers``
    client tasks fixed on one asyncio event loop and sweeps the **kernel
    pool** instead: 0 (inline baseline), 1, 2, ... ``pool_workers``
    processes — the scaling curve that shows kernel offload paying for
    itself once real CPUs exist.  ``dedup=True`` runs the fleet-store
    warm-vs-cold comparison instead (off/cold/warm at a fixed worker
    count, with store bytes-saved and the zero-compute warm gate in the
    ledger).
    """
    import os

    from .load import run_async_pool_sweep, run_dedup_sweep, run_load_sweep

    if dedup:
        points = run_dedup_sweep(workers, duration_s, rtt_ms=rtt_ms)
        sweep_label, sweep_attr = "dedup", "dedup"
    elif mode == "async":
        points = run_async_pool_sweep(
            pool_workers, workers, duration_s, rtt_ms=rtt_ms
        )
        sweep_label, sweep_attr = "pool", "pool_workers"
    else:
        points = run_load_sweep(
            workers, duration_s, transport=transport, rtt_ms=rtt_ms
        )
        sweep_label, sweep_attr = "workers", "workers"
    base = points[0]
    if json_sink is not None:
        json_sink["load"] = {
            "mode": "dedup" if dedup else mode,
            "transport": points[0].transport,
            "duration_s": duration_s,
            "rtt_ms": rtt_ms,
            # Pool speedups are bounded by physical cores; record the
            # host so a flat curve on a 1-CPU box reads as expected.
            "host_cpus": os.cpu_count(),
            "points": [
                {
                    "workers": p.workers,
                    "pool_workers": p.pool_workers,
                    "dedup": p.dedup,
                    "sessions": p.sessions,
                    "errors": p.errors,
                    "throughput_rps": round(p.throughput_rps, 3),
                    "speedup_vs_base": round(p.speedup_vs(base), 3),
                    "p50_negotiation_s": p.p50_negotiation_s,
                    "p95_negotiation_s": p.p95_negotiation_s,
                    "p99_negotiation_s": p.p99_negotiation_s,
                    "proxy_hit_ratio": p.proxy_hit_ratio,
                    "reconciled": p.reconciled,
                    **({"store": p.store} if p.store is not None else {}),
                }
                for p in points
            ],
        }
    rows = []
    for p in points:
        row = [
            getattr(p, sweep_attr),
            p.sessions,
            p.errors,
            f"{p.throughput_rps:.1f}",
            f"{p.speedup_vs(base):.2f}x",
            fmt_ms(p.p50_negotiation_s),
            fmt_ms(p.p95_negotiation_s),
            fmt_ms(p.p99_negotiation_s),
            f"{p.proxy_hit_ratio * 100:.1f}%",
            "exact" if p.reconciled else "MISMATCH",
        ]
        if dedup:
            store = p.store or {}
            row[9:9] = [
                fmt_kb(store.get("bytes_saved", 0)),
                int(store.get("computes", 0)),
            ]
        rows.append(row)
    headers = [sweep_label, "sessions", "errors", "rps", "speedup",
               "p50 ms", "p95 ms", "p99 ms", "hit ratio", "ledger"]
    if dedup:
        headers[9:9] = ["saved", "computes"]
        title = (
            f"Load: fleet-dedup off/cold/warm, {workers} workers "
            f"({duration_s:.1f}s/point, {rtt_ms:.0f}ms emulated RTT)"
        )
    elif mode == "async":
        title = (
            f"Load: {workers} async client tasks, kernel-pool scaling "
            f"({duration_s:.1f}s/point, {rtt_ms:.0f}ms emulated RTT, "
            f"{os.cpu_count()} host CPUs)"
        )
    else:
        title = (
            f"Load: closed-loop workers vs one shared proxy+CDN+appserver "
            f"({transport}, {duration_s:.1f}s/point, {rtt_ms:.0f}ms emulated RTT)"
        )
    table = render_table(title, headers, rows)
    last = points[-1]
    summary = (
        f"{getattr(last, sweep_attr)} {sweep_label}: {last.sessions} sessions, "
        f"{last.errors} errors, {last.speedup_vs(base):.2f}x throughput of "
        f"baseline, ledger "
        f"{'reconciled exactly' if last.reconciled else 'MISMATCH'}"
    )
    return f"{table}\n\n{summary}"


def run_attacks(
    duration_s: float = 5.0,
    intensity: float = 1.0,
    attack: list[str] | None = None,
    strategy: str = "hottest-edge",
    seed: int = 0,
    transport: str = "inproc",
    json_sink: dict | None = None,
) -> str:
    """Seeded adversarial campaign with an exact absorbed/degraded ledger."""
    from .attacks import campaign_to_payload, render_campaign, run_attack_campaign

    campaign = run_attack_campaign(
        seed=seed,
        duration_s=duration_s,
        intensity=intensity,
        kinds=attack or None,
        strategy=strategy,
        transport=transport,
    )
    if json_sink is not None:
        json_sink["attacks"] = campaign_to_payload(campaign)
    return render_campaign(campaign)


def run_overload(
    seed: int = 0,
    transport: str = "inproc",
    events: int = 12,
    json_sink: dict | None = None,
) -> str:
    """Overload-control proof: four phases, four exact ledgers."""
    from .overload import render_report, report_to_payload, run_overload_experiment

    report = run_overload_experiment(
        seed=seed, transport=transport, events=events
    )
    if json_sink is not None:
        json_sink["overload"] = report_to_payload(report)
    return render_report(report)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="fractal-bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments", nargs="+",
        choices=[*_EXPERIMENTS, "all"],
        help="which table/figure to regenerate",
    )
    load_group = parser.add_argument_group("load", "options for `load`")
    load_group.add_argument(
        "--workers", type=int, default=8,
        help="max worker count for the load sweep (default 8)",
    )
    load_group.add_argument(
        "--duration", type=float, default=2.0,
        help="seconds per load point (default 2.0)",
    )
    load_group.add_argument(
        "--transport", choices=("simnet", "tcp"), default="simnet",
        help="serving path for the load sweep (default simnet)",
    )
    load_group.add_argument(
        "--rtt-ms", type=float, default=4.0,
        help="emulated WAN round-trip per request in ms (default 4)",
    )
    load_group.add_argument(
        "--mode", choices=("threads", "async"), default="threads",
        help="threads: sweep worker threads; async: fixed client tasks "
             "on one event loop, sweep kernel-pool processes",
    )
    load_group.add_argument(
        "--pool-workers", type=int, default=4,
        help="max kernel-pool processes for --mode async (default 4)",
    )
    load_group.add_argument(
        "--dedup", action="store_true",
        help="run the fleet-store warm-vs-cold dedup comparison instead "
             "of the scaling sweep",
    )
    kern_group = parser.add_argument_group("kernels", "options for `kernels`")
    kern_group.add_argument(
        "--quick", action="store_true",
        help="single measurement pass per kernel (CI smoke mode)",
    )
    attack_group = parser.add_argument_group("attacks", "options for `attacks`")
    attack_group.add_argument(
        "--attack", action="append", default=None, metavar="KIND",
        choices=("negotiation_herd", "slowloris", "cache_poison",
                 "byzantine_pad", "targeted_outage"),
        help="attack class to run (repeatable; default: all five). "
             "`--duration` scales the per-class event budget "
             "deterministically — no wall-clock dependence",
    )
    attack_group.add_argument(
        "--intensity", type=float, default=1.0,
        help="attack intensity multiplier on the event budget (default 1.0)",
    )
    attack_group.add_argument(
        "--strategy", choices=("random", "hottest-edge", "highest-degree"),
        default="hottest-edge",
        help="victim-selection strategy for targeted attacks "
             "(default hottest-edge)",
    )
    attack_group.add_argument(
        "--seed", type=int, default=0,
        help="campaign seed: same seed, same ledger (default 0); "
             "also seeds `overload`",
    )
    attack_group.add_argument(
        "--attack-transport", choices=("inproc", "tcp"), default="inproc",
        help="serving path for the attack campaign: in-process handlers "
             "or real loopback TCP (default inproc)",
    )
    over_group = parser.add_argument_group("overload", "options for `overload`")
    over_group.add_argument(
        "--overload-transport", choices=("inproc", "tcp"), default="inproc",
        help="serving path for the overload phases (default inproc)",
    )
    over_group.add_argument(
        "--overload-events", type=int, default=12,
        help="event budget: admission burst size and breaker-outage "
             "session count both scale from this (default 12)",
    )
    parser.add_argument(
        "--json", metavar="OUT", default=None,
        help="also write machine-readable results to OUT "
             "(supported by `kernels`, `load`, `chaos`, and `attacks`)",
    )
    args = parser.parse_args(argv)
    wanted = list(_EXPERIMENTS) if "all" in args.experiments else args.experiments

    json_sink: dict | None = {} if args.json else None
    system = None
    outputs = []
    for name in wanted:
        if name in ("fig10", "fig11", "headline", "timeline", "stages") and system is None:
            system = _build_system()
        fn = {
            "table1": run_table1,
            "fig9a": run_fig9a,
            "fig9b": run_fig9b,
            "fig10": lambda: run_fig10(system),
            "fig11": lambda: run_fig11(system),
            "headline": lambda: run_headline(system),
            "timeline": lambda: run_timeline(system),
            "stages": lambda: run_stages(system),
            "chaos": lambda: run_chaos(json_sink=json_sink),
            "load": lambda: run_load(
                args.workers, args.duration, args.transport, args.rtt_ms,
                args.mode, args.pool_workers, json_sink=json_sink,
                dedup=args.dedup,
            ),
            "kernels": lambda: run_kernels(args.quick, json_sink=json_sink),
            "attacks": lambda: run_attacks(
                args.duration, args.intensity, args.attack, args.strategy,
                args.seed, args.attack_transport, json_sink=json_sink,
            ),
            "overload": lambda: run_overload(
                args.seed, args.overload_transport, args.overload_events,
                json_sink=json_sink,
            ),
        }[name]
        outputs.append(fn())
    print("\n\n".join(outputs))
    if args.json is not None:
        from .kernels import write_json

        payload = json_sink or {}
        # A kernels-only run writes the flat kernels payload (the
        # BENCH_kernels.json shape); mixed runs keep one section per command.
        if set(payload) == {"kernels"}:
            payload = payload["kernels"]
            _roll_kernel_history(payload, args.json)
        elif "load" in payload:
            _roll_load_history(payload, args.json)
        write_json(payload, args.json)
    return 0


_HISTORY_KEEP = 20


def _roll_load_history(payload: dict, path: str) -> None:
    """Fold the previous load result at ``path`` into ``payload["history"]``.

    Rewriting BENCH_load.json across PRs would otherwise discard the
    throughput trajectory; instead the outgoing "load" section (points
    trimmed to the headline fields) is appended to a bounded history
    list, so the committed file carries how the curve moved over time.
    """
    import os

    if not os.path.exists(path):
        return
    try:
        with open(path, "r", encoding="utf-8") as fh:
            previous = json.load(fh)
    except (OSError, ValueError):
        return
    if not isinstance(previous, dict) or "load" not in previous:
        return
    history = [h for h in previous.get("history", ()) if isinstance(h, dict)]
    old = previous["load"]
    if isinstance(old, dict):
        entry = {k: v for k, v in old.items() if k != "points"}
        entry["points"] = [
            {
                k: p.get(k)
                for k in (
                    "workers", "pool_workers", "dedup",
                    "throughput_rps", "p99_negotiation_s", "reconciled",
                )
                if k in p
            }
            for p in old.get("points", ())
            if isinstance(p, dict)
        ]
        history.append(entry)
    payload["history"] = history[-_HISTORY_KEEP:]


def _roll_kernel_history(payload: dict, path: str) -> None:
    """Fold the previous kernels result at ``path`` into a bounded history.

    The BENCH_kernels.json counterpart of :func:`_roll_load_history`:
    the outgoing run's per-kernel headline numbers (MB/s and speedup)
    are appended to ``payload["history"]``, bounded to the last
    ``_HISTORY_KEEP`` runs, so the committed file tracks the kernel
    throughput *trajectory* across PRs rather than only the latest run.
    """
    import os

    if not os.path.exists(path):
        return
    try:
        with open(path, "r", encoding="utf-8") as fh:
            previous = json.load(fh)
    except (OSError, ValueError):
        return
    if not isinstance(previous, dict) or "kernels" not in previous:
        return
    history = [h for h in previous.get("history", ()) if isinstance(h, dict)]
    old = previous["kernels"]
    if isinstance(old, dict):
        entry = {
            "quick": previous.get("quick", False),
            "kernels": {
                name: {
                    k: cell.get(k) for k in ("mb_s", "speedup") if k in cell
                }
                for name, cell in old.items()
                if isinstance(cell, dict)
            },
        }
        history.append(entry)
    payload["history"] = history[-_HISTORY_KEEP:]


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
