"""End-to-end session timeline: the whole Fig. 4 sequence, timed.

For one client environment, decomposes a complete Fractal session into
its phases and times each over the environment's link model:

1. **Negotiation** — INIT_REQ→INIT_REP and CLI_META_REP→PAD_META_REP: the
   *actual INP packet bytes* (captured from a real in-process run via the
   transport meters) over the client link, plus the measured proxy
   service time, plus proxy-side round-trip latency.
2. **PAD retrieval** — the real signed-module bytes from the nearest CDN
   edge over the client link.
3. **Application session** — the real per-part request/response bytes
   over the client link, plus era-model server and client compute.

This is the number the paper's Eq. 3 estimates; comparing the two
quantifies how well the negotiation model predicts reality (the
``model_total_s`` field carries the Eq. 3 estimate for the same PAD).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workload.profiles import ClientEnvironment
from .capacity import measure_proxy_service_times
from .experiments import env_meta

__all__ = ["SessionTimeline", "simulate_session_timeline"]

# One-way latency between a client site and the proxy/appserver domain.
# The paper co-locates proxy and application server with the testbed
# clients a few hops away, so this is metro-scale, not transcontinental.
_WAN_LATENCY_S = 0.005


@dataclass(frozen=True)
class SessionTimeline:
    """Phase-by-phase times for one complete session (seconds)."""

    env_label: str
    pad_ids: tuple[str, ...]
    negotiation_s: float
    pad_retrieval_s: float
    app_transfer_s: float
    server_compute_s: float
    client_compute_s: float
    model_total_s: float  # what Eq. 3 predicted for this path

    @property
    def total_s(self) -> float:
        return (
            self.negotiation_s
            + self.pad_retrieval_s
            + self.app_transfer_s
            + self.server_compute_s
            + self.client_compute_s
        )


def simulate_session_timeline(
    system,
    env: ClientEnvironment,
    *,
    page_id: int = 0,
    old_version: int = 0,
    new_version: int = 1,
) -> SessionTimeline:
    """Run a real session in-process, then time its bytes over ``env``'s link."""
    link = env.link
    client = system.make_client(env)
    meter = system.transport.meter(client.name)

    # Phase 1: negotiation — capture the real INP bytes.
    meter.reset()
    outcome = client.negotiate(system.appserver.app_id, force=True)
    negotiation_bytes = meter.total_bytes
    service = measure_proxy_service_times(system, rtt_s=0.0)
    negotiation_s = (
        link.transfer_time(negotiation_bytes, with_latency=False)
        + 4 * (link.latency_s + _WAN_LATENCY_S)  # two round trips
        + service.cache_miss_s
    )

    # Phase 2: PAD retrieval + phase 3: the adapted application session.
    old_page = system.corpus.evolved(page_id, old_version)
    meter.reset()
    result = client.request_page(
        system.appserver.app_id,
        page_id,
        old_parts=[old_page.text, *old_page.images],
        old_version=old_version,
        new_version=new_version,
    )
    pad_retrieval_s = (
        link.transfer_time(result.pad_download_bytes, with_latency=False)
        + 2 * (link.latency_s + _WAN_LATENCY_S)
    )
    app_transfer_s = (
        link.transfer_time(result.app_traffic_bytes, with_latency=False)
        + 2 * (link.latency_s + _WAN_LATENCY_S)
    )

    # Compute terms from the negotiation model (era-scaled when the
    # system was built with era=True), summed along the negotiated path.
    dev, ntwk = env_meta(env)
    model = system.proxy.negotiation.model
    pat = system.proxy.negotiation.pat(system.appserver.app_id)
    server_s = 0.0
    client_s = 0.0
    model_total = 0.0
    for meta in outcome.pads:
        breakdown = model.breakdown(pat.resolve(meta.pad_id), dev, ntwk)
        server_s += breakdown.server_comp_s
        client_s += breakdown.client_comp_s
        model_total += breakdown.total_s
    return SessionTimeline(
        env_label=env.label,
        pad_ids=result.pad_ids,
        negotiation_s=negotiation_s,
        pad_retrieval_s=pad_retrieval_s,
        app_transfer_s=app_transfer_s,
        server_compute_s=server_s,
        client_compute_s=client_s,
        model_total_s=model_total,
    )
