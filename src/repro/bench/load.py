"""Closed-loop multi-worker load harness (``fractal-bench load``).

The capacity experiments in :mod:`repro.bench.capacity` replay a
*serialized* arrival process on the discrete-event simulator; this
harness instead drives **real threads** against one shared
proxy + CDN + application-server instance, which is what the
thread-safety work on the serving path exists for.  Each worker owns one
:class:`~repro.core.client.FractalClient` and runs sessions back-to-back
(closed loop: a worker's next session starts when its previous one
finishes) until the deadline:

1. forced negotiation with the adaptation proxy (so the proxy's
   adaptation cache sees sustained traffic and the hit ratio means
   something),
2. PAD retrieval/verify/deploy on the first visit to an environment
   (cached per client afterwards, exactly like a real device),
3. one full page exchange through the negotiated protocol.

Two transports are supported: ``simnet`` (the in-process transport) and
``tcp`` (:class:`~repro.simnet.realnet.TcpTransport`, loopback sockets).
The in-process transport completes a request in zero network time, which
would make a *concurrency* benchmark measure nothing but the GIL — so
the harness wraps whichever transport it uses in
:class:`LatencyTransport`, which sleeps a configurable WAN round-trip
per request the way a remote client would spend it on the wire.  Sleeps
release the GIL, so worker overlap is real.

Every run reports throughput, p50/p95/p99 negotiation latency, the
proxy's adaptation-cache hit ratio, and a **ledger reconciliation**: the
per-worker tallies (kept in plain thread-local lists, no shared state)
must sum to exactly what the shared telemetry registry counted.  A lost
update anywhere in the locked serving path shows up here as a mismatch.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from ..core.system import CaseStudySystem, build_case_study
from ..simnet.realnet import TcpTransport
from ..simnet.stats import percentile
from ..workload.pages import Corpus
from ..workload.profiles import PAPER_ENVIRONMENTS

__all__ = [
    "LatencyTransport",
    "AsyncLatencyTransport",
    "WorkerTally",
    "LoadPoint",
    "run_load_point",
    "run_async_load_point",
    "run_load_sweep",
    "run_async_pool_sweep",
    "run_dedup_sweep",
    "sweep_worker_counts",
]

DEFAULT_RTT_MS = 4.0
DEFAULT_DURATION_S = 2.0
# Small pages keep per-session compute well under the emulated RTT so
# the harness measures serving-path concurrency, not codec speed.
LOAD_CORPUS_KWARGS = dict(
    n_pages=2, text_bytes=600, image_bytes=2000, images_per_page=1
)


class LatencyTransport:
    """Transport wrapper that charges a WAN round-trip per request.

    ``request()`` sleeps ``rtt_s`` (half before the call, half after,
    like propagation each way) and then delegates.  ``time.sleep``
    releases the GIL, so N workers overlap their network time — the
    in-process transport alone would serialize everything behind the
    interpreter lock and report meaningless scaling.
    """

    def __init__(self, inner, rtt_s: float) -> None:
        if rtt_s < 0:
            raise ValueError(f"rtt_s must be >= 0, got {rtt_s}")
        self.inner = inner
        self.rtt_s = rtt_s

    def request(self, src: str, dst: str, payload: bytes) -> bytes:
        if self.rtt_s > 0:
            time.sleep(self.rtt_s / 2)
        response = self.inner.request(src, dst, payload)
        if self.rtt_s > 0:
            time.sleep(self.rtt_s / 2)
        return response


class AsyncLatencyTransport:
    """Event-loop sibling of :class:`LatencyTransport`.

    ``asyncio.sleep`` suspends only the calling task, so concurrent
    client tasks overlap their emulated propagation time exactly like
    the threaded workers overlap their ``time.sleep``.
    """

    def __init__(self, inner, rtt_s: float) -> None:
        if rtt_s < 0:
            raise ValueError(f"rtt_s must be >= 0, got {rtt_s}")
        self.inner = inner
        self.rtt_s = rtt_s

    async def request(self, src: str, dst: str, payload: bytes) -> bytes:
        if self.rtt_s > 0:
            await asyncio.sleep(self.rtt_s / 2)
        response = await self.inner.request(src, dst, payload)
        if self.rtt_s > 0:
            await asyncio.sleep(self.rtt_s / 2)
        return response


@dataclass
class WorkerTally:
    """One worker's private ledger (no shared mutable state)."""

    worker: int
    sessions: int = 0
    errors: int = 0
    negotiations: int = 0
    pad_download_bytes: int = 0
    app_bytes: int = 0
    negotiation_times_s: list[float] = field(default_factory=list)
    first_error: Optional[str] = None

    def record_success(self, result) -> None:
        self.sessions += 1
        self.negotiations += 1  # force_negotiation: one per session
        self.pad_download_bytes += result.pad_download_bytes
        self.app_bytes += result.app_traffic_bytes
        self.negotiation_times_s.append(result.negotiation_time_s)

    def record_error(self, exc: BaseException) -> None:
        self.errors += 1
        if self.first_error is None:
            self.first_error = f"{type(exc).__name__}: {exc}"


@dataclass
class LoadPoint:
    """Aggregate result of one (worker count, transport) run."""

    workers: int
    transport: str
    duration_s: float          # requested run length
    elapsed_s: float           # measured wall time, start barrier -> last exit
    sessions: int
    errors: int
    throughput_rps: float
    p50_negotiation_s: float
    p95_negotiation_s: float
    p99_negotiation_s: float
    proxy_hit_ratio: float
    per_worker: list[WorkerTally]
    ledger: dict[str, tuple[float, float]]  # name -> (workers' sum, registry)
    reconciled: bool
    mode: str = "threads"      # "threads" or "async"
    pool_workers: int = 0      # kernel-pool processes (async mode only)
    dedup: str = ""            # "", "off", "cold", or "warm"
    store: Optional[dict] = None  # fleet-store window deltas (dedup runs)

    def speedup_vs(self, baseline: "LoadPoint") -> float:
        if baseline.throughput_rps <= 0:
            return float("nan")
        return self.throughput_rps / baseline.throughput_rps


def _build_load_system(
    corpus: Optional[Corpus] = None, *, dedup: bool = False
) -> CaseStudySystem:
    corpus = corpus or Corpus(**LOAD_CORPUS_KWARGS)
    overrides = None
    if dedup:
        # The fleet store makes per-message compression a one-time cost,
        # and the shared pre-trained dictionary keeps even the cold path
        # off per-message Huffman tree construction.
        overrides = {"gzip": {"backend": "pure", "dictionary": "text"}}
    return build_case_study(
        corpus=corpus, calibrate=False, dedup=dedup, pad_init_overrides=overrides
    )


def _worker_loop(
    client,
    app_id: str,
    corpus: Corpus,
    duration_s: float,
    start: threading.Event,
    tally: WorkerTally,
) -> None:
    environments = PAPER_ENVIRONMENTS
    # Stagger environment order per worker so cold-cache misses spread
    # across keys instead of stampeding the same one.
    offset = tally.worker
    old_pages = [corpus.evolved(p, 0) for p in range(corpus.n_pages)]
    start.wait()
    deadline = time.perf_counter() + duration_s
    i = 0
    while time.perf_counter() < deadline:
        env = environments[(offset + i) % len(environments)]
        page_id = i % corpus.n_pages
        old = old_pages[page_id]
        client.set_environment(env)
        try:
            result = client.request_page(
                app_id,
                page_id,
                old_parts=[old.text, *old.images],
                old_version=0,
                new_version=1,
                force_negotiation=True,
            )
        except Exception as exc:  # noqa: BLE001 - the harness must finish
            tally.record_error(exc)
        else:
            tally.record_success(result)
        i += 1


async def _async_worker_loop(
    client,
    app_id: str,
    corpus: Corpus,
    duration_s: float,
    start: asyncio.Event,
    tally: WorkerTally,
) -> None:
    """Coroutine twin of :func:`_worker_loop`: same schedule, same tally."""
    environments = PAPER_ENVIRONMENTS
    offset = tally.worker
    old_pages = [corpus.evolved(p, 0) for p in range(corpus.n_pages)]
    await start.wait()
    deadline = time.perf_counter() + duration_s
    i = 0
    while time.perf_counter() < deadline:
        env = environments[(offset + i) % len(environments)]
        page_id = i % corpus.n_pages
        old = old_pages[page_id]
        client.set_environment(env)
        try:
            result = await client.request_page(
                app_id,
                page_id,
                old_parts=[old.text, *old.images],
                old_version=0,
                new_version=1,
                force_negotiation=True,
            )
        except Exception as exc:  # noqa: BLE001 - the harness must finish
            tally.record_error(exc)
        else:
            tally.record_success(result)
        i += 1


def _wire_symmetry_snapshot(transport, client_names: list[str]) -> dict:
    """On-wire byte symmetry: what every client meter sent must equal
    what the endpoint meters received, and vice versa.  Works for both
    :class:`TcpTransport` and ``AsyncTcpTransport`` (same meter API);
    holds exactly because both record only completed frames, at on-wire
    (header-included) sizes — the metering fix this PR's tests pin down.
    """
    cli_sent = sum(transport.meter(n).bytes_sent for n in client_names)
    cli_recv = sum(transport.meter(n).bytes_received for n in client_names)
    ep_sent = sum(
        transport.endpoint_meter(e).bytes_sent for e in transport.endpoints()
    )
    ep_recv = sum(
        transport.endpoint_meter(e).bytes_received for e in transport.endpoints()
    )
    return {
        "wire bytes (clients sent vs endpoints recv)": (cli_sent, ep_recv),
        "wire bytes (endpoints sent vs clients recv)": (ep_sent, cli_recv),
    }


def _rows_balanced(rows: dict) -> bool:
    return all(a == b for a, b in rows.values())


def _wire_symmetry_rows(
    transport, client_names: list[str], settle_s: float = 2.0
) -> dict:
    """Snapshot the symmetry rows, absorbing endpoint metering lag.

    A threaded endpoint records its send-side meter just *after* the
    response bytes hit the socket, so a client can observe the meters in
    the instant before the worker thread's update lands (one GIL switch
    wide).  The convention is right — a failed send must count nothing —
    so the reader absorbs the lag: poll until the rows balance, bounded
    by ``settle_s``.  A genuine asymmetry still surfaces as a stable
    mismatch once the deadline passes.
    """
    deadline = time.perf_counter() + settle_s
    rows = _wire_symmetry_snapshot(transport, client_names)
    while not _rows_balanced(rows) and time.perf_counter() < deadline:
        time.sleep(0.001)
        rows = _wire_symmetry_snapshot(transport, client_names)
    return rows


async def _wire_symmetry_rows_async(
    transport, client_names: list[str], settle_s: float = 2.0
) -> dict:
    """:func:`_wire_symmetry_rows` for the event-loop path.

    The server coroutine's ``record_send`` runs in the continuation
    after its ``drain()``, so a client task scheduled between the two
    can observe early — and a blocking sleep here would starve that very
    continuation.  Yield to the loop instead.
    """
    deadline = time.perf_counter() + settle_s
    rows = _wire_symmetry_snapshot(transport, client_names)
    while not _rows_balanced(rows) and time.perf_counter() < deadline:
        await asyncio.sleep(0.001)
        rows = _wire_symmetry_snapshot(transport, client_names)
    return rows


def run_load_point(
    workers: int,
    duration_s: float = DEFAULT_DURATION_S,
    *,
    transport: str = "simnet",
    rtt_ms: float = DEFAULT_RTT_MS,
    corpus: Optional[Corpus] = None,
    system: Optional[CaseStudySystem] = None,
    dedup: str = "",
    expect_zero_computes: bool = False,
) -> LoadPoint:
    """Drive ``workers`` concurrent clients against one fresh system.

    A fresh system per point keeps the telemetry ledger attributable: at
    the end, per-worker sums must equal the registry counters *exactly*.
    When a ``system`` is reused across points (the dedup warm pass), the
    counter base is snapshotted before the run, so every ledger row
    reconciles over *this run's window* only.  ``expect_zero_computes``
    adds the warm-path gate: the store must have performed zero
    chunk/compress computes during the window.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if transport not in ("simnet", "tcp"):
        raise ValueError(f"transport must be 'simnet' or 'tcp', got {transport!r}")
    system = system or _build_load_system(corpus)
    app_id = system.appserver.app_id
    base_counters = dict(system.telemetry.registry.snapshot()["counters"])

    tcp: Optional[TcpTransport] = None
    if transport == "tcp":
        tcp = TcpTransport()
        tcp.bind("proxy", system.proxy.handle)
        tcp.bind("appserver", system.appserver.handle)
        base = tcp
    else:
        base = system.transport
    wire = LatencyTransport(base, rtt_ms / 1000.0)

    clients = [
        system.make_client(
            PAPER_ENVIRONMENTS[i % len(PAPER_ENVIRONMENTS)],
            name=f"load-w{i:02d}",
            transport=wire,
        )
        for i in range(workers)
    ]
    tallies = [WorkerTally(worker=i) for i in range(workers)]
    start = threading.Event()
    threads = []
    try:
        for client, tally in zip(clients, tallies):
            t = threading.Thread(
                target=_worker_loop,
                args=(client, app_id, system.corpus, duration_s, start, tally),
                name=f"load-worker-{tally.worker}",
                daemon=True,
            )
            t.start()
            threads.append(t)
        t0 = time.perf_counter()
        start.set()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t0
        extra_ledger = (
            _wire_symmetry_rows(tcp, [c.name for c in clients])
            if tcp is not None
            else None
        )
    finally:
        if tcp is not None:
            tcp.close()

    return _aggregate(
        system, transport, workers, duration_s, elapsed, tallies,
        extra_ledger=extra_ledger, base_counters=base_counters,
        dedup=dedup, expect_zero_computes=expect_zero_computes,
    )


def _aggregate(
    system: CaseStudySystem,
    transport: str,
    workers: int,
    duration_s: float,
    elapsed_s: float,
    tallies: list[WorkerTally],
    *,
    extra_ledger: Optional[dict] = None,
    mode: str = "threads",
    pool_workers: int = 0,
    base_counters: Optional[dict[str, float]] = None,
    dedup: str = "",
    expect_zero_computes: bool = False,
) -> LoadPoint:
    registry = system.telemetry.registry
    sessions = sum(t.sessions for t in tallies)
    errors = sum(t.errors for t in tallies)
    times = sorted(x for t in tallies for x in t.negotiation_times_s)
    base = base_counters or {}

    def ctr(name: str) -> float:
        # Window delta: counters accumulated before this run (a reused
        # system's cold pass, prewarming) are subtracted out.
        return registry.counter(name).value - base.get(name, 0.0)

    # Exact cross-worker reconciliation: private per-worker sums on the
    # left, the shared locked registry on the right.
    ledger: dict[str, tuple[float, float]] = {
        "negotiations (workers vs proxy)": (
            sum(t.negotiations for t in tallies), ctr("proxy.negotiations")
        ),
        "negotiations (workers vs client ctr)": (
            sum(t.negotiations for t in tallies), ctr("client.negotiations")
        ),
        "cache hits+misses vs negotiations": (
            ctr("proxy.cache.hits") + ctr("proxy.cache.misses"),
            ctr("proxy.negotiations"),
        ),
        "app sessions (workers vs appserver)": (
            sessions, ctr("appserver.requests")
        ),
        "pad bytes (workers vs client ctr)": (
            sum(t.pad_download_bytes for t in tallies),
            ctr("client.pad_download_bytes"),
        ),
        "app bytes (workers vs client ctrs)": (
            sum(t.app_bytes for t in tallies),
            ctr("client.app_request_bytes") + ctr("client.app_response_bytes"),
        ),
    }
    store_dict: Optional[dict] = None
    if system.chunk_store is not None:
        name = system.chunk_store.name
        # The store's own invariants, over this run's window.  The
        # warm-path gate pins the headline claim: a second pass over the
        # same page versions performs zero CDC/compress computes.
        ledger["store lookups vs hits+misses+coalesced"] = (
            ctr(f"store.{name}.lookups"),
            ctr(f"store.{name}.hits")
            + ctr(f"store.{name}.misses")
            + ctr(f"store.{name}.coalesced"),
        )
        ledger["store computes vs misses"] = (
            ctr(f"store.{name}.computes"), ctr(f"store.{name}.misses")
        )
        ledger["parts via store (appserver vs responder)"] = (
            ctr("appserver.store_requests"), ctr(f"store.{name}.responses")
        )
        if expect_zero_computes:
            ledger["warm store computes vs zero"] = (
                ctr(f"store.{name}.computes"), 0.0
            )
        stats = system.chunk_store.stats
        store_dict = {
            "name": name,
            "lookups": ctr(f"store.{name}.lookups"),
            "hits": ctr(f"store.{name}.hits"),
            "misses": ctr(f"store.{name}.misses"),
            "coalesced": ctr(f"store.{name}.coalesced"),
            "computes": ctr(f"store.{name}.computes"),
            "evictions": ctr(f"store.{name}.evictions"),
            "bytes_saved": ctr(f"store.{name}.bytes_saved"),
            "entries": len(system.chunk_store),
            "bytes_cached": system.chunk_store.used_bytes,
            "lifetime_hit_ratio": stats.hit_ratio,
        }
    if extra_ledger:
        ledger.update(extra_ledger)
    reconciled = errors == 0 and all(a == b for a, b in ledger.values())

    return LoadPoint(
        workers=workers,
        transport=transport,
        duration_s=duration_s,
        elapsed_s=elapsed_s,
        sessions=sessions,
        errors=errors,
        throughput_rps=sessions / elapsed_s if elapsed_s > 0 else 0.0,
        p50_negotiation_s=percentile(times, 50) if times else 0.0,
        p95_negotiation_s=percentile(times, 95) if times else 0.0,
        p99_negotiation_s=percentile(times, 99) if times else 0.0,
        proxy_hit_ratio=system.proxy.stats.hit_ratio,
        per_worker=tallies,
        ledger=ledger,
        reconciled=reconciled,
        mode=mode,
        pool_workers=pool_workers,
        dedup=dedup,
        store=store_dict,
    )


def sweep_worker_counts(max_workers: int) -> list[int]:
    """1, 2, 4, ... doubling up to and always including ``max_workers``."""
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    counts = []
    w = 1
    while w < max_workers:
        counts.append(w)
        w *= 2
    counts.append(max_workers)
    return counts


def run_load_sweep(
    max_workers: int = 8,
    duration_s: float = DEFAULT_DURATION_S,
    *,
    transport: str = "simnet",
    rtt_ms: float = DEFAULT_RTT_MS,
) -> list[LoadPoint]:
    """One :func:`run_load_point` per worker count, shared corpus."""
    corpus = Corpus(**LOAD_CORPUS_KWARGS)
    return [
        run_load_point(
            w, duration_s, transport=transport, rtt_ms=rtt_ms, corpus=corpus
        )
        for w in sweep_worker_counts(max_workers)
    ]


def _prewarm_store(system: CaseStudySystem) -> None:
    """Deterministically touch every (environment, page) pair once.

    The timed cold pass is closed-loop, so with a short duration it may
    not visit every environment x page combination; this sweep fills the
    store's remaining corners so the warm point's zero-compute gate is a
    property of the store, not of scheduling luck.
    """
    client = system.make_client(PAPER_ENVIRONMENTS[0], name="prewarm")
    app_id = system.appserver.app_id
    for env in PAPER_ENVIRONMENTS:
        client.set_environment(env)
        for page_id in range(system.corpus.n_pages):
            old = system.corpus.evolved(page_id, 0)
            client.request_page(
                app_id,
                page_id,
                old_parts=[old.text, *old.images],
                old_version=0,
                new_version=1,
                force_negotiation=True,
            )


def run_dedup_sweep(
    workers: int = 4,
    duration_s: float = DEFAULT_DURATION_S,
    *,
    rtt_ms: float = DEFAULT_RTT_MS,
) -> list[LoadPoint]:
    """The warm-vs-cold fleet-dedup comparison (``fractal-bench load --dedup``).

    Three points, same worker count and schedule:

    * ``off``  — fresh system, no store: the baseline.
    * ``cold`` — fresh system with the fleet store and the shared gzip
      dictionary: every first sight of a page version computes (and
      inserts); repeats within the run already hit.
    * ``warm`` — the *same* system run again: every response comes from
      the store.  The ledger gains a hard gate — zero store computes in
      the warm window — plus the store's own lookups/computes
      reconciliation rows, all measured as window deltas against a
      counter snapshot taken between the passes.
    """
    corpus = Corpus(**LOAD_CORPUS_KWARGS)
    off = run_load_point(
        workers, duration_s, rtt_ms=rtt_ms,
        system=_build_load_system(corpus), dedup="off",
    )
    dedup_system = _build_load_system(corpus, dedup=True)
    cold = run_load_point(
        workers, duration_s, rtt_ms=rtt_ms, system=dedup_system, dedup="cold",
    )
    _prewarm_store(dedup_system)
    warm = run_load_point(
        workers, duration_s, rtt_ms=rtt_ms, system=dedup_system,
        dedup="warm", expect_zero_computes=True,
    )
    return [off, cold, warm]


# -- async mode ----------------------------------------------------------------


def run_async_load_point(
    workers: int,
    duration_s: float = DEFAULT_DURATION_S,
    *,
    pool_workers: int = 0,
    rtt_ms: float = DEFAULT_RTT_MS,
    corpus: Optional[Corpus] = None,
) -> LoadPoint:
    """Drive ``workers`` concurrent client *tasks* on one event loop.

    The serving side is the asyncio TCP transport; the application
    server's kernel work goes to a :class:`~repro.core.kernelpool
    .KernelPool` with ``pool_workers`` processes (0 = inline on the
    loop, the scaling baseline).  Same closed-loop schedule, same
    6-way ledger as the threaded harness, plus the on-wire symmetry
    rows — counters are shared between the sync and async paths, so
    reconciliation is apples-to-apples.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if pool_workers < 0:
        raise ValueError(f"pool_workers must be >= 0, got {pool_workers}")
    return asyncio.run(
        _async_load_point(workers, duration_s, pool_workers, rtt_ms, corpus)
    )


async def _async_load_point(
    workers: int,
    duration_s: float,
    pool_workers: int,
    rtt_ms: float,
    corpus: Optional[Corpus],
) -> LoadPoint:
    from ..core.asyncclient import AsyncFractalClient
    from ..core.kernelpool import KernelPool
    from ..core.system import bind_async_endpoints
    from ..simnet.asyncnet import AsyncTcpTransport

    system = _build_load_system(corpus)
    app_id = system.appserver.app_id
    # Pool startup (spawn + warm-up pings) happens before the timed
    # window so the scaling numbers measure serving, not process boot.
    pool = KernelPool(workers=pool_workers)
    try:
        async with AsyncTcpTransport() as net:
            await bind_async_endpoints(system, net, kernel_pool=pool)
            wire = AsyncLatencyTransport(net, rtt_ms / 1000.0)
            clients = [
                system.make_client(
                    PAPER_ENVIRONMENTS[i % len(PAPER_ENVIRONMENTS)],
                    name=f"load-w{i:02d}",
                    transport=wire,
                    client_cls=AsyncFractalClient,
                )
                for i in range(workers)
            ]
            tallies = [WorkerTally(worker=i) for i in range(workers)]
            start = asyncio.Event()
            tasks = [
                asyncio.create_task(
                    _async_worker_loop(
                        client, app_id, system.corpus, duration_s, start, tally
                    )
                )
                for client, tally in zip(clients, tallies)
            ]
            t0 = time.perf_counter()
            start.set()
            await asyncio.gather(*tasks)
            elapsed = time.perf_counter() - t0
            extra_ledger = await _wire_symmetry_rows_async(
                net, [c.name for c in clients]
            )
    finally:
        pool.close()
        system.appserver.kernel_pool = None
    return _aggregate(
        system, "async", workers, duration_s, elapsed, tallies,
        extra_ledger=extra_ledger, mode="async", pool_workers=pool_workers,
    )


def run_async_pool_sweep(
    max_pool_workers: int = 4,
    workers: int = 8,
    duration_s: float = DEFAULT_DURATION_S,
    *,
    rtt_ms: float = DEFAULT_RTT_MS,
) -> list[LoadPoint]:
    """The pool scaling curve: 0 (inline), 1, 2, ... pool processes.

    ``workers`` concurrent client tasks stay fixed; only the kernel
    pool grows.  Point 0 is the event-loop-only baseline every speedup
    is quoted against.  Scaling beyond 1× needs real CPUs — on a
    single-core host the curve is flat and says so honestly.
    """
    corpus = Corpus(**LOAD_CORPUS_KWARGS)
    counts = [0]
    if max_pool_workers >= 1:
        counts.extend(sweep_worker_counts(max_pool_workers))
    return [
        run_async_load_point(
            workers, duration_s, pool_workers=pw, rtt_ms=rtt_ms, corpus=corpus
        )
        for pw in counts
    ]
