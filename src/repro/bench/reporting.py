"""Plain-text rendering for experiment results.

Every figure/table regenerator ends in one of these helpers, so benchmark
output looks like the paper's rows/series and diffs cleanly run-to-run.

Telemetry-backed renderers: :func:`render_trace_stages` turns a
:meth:`repro.telemetry.Tracer.export` JSON dict into the Fig.-11-style
per-stage breakdown table, and :func:`render_metrics_counters` tabulates
a :meth:`repro.telemetry.MetricsRegistry.snapshot`.  Both consume plain
JSON-ready dicts, so a snapshot written by one run can be rendered by
another.
"""

from __future__ import annotations

from typing import Sequence

from ..simnet.stats import Series
from ..telemetry import stage_rows

__all__ = [
    "render_table",
    "render_series",
    "render_trace_stages",
    "render_metrics_counters",
    "fmt_ms",
    "fmt_kb",
]


def fmt_ms(seconds: float) -> str:
    return f"{seconds * 1000:.1f}"


def fmt_kb(nbytes: float) -> str:
    return f"{nbytes / 1024:.1f}"


def render_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = [title]
    sep = "-+-".join("-" * w for w in widths)
    for idx, row in enumerate(cells):
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if idx == 0:
            lines.append(sep)
    return "\n".join(lines)


def render_trace_stages(
    export: dict, title: str = "Per-stage time breakdown (measured spans)"
) -> str:
    """Fig.-11-style stage table from a tracer JSON export.

    ``export`` is the dict form of :meth:`repro.telemetry.Tracer.export`
    (parsed back from JSON or taken live); every retained span is
    aggregated by stage name and sorted by total time.
    """
    rows = []
    for row in stage_rows(export):
        rows.append(
            [
                row["stage"],
                row["count"],
                fmt_ms(row["total_s"]),
                fmt_ms(row["mean_s"]),
                f"{row['share'] * 100:.0f}%",
            ]
        )
    return render_table(
        title, ["stage", "count", "total ms", "mean ms", "% of session"], rows
    )


def render_metrics_counters(
    snapshot: dict, title: str = "Metrics registry counters"
) -> str:
    """Counter/gauge table from a :meth:`MetricsRegistry.snapshot` dict."""
    rows = [
        [name, f"{value:g}"]
        for name, value in sorted(snapshot.get("counters", {}).items())
    ]
    rows += [
        [name, f"{value:g}"]
        for name, value in sorted(snapshot.get("gauges", {}).items())
    ]
    return render_table(title, ["metric", "value"], rows)


def render_series(title: str, series: Sequence[Series], x_label: str, y_label: str) -> str:
    headers = [x_label] + [s.name for s in series]
    xs = series[0].xs
    for s in series[1:]:
        if s.xs != xs:
            raise ValueError("all series must share x points for tabular rendering")
    rows = []
    for i, x in enumerate(xs):
        rows.append([f"{x:g}"] + [f"{s.ys[i]:.4g}" for s in series])
    return render_table(f"{title}  (y = {y_label})", headers, rows)
