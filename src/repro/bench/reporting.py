"""Plain-text rendering for experiment results.

Every figure/table regenerator ends in one of these helpers, so benchmark
output looks like the paper's rows/series and diffs cleanly run-to-run.
"""

from __future__ import annotations

from typing import Sequence

from ..simnet.stats import Series

__all__ = ["render_table", "render_series", "fmt_ms", "fmt_kb"]


def fmt_ms(seconds: float) -> str:
    return f"{seconds * 1000:.1f}"


def fmt_kb(nbytes: float) -> str:
    return f"{nbytes / 1024:.1f}"


def render_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = [title]
    sep = "-+-".join("-" * w for w in widths)
    for idx, row in enumerate(cells):
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if idx == 0:
            lines.append(sep)
    return "\n".join(lines)


def render_series(title: str, series: Sequence[Series], x_label: str, y_label: str) -> str:
    headers = [x_label] + [s.name for s in series]
    xs = series[0].xs
    for s in series[1:]:
        if s.xs != xs:
            raise ValueError("all series must share x points for tabular rendering")
    rows = []
    for i, x in enumerate(xs):
        rows.append([f"{x:g}"] + [f"{s.ys[i]:.4g}" for s in series])
    return render_table(f"{title}  (y = {y_label})", headers, rows)
