"""Table 1: the functions and implementations of the case-study PADs."""

from __future__ import annotations

from ..protocols.padlib import PAD_SPECS, build_pad_module

__all__ = ["table1_rows", "PAPER_TABLE1_PADS"]

PAPER_TABLE1_PADS = ("direct", "gzip", "vary", "bitmap")

_DISPLAY_NAMES = {
    "direct": "Direct",
    "gzip": "Gzip",
    "vary": "Vary-sized blocking",
    "bitmap": "Bitmap",
    "fixed": "Fix-sized blocking (ext.)",
}


def table1_rows(pad_ids=PAPER_TABLE1_PADS) -> list[tuple[str, str, str, int]]:
    """(PAD name, function, implementation, mobile-code size in bytes).

    The size column is this reproduction's addition: the actual wire size
    of the signed mobile-code module shipping that PAD.
    """
    rows = []
    for pad_id in pad_ids:
        spec = PAD_SPECS[pad_id]
        module = build_pad_module(pad_id)
        rows.append(
            (
                _DISPLAY_NAMES.get(pad_id, pad_id),
                spec.function,
                spec.implementation,
                module.size,
            )
        )
    return rows
