"""Experiment harness: one regenerator per table/figure in the paper."""

from .capacity import (
    DEFAULT_CLIENT_COUNTS,
    ProxyServiceTimes,
    measure_proxy_service_times,
    negotiation_time_experiment,
    negotiation_time_experiment_real,
    retrieval_time_experiment,
)
from .experiments import (
    CASE_STUDY_PADS,
    STATIC_PAD,
    EnvProtocolCost,
    Scenario,
    evaluate_environment,
    fig10_computing_overhead,
    fig11_bytes_transferred,
    fig11_total_time,
    headline_savings,
    measure_traffic,
    negotiated_winner,
)
from .reporting import fmt_kb, fmt_ms, render_series, render_table
from .tables import table1_rows

__all__ = [
    "DEFAULT_CLIENT_COUNTS",
    "ProxyServiceTimes",
    "measure_proxy_service_times",
    "negotiation_time_experiment",
    "negotiation_time_experiment_real",
    "retrieval_time_experiment",
    "CASE_STUDY_PADS",
    "STATIC_PAD",
    "EnvProtocolCost",
    "Scenario",
    "evaluate_environment",
    "fig10_computing_overhead",
    "fig11_bytes_transferred",
    "fig11_total_time",
    "headline_savings",
    "measure_traffic",
    "negotiated_winner",
    "fmt_kb",
    "fmt_ms",
    "render_series",
    "render_table",
    "table1_rows",
]
