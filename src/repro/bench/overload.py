"""Overload-control proof harness (`fractal-bench overload`).

Four phases, each proving one overload-control mechanism end to end on
the real serving path (in-process transport by default, real loopback
TCP with ``transport="tcp"``), each closing an **exact ledger** — local
tallies against registry counter deltas, the discipline every bench in
this repo follows:

1. **Admission** — a burst of raw ``INIT_REQ`` packets against a
   token-bucket-guarded proxy under a :class:`~repro.overload.ManualClock`
   (no refill until the script says so): exactly ``burst`` admitted, the
   rest shed with a ``retry_after_ms`` hint, a real client sees a typed
   :class:`~repro.core.errors.ServerOverloadedError`, and one scripted
   clock advance proves recovery.
2. **Deadline propagation** — an expired ``"dl"`` budget is shed at the
   proxy *and* appserver entry without any work; a generous budget
   completes byte-exactly; and under a
   :class:`~repro.overload.TickingClock` the appserver sheds mid-request
   after a *provable* number of per-part checks (exact ``parts_shed``).
3. **Circuit breaker** — a proxy outage trips the breaker after exactly
   ``failure_threshold`` wire failures; every later session fails fast
   (zero wire traffic) yet still completes via degradation; rebinding
   the proxy plus one scripted clock advance half-opens the breaker and
   one successful probe re-closes it.
4. **Kernel-pool supervision** — a worker-killing poison kernel yields a
   typed :class:`~repro.core.kernelpool.KernelPoolError` after exactly
   two worker restarts per attempt (never an inline re-execution), and
   the healed pool's output is byte-identical to the inline baseline.

Nothing here sleeps on results and no wall-clock number enters the
payload, so the same ``(seed, transport, events)`` produces the same
payload on any machine — the property the CI smoke gate pins.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import inp
from ..core.errors import ServerOverloadedError
from ..core.inp import INPMessage, MsgType
from ..core.kernelpool import KernelPool, KernelPoolError, run_kernel
from ..core.system import (
    APP_ID,
    APPSERVER_ENDPOINT,
    PROXY_ENDPOINT,
    build_case_study,
)
from ..overload import (
    DEADLINE_PREFIX,
    OVERLOADED_PREFIX,
    AdmissionController,
    BreakerBoard,
    ManualClock,
    TickingClock,
)
from ..telemetry import Telemetry
from ..workload.profiles import DESKTOP_LAN

__all__ = [
    "OverloadReport",
    "run_overload_experiment",
    "report_to_payload",
    "render_report",
]

# Token-bucket refill rate for the admission phase.  One scripted
# 1-second advance therefore refills min(burst, 8) tokens.
_RATE_PER_S = 8.0
# Breaker shape: trips after 3 consecutive wire failures, recovers
# (half-opens) after a scripted 30 s advance.
_FAILURE_THRESHOLD = 3
_RECOVERY_TIMEOUT_S = 30.0
# Poison-kernel attempts in the supervision phase; each costs exactly
# two worker restarts (the crash and the one retry on a fresh worker).
_POOL_KILLS = 2


@dataclass
class OverloadReport:
    """One `fractal-bench overload` run: four phase ledgers."""

    seed: int
    transport: str
    events: int
    admission: dict
    deadline: dict
    breaker: dict
    pool: dict
    reconciled: bool


def _raw(system, src: str, msg: INPMessage) -> INPMessage:
    """One raw INP round trip over whatever transport is installed."""
    return inp.decode(system.transport.request(src, PROXY_ENDPOINT, inp.encode(msg)))


def _raw_to(system, src: str, dst: str, msg: INPMessage) -> INPMessage:
    return inp.decode(system.transport.request(src, dst, inp.encode(msg)))


def _deltas(registry, names):
    """Counter snapshot for exact before/after reconciliation."""
    return {n: int(registry.counter(n).value) for n in names}


def run_overload_experiment(
    *, seed: int = 0, transport: str = "inproc", events: int = 12
) -> OverloadReport:
    """Run all four phases against one freshly built system.

    ``events`` scales both the admission burst (``burst = events // 2``
    tokens) and the breaker outage (``events`` sessions against a dead
    proxy).  Everything is event-counted; ``seed`` picks the victim
    page, so the payload is a pure function of the arguments.
    """
    if transport not in ("inproc", "tcp"):
        raise ValueError(f"transport must be 'inproc' or 'tcp', got {transport!r}")
    if events < _FAILURE_THRESHOLD + 1:
        raise ValueError(
            f"events must be >= {_FAILURE_THRESHOLD + 1} "
            "(the breaker phase needs sessions beyond the trip point)"
        )
    telemetry = Telemetry()
    registry = telemetry.registry
    admission_clock = ManualClock()
    burst = max(2, events // 2)
    admission = AdmissionController(
        "proxy-admission",
        rate_per_s=_RATE_PER_S,
        burst=burst,
        registry=registry,
        clock=admission_clock,
    )
    system = build_case_study(telemetry=telemetry, proxy_admission=admission)
    import random

    page = random.Random(seed).randrange(system.corpus.n_pages)

    tcp = None
    if transport == "tcp":
        from ..simnet.realnet import TcpTransport

        tcp = TcpTransport(idle_timeout_s=1.0)
        tcp.bind(PROXY_ENDPOINT, system.proxy.handle)
        tcp.bind(APPSERVER_ENDPOINT, system.appserver.handle)
        system.transport = tcp
    try:
        admission_ledger = _phase_admission(
            system, admission, admission_clock, registry, seed, events, burst
        )
        # Later phases negotiate through the same admission-guarded
        # proxy; a scripted advance refills the bucket to ``burst`` so
        # phase boundaries never leak token debt into each other.
        admission_clock.advance(1.0)
        deadline_ledger = _phase_deadline(system, registry, seed, page)
        admission_clock.advance(1.0)
        breaker_ledger = _phase_breaker(system, registry, events, page)
        pool_ledger = _phase_pool(system, registry, page)
    finally:
        if tcp is not None:
            tcp.close()
    reconciled = all(
        ledger["ledger_exact"]
        for ledger in (
            admission_ledger,
            deadline_ledger,
            breaker_ledger,
            pool_ledger,
        )
    )
    return OverloadReport(
        seed=seed,
        transport=transport,
        events=events,
        admission=admission_ledger,
        deadline=deadline_ledger,
        breaker=breaker_ledger,
        pool=pool_ledger,
        reconciled=reconciled,
    )


# -- phase 1: admission control ----------------------------------------------------


def _phase_admission(
    system, admission, clock, registry, seed, events, burst
) -> dict:
    names = (
        "overload.proxy-admission.admitted",
        "overload.proxy-admission.rejected.rate",
    )
    base = _deltas(registry, names)
    admitted = rejected = 0
    hint_seen = False
    for i in range(events):
        msg = INPMessage(
            MsgType.INIT_REQ, f"adm-{seed}-{i}", 0, {"app_id": APP_ID}
        )
        rep = _raw(system, "burster", msg)
        if rep.msg_type is MsgType.INIT_REP:
            admitted += 1
        elif rep.msg_type is MsgType.INP_ERROR and str(
            rep.body.get("error", "")
        ).startswith(OVERLOADED_PREFIX):
            rejected += 1
            if isinstance(rep.body.get("retry_after_ms"), (int, float)):
                hint_seen = True

    # A real client sees the shed as a *typed* retryable error carrying
    # the server's hint, not a generic protocol failure.
    client = system.make_client(DESKTOP_LAN)
    typed_rejection = False
    try:
        client.negotiate(APP_ID)
    except ServerOverloadedError as exc:
        typed_rejection = (
            exc.retry_after_s is not None and exc.retry_after_s > 0
        )

    # Recovery is just time passing: one scripted refill re-admits.
    clock.advance(1.0)
    rep = _raw(
        system,
        "burster",
        INPMessage(MsgType.INIT_REQ, f"adm-{seed}-refill", 0, {"app_id": APP_ID}),
    )
    refill_admitted = rep.msg_type is MsgType.INIT_REP

    after = _deltas(registry, names)
    offered = events + 2  # burst + typed-client probe + refill probe
    snap = admission.snapshot()
    ledger_exact = (
        admitted == burst
        and rejected == events - burst
        and hint_seen
        and typed_rejection
        and refill_admitted
        and admission.offered == offered
        and snap["admitted"] == admitted + 1  # + the refill admit
        and snap["rejected_rate"] == rejected + 1  # + the typed-client shed
        and after[names[0]] - base[names[0]] == snap["admitted"]
        and after[names[1]] - base[names[1]] == snap["rejected_rate"]
    )
    return {
        "burst": burst,
        "offered": offered,
        "admitted": snap["admitted"],
        "rejected": snap["rejected_rate"],
        "retry_after_hint": hint_seen,
        "typed_rejection": typed_rejection,
        "refill_admitted": refill_admitted,
        "ledger_exact": ledger_exact,
    }


# -- phase 2: deadline propagation -------------------------------------------------


def _phase_deadline(system, registry, seed, page) -> dict:
    import time as _time

    total_parts = 1 + system.corpus.images_per_page
    names = (
        "proxy.overload.deadline_expired",
        "appserver.overload.deadline_entry",
        "appserver.overload.deadline_midrequest",
        "appserver.overload.parts_shed",
    )
    base = _deltas(registry, names)

    # (a) Already-expired budget: shed at the proxy door, no work done.
    msg = INPMessage(
        MsgType.INIT_REQ, f"dl-{seed}-proxy", 0, {"app_id": APP_ID}
    ).with_deadline(0.0)
    rep = _raw(system, "expired", msg)
    proxy_entry_shed = rep.msg_type is MsgType.INP_ERROR and str(
        rep.body.get("error", "")
    ).startswith(DEADLINE_PREFIX)

    app_body = {
        "pad_ids": ["direct"],
        "page_id": page,
        "old_version": -1,
        "new_version": 1,
        "part_requests": [inp.b64e(b"")] * total_parts,
    }
    msg = INPMessage(
        MsgType.APP_REQ, f"dl-{seed}-app", 0, dict(app_body)
    ).with_deadline(0.0)
    rep = _raw_to(system, "expired", APPSERVER_ENDPOINT, msg)
    appserver_entry_shed = rep.msg_type is MsgType.INP_ERROR and str(
        rep.body.get("error", "")
    ).startswith(DEADLINE_PREFIX)

    # (b) A generous budget completes byte-exactly (deadline plumbing
    # costs correctness nothing).
    client = system.make_client(DESKTOP_LAN, deadline_s=30.0)
    result = client.request_page(APP_ID, page)
    expected = system.corpus.evolved(page, 1)
    completed = (
        not result.degraded
        and result.parts == [expected.text, *expected.images]
    )

    # (c) Mid-request shedding, provable to the exact part: under a
    # TickingClock (1 s per read) a 2.5 s wire budget survives the entry
    # check and the part-0 check, then expires on the part-1 check —
    # shedding exactly total_parts - 1 parts.
    system.appserver.deadline_clock = TickingClock(1.0)
    try:
        msg = INPMessage(
            MsgType.APP_REQ, f"dl-{seed}-mid", 0, dict(app_body)
        ).with_deadline(2500.0)
        rep = _raw_to(system, "ticking", APPSERVER_ENDPOINT, msg)
    finally:
        system.appserver.deadline_clock = _time.monotonic
    shed_parts = total_parts - 1
    midrequest_shed = rep.msg_type is MsgType.INP_ERROR and (
        f"shed {shed_parts} of {total_parts} parts"
        in str(rep.body.get("error", ""))
    )

    after = _deltas(registry, names)
    ledger_exact = (
        proxy_entry_shed
        and appserver_entry_shed
        and completed
        and midrequest_shed
        and after[names[0]] - base[names[0]] == 1
        and after[names[1]] - base[names[1]] == 1
        and after[names[2]] - base[names[2]] == 1
        and after[names[3]] - base[names[3]] == shed_parts
    )
    return {
        "proxy_entry_shed": proxy_entry_shed,
        "appserver_entry_shed": appserver_entry_shed,
        "completed_within_budget": completed,
        "midrequest_shed": midrequest_shed,
        "parts_shed": after[names[3]] - base[names[3]],
        "total_parts": total_parts,
        "ledger_exact": ledger_exact,
    }


# -- phase 3: circuit breaker ------------------------------------------------------


def _phase_breaker(system, registry, events, page) -> dict:
    clock = ManualClock()
    board = BreakerBoard(
        failure_threshold=_FAILURE_THRESHOLD,
        recovery_timeout_s=_RECOVERY_TIMEOUT_S,
        clock=clock,
        registry=registry,
    )
    client = system.make_client(
        DESKTOP_LAN, breaker_board=board, degrade_to_direct=True
    )
    fast_fail_name = "client.breaker.fast_fail"
    base_fast = int(registry.counter(fast_fail_name).value)

    # Outage: the proxy vanishes from the transport.  Every session
    # still completes — degraded to the direct protocol — and after
    # `failure_threshold` wire failures the breaker stops touching the
    # wire at all.
    system.transport.unbind(PROXY_ENDPOINT)
    degraded = 0
    try:
        for _ in range(events):
            res = client.request_page(APP_ID, page)
            degraded += 1 if res.degraded else 0
    finally:
        system.transport.bind(PROXY_ENDPOINT, system.proxy.handle)
    fast_failed = int(registry.counter(fast_fail_name).value) - base_fast
    breaker = board.breaker(PROXY_ENDPOINT)
    opened_state = breaker.state

    # Healing: the scripted recovery window elapses, one probe succeeds,
    # the breaker re-closes, and the next session negotiates normally.
    clock.advance(_RECOVERY_TIMEOUT_S)
    res = client.request_page(APP_ID, page)
    recovered = not res.degraded
    snap = breaker.snapshot()

    ledger_exact = (
        degraded == events
        and opened_state == "open"
        and fast_failed == events - _FAILURE_THRESHOLD
        and snap["opened"] == 1
        and snap["reclosed"] == 1
        and snap["rejected"] == fast_failed
        and snap["state"] == "closed"
        and recovered
    )
    return {
        "sessions": events,
        "degraded": degraded,
        "fast_failed": fast_failed,
        "opened": snap["opened"],
        "reclosed": snap["reclosed"],
        "probes": snap["probes"],
        "recovered": recovered,
        "ledger_exact": ledger_exact,
    }


# -- phase 4: kernel-pool supervision ----------------------------------------------


def _phase_pool(system, registry, page) -> dict:
    data = system.corpus.page(page).text
    args = (data, "pure", 64, None)
    inline = run_kernel("gziplike.compress", *args)
    rerouted_base = int(registry.counter("kernelpool.rerouted").value)
    pool = KernelPool(workers=2, registry=registry)
    try:
        baseline = pool.run("gziplike.compress", *args, shard_key="victim")
        poison_errors = 0
        for _ in range(_POOL_KILLS):
            try:
                pool.run("chaos.exit", 3, shard_key="victim")
            except KernelPoolError:
                poison_errors += 1
        # Two poison attempts cost 4 restarts on the victim shard —
        # past the default budget of 3 — so the shard is *disabled*
        # and everything below is served by the rerouted survivor.
        healed = pool.run("gziplike.compress", *args, shard_key="victim")
        boom_propagated = False
        try:
            pool.run("chaos.boom", "deliberate", shard_key="victim")
        except KernelPoolError:
            boom_propagated = False  # must NOT be treated as a crash
        except RuntimeError:
            boom_propagated = True
        health = pool.health()
    finally:
        pool.close()
    rerouted = int(registry.counter("kernelpool.rerouted").value) - rerouted_base
    healed_identical = healed == baseline == inline
    ledger_exact = (
        poison_errors == _POOL_KILLS
        and health["restarts_total"] == 2 * _POOL_KILLS
        and len(health["disabled"]) == 1
        and rerouted == 2  # the healed run and the boom run, one each
        and healed_identical
        and boom_propagated
    )
    return {
        "kills": _POOL_KILLS,
        "poison_errors": poison_errors,
        "restarts_total": health["restarts_total"],
        "shards_disabled": len(health["disabled"]),
        "rerouted": rerouted,
        "healed_identical": healed_identical,
        "boom_propagated": boom_propagated,
        "ledger_exact": ledger_exact,
    }


# -- reporting ---------------------------------------------------------------------


def report_to_payload(report: OverloadReport) -> dict:
    return {
        "seed": report.seed,
        "transport": report.transport,
        "events": report.events,
        "admission": report.admission,
        "deadline": report.deadline,
        "breaker": report.breaker,
        "pool": report.pool,
        "reconciled": report.reconciled,
    }


def render_report(report: OverloadReport) -> str:
    from .reporting import render_table

    a, d, b, p = report.admission, report.deadline, report.breaker, report.pool
    rows = [
        [
            "admission",
            f"burst {a['burst']}",
            f"{a['offered']} offered: {a['admitted']} admitted, "
            f"{a['rejected']} shed (hint), refill re-admits",
            "exact" if a["ledger_exact"] else "MISMATCH",
        ],
        [
            "deadline",
            f"{d['total_parts']} parts",
            "entry shed at proxy+appserver; mid-request shed "
            f"{d['parts_shed']}/{d['total_parts']} parts; "
            "generous budget byte-exact",
            "exact" if d["ledger_exact"] else "MISMATCH",
        ],
        [
            "breaker",
            f"{b['sessions']} sessions",
            f"{b['degraded']} degraded, {b['fast_failed']} fast-failed, "
            f"opened {b['opened']}x, reclosed {b['reclosed']}x",
            "exact" if b["ledger_exact"] else "MISMATCH",
        ],
        [
            "pool",
            f"{p['kills']} kills",
            f"{p['poison_errors']} poison errors, "
            f"{p['restarts_total']} restarts, {p['shards_disabled']} shard "
            "disabled, rerouted, healed byte-identical",
            "exact" if p["ledger_exact"] else "MISMATCH",
        ],
    ]
    title = (
        f"Overload: admission + deadlines + breaker + pool supervision "
        f"(seed {report.seed}, {report.events} events, "
        f"transport {report.transport})"
    )
    table = render_table(title, ["phase", "scale", "outcome", "ledger"], rows)
    summary = (
        "all four ledgers reconciled exactly"
        if report.reconciled
        else "LEDGER MISMATCH — see phase rows"
    )
    return f"{table}\n\n{summary}"
