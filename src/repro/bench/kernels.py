"""Data-plane kernel microbenchmarks (``fractal-bench kernels``).

Measures steady-state throughput (MB/s) of the hot byte-level kernels the
PADs are built from — CDC boundary scanning, LZSS tokenization, the pure
deflate-lite coder, and the rsync-style rolling scan — on deterministic
corpus pages, and compares each against the recorded throughput of the
original (pre-fusion) implementations on the same inputs.

The seed numbers in :data:`SEED_BASELINES` were captured on the reference
container *before* the kernels were rewritten, with the same best-of-N
methodology this module uses; the ``speedup`` column is therefore
apples-to-apples on identical inputs.  Absolute MB/s varies with the host,
so CI treats regressions as advisory (the committed ``BENCH_kernels.json``
is the before/after record, not a gate).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = [
    "SEED_BASELINES",
    "KernelResult",
    "run_kernels",
    "render_kernels",
    "results_to_payload",
    "write_json",
]

# Recorded seed (pre-optimization) kernel throughput, same inputs and
# best-of-N timing as run_kernels() uses.  ``seconds`` is the seed wall
# time for one pass over ``bytes`` input bytes.
SEED_BASELINES: dict[str, dict[str, float]] = {
    "cdc_scan":             {"bytes": 269754, "seconds": 0.14261, "mb_s": 1.892},
    "cdc_scan_vary":        {"bytes": 131072, "seconds": 0.07666, "mb_s": 1.710},
    "lz77_tokenize":        {"bytes": 134770, "seconds": 0.31729, "mb_s": 0.425},
    "gzip_pure_compress":   {"bytes": 134770, "seconds": 0.60948, "mb_s": 0.221},
    "gzip_pure_decompress": {"bytes": 134770, "seconds": 0.45140, "mb_s": 0.299},
    "fixed_scan":           {"bytes": 134770, "seconds": 0.01524, "mb_s": 8.846},
    "vary_respond":         {"bytes": 134770, "seconds": 0.14223, "mb_s": 0.948},
}


@dataclass(frozen=True)
class KernelResult:
    """One kernel's measured throughput next to its recorded seed number."""

    name: str
    n_bytes: int
    seconds: float
    mb_s: float
    seed_mb_s: float

    @property
    def speedup(self) -> float:
        return self.mb_s / self.seed_mb_s if self.seed_mb_s > 0 else float("inf")


def _best_of(fn: Callable[[], object], repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_kernels(quick: bool = False) -> list[KernelResult]:
    """Measure every kernel on the deterministic corpus pages.

    ``quick`` runs a single warm pass per kernel instead of best-of-3 —
    the CI smoke configuration.  Inputs are identical either way, so quick
    numbers are comparable (just noisier).
    """
    from ..chunking.cdc import ContentDefinedChunker
    from ..compression import gziplike
    from ..compression.lz77 import tokenize
    from ..protocols.padlib import instantiate
    from ..workload.pages import Corpus

    repeat = 1 if quick else 3
    corpus = Corpus()
    page0 = corpus.evolved(0, 0).encode()
    page1 = corpus.evolved(0, 1).encode()
    cdc_data = (page0 + page1)[: 512 * 1024]

    results: list[KernelResult] = []

    def record(name: str, n_bytes: int, fn: Callable[[], object]) -> None:
        fn()  # warm: table caches, lazy imports, allocator
        seconds = _best_of(fn, repeat)
        results.append(
            KernelResult(
                name=name,
                n_bytes=n_bytes,
                seconds=seconds,
                mb_s=n_bytes / seconds / 1e6 if seconds > 0 else float("inf"),
                seed_mb_s=SEED_BASELINES[name]["mb_s"],
            )
        )

    ch13 = ContentDefinedChunker(mask_bits=13)
    record("cdc_scan", len(cdc_data), lambda: ch13.chunk(cdc_data))

    ch10 = ContentDefinedChunker(mask_bits=10)
    vary_data = cdc_data[: 128 * 1024]
    record("cdc_scan_vary", len(vary_data), lambda: ch10.chunk(vary_data))

    record("lz77_tokenize", len(page1), lambda: tokenize(page1))

    blob = gziplike.compress(page1, backend="pure")
    record(
        "gzip_pure_compress",
        len(page1),
        lambda: gziplike.compress(page1, backend="pure"),
    )
    record("gzip_pure_decompress", len(page1), lambda: gziplike.decompress(blob))

    fixed = instantiate("fixed")
    sig = fixed.client_request(page0)
    record("fixed_scan", len(page1), lambda: fixed.server_respond(sig, page0, page1))

    vary = instantiate("vary")
    record("vary_respond", len(page1), lambda: vary.server_respond(b"", page0, page1))

    return results


def render_kernels(results: list[KernelResult], quick: bool = False) -> str:
    from .reporting import render_table

    rows = []
    for r in results:
        rows.append(
            [
                r.name,
                f"{r.n_bytes / 1024:.0f} KiB",
                f"{r.seconds * 1000:.1f}",
                f"{r.mb_s:.2f}",
                f"{r.seed_mb_s:.2f}",
                f"{r.speedup:.1f}x",
            ]
        )
    mode = "quick, 1 pass" if quick else "best of 3"
    return render_table(
        f"Data-plane kernel throughput vs recorded seed ({mode})",
        ["kernel", "input", "ms", "MB/s", "seed MB/s", "speedup"],
        rows,
    )


def results_to_payload(results: list[KernelResult], quick: bool = False) -> dict:
    """JSON-serializable before/after record (``BENCH_kernels.json``)."""
    return {
        "quick": quick,
        "kernels": {
            r.name: {
                "bytes": r.n_bytes,
                "seconds": round(r.seconds, 6),
                "mb_s": round(r.mb_s, 3),
                "seed_seconds": SEED_BASELINES[r.name]["seconds"],
                "seed_mb_s": SEED_BASELINES[r.name]["mb_s"],
                "speedup": round(r.speedup, 2),
            }
            for r in results
        },
    }


def write_json(payload: dict, path: str) -> None:
    with open(path, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")


def compare_to_baseline(
    payload: dict, baseline_path: str, tolerance: float = 0.5
) -> Optional[str]:
    """Advisory drift check against a committed baseline JSON.

    Returns a human-readable warning when any kernel runs slower than
    ``tolerance`` times its committed MB/s (hosts differ, so CI prints the
    warning instead of failing), or None when within bounds / no baseline.
    """
    try:
        with open(baseline_path) as f:
            baseline = json.load(f)
    except (OSError, ValueError):
        return None
    lines = []
    for name, cell in payload.get("kernels", {}).items():
        ref = baseline.get("kernels", {}).get(name)
        if not ref:
            continue
        if cell["mb_s"] < ref["mb_s"] * tolerance:
            lines.append(
                f"  {name}: {cell['mb_s']:.2f} MB/s vs committed "
                f"{ref['mb_s']:.2f} MB/s"
            )
    if lines:
        return "kernel throughput drift vs committed baseline:\n" + "\n".join(lines)
    return None
