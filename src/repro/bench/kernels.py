"""Data-plane kernel microbenchmarks (``fractal-bench kernels``).

Measures steady-state throughput (MB/s) of the hot byte-level kernels the
PADs are built from — CDC boundary scanning, LZSS tokenization, the pure
deflate-lite coder, and the rsync-style rolling scan — on deterministic
corpus pages, and compares each against the recorded throughput of the
original (pre-fusion) implementations on the same inputs.

The seed numbers in :data:`SEED_BASELINES` were captured on the reference
container *before* the kernels were rewritten, with the same best-of-N
methodology this module uses; the ``speedup`` column is therefore
apples-to-apples on identical inputs.  Batch-granularity kernels
(``*_batch``) and the zlib fast path carry the *per-message pure kernel's*
seed as their class comparator, so their speedup column reads "vs doing
this work one message at a time in seed-era Python".

Regression gating
-----------------
``compare_to_baseline`` is a **gating** drift check against the committed
``BENCH_kernels.json``: each kernel has an explicit tolerance band
(:data:`TOLERANCE_BANDS`, a fraction of the committed MB/s it must
retain), and raw throughput is first normalized by the
``host_calibration`` kernel — a fixed pure-Python workload whose
committed-vs-measured ratio captures how fast *this* host runs the
interpreter, so a slow CI container shifts every expectation down instead
of tripping the gate.  ``python -m repro.bench.kernels`` is the CI entry
point (exit 1 on regression); the documented escape hatch for a known
host-speed flake is the ``bench-flake`` PR label, which skips the step.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = [
    "SEED_BASELINES",
    "TOLERANCE_BANDS",
    "CALIBRATION_KERNEL",
    "KernelResult",
    "run_kernels",
    "render_kernels",
    "results_to_payload",
    "write_json",
    "compare_to_baseline",
    "main",
]

# Recorded seed (pre-optimization) kernel throughput, same inputs and
# best-of-N timing as run_kernels() uses.  ``seconds`` is the seed wall
# time for one pass over ``bytes`` input bytes.  Batch kernels and the
# zlib backend did not exist at seed time: their entries reuse the
# per-message pure kernel's seed MB/s (the work *class* they replace),
# with ``seconds`` derived for the batch input size.  host_calibration's
# "seed" is simply its first recorded measurement (speedup ~1 by
# construction — it is the normalizer, not an optimization target).
SEED_BASELINES: dict[str, dict[str, float]] = {
    "cdc_scan":             {"bytes": 269754, "seconds": 0.14261, "mb_s": 1.892},
    "cdc_scan_vary":        {"bytes": 131072, "seconds": 0.07666, "mb_s": 1.710},
    "cdc_scan_batch":       {"bytes": 1080402, "seconds": 0.57103, "mb_s": 1.892},
    "lz77_tokenize":        {"bytes": 134770, "seconds": 0.31729, "mb_s": 0.425},
    "lz77_tokenize_batch":  {"bytes": 262144, "seconds": 0.61681, "mb_s": 0.425},
    "gzip_pure_compress":   {"bytes": 134770, "seconds": 0.60948, "mb_s": 0.221},
    "gzip_batch_compress":  {"bytes": 134770, "seconds": 0.60948, "mb_s": 0.221},
    "gzip_zlib_compress":   {"bytes": 134770, "seconds": 0.60948, "mb_s": 0.221},
    "gzip_pure_decompress": {"bytes": 134770, "seconds": 0.45140, "mb_s": 0.299},
    "fixed_scan":           {"bytes": 134770, "seconds": 0.01524, "mb_s": 8.846},
    "vary_respond":         {"bytes": 134770, "seconds": 0.14223, "mb_s": 0.948},
    "host_calibration":     {"bytes": 65536, "seconds": 0.00515, "mb_s": 12.735},
}

# The kernel whose committed-vs-measured ratio normalizes host speed for
# the gating drift check.  A fixed pure-Python byte loop: no numpy, no C
# fast paths, no caches — it tracks raw interpreter speed, which is what
# dominates the pure kernels this suite guards.
CALIBRATION_KERNEL = "host_calibration"

# Gating tolerance bands: after host-speed normalization, a kernel must
# retain at least this fraction of its committed BENCH_kernels.json MB/s
# or the CI drift step fails.  Bands are per-kernel because variance
# differs by implementation class: pure-Python loops track the
# calibration kernel tightly; numpy-vectorized kernels depend on BLAS/
# allocator behaviour the calibration loop can't see; zlib is C-speed
# and nearly host-independent but cold containers jitter its small
# timings.  The calibration kernel itself is never gated.
TOLERANCE_BANDS: dict[str, float] = {
    "default":              0.50,
    "cdc_scan":             0.45,   # numpy scan
    "cdc_scan_vary":        0.45,   # numpy scan
    "cdc_scan_batch":       0.45,   # numpy scan, batched
    "lz77_tokenize":        0.50,   # numpy table + scalar parse
    "lz77_tokenize_batch":  0.50,
    "gzip_pure_compress":   0.55,   # mostly pure-Python coding loop
    "gzip_batch_compress":  0.55,
    "gzip_zlib_compress":   0.40,   # tiny wall time, relatively noisy
    "gzip_pure_decompress": 0.55,
    "fixed_scan":           0.45,   # numpy rolling scan
    "vary_respond":         0.45,
}

# Quick (single-pass) smoke numbers are noisier than best-of-3; the gate
# widens every band by this much when the measured payload is quick.
_QUICK_EXTRA_SLACK = 0.15


@dataclass(frozen=True)
class KernelResult:
    """One kernel's measured throughput next to its recorded seed number."""

    name: str
    n_bytes: int
    seconds: float
    mb_s: float
    seed_mb_s: float

    @property
    def speedup(self) -> float:
        return self.mb_s / self.seed_mb_s if self.seed_mb_s > 0 else float("inf")


def _best_of(fn: Callable[[], object], repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


_CALIBRATION_DATA = bytes(range(256)) * 256  # 64 KiB, fixed content


def _calibration_pass(data: bytes = _CALIBRATION_DATA) -> int:
    """The host-calibration workload: a pure-Python byte-mix loop."""
    acc = 0
    for b in data:
        acc = (acc * 31 + b) & 0xFFFFFFFF
    return acc


def run_kernels(quick: bool = False) -> list[KernelResult]:
    """Measure every kernel on the deterministic corpus pages.

    ``quick`` runs a single warm pass per kernel instead of best-of-3 —
    the CI smoke configuration.  Inputs are identical either way, so quick
    numbers are comparable (just noisier).
    """
    from ..chunking.cdc import ContentDefinedChunker
    from ..compression import gziplike
    from ..compression.lz77 import tokenize, tokenize_batch
    from ..protocols.padlib import instantiate
    from ..workload.pages import Corpus

    repeat = 1 if quick else 3
    corpus = Corpus()
    page0 = corpus.evolved(0, 0).encode()
    page1 = corpus.evolved(0, 1).encode()
    cdc_data = (page0 + page1)[: 512 * 1024]
    # Batch-kernel corpora: several distinct pages (the fleet-store cold
    # path), several session buffers, and a stream of per-message
    # payloads cut from one page.
    batch_pages = [
        corpus.evolved(p, v).encode() for p in range(4) for v in (0, 1)
    ]
    batch_buffers = [p[: 32 * 1024] for p in batch_pages]
    batch_messages = [
        page1[i : i + 4096] for i in range(0, len(page1), 4096)
    ]

    results: list[KernelResult] = []

    def record(name: str, n_bytes: int, fn: Callable[[], object]) -> None:
        fn()  # warm: table caches, lazy imports, allocator
        seconds = _best_of(fn, repeat)
        results.append(
            KernelResult(
                name=name,
                n_bytes=n_bytes,
                seconds=seconds,
                mb_s=n_bytes / seconds / 1e6 if seconds > 0 else float("inf"),
                seed_mb_s=SEED_BASELINES[name]["mb_s"],
            )
        )

    record(
        "host_calibration", len(_CALIBRATION_DATA), lambda: _calibration_pass()
    )

    ch13 = ContentDefinedChunker(mask_bits=13)
    record("cdc_scan", len(cdc_data), lambda: ch13.chunk(cdc_data))

    ch10 = ContentDefinedChunker(mask_bits=10)
    vary_data = cdc_data[: 128 * 1024]
    record("cdc_scan_vary", len(vary_data), lambda: ch10.chunk(vary_data))

    record(
        "cdc_scan_batch",
        sum(len(p) for p in batch_pages),
        lambda: ch13.chunk_batch(batch_pages),
    )

    record("lz77_tokenize", len(page1), lambda: tokenize(page1))

    record(
        "lz77_tokenize_batch",
        sum(len(b) for b in batch_buffers),
        lambda: tokenize_batch(batch_buffers),
    )

    blob = gziplike.compress(page1, backend="pure")
    record(
        "gzip_pure_compress",
        len(page1),
        lambda: gziplike.compress(page1, backend="pure"),
    )
    record(
        "gzip_batch_compress",
        sum(len(m) for m in batch_messages),
        lambda: gziplike.compress_batch(batch_messages, backend="pure"),
    )
    record(
        "gzip_zlib_compress",
        len(page1),
        lambda: gziplike.compress(page1, backend="zlib"),
    )
    record("gzip_pure_decompress", len(page1), lambda: gziplike.decompress(blob))

    fixed = instantiate("fixed")
    sig = fixed.client_request(page0)
    record("fixed_scan", len(page1), lambda: fixed.server_respond(sig, page0, page1))

    vary = instantiate("vary")
    record("vary_respond", len(page1), lambda: vary.server_respond(b"", page0, page1))

    return results


def render_kernels(results: list[KernelResult], quick: bool = False) -> str:
    from .reporting import render_table

    rows = []
    for r in results:
        rows.append(
            [
                r.name,
                f"{r.n_bytes / 1024:.0f} KiB",
                f"{r.seconds * 1000:.1f}",
                f"{r.mb_s:.2f}",
                f"{r.seed_mb_s:.2f}",
                f"{r.speedup:.1f}x",
            ]
        )
    mode = "quick, 1 pass" if quick else "best of 3"
    return render_table(
        f"Data-plane kernel throughput vs recorded seed ({mode})",
        ["kernel", "input", "ms", "MB/s", "seed MB/s", "speedup"],
        rows,
    )


def results_to_payload(results: list[KernelResult], quick: bool = False) -> dict:
    """JSON-serializable before/after record (``BENCH_kernels.json``)."""
    return {
        "quick": quick,
        "kernels": {
            r.name: {
                "bytes": r.n_bytes,
                "seconds": round(r.seconds, 6),
                "mb_s": round(r.mb_s, 3),
                "seed_seconds": SEED_BASELINES[r.name]["seconds"],
                "seed_mb_s": SEED_BASELINES[r.name]["mb_s"],
                "speedup": round(r.speedup, 2),
            }
            for r in results
        },
    }


def write_json(payload: dict, path: str) -> None:
    with open(path, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")


def compare_to_baseline(
    payload: dict, baseline_path: str, *, quick: Optional[bool] = None
) -> Optional[str]:
    """Gating drift check against the committed baseline JSON.

    Host speed is normalized first: the measured-vs-committed ratio of
    the :data:`CALIBRATION_KERNEL` scales every expectation, so the gate
    compares "how this host should run the kernel" against how it did.
    A kernel fails when its measured MB/s falls below ``committed * scale
    * band`` with ``band`` from :data:`TOLERANCE_BANDS` (widened by
    ``_QUICK_EXTRA_SLACK`` for single-pass quick payloads).  Returns the
    failure report (one line per regressed kernel) or None when every
    kernel is within its band / there is no baseline to compare against.
    """
    try:
        with open(baseline_path) as f:
            baseline = json.load(f)
    except (OSError, ValueError):
        return None
    measured = payload.get("kernels", {})
    committed = baseline.get("kernels", {})
    if quick is None:
        quick = bool(payload.get("quick"))
    scale = 1.0
    cal_now = measured.get(CALIBRATION_KERNEL)
    cal_ref = committed.get(CALIBRATION_KERNEL)
    if cal_now and cal_ref and cal_ref.get("mb_s", 0) > 0:
        scale = cal_now["mb_s"] / cal_ref["mb_s"]
    slack = _QUICK_EXTRA_SLACK if quick else 0.0
    lines = []
    for name, cell in measured.items():
        if name == CALIBRATION_KERNEL:
            continue
        ref = committed.get(name)
        if not ref:
            continue
        band = max(
            TOLERANCE_BANDS.get(name, TOLERANCE_BANDS["default"]) - slack, 0.0
        )
        floor = ref["mb_s"] * scale * band
        if cell["mb_s"] < floor:
            lines.append(
                f"  {name}: {cell['mb_s']:.2f} MB/s < floor {floor:.2f} "
                f"(committed {ref['mb_s']:.2f} x host scale {scale:.2f} "
                f"x band {band:.2f})"
            )
    if lines:
        return (
            f"kernel throughput regression vs committed baseline "
            f"(host scale {scale:.2f}):\n" + "\n".join(lines)
        )
    return None


def main(argv: Optional[list[str]] = None) -> int:
    """CI gate: ``python -m repro.bench.kernels --measured X --baseline Y``.

    Exits 1 (after printing the per-kernel report) when any kernel
    regresses beyond its tolerance band, 0 otherwise.  A missing or
    unreadable baseline passes — a brand-new checkout has nothing to
    regress against.  The documented escape hatch for a known host-speed
    flake is the ``bench-flake`` PR label, which skips the CI step that
    invokes this (see .github/workflows/ci.yml).
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.kernels",
        description="Gating kernel-throughput drift check.",
    )
    parser.add_argument(
        "--measured", required=True,
        help="freshly measured kernels JSON (fractal-bench kernels --json)",
    )
    parser.add_argument(
        "--baseline", default="BENCH_kernels.json",
        help="committed baseline JSON (default BENCH_kernels.json)",
    )
    args = parser.parse_args(argv)
    with open(args.measured) as f:
        payload = json.load(f)
    report = compare_to_baseline(payload, args.baseline)
    if report is not None:
        print(report)
        print(
            "\nGate failed: declared tolerance bands exceeded. If this is a "
            "known host-speed flake, apply the 'bench-flake' PR label to "
            "skip this step; otherwise fix the regression or update the "
            "committed BENCH_kernels.json with justification."
        )
        return 1
    print("kernel drift gate: all kernels within tolerance bands")
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
