"""Bench harness for the adversarial workload suite (`fractal-bench attacks`).

One campaign builds a fresh case-study system with *small* LRU bounds
(sized from the event budget, so floods actually hit the bounds) and
executes the requested attack classes through
:class:`~repro.attacks.AttackScenario`.  ``duration`` is interpreted as
a deterministic **event budget scalar**, never a wall-clock cutoff:
``events_per_attack = max(1, round(duration * EVENTS_PER_SECOND *
intensity))``, so the same arguments produce the same ledger on any
machine — the property the CI smoke gate pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..attacks import KIND_ORDER, AttackScenario, ScenarioResult
from ..core.system import APPSERVER_ENDPOINT, PROXY_ENDPOINT, build_case_study

__all__ = [
    "EVENTS_PER_SECOND",
    "AttackCampaign",
    "run_attack_campaign",
    "campaign_to_payload",
    "render_campaign",
]

# Event-budget scalar: `--duration 5` buys 20 events per attack class at
# intensity 1.0.  A scalar, not a rate — nothing here sleeps or times out.
EVENTS_PER_SECOND = 4

# Floor for the shrunken proxy bounds; below this the victims themselves
# would not fit before the flood starts.
_MIN_BOUND = 8


@dataclass
class AttackCampaign:
    """One `fractal-bench attacks` run: parameters + the scenario ledger."""

    seed: int
    intensity: float
    duration_s: float
    events_per_attack: int
    bound: int  # proxy_max_sessions == proxy_dist_max_entries
    strategy: str
    transport: str  # "inproc" or "tcp"
    result: ScenarioResult


def run_attack_campaign(
    *,
    seed: int = 0,
    duration_s: float = 5.0,
    intensity: float = 1.0,
    kinds: Optional[Sequence[str]] = None,
    strategy: str = "hottest-edge",
    transport: str = "inproc",
) -> AttackCampaign:
    """Build a bounded system and run the campaign against it.

    The LRU bounds scale with the event budget (half of it, floored at
    :data:`_MIN_BOUND`) so every intensity exercises both the absorbing
    regime (flood fits under the bound) and the degrading one (victims
    get evicted) — the survival-vs-intensity curve in EXPERIMENTS.md
    comes from sweeping ``intensity`` with everything else fixed.

    ``transport="tcp"`` reruns the identical campaign over real loopback
    sockets: the proxy and appserver handlers are re-bound on a
    :class:`~repro.simnet.realnet.TcpTransport` and ``system.transport``
    is swapped before the scenario installs its fault injector, so every
    attack event — and every legitimate victim session — crosses the
    kernel TCP stack.  The ledger is event-counted, so it reconciles
    exactly on both transports.
    """
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    if intensity <= 0:
        raise ValueError(f"intensity must be positive, got {intensity}")
    if transport not in ("inproc", "tcp"):
        raise ValueError(f"transport must be 'inproc' or 'tcp', got {transport!r}")
    events = max(1, round(duration_s * EVENTS_PER_SECOND * intensity))
    bound = max(_MIN_BOUND, events // 2)
    system = build_case_study(
        dedup=True,
        proxy_max_sessions=bound,
        proxy_dist_max_entries=bound,
    )
    tcp = None
    if transport == "tcp":
        from ..simnet.realnet import TcpTransport

        tcp = TcpTransport(idle_timeout_s=1.0)
        tcp.bind(PROXY_ENDPOINT, system.proxy.handle)
        tcp.bind(APPSERVER_ENDPOINT, system.appserver.handle)
        system.transport = tcp
    try:
        scenario = AttackScenario(system, seed=seed, victim_strategy=strategy)
        result = scenario.run(kinds, events_per_attack=events)
    finally:
        if tcp is not None:
            tcp.close()
    return AttackCampaign(
        seed=seed,
        intensity=intensity,
        duration_s=duration_s,
        events_per_attack=events,
        bound=bound,
        strategy=strategy,
        transport=transport,
        result=result,
    )


def campaign_to_payload(campaign: AttackCampaign) -> dict:
    return {
        "seed": campaign.seed,
        "intensity": campaign.intensity,
        "duration_s": campaign.duration_s,
        "events_per_attack": campaign.events_per_attack,
        "bound": campaign.bound,
        "strategy": campaign.strategy,
        "transport": campaign.transport,
        **campaign.result.to_payload(),
    }


def render_campaign(campaign: AttackCampaign) -> str:
    from .reporting import render_table

    result = campaign.result
    rows = []
    for o in result.outcomes:
        rows.append(
            [
                o.kind,
                o.target,
                o.launched,
                o.absorbed,
                o.degraded,
                f"{o.survival * 100:.0f}%",
                "exact" if o.launched == o.absorbed + o.degraded else "MISMATCH",
            ]
        )
    title = (
        f"Attacks: seeded adversarial campaign (seed {campaign.seed}, "
        f"intensity {campaign.intensity:g}, {campaign.events_per_attack} "
        f"events/class, bounds {campaign.bound}, victim {campaign.strategy}, "
        f"transport {campaign.transport})"
    )
    table = render_table(
        title,
        ["attack", "target", "launched", "absorbed", "degraded", "survival",
         "identity"],
        rows,
    )
    summary = (
        f"{result.launched} attack events: {result.absorbed} absorbed, "
        f"{result.degraded} degraded; ledger "
        f"{'reconciled exactly' if result.reconciled else 'MISMATCH'}"
    )
    return f"{table}\n\n{summary}"
