"""System-capacity experiments (Fig. 9).

Fig. 9(a): average negotiation time vs number of clients with one
adaptation proxy — should stay flat because (i) the path search is cheap,
(ii) the adaptation cache answers repeated environments, and (iii) each
client negotiates once per environment/session.

Fig. 9(b): average PAD retrieval time vs number of clients — a burst of
simultaneous downloads against one centralized PAD server (time grows
linearly with load on its shared uplink) vs the same burst spread over CDN
edges (stays flat).

Both run on the discrete-event simulator with service parameters that can
be *measured* from the real proxy (:func:`measure_proxy_service_times`),
so the simulated capacity curve is anchored to the implementation it
models.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..cdn.planetlab import build_deployment
from ..simnet.kernel import Simulator
from ..simnet.pipe import FairSharePipe
from ..simnet.stats import RunningStats, Series
from ..workload.profiles import PAPER_ENVIRONMENTS

__all__ = [
    "ProxyServiceTimes",
    "derive_rng",
    "measure_proxy_service_times",
    "negotiation_time_experiment",
    "retrieval_time_experiment",
    "DEFAULT_CLIENT_COUNTS",
]

DEFAULT_CLIENT_COUNTS = (1, 25, 50, 75, 100, 150, 200, 250, 300)

# Every experiment draws from an RNG derived per (seed, client count) so
# each point on a capacity curve is independent of which other points were
# requested.  The repr-of-tuple seed is stable across processes and
# independent of PYTHONHASHSEED.
RngFactory = Callable[[int], random.Random]


def derive_rng(seed: int, n_clients: int) -> random.Random:
    """The default per-point RNG for the capacity curves."""
    return random.Random(repr((seed, n_clients)))


@dataclass(frozen=True)
class ProxyServiceTimes:
    """Per-request proxy costs feeding the capacity simulation."""

    cache_miss_s: float = 2.0e-3
    cache_hit_s: float = 0.3e-3
    rtt_s: float = 2.0e-3  # client <-> proxy network round trip


def measure_proxy_service_times(system, *, rtt_s: float = 2.0e-3) -> ProxyServiceTimes:
    """Measure real miss/hit negotiation service times on ``system``'s proxy.

    Drives the actual negotiation manager (search + cache) directly, the
    same code path the INP handler uses.
    """
    from ..core.metadata import DevMeta, NtwkMeta
    from ..core.system import APP_ID

    env = PAPER_ENVIRONMENTS[0]
    dev = DevMeta(
        env.device.os_type, env.device.cpu_type, env.device.cpu_mhz,
        env.device.memory_mb,
    )
    ntwk = NtwkMeta(env.link.network_type.value, env.link.bandwidth_bps / 1000.0)
    proxy = system.proxy
    # Miss: clear by using a bandwidth value no prior entry used.
    miss_ntwk = NtwkMeta(ntwk.network_type, ntwk.bandwidth_kbps + 0.125)
    t0 = time.perf_counter()
    proxy.negotiate(APP_ID, dev, miss_ntwk)
    miss = time.perf_counter() - t0
    t0 = time.perf_counter()
    proxy.negotiate(APP_ID, dev, miss_ntwk)
    hit = time.perf_counter() - t0
    return ProxyServiceTimes(cache_miss_s=max(miss, 1e-6),
                             cache_hit_s=max(hit, 1e-7), rtt_s=rtt_s)


def negotiation_time_experiment(
    client_counts=DEFAULT_CLIENT_COUNTS,
    *,
    service: ProxyServiceTimes = ProxyServiceTimes(),
    arrival_rate_hz: float = 50.0,
    proxy_workers: int = 4,
    n_environment_kinds: int = 6,
    seed: int = 7,
    rng_factory: Optional[RngFactory] = None,
) -> Series:
    """Fig. 9(a): mean negotiation time per client count.

    Clients arrive Poisson at ``arrival_rate_hz``; the first client of
    each distinct environment kind is a cache miss, later ones are hits.
    Negotiation spans two proxy round trips (INIT and CLI_META) plus
    queueing plus service — exactly the Fig. 4 window (INIT_REQ to
    PAD_META_REP).
    """
    make_rng = rng_factory or (lambda n: derive_rng(seed, n))
    series = Series("negotiation")
    for n_clients in client_counts:
        rng = make_rng(n_clients)
        sim = Simulator()
        proxy = sim.resource(capacity=proxy_workers, name="proxy")
        seen_envs: set[int] = set()
        stats = RunningStats()

        def client(arrival: float, env_kind: int):
            yield sim.timeout(arrival)
            t_start = sim.now
            # INIT_REQ / INIT_REP round trip.
            yield sim.timeout(service.rtt_s)
            # CLI_META_REP -> PAD_META_REP: queue for a proxy worker.
            req = proxy.acquire()
            yield req
            if env_kind in seen_envs:
                yield sim.timeout(service.cache_hit_s)
            else:
                seen_envs.add(env_kind)
                yield sim.timeout(service.cache_miss_s)
            proxy.release()
            yield sim.timeout(service.rtt_s)
            stats.add(sim.now - t_start)

        t = 0.0
        for i in range(n_clients):
            t += rng.expovariate(arrival_rate_hz)
            sim.process(client(t, rng.randrange(n_environment_kinds)), name=f"c{i}")
        sim.run()
        series.add(n_clients, stats.mean)
    return series


def negotiation_time_experiment_real(
    system,
    client_counts=(1, 50, 150, 300),
    *,
    arrival_rate_hz: float = 50.0,
    proxy_workers: int = 4,
    rtt_s: float = 2.0e-3,
    seed: int = 13,
    rng_factory: Optional[RngFactory] = None,
) -> Series:
    """Fig. 9(a) with the *real* proxy in the loop.

    Each simulated client drives the actual two-message INP exchange
    against ``system``'s adaptation proxy; the wall-clock time of each
    handler call becomes that request's service time in the simulation,
    so queueing, cache behaviour, and search cost are all the genuine
    implementation's.  Clients cycle through the three paper environments
    plus bandwidth jitter so both cache hits and misses occur.
    """
    import itertools

    from ..core import inp as inp_codec
    from ..core.inp import INPMessage, MsgType

    app_id = system.appserver.app_id
    proxy_handle = system.proxy.handle
    env_cycle = list(PAPER_ENVIRONMENTS)

    make_rng = rng_factory or (lambda n: derive_rng(seed, n))
    series = Series("negotiation (real proxy)")
    counter = itertools.count()
    for n_clients in client_counts:
        rng = make_rng(n_clients)
        sim = Simulator()
        workers = sim.resource(capacity=proxy_workers, name="proxy")
        stats = RunningStats()

        def negotiate_once(env, bandwidth_kbps: float) -> float:
            """Drive the real INP exchange; returns wall service seconds."""
            session = f"sim-{next(counter)}"
            t0 = time.perf_counter()
            init = INPMessage(MsgType.INIT_REQ, session, 0, {"app_id": app_id})
            rep = inp_codec.decode(proxy_handle(inp_codec.encode(init)))
            dev = {
                "os_type": env.device.os_type,
                "cpu_type": env.device.cpu_type,
                "cpu_mhz": env.device.cpu_mhz,
                "memory_mb": env.device.memory_mb,
            }
            ntwk = {
                "network_type": env.link.network_type.value,
                "bandwidth_kbps": bandwidth_kbps,
            }
            cli = rep.reply(
                MsgType.CLI_META_REP, {"dev_meta": dev, "ntwk_meta": ntwk}
            )
            final = inp_codec.decode(proxy_handle(inp_codec.encode(cli)))
            assert final.msg_type is MsgType.PAD_META_REP, final.body
            return time.perf_counter() - t0

        def client(arrival: float, env, bandwidth_kbps: float):
            yield sim.timeout(arrival)
            t_start = sim.now
            yield sim.timeout(rtt_s)  # INIT round trip
            req = workers.acquire()
            yield req
            service = negotiate_once(env, bandwidth_kbps)
            yield sim.timeout(service)
            workers.release()
            yield sim.timeout(rtt_s)  # PAD_META_REP delivery
            stats.add(sim.now - t_start)

        t = 0.0
        for i in range(n_clients):
            t += rng.expovariate(arrival_rate_hz)
            env = env_cycle[i % len(env_cycle)]
            # Quantized bandwidth jitter: a handful of distinct values per
            # environment, so the adaptation cache sees hits and misses.
            bw = env.link.bandwidth_bps / 1000.0 * (1.0 + 0.01 * (i % 4))
            sim.process(client(t, env, bw), name=f"c{i}")
        sim.run()
        series.add(n_clients, stats.mean)
    return series


def retrieval_time_experiment(
    client_counts=DEFAULT_CLIENT_COUNTS,
    *,
    pad_bytes: int = 8 * 1024,
    n_edges: int = 20,
    server_uplink_bps: float = 10e6,
    burst_window_s: float = 0.5,
    wan_latency_s: float = 0.04,
    seed: int = 11,
    rng_factory: Optional[RngFactory] = None,
) -> tuple[Series, Series]:
    """Fig. 9(b): mean PAD retrieval time, centralized vs distributed.

    A near-simultaneous burst of ``n`` clients downloads a PAD of
    ``pad_bytes``.  Centralized: every flow shares one server uplink.
    Distributed: clients resolve to their nearest edge on the synthetic
    PlanetLab topology; each edge has the same uplink capacity as the
    centralized server (the benefit is load spreading, not fatter pipes).
    """
    deployment = build_deployment(n_edges=n_edges, n_client_sites=24, seed=seed)
    topo = deployment.topology
    edge_names = [e.name for e in deployment.edges]

    make_rng = rng_factory or (lambda n: derive_rng(seed, n))
    centralized = Series("centralized")
    distributed = Series("distributed (CDN)")
    for n_clients in client_counts:
        rng = make_rng(n_clients)
        sites = [
            deployment.client_sites[rng.randrange(len(deployment.client_sites))]
            for _ in range(n_clients)
        ]
        starts = [rng.uniform(0.0, burst_window_s) for _ in range(n_clients)]

        # -- centralized ---------------------------------------------------
        sim = Simulator()
        pipe = FairSharePipe(sim, server_uplink_bps, "origin-uplink")
        stats = RunningStats()

        def dl_central(start: float, site: str):
            yield sim.timeout(start)
            t0 = sim.now
            yield sim.timeout(wan_latency_s + topo.latency_s(site, "origin"))
            yield pipe.transfer(pad_bytes)
            stats.add(sim.now - t0)

        for start, site in zip(starts, sites):
            sim.process(dl_central(start, site))
        sim.run()
        centralized.add(n_clients, stats.mean)

        # -- distributed ------------------------------------------------------
        sim = Simulator()
        pipes = {name: FairSharePipe(sim, server_uplink_bps, name) for name in edge_names}
        stats = RunningStats()

        def dl_edge(start: float, site: str):
            edge = topo.nearest(site, edge_names)
            yield sim.timeout(start)
            t0 = sim.now
            yield sim.timeout(topo.latency_s(site, edge))
            yield pipes[edge].transfer(pad_bytes)
            stats.add(sim.now - t0)

        for start, site in zip(starts, sites):
            sim.process(dl_edge(start, site))
        sim.run()
        distributed.add(n_clients, stats.mean)
    return centralized, distributed
