"""Protocol-adaptation experiments: Figs. 10 and 11 plus the §1 headline.

Three adaptation scenarios, exactly as §4.4.2 defines them:

* **No protocol adaptation** — direct sending, no negotiation.
* **Fixed protocol adaptation** — every client always uses Vary-sized
  blocking (the static strawman).
* **Adaptive protocol adaptation** — the full Fractal negotiation.

Cost figures combine two sources, both reported: *measured traffic* from
running the real protocol implementations over the corpus (deterministic,
byte-exact) and the *era-calibrated compute model* (see
:mod:`repro.core.era`) that places compute:network ratios where the
paper's 2005 testbed had them.  The winners/orderings the tests assert all
come from the deterministic combination.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..core.metadata import DevMeta, NtwkMeta
from ..core.overhead import OverheadBreakdown, OverheadModel
from ..core.search import find_adaptation_path
from ..protocols import run_exchange
from ..protocols.padlib import instantiate
from ..workload.pages import Corpus
from ..workload.profiles import PAPER_ENVIRONMENTS, ClientEnvironment

__all__ = [
    "Scenario",
    "EnvProtocolCost",
    "measure_traffic",
    "evaluate_environment",
    "fig10_computing_overhead",
    "fig11_bytes_transferred",
    "fig11_total_time",
    "headline_savings",
    "STATIC_PAD",
    "CASE_STUDY_PADS",
]

CASE_STUDY_PADS = ("direct", "gzip", "vary", "bitmap")
STATIC_PAD = "vary"  # the paper's fixed-adaptation strawman


class Scenario(str, enum.Enum):
    NONE = "no-adaptation"
    STATIC = "fixed-adaptation"
    ADAPTIVE = "adaptive-adaptation"


def env_meta(env: ClientEnvironment) -> tuple[DevMeta, NtwkMeta]:
    dev = DevMeta(
        os_type=env.device.os_type,
        cpu_type=env.device.cpu_type,
        cpu_mhz=env.device.cpu_mhz,
        memory_mb=env.device.memory_mb,
    )
    ntwk = NtwkMeta(
        network_type=env.link.network_type.value,
        bandwidth_kbps=env.link.bandwidth_bps / 1000.0,
    )
    return dev, ntwk


@dataclass(frozen=True)
class EnvProtocolCost:
    """One (environment, protocol) cell of Figs. 10/11."""

    env_label: str
    pad_id: str
    traffic_bytes: float          # measured, per page
    breakdown: OverheadBreakdown  # era model terms
    measured_server_s: float      # real implementation on this host
    measured_client_s: float

    @property
    def total_s(self) -> float:
        return self.breakdown.total_s


def measure_traffic(
    corpus: Corpus,
    pad_ids: Sequence[str] = CASE_STUDY_PADS,
    *,
    page_ids: Iterable[int] = (0, 1, 2),
    old_version: int = 0,
    new_version: int = 1,
) -> dict[str, dict[str, float]]:
    """Run every protocol over sample pages; returns per-PAD means.

    Result: ``{pad_id: {"traffic": B, "server_s": s, "client_s": s}}``.
    Traffic is byte-exact and deterministic.
    """
    out: dict[str, dict[str, float]] = {}
    page_ids = list(page_ids)
    for pad_id in pad_ids:
        protocol = instantiate(pad_id)
        traffic = server = client = 0.0
        for page_id in page_ids:
            old_page = corpus.evolved(page_id, old_version)
            new_page = corpus.evolved(page_id, new_version)
            for old, new in zip(
                [old_page.text, *old_page.images], [new_page.text, *new_page.images]
            ):
                result = run_exchange(protocol, old, new)
                traffic += result.traffic_bytes
                server += result.server_time_s
                client += result.client_time_s
        n = len(page_ids)
        out[pad_id] = {
            "traffic": traffic / n,
            "server_s": server / n,
            "client_s": client / n,
        }
    return out


def evaluate_environment(
    system,
    env: ClientEnvironment,
    *,
    measured: Optional[dict[str, dict[str, float]]] = None,
    include_server_compute: bool = True,
    pad_ids: Sequence[str] = CASE_STUDY_PADS,
) -> dict[str, EnvProtocolCost]:
    """Every protocol's cost in one environment (one Fig. 11 column)."""
    if measured is None:
        measured = measure_traffic(system.corpus, pad_ids)
    dev, ntwk = env_meta(env)
    model: OverheadModel = system.proxy.negotiation.model
    if not include_server_compute:
        model = model.without_server_compute()
    pat = system.proxy.negotiation.pat(system.appserver.app_id)
    out: dict[str, EnvProtocolCost] = {}
    for pad_id in pad_ids:
        meta = pat.resolve(pad_id)
        out[pad_id] = EnvProtocolCost(
            env_label=env.label,
            pad_id=pad_id,
            traffic_bytes=measured[pad_id]["traffic"],
            breakdown=model.breakdown(meta, dev, ntwk),
            measured_server_s=measured[pad_id]["server_s"],
            measured_client_s=measured[pad_id]["client_s"],
        )
    return out


def negotiated_winner(
    system, env: ClientEnvironment, *, include_server_compute: bool = True
) -> str:
    dev, ntwk = env_meta(env)
    model = system.proxy.negotiation.model
    if not include_server_compute:
        model = model.without_server_compute()
    pat = system.proxy.negotiation.pat(system.appserver.app_id)
    return find_adaptation_path(pat, model, dev, ntwk).path[-1].pad_id


__all__.append("negotiated_winner")


def _scenario_pad(system, env, scenario: Scenario, include_server: bool) -> str:
    if scenario is Scenario.NONE:
        return "direct"
    if scenario is Scenario.STATIC:
        return STATIC_PAD
    return negotiated_winner(system, env, include_server_compute=include_server)


def fig10_computing_overhead(
    system,
    *,
    envs: Sequence[ClientEnvironment] = PAPER_ENVIRONMENTS,
    measured: Optional[dict[str, dict[str, float]]] = None,
) -> dict[str, dict[str, dict[str, float]]]:
    """Fig. 10: computing overhead per scenario per environment.

    Returns ``{panel: {scenario: {...}}}`` where panels (a)–(c) are the
    three environments with server compute, and (d) is the PDA without it.
    Each cell carries the chosen PAD and its server/client compute seconds
    (era model) plus the real measured times.
    """
    if measured is None:
        measured = measure_traffic(system.corpus)
    panels: dict[str, dict[str, dict[str, float]]] = {}
    panel_envs = [(label, env, True) for label, env in
                  zip("abc", envs)] + [("d", envs[-1], False)]
    for panel, env, include_server in panel_envs:
        cells = {}
        costs_with = evaluate_environment(
            system, env, measured=measured, include_server_compute=include_server
        )
        for scenario in Scenario:
            pad_id = _scenario_pad(system, env, scenario, include_server)
            cost = costs_with[pad_id]
            cells[scenario.value] = {
                "pad": pad_id,
                "server_comp_s": cost.breakdown.server_comp_s,
                "client_comp_s": cost.breakdown.client_comp_s,
                "measured_server_s": cost.measured_server_s,
                "measured_client_s": cost.measured_client_s,
            }
        panels[panel] = cells
    return panels


def fig11_bytes_transferred(
    system,
    *,
    envs: Sequence[ClientEnvironment] = PAPER_ENVIRONMENTS,
    measured: Optional[dict[str, dict[str, float]]] = None,
) -> dict[str, dict[str, float]]:
    """Fig. 11(a): bytes transferred per protocol per environment.

    The same protocol moves the same bytes regardless of environment (the
    paper asserts this; the structure here makes it visible).
    """
    if measured is None:
        measured = measure_traffic(system.corpus)
    return {
        env.label: {pad: measured[pad]["traffic"] for pad in CASE_STUDY_PADS}
        for env in envs
    }


def fig11_total_time(
    system,
    *,
    include_server_compute: bool,
    envs: Sequence[ClientEnvironment] = PAPER_ENVIRONMENTS,
    measured: Optional[dict[str, dict[str, float]]] = None,
) -> dict[str, dict[str, float]]:
    """Fig. 11(b) with server compute / 11(c) without.

    Returns ``{env: {pad: total_s, ..., "winner": pad}}``.
    """
    if measured is None:
        measured = measure_traffic(system.corpus)
    out: dict[str, dict[str, float]] = {}
    for env in envs:
        costs = evaluate_environment(
            system, env, measured=measured,
            include_server_compute=include_server_compute,
        )
        row: dict[str, float] = {pad: costs[pad].total_s for pad in CASE_STUDY_PADS}
        row["winner"] = negotiated_winner(  # type: ignore[assignment]
            system, env, include_server_compute=include_server_compute
        )
        out[env.label] = row
    return out


def headline_savings(
    system,
    *,
    envs: Sequence[ClientEnvironment] = PAPER_ENVIRONMENTS,
    measured: Optional[dict[str, dict[str, float]]] = None,
) -> dict[str, dict[str, float]]:
    """§1's headline: total-overhead reduction vs no/static adaptation.

    The paper reports up to 41% vs no adaptation and 14% vs static "for
    some clients".
    """
    if measured is None:
        measured = measure_traffic(system.corpus)
    out = {}
    for env in envs:
        costs = evaluate_environment(system, env, measured=measured)
        adaptive = costs[negotiated_winner(system, env)].total_s
        none = costs["direct"].total_s
        static = costs[STATIC_PAD].total_s
        out[env.label] = {
            "adaptive_s": adaptive,
            "none_s": none,
            "static_s": static,
            "vs_none": 1.0 - adaptive / none if none else 0.0,
            "vs_static": 1.0 - adaptive / static if static else 0.0,
        }
    return out
