"""Case-study communication-optimization protocols, packaged as PADs."""

from .base import (
    CommProtocol,
    DeltaOp,
    ExchangeResult,
    ProtocolError,
    apply_delta,
    decode_delta,
    encode_delta,
    run_exchange,
)
from .bitmap import BitmapProtocol
from .content import ImageDownscaleProtocol, TextOnlyProtocol
from .direct import DirectProtocol
from .fixed_blocking import FixedBlockingProtocol, RollingChecksum, rolling_checksum
from .gzip_pad import GzipProtocol
from .padlib import PAD_SPECS, PAD_VERSION, PadSpec, build_pad_module, instantiate
from .stack import ProtocolStack
from .vary_blocking import VaryBlockingProtocol

__all__ = [
    "CommProtocol",
    "DeltaOp",
    "ExchangeResult",
    "ProtocolError",
    "apply_delta",
    "decode_delta",
    "encode_delta",
    "run_exchange",
    "BitmapProtocol",
    "ImageDownscaleProtocol",
    "TextOnlyProtocol",
    "DirectProtocol",
    "FixedBlockingProtocol",
    "RollingChecksum",
    "rolling_checksum",
    "GzipProtocol",
    "PAD_SPECS",
    "PAD_VERSION",
    "PadSpec",
    "build_pad_module",
    "instantiate",
    "ProtocolStack",
    "VaryBlockingProtocol",
]
