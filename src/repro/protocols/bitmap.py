"""Bitmap PAD: fixed-size block differencing ([29], paper §4.1).

"Files are updated by dividing both files into fix-sized chunks.  The
client sends digests of each chunk to the server, and the server responds
only with new data chunks."  The response carries a literal *bitmap* (one
bit per client block: 1 = replaced), the new total length, and the data of
every block that changed — which is why it excels on in-place image
updates (DICOM/BMP) and pays nothing to compute.
"""

from __future__ import annotations

import struct
from typing import Optional

from ..chunking import chunk_digest, fixed_chunk_bytes
from .base import CommProtocol, ProtocolError

__all__ = ["BitmapProtocol"]

_DIGEST_TRUNCATE = 16
_HDR = struct.Struct("<IIH")  # new_length, n_client_blocks, block_size_kib


class BitmapProtocol(CommProtocol):
    name = "bitmap"

    def __init__(self, block_size: int = 4096):
        if block_size < 64 or block_size % 64:
            raise ValueError(f"block_size must be a multiple of 64 >= 64, got {block_size}")
        self.block_size = block_size

    # -- phase 1: client uploads digests of its old blocks -------------------

    def client_request(self, old: Optional[bytes]) -> bytes:
        if old is None:
            return b""
        digests = [
            chunk_digest(b, _DIGEST_TRUNCATE)
            for b in fixed_chunk_bytes(old, self.block_size)
        ]
        return b"".join(digests)

    # -- phase 2: server replies with bitmap + changed blocks ----------------

    def server_respond(
        self, request: bytes, old: Optional[bytes], new: bytes
    ) -> bytes:
        if len(request) % _DIGEST_TRUNCATE:
            raise ProtocolError("digest upload is not a whole number of digests")
        client_digests = [
            request[i : i + _DIGEST_TRUNCATE]
            for i in range(0, len(request), _DIGEST_TRUNCATE)
        ]
        new_blocks = fixed_chunk_bytes(new, self.block_size)
        n = len(new_blocks)
        bitmap = bytearray((n + 7) // 8)
        changed: list[bytes] = []
        for i, block in enumerate(new_blocks):
            same = (
                i < len(client_digests)
                and chunk_digest(block, _DIGEST_TRUNCATE) == client_digests[i]
            )
            if not same:
                bitmap[i // 8] |= 1 << (i % 8)
                changed.append(block)
        header = _HDR.pack(len(new), n, self.block_size // 64)
        return header + bytes(bitmap) + b"".join(changed)

    # -- phase 3: client rebuilds ---------------------------------------------

    def client_reconstruct(self, old: Optional[bytes], response: bytes) -> bytes:
        if len(response) < _HDR.size:
            raise ProtocolError("bitmap response too short")
        new_length, n_blocks, bs_kib = _HDR.unpack_from(response)
        block_size = bs_kib * 64
        if block_size != self.block_size:
            raise ProtocolError(
                f"server used block size {block_size}, client expected {self.block_size}"
            )
        pos = _HDR.size
        bitmap_len = (n_blocks + 7) // 8
        if pos + bitmap_len > len(response):
            raise ProtocolError("truncated bitmap")
        bitmap = response[pos : pos + bitmap_len]
        pos += bitmap_len
        old_blocks = fixed_chunk_bytes(old or b"", block_size)
        out = bytearray()
        for i in range(n_blocks):
            replaced = bitmap[i // 8] & (1 << (i % 8))
            if replaced:
                length = min(block_size, new_length - len(out))
                if pos + length > len(response):
                    raise ProtocolError("truncated changed-block data")
                out += response[pos : pos + length]
                pos += length
            else:
                if i >= len(old_blocks):
                    raise ProtocolError(f"block {i} marked unchanged but client has no such block")
                out += old_blocks[i]
        if pos != len(response):
            raise ProtocolError(f"{len(response) - pos} trailing bytes in bitmap response")
        if len(out) != new_length:
            raise ProtocolError(
                f"rebuilt {len(out)} bytes, header promised {new_length}"
            )
        return bytes(out)
