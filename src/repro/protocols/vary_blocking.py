"""Vary-sized blocking (LBFS-style) PAD.

The server holds both the client's old version and the new version; it
chunks both at Rabin content-defined breakpoints, indexes the old chunks by
digest, and emits a COPY/DATA delta for the new version.  Content-defined
boundaries survive insertions/deletions, so shifted-but-unchanged content
becomes COPY ops — the least-traffic protocol of the four, at the price of
heavy server-side computation (the paper's Fig. 10 headline).
"""

from __future__ import annotations

from typing import Optional

from ..chunking import ContentDefinedChunker, DigestTable, chunk_digest
from .base import (
    CommProtocol,
    DeltaOp,
    ProtocolError,
    apply_delta,
    decode_delta,
    encode_delta,
)

__all__ = ["VaryBlockingProtocol"]

_DIGEST_TRUNCATE = 16  # bytes of SHA-1 per chunk, LBFS-style truncation


class VaryBlockingProtocol(CommProtocol):
    name = "vary"

    def __init__(self, *, mask_bits: int = 10, window: int = 48):
        # mask_bits=10 -> 1 KiB expected chunks: fine-grained enough that a
        # localized image edit drags in little collateral data.
        self.chunker = ContentDefinedChunker(mask_bits=mask_bits, window=window)

    def server_respond(
        self, request: bytes, old: Optional[bytes], new: bytes
    ) -> bytes:
        if old is None:
            # First contact: nothing to diff against.
            return encode_delta([DeltaOp(data=new)] if new else [])
        old_chunks = self.chunker.chunk(old)
        table = DigestTable.from_chunks(old, old_chunks, truncate=_DIGEST_TRUNCATE)
        ops: list[DeltaOp] = []
        pending = bytearray()

        def flush() -> None:
            if pending:
                ops.append(DeltaOp(data=bytes(pending)))
                pending.clear()

        for chunk in self.chunker.chunk(new):
            piece = chunk.slice(new)
            hits = table.lookup(chunk_digest(piece, _DIGEST_TRUNCATE))
            matched = None
            for hit in hits:
                # Guard against (truncated-)digest collisions with a real
                # byte compare; the server has both versions in memory.
                if old[hit.offset : hit.offset + hit.length] == piece:
                    matched = hit
                    break
            if matched is not None:
                flush()
                ops.append(DeltaOp(offset=matched.offset, length=matched.length))
            else:
                pending += piece
        flush()
        return encode_delta(ops)

    def client_reconstruct(self, old: Optional[bytes], response: bytes) -> bytes:
        ops = decode_delta(response)
        if old is None:
            if any(op.is_copy for op in ops):
                raise ProtocolError("COPY op without an old version")
            return b"".join(op.data or b"" for op in ops)
        return apply_delta(old, ops)
