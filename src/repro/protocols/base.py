"""Communication-optimization protocol interface.

All four case-study PADs (plus the rsync-style extension) implement one
three-phase exchange per resource (a page part — the text or one image):

1. ``client_request(old)``  — uplink payload describing what the client has
   (empty for protocols that don't need it).
2. ``server_respond(request, old, new)`` — downlink payload encoding the
   new version (possibly as a delta against ``old``).
3. ``client_reconstruct(old, response)`` — rebuild the new version.

Traffic for the exchange is ``len(request) + len(response)``; compute is
measured around phases 2 (server) and 1+3 (client).  The module also
provides the shared copy/data **delta encoding** used by the differencing
protocols, and :class:`ExchangeResult` accounting.

This module is importable from inside the mobile-code sandbox — PAD source
shipped over the wire subclasses :class:`CommProtocol`.
"""

from __future__ import annotations

import struct
import time
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "ProtocolError",
    "CommProtocol",
    "ExchangeResult",
    "run_exchange",
    "DeltaOp",
    "encode_delta",
    "decode_delta",
    "apply_delta",
]


class ProtocolError(Exception):
    """Raised for malformed payloads or reconstruction failures."""


class CommProtocol:
    """Base class; subclasses override the three phases.

    ``name`` doubles as the PAD identifier in the negotiation layer.
    """

    name: str = "abstract"

    def client_request(self, old: Optional[bytes]) -> bytes:
        """Uplink payload (default: nothing)."""
        return b""

    def server_respond(
        self, request: bytes, old: Optional[bytes], new: bytes
    ) -> bytes:
        raise NotImplementedError

    def client_reconstruct(self, old: Optional[bytes], response: bytes) -> bytes:
        raise NotImplementedError


@dataclass
class ExchangeResult:
    """Accounting for one resource exchange."""

    protocol: str
    request_bytes: int
    response_bytes: int
    original_bytes: int
    client_time_s: float
    server_time_s: float
    data: bytes

    @property
    def traffic_bytes(self) -> int:
        return self.request_bytes + self.response_bytes

    @property
    def savings_ratio(self) -> float:
        """Fraction of the direct-send traffic avoided (can be negative)."""
        if self.original_bytes == 0:
            return 0.0
        return 1.0 - self.traffic_bytes / self.original_bytes


def run_exchange(
    protocol: CommProtocol,
    old: Optional[bytes],
    new: bytes,
    *,
    precomputed_response: Optional[bytes] = None,
    verify: Optional[bool] = None,
) -> ExchangeResult:
    """Run the three phases, timing each side and verifying correctness.

    ``precomputed_response`` models the paper's *proactive* adaptive
    content: the server already holds the encoded response, so server
    compute time is zero at request time.

    ``verify`` controls the reconstruct-exactly check.  It defaults to
    the protocol's contract: lossless protocols must reproduce ``new``
    byte-for-byte; content-adaptation PADs (``protocol.lossy`` is True)
    intentionally deliver transformed content and skip the check.
    """
    t0 = time.perf_counter()
    request = protocol.client_request(old)
    t1 = time.perf_counter()
    if precomputed_response is None:
        response = protocol.server_respond(request, old, new)
        t2 = time.perf_counter()
        server_time = t2 - t1
    else:
        response = precomputed_response
        server_time = 0.0
        t2 = time.perf_counter()
    rebuilt = protocol.client_reconstruct(old, response)
    t3 = time.perf_counter()
    if verify is None:
        verify = not getattr(protocol, "lossy", False)
    if verify and rebuilt != new:
        raise ProtocolError(
            f"protocol {protocol.name!r} failed to reconstruct the new version "
            f"({len(rebuilt)} vs {len(new)} bytes)"
        )
    return ExchangeResult(
        protocol=protocol.name,
        request_bytes=len(request),
        response_bytes=len(response),
        original_bytes=len(new),
        client_time_s=(t1 - t0) + (t3 - t2),
        server_time_s=server_time,
        data=rebuilt,
    )


# -- shared delta encoding ----------------------------------------------------
#
# A delta is a sequence of ops over the old version:
#   COPY  (op 0x01): u32 offset, u32 length   -> copy old[offset:offset+length]
#   DATA  (op 0x02): u32 length, raw bytes    -> literal insertion
# terminated by END (op 0x00).  u32s are little-endian.

_OP_END = 0x00
_OP_COPY = 0x01
_OP_DATA = 0x02
_U32 = struct.Struct("<I")


@dataclass(frozen=True)
class DeltaOp:
    """One delta instruction; ``data`` is None for COPY ops."""

    offset: int = 0
    length: int = 0
    data: Optional[bytes] = None

    @property
    def is_copy(self) -> bool:
        return self.data is None


def encode_delta(ops: list[DeltaOp]) -> bytes:
    out = bytearray()
    for op in ops:
        if op.is_copy:
            if op.length <= 0 or op.offset < 0:
                raise ProtocolError(f"invalid COPY op: {op}")
            out.append(_OP_COPY)
            out += _U32.pack(op.offset)
            out += _U32.pack(op.length)
        else:
            assert op.data is not None
            if not op.data:
                raise ProtocolError("empty DATA op")
            out.append(_OP_DATA)
            out += _U32.pack(len(op.data))
            out += op.data
    out.append(_OP_END)
    return bytes(out)


def decode_delta(blob: bytes) -> list[DeltaOp]:
    ops: list[DeltaOp] = []
    pos = 0
    n = len(blob)
    while True:
        if pos >= n:
            raise ProtocolError("delta missing END op")
        opcode = blob[pos]
        pos += 1
        if opcode == _OP_END:
            if pos != n:
                raise ProtocolError(f"{n - pos} trailing bytes after END op")
            return ops
        if opcode == _OP_COPY:
            if pos + 8 > n:
                raise ProtocolError("truncated COPY op")
            (offset,) = _U32.unpack_from(blob, pos)
            (length,) = _U32.unpack_from(blob, pos + 4)
            pos += 8
            ops.append(DeltaOp(offset=offset, length=length))
        elif opcode == _OP_DATA:
            if pos + 4 > n:
                raise ProtocolError("truncated DATA header")
            (length,) = _U32.unpack_from(blob, pos)
            pos += 4
            if pos + length > n:
                raise ProtocolError("truncated DATA payload")
            ops.append(DeltaOp(data=blob[pos : pos + length]))
            pos += length
        else:
            raise ProtocolError(f"unknown delta opcode {opcode:#x}")


def apply_delta(old: bytes, ops: list[DeltaOp]) -> bytes:
    out = bytearray()
    for op in ops:
        if op.is_copy:
            if op.offset + op.length > len(old):
                raise ProtocolError(
                    f"COPY [{op.offset}, {op.offset + op.length}) exceeds old "
                    f"version of {len(old)} bytes"
                )
            out += old[op.offset : op.offset + op.length]
        else:
            assert op.data is not None
            out += op.data
    return bytes(out)
