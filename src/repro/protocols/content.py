"""Content-adaptation PADs (the paper's §5 generalization).

"Fractal provides a general framework for other adaptation functionality
as well by extending the PAD into other adaptation functions, e.g.
content adaptation."  These PADs transform the content itself instead of
(or in addition to) optimizing its transport: a small-screen device
receives downscaled images; a text-only device receives no images at all.

Content adaptation is *lossy*, so these protocols don't satisfy the
reconstruct-exactly contract — :func:`~repro.protocols.base.run_exchange`
must be called with ``verify=False`` (the session layer does this for
PADs whose ``lossy`` attribute is True).
"""

from __future__ import annotations

import struct
from typing import Optional

from ..workload.images import SyntheticImage, decode_image
from .base import CommProtocol, ProtocolError

__all__ = ["ImageDownscaleProtocol", "TextOnlyProtocol"]


class ImageDownscaleProtocol(CommProtocol):
    """Ship images at a fraction of their resolution.

    Works on the corpus's image parts; non-image parts (text) pass
    through unchanged.  Downscaling by ``factor`` keeps every
    ``factor``-th row and column, cutting image bytes by ~factor².
    """

    name = "downscale"
    lossy = True

    def __init__(self, factor: int = 2):
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        self.factor = factor

    def server_respond(
        self, request: bytes, old: Optional[bytes], new: bytes
    ) -> bytes:
        try:
            image = decode_image(new)
        except ValueError:
            return b"T" + new  # not an image: tag and pass through
        pixels = image.pixels[:: self.factor, :: self.factor]
        # numpy slicing keeps a view; the encoder needs it contiguous.
        blob = SyntheticImage(pixels.copy()).encode()
        return b"I" + struct.pack("<H", self.factor) + blob

    def client_reconstruct(self, old: Optional[bytes], response: bytes) -> bytes:
        if not response:
            raise ProtocolError("empty downscale response")
        tag, body = response[:1], response[1:]
        if tag == b"T":
            return body
        if tag == b"I":
            if len(body) < 2:
                raise ProtocolError("truncated downscale header")
            # The factor is informational (a real client would upsample
            # for display); the adapted image *is* the content now.
            return body[2:]
        raise ProtocolError(f"unknown downscale tag {tag!r}")


class TextOnlyProtocol(CommProtocol):
    """Strip images entirely: the paper's cell-phone-class adaptation."""

    name = "textonly"
    lossy = True

    def server_respond(
        self, request: bytes, old: Optional[bytes], new: bytes
    ) -> bytes:
        try:
            decode_image(new)
        except ValueError:
            return b"T" + new  # text part survives
        return b"X"  # image part dropped

    def client_reconstruct(self, old: Optional[bytes], response: bytes) -> bytes:
        if not response:
            raise ProtocolError("empty textonly response")
        if response[:1] == b"T":
            return response[1:]
        if response == b"X":
            return b""
        raise ProtocolError("malformed textonly response")
