"""Gzip PAD: whole-resource compression (LZ77-family), per the paper §4.1.

The algorithmic core is the deflate-lite substrate.  ``backend`` picks
between the from-scratch pure-Python pipeline (used in correctness and
property tests) and the zlib fast path (used in timing benchmarks, where
the paper's Java gzip was similarly native-speed).
"""

from __future__ import annotations

from typing import Optional

from ..compression import CompressionError, compress, decompress
from .base import CommProtocol, ProtocolError

__all__ = ["GzipProtocol"]


class GzipProtocol(CommProtocol):
    name = "gzip"

    def __init__(self, backend: str = "zlib", max_chain: int = 64):
        if backend not in ("pure", "zlib"):
            raise ValueError(f"unknown backend: {backend!r}")
        self.backend = backend
        self.max_chain = max_chain

    def server_respond(
        self, request: bytes, old: Optional[bytes], new: bytes
    ) -> bytes:
        return compress(new, backend=self.backend, max_chain=self.max_chain)

    def client_reconstruct(self, old: Optional[bytes], response: bytes) -> bytes:
        try:
            return decompress(response)
        except CompressionError as exc:
            raise ProtocolError(f"gzip payload corrupt: {exc}") from exc
