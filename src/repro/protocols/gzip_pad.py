"""Gzip PAD: whole-resource compression (LZ77-family), per the paper §4.1.

The algorithmic core is the deflate-lite substrate.  ``backend`` picks
between the from-scratch pure-Python pipeline (used in correctness and
property tests) and the zlib fast path (used in timing benchmarks, where
the paper's Java gzip was similarly native-speed).

``dictionary`` names a pre-trained shared-dictionary content class
("text", "image", "delta"): responses then carry a 1-byte dictionary id
instead of a per-message Huffman header, and both sides skip tree
construction.  The client side needs no configuration at all — the id
travels in-band and ``decompress`` resolves it through the deterministic
built-in registry, so a dictionary-configured server interoperates with
any client holding this PAD.
"""

from __future__ import annotations

from typing import Optional

from ..compression import CompressionError, builtin_dictionary, compress, decompress
from .base import CommProtocol, ProtocolError

__all__ = ["GzipProtocol"]


class GzipProtocol(CommProtocol):
    name = "gzip"

    def __init__(
        self,
        backend: str = "zlib",
        max_chain: int = 64,
        dictionary: Optional[str] = None,
    ):
        if backend not in ("pure", "zlib"):
            raise ValueError(f"unknown backend: {backend!r}")
        if dictionary is not None and backend != "pure":
            raise ValueError(
                "shared dictionaries require backend='pure' "
                "(the zlib payload has no code tables to share)"
            )
        self.backend = backend
        self.max_chain = max_chain
        self.dictionary = dictionary

    def server_respond(
        self, request: bytes, old: Optional[bytes], new: bytes
    ) -> bytes:
        dictionary = (
            builtin_dictionary(self.dictionary)
            if self.dictionary is not None
            else None
        )
        return compress(
            new,
            backend=self.backend,
            max_chain=self.max_chain,
            dictionary=dictionary,
        )

    def client_reconstruct(self, old: Optional[bytes], response: bytes) -> bytes:
        try:
            return decompress(response)
        except CompressionError as exc:
            raise ProtocolError(f"gzip payload corrupt: {exc}") from exc
