"""Direct sending: no optimization — the baseline of every comparison."""

from __future__ import annotations

from typing import Optional

from .base import CommProtocol

__all__ = ["DirectProtocol"]


class DirectProtocol(CommProtocol):
    """Ship the new version verbatim; ignore whatever the client has."""

    name = "direct"

    def server_respond(
        self, request: bytes, old: Optional[bytes], new: bytes
    ) -> bytes:
        return new

    def client_reconstruct(self, old: Optional[bytes], response: bytes) -> bytes:
        return response
