"""Protocol composition for multi-PAD adaptation paths.

A PAT path can contain several PADs (e.g. a differencing PAD whose delta
is then compressed).  :class:`ProtocolStack` composes them: the *first*
protocol is innermost (it sees the real old/new resource versions); each
subsequent layer transforms the previous layer's response payload as an
opaque byte string (old=None).  Client-side reconstruction unwraps in
reverse order.  The stack itself satisfies the :class:`CommProtocol`
interface, so sessions never care whether one or five PADs negotiated.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .base import CommProtocol, ProtocolError

__all__ = ["ProtocolStack"]


class ProtocolStack(CommProtocol):
    def __init__(self, protocols: Sequence[CommProtocol]):
        if not protocols:
            raise ProtocolError("protocol stack must contain at least one protocol")
        self.protocols = list(protocols)
        self.name = "+".join(p.name for p in self.protocols)

    def client_request(self, old: Optional[bytes]) -> bytes:
        # Only the innermost protocol sees the client's old version.
        return self.protocols[0].client_request(old)

    def server_respond(
        self, request: bytes, old: Optional[bytes], new: bytes
    ) -> bytes:
        payload = self.protocols[0].server_respond(request, old, new)
        for layer in self.protocols[1:]:
            payload = layer.server_respond(b"", None, payload)
        return payload

    def client_reconstruct(self, old: Optional[bytes], response: bytes) -> bytes:
        payload = response
        for layer in reversed(self.protocols[1:]):
            payload = layer.client_reconstruct(None, payload)
        return self.protocols[0].client_reconstruct(old, payload)
