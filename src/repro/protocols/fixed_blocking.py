"""Fix-sized blocking (rsync-style) PAD — the related-work extension.

Rsync's algorithm [Tridgell & Mackerras 1996], as the paper describes it:
the client sends per-block signatures of its old version (a weak rolling
checksum plus a strong digest); the server slides a window over the *new*
version, and wherever the rolling checksum matches a client block it
confirms with the strong digest and emits a COPY of the client's block;
everything else ships as literal DATA.  Unlike Bitmap, matches are found
at any byte offset, so it tolerates shifts — at the cost of the rolling
scan on the server.
"""

from __future__ import annotations

import struct
from itertools import accumulate
from typing import Optional

from ..chunking import chunk_digest, fixed_chunk_bytes
from .base import (
    CommProtocol,
    DeltaOp,
    ProtocolError,
    apply_delta,
    decode_delta,
    encode_delta,
)

__all__ = ["FixedBlockingProtocol", "rolling_checksum", "RollingChecksum"]

_DIGEST_TRUNCATE = 12
_SIG = struct.Struct("<I")  # weak checksum per block, then digest bytes
_MOD = 1 << 16


def rolling_checksum(block: bytes) -> int:
    """rsync's weak checksum: a = sum(b), b = sum((L-i)*b_i), both mod 2^16.

    ``b`` equals the sum of all prefix sums of the block, so both halves
    fall out of one :func:`itertools.accumulate` pass in C.
    """
    prefix = list(accumulate(block))
    if not prefix:
        return 0
    return (prefix[-1] % _MOD) | ((sum(prefix) % _MOD) << 16)


class RollingChecksum:
    """Incrementally rolled weak checksum over a fixed-size window."""

    __slots__ = ("size", "a", "b")

    def __init__(self, block: bytes):
        self.size = len(block)
        prefix = list(accumulate(block))
        self.a = (prefix[-1] if prefix else 0) % _MOD
        self.b = sum(prefix) % _MOD

    def roll(self, out_byte: int, in_byte: int) -> int:
        # ``& 0xFFFF`` is mod 2^16 even for the negative intermediates.
        self.a = (self.a - out_byte + in_byte) & 0xFFFF
        self.b = (self.b - self.size * out_byte + self.a) & 0xFFFF
        return self.value

    @property
    def value(self) -> int:
        return self.a | (self.b << 16)


class FixedBlockingProtocol(CommProtocol):
    name = "fixed"

    def __init__(self, block_size: int = 2048):
        if block_size < 16:
            raise ValueError(f"block_size must be >= 16, got {block_size}")
        self.block_size = block_size

    # -- phase 1: client signatures -------------------------------------------

    def client_request(self, old: Optional[bytes]) -> bytes:
        if old is None:
            return b""
        out = bytearray()
        for block in fixed_chunk_bytes(old, self.block_size):
            out += _SIG.pack(rolling_checksum(block))
            out += chunk_digest(block, _DIGEST_TRUNCATE)
        return bytes(out)

    def _parse_signatures(self, request: bytes) -> dict[int, list[tuple[bytes, int]]]:
        """weak -> [(strong, block_index)], preserving order."""
        entry = _SIG.size + _DIGEST_TRUNCATE
        if len(request) % entry:
            raise ProtocolError("signature upload has a partial entry")
        table: dict[int, list[tuple[bytes, int]]] = {}
        for idx in range(len(request) // entry):
            pos = idx * entry
            (weak,) = _SIG.unpack_from(request, pos)
            strong = request[pos + _SIG.size : pos + entry]
            table.setdefault(weak, []).append((strong, idx))
        return table

    # -- phase 2: server scan --------------------------------------------------

    def server_respond(
        self, request: bytes, old: Optional[bytes], new: bytes
    ) -> bytes:
        if not request:
            return encode_delta([DeltaOp(data=new)] if new else [])
        table = self._parse_signatures(request)
        bs = self.block_size
        n = len(new)
        ops: list[DeltaOp] = []
        append_op = ops.append
        get = table.get
        digest = chunk_digest

        # Fused scan: the rolling a/b state lives in locals (masked adds, no
        # method calls), and literal bytes are never copied per-position —
        # the run between two COPY ops is sliced out of ``new`` in one go.
        pos = 0
        lit_start = 0
        a_ = b_ = 0
        warm = False
        while pos + bs <= n:
            if not warm:
                prefix = list(accumulate(new[pos : pos + bs]))
                a_ = prefix[-1] & 0xFFFF
                b_ = sum(prefix) & 0xFFFF
                warm = True
            candidates = get(a_ | (b_ << 16))
            if candidates is not None:
                strong = digest(new[pos : pos + bs], _DIGEST_TRUNCATE)
                matched_idx = None
                for cand_strong, idx in candidates:
                    if cand_strong == strong:
                        matched_idx = idx
                        break
                if matched_idx is not None:
                    if lit_start < pos:
                        append_op(DeltaOp(data=new[lit_start:pos]))
                    append_op(DeltaOp(offset=matched_idx * bs, length=bs))
                    pos += bs
                    lit_start = pos
                    warm = False
                    continue
            if pos + bs < n:
                out_byte = new[pos]
                a_ = (a_ - out_byte + new[pos + bs]) & 0xFFFF
                b_ = (b_ - bs * out_byte + a_) & 0xFFFF
            pos += 1
        if lit_start < n:
            append_op(DeltaOp(data=new[lit_start:]))
        return encode_delta(ops)

    # -- phase 3: client rebuild ------------------------------------------------

    def client_reconstruct(self, old: Optional[bytes], response: bytes) -> bytes:
        ops = decode_delta(response)
        if old is None:
            if any(op.is_copy for op in ops):
                raise ProtocolError("COPY op without an old version")
            return b"".join(op.data or b"" for op in ops)
        return apply_delta(old, ops)
