"""Packaging the case-study protocols as mobile-code PADs.

Each protocol's *actual module source* is bundled into a
:class:`~repro.mobilecode.MobileCodeModule` — the algorithm genuinely
travels as data and is exec'd in the client sandbox.  Relative imports are
rewritten to the absolute substrate packages the sandbox allowlists
(``repro.compression``, ``repro.chunking``, ``repro.protocols.base``),
mirroring how Java mobile code links against a stdlib that is already
present on the recipient.
"""

from __future__ import annotations

import inspect
import re
from dataclasses import dataclass, field
from typing import Callable

from ..mobilecode import MobileCodeModule
from . import bitmap as _bitmap_mod
from . import direct as _direct_mod
from . import fixed_blocking as _fixed_mod
from . import gzip_pad as _gzip_mod
from . import vary_blocking as _vary_mod
from .base import CommProtocol
from .bitmap import BitmapProtocol
from .direct import DirectProtocol
from .fixed_blocking import FixedBlockingProtocol
from .gzip_pad import GzipProtocol
from .vary_blocking import VaryBlockingProtocol

__all__ = ["PadSpec", "PAD_SPECS", "build_pad_module", "instantiate", "PAD_VERSION"]

PAD_VERSION = "1.0"

_REL_IMPORT = re.compile(r"^from \.\.(\w[\w.]*) import", re.MULTILINE)
_REL_SIBLING = re.compile(r"^from \.(\w[\w.]*) import", re.MULTILINE)


def _mobile_source(module) -> str:
    """Module source with package-relative imports made absolute."""
    source = inspect.getsource(module)
    source = _REL_IMPORT.sub(r"from repro.\1 import", source)
    source = _REL_SIBLING.sub(r"from repro.protocols.\1 import", source)
    return source


@dataclass(frozen=True)
class PadSpec:
    """Everything the application server knows about one PAD.

    ``function`` / ``implementation`` reproduce Table 1's descriptive
    columns.  ``factory`` builds a local (non-mobile) instance for the
    server side, which the paper assumes has all PADs pre-deployed.
    """

    pad_id: str
    entry_point: str
    module: object
    function: str
    implementation: str
    factory: Callable[[], CommProtocol]
    capabilities: tuple[str, ...] = ()
    init_kwargs: dict = field(default_factory=dict)


PAD_SPECS: dict[str, PadSpec] = {
    "direct": PadSpec(
        pad_id="direct",
        entry_point="DirectProtocol",
        module=_direct_mod,
        function="null",
        implementation="null",
        factory=DirectProtocol,
    ),
    "gzip": PadSpec(
        pad_id="gzip",
        entry_point="GzipProtocol",
        module=_gzip_mod,
        function="Compression",
        implementation="Python mobile-code module (LZSS + Huffman)",
        factory=GzipProtocol,
        capabilities=("repro.compression", "repro.protocols.base"),
    ),
    "vary": PadSpec(
        pad_id="vary",
        entry_point="VaryBlockingProtocol",
        module=_vary_mod,
        function="Differencing files using Fingerprint",
        implementation="Python mobile-code module (Rabin CDC)",
        factory=VaryBlockingProtocol,
        capabilities=("repro.chunking", "repro.protocols.base"),
    ),
    "bitmap": PadSpec(
        pad_id="bitmap",
        entry_point="BitmapProtocol",
        module=_bitmap_mod,
        function="Differencing files bit by bit",
        implementation="Python mobile-code module (fixed blocks)",
        factory=BitmapProtocol,
        capabilities=("struct", "repro.chunking", "repro.protocols.base"),
    ),
    "fixed": PadSpec(
        pad_id="fixed",
        entry_point="FixedBlockingProtocol",
        module=_fixed_mod,
        function="Differencing files with rolling checksum (rsync)",
        implementation="Python mobile-code module (weak+strong signatures)",
        factory=FixedBlockingProtocol,
        capabilities=("struct", "repro.chunking", "repro.protocols.base"),
    ),
    # Layer PADs for multi-level PATs (Fig. 5 shape): children of a
    # differencing PAD that decide how its delta payload travels.  They
    # reuse the gzip/direct protocol implementations.
    "gzip-layer": PadSpec(
        pad_id="gzip-layer",
        entry_point="GzipProtocol",
        module=_gzip_mod,
        function="Payload compression layer",
        implementation="Python mobile-code module (LZSS + Huffman)",
        factory=GzipProtocol,
        capabilities=("repro.compression", "repro.protocols.base"),
    ),
    "plain-layer": PadSpec(
        pad_id="plain-layer",
        entry_point="DirectProtocol",
        module=_direct_mod,
        function="Payload passthrough layer",
        implementation="null",
        factory=DirectProtocol,
    ),
}


def build_pad_module(
    pad_id: str, *, version: str = PAD_VERSION, **init_kwargs
) -> MobileCodeModule:
    """Package the named protocol's real source as a mobile-code module.

    ``version`` supports the upgrade path: re-packaging the same PAD under
    a new version yields a new digest and a new CDN object key.
    """
    try:
        spec = PAD_SPECS[pad_id]
    except KeyError:
        raise KeyError(
            f"unknown PAD {pad_id!r}; known: {sorted(PAD_SPECS)}"
        ) from None
    return MobileCodeModule(
        name=spec.pad_id,
        version=version,
        source=_mobile_source(spec.module),
        entry_point=spec.entry_point,
        capabilities=spec.capabilities,
        metadata={
            "function": spec.function,
            "implementation": spec.implementation,
            "init_kwargs": {**spec.init_kwargs, **init_kwargs},
        },
    )


def instantiate(pad_id: str, **kwargs) -> CommProtocol:
    """Server-side (pre-deployed) instance of a PAD."""
    spec = PAD_SPECS[pad_id]
    return spec.factory(**{**spec.init_kwargs, **kwargs})
