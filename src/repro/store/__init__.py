"""Fleet-level content-addressed store (chunk records + finished responses).

See :mod:`repro.store.chunkstore` for the bounded single-flight store and
:mod:`repro.store.serving` for the serving-path integration.
"""

from .chunkstore import (
    DEFAULT_MAX_BYTES,
    DEFAULT_MAX_ENTRIES,
    ChunkStore,
    PoisonedRecordError,
    StoreStats,
    content_key,
)
from .serving import (
    StoreBackedResponder,
    chunk_record_key,
    response_key,
    unpack_chunk_record,
    vary_delta_from_records,
)

__all__ = [
    "DEFAULT_MAX_BYTES",
    "DEFAULT_MAX_ENTRIES",
    "ChunkStore",
    "PoisonedRecordError",
    "StoreStats",
    "content_key",
    "StoreBackedResponder",
    "chunk_record_key",
    "response_key",
    "unpack_chunk_record",
    "vary_delta_from_records",
]
