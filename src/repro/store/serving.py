"""Store-backed response assembly for the application server.

:class:`StoreBackedResponder` sits between the serving path (sync
threads or the asyncio handler) and the :class:`~repro.store.ChunkStore`:

* **Response records** — the finished wire bytes of one part exchange,
  keyed by content (SHA-1 of the stack spec, the request, the old part,
  the new part).  The second session asking for the same page version
  over the same negotiated stack is a pure store hit: zero kernel
  invocations, byte-identical bytes.
* **Chunk records** — CDC boundaries plus truncated per-chunk SHA-1
  digests for one content blob, keyed by the blob's digest and the
  chunker parameters.  A page version is chunked/digested **once**
  (through the kernel pool, sharded by the content digest rather than
  any session id); vary-blocking deltas for any (old, new) pair are then
  assembled locally from the two cached records by
  :func:`vary_delta_from_records`, which replicates
  ``VaryBlockingProtocol.server_respond`` byte for byte (the golden wire
  vectors run through this path in the tests).

Cold-path kernels (full ``stack.respond`` for non-vary stacks, the
``cdc.record`` preparation pass) dispatch through the pool with
``shard_key=<content digest>``, so equal content lands on the same
worker process fleet-wide, no matter which session triggered it.  When
several blobs need records at once (a vary delta's old+new pair, a
corpus prewarm), :meth:`StoreBackedResponder.chunk_records_batch` probes
the store first and ships every absent blob to **one** batched
``cdc.record_batch`` kernel call — the corpus-granularity scan — while
publishing results through the same single-flight ``get_or_compute`` so
the store's exact ledger (``computes == misses``) is unchanged.
"""

from __future__ import annotations

import hashlib
import struct
from contextlib import nullcontext
from typing import Optional

from ..core.kernelpool import KernelPool, StackSpec, _stack_for_spec
from ..protocols.base import DeltaOp, encode_delta
from ..telemetry import MetricsRegistry
from .chunkstore import ChunkStore

__all__ = [
    "StoreBackedResponder",
    "chunk_record_key",
    "response_key",
    "unpack_chunk_record",
    "vary_delta_from_records",
]

_DIGEST_TRUNCATE = 16  # matches VaryBlockingProtocol's LBFS truncation
_PAIR = struct.Struct("<II")

# The inline pool every responder without an explicit pool shares.
_INLINE_POOL = KernelPool(workers=0)


def _digest_hex(data: bytes) -> str:
    return hashlib.sha1(data).hexdigest()


def response_key(
    spec: StackSpec, request: bytes, old: Optional[bytes], new: bytes
) -> str:
    """Content-addressed key for one part exchange's wire bytes."""
    h = hashlib.sha1()
    h.update(repr(spec).encode("utf-8"))
    h.update(b"\x00")
    h.update(hashlib.sha1(request).digest() if request else b"-")
    h.update(b"\x00")
    h.update(hashlib.sha1(old).digest() if old is not None else b"-")
    h.update(b"\x00")
    h.update(hashlib.sha1(new).digest())
    return f"resp:{h.hexdigest()}"


def chunk_record_key(
    content_digest: str, mask_bits: int, window: int, truncate: int
) -> str:
    return f"cdc:{mask_bits}:{window}:{truncate}:{content_digest}"


def unpack_chunk_record(
    blob: bytes, truncate: int = _DIGEST_TRUNCATE
) -> list[tuple[int, int, bytes]]:
    """Packed ``cdc.record`` bytes -> ``[(offset, length, digest), ...]``."""
    entry = _PAIR.size + truncate
    if len(blob) % entry:
        raise ValueError(
            f"chunk record length {len(blob)} is not a multiple of {entry}"
        )
    out = []
    for pos in range(0, len(blob), entry):
        offset, length = _PAIR.unpack_from(blob, pos)
        out.append(
            (offset, length, blob[pos + _PAIR.size : pos + entry])
        )
    return out


def vary_delta_from_records(
    old: Optional[bytes],
    old_record: Optional[list[tuple[int, int, bytes]]],
    new: bytes,
    new_record: list[tuple[int, int, bytes]],
) -> bytes:
    """COPY/DATA delta from two cached chunk records.

    Byte-identical to ``VaryBlockingProtocol.server_respond``: same
    insertion-ordered digest table (collisions keep every location, in
    chunk order), same byte-equality guard against truncated-digest
    collisions, same DATA-run flushing.
    """
    if old is None:
        return encode_delta([DeltaOp(data=new)] if new else [])
    assert old_record is not None
    table: dict[bytes, list[tuple[int, int]]] = {}
    for offset, length, digest in old_record:
        table.setdefault(digest, []).append((offset, length))
    ops: list[DeltaOp] = []
    pending = bytearray()

    def flush() -> None:
        if pending:
            ops.append(DeltaOp(data=bytes(pending)))
            pending.clear()

    empty: list[tuple[int, int]] = []
    for offset, length, digest in new_record:
        piece = new[offset : offset + length]
        matched = None
        for h_off, h_len in table.get(digest, empty):
            if old[h_off : h_off + h_len] == piece:
                matched = (h_off, h_len)
                break
        if matched is not None:
            flush()
            ops.append(DeltaOp(offset=matched[0], length=matched[1]))
        else:
            pending += piece
    flush()
    return encode_delta(ops)


class StoreBackedResponder:
    """Serve part exchanges from the fleet store (see module docstring)."""

    def __init__(
        self,
        store: ChunkStore,
        *,
        pool: Optional[KernelPool] = None,
        registry: Optional[MetricsRegistry] = None,
        timer_name: Optional[str] = None,
    ) -> None:
        self.store = store
        self.pool = pool if pool is not None else _INLINE_POOL
        self._registry = registry
        # Compute time lands in this histogram (the appserver passes its
        # encode timer) — store hits add nothing to it, which is the
        # whole point and what the warm/cold p99 comparison measures.
        self._timer_name = timer_name

    def _timer(self):
        if self._registry is not None and self._timer_name is not None:
            return self._registry.timer(self._timer_name)
        return nullcontext()

    def _count_response(self) -> None:
        if self._registry is not None:
            self._registry.counter(f"store.{self.store.name}.responses").inc()

    @staticmethod
    def _vary_params(spec: StackSpec) -> Optional[tuple[int, int]]:
        """(mask_bits, window) when the innermost protocol is vary."""
        pad_id, kwargs = spec[0]
        if pad_id != "vary":
            return None
        kv = dict(kwargs)
        return int(kv.get("mask_bits", 10)), int(kv.get("window", 48))

    def _apply_outer_layers(self, spec: StackSpec, payload: bytes) -> bytes:
        for layer in spec[1:]:
            payload = _stack_for_spec((layer,)).server_respond(b"", None, payload)
        return payload

    # -- chunk records -------------------------------------------------------

    def chunk_record(
        self, data: bytes, *, mask_bits: int = 10, window: int = 48
    ) -> list[tuple[int, int, bytes]]:
        """The cached CDC record for one content blob (computed once)."""
        digest = _digest_hex(data)
        key = chunk_record_key(digest, mask_bits, window, _DIGEST_TRUNCATE)
        blob = self.store.get_or_compute(
            key,
            lambda: self.pool.run(
                "cdc.record", data, mask_bits, window, _DIGEST_TRUNCATE,
                shard_key=digest,
            ),
        )
        return unpack_chunk_record(blob, _DIGEST_TRUNCATE)

    async def chunk_record_async(
        self, data: bytes, *, mask_bits: int = 10, window: int = 48
    ) -> list[tuple[int, int, bytes]]:
        digest = _digest_hex(data)
        key = chunk_record_key(digest, mask_bits, window, _DIGEST_TRUNCATE)

        async def compute() -> bytes:
            return await self.pool.run_async(
                "cdc.record", data, mask_bits, window, _DIGEST_TRUNCATE,
                shard_key=digest,
            )

        blob = await self.store.get_or_compute_async(key, compute)
        return unpack_chunk_record(blob, _DIGEST_TRUNCATE)

    def _batch_plan(
        self, datas: list, mask_bits: int, window: int
    ) -> tuple[list[tuple[str, str]], list[int], dict[str, bytes]]:
        """Shared cold-path planning for the batched chunk-record entry.

        Returns per-item ``(digest, key)`` pairs, the (deduplicated)
        indices whose records are absent from the store, and an empty
        per-key result dict the batched kernel call fills in.  The store
        probe uses ``in`` (no counter side effects): ledger-visible
        lookups/hits/misses/computes all happen inside the per-key
        ``get_or_compute`` afterwards, so the exact ``computes ==
        misses`` reconciliation is preserved — the batch pass only
        *pre-stages* bytes for keys expected to miss.
        """
        keyed = [
            (
                digest := _digest_hex(data),
                chunk_record_key(digest, mask_bits, window, _DIGEST_TRUNCATE),
            )
            for data in datas
        ]
        seen: set[str] = set()
        missing = [
            i
            for i, (_, key) in enumerate(keyed)
            if key not in self.store and not (key in seen or seen.add(key))
        ]
        return keyed, missing, {}

    def chunk_records_batch(
        self, datas: list, *, mask_bits: int = 10, window: int = 48
    ) -> list[list[tuple[int, int, bytes]]]:
        """Cached CDC records for several blobs, cold ones batched.

        Records absent from the store are computed by **one**
        ``cdc.record_batch`` kernel call (sharded by content digest, the
        same placement the per-blob path uses), then published through
        the normal single-flight ``get_or_compute`` so store ledger
        counters and concurrent-writer semantics are untouched.
        """
        keyed, missing, staged = self._batch_plan(datas, mask_bits, window)
        if missing:
            blobs = self.pool.run_batch(
                "cdc.record_batch",
                [datas[i] for i in missing],
                mask_bits, window, _DIGEST_TRUNCATE,
                shard_keys=[keyed[i][0] for i in missing],
            )
            staged.update((keyed[i][1], blob) for i, blob in zip(missing, blobs))
        out = []
        for data, (digest, key) in zip(datas, keyed):

            def compute(d=data, g=digest, k=key) -> bytes:
                # Staged bytes when the probe saw a miss; a real kernel
                # call covers the probe-said-present-then-evicted race.
                blob = staged.get(k)
                if blob is not None:
                    return blob
                return self.pool.run(
                    "cdc.record", d, mask_bits, window, _DIGEST_TRUNCATE,
                    shard_key=g,
                )

            blob = self.store.get_or_compute(key, compute)
            out.append(unpack_chunk_record(blob, _DIGEST_TRUNCATE))
        return out

    async def chunk_records_batch_async(
        self, datas: list, *, mask_bits: int = 10, window: int = 48
    ) -> list[list[tuple[int, int, bytes]]]:
        """:meth:`chunk_records_batch` off the event loop."""
        keyed, missing, staged = self._batch_plan(datas, mask_bits, window)
        if missing:
            blobs = await self.pool.run_batch_async(
                "cdc.record_batch",
                [datas[i] for i in missing],
                mask_bits, window, _DIGEST_TRUNCATE,
                shard_keys=[keyed[i][0] for i in missing],
            )
            staged.update((keyed[i][1], blob) for i, blob in zip(missing, blobs))
        out = []
        for data, (digest, key) in zip(datas, keyed):

            async def compute(d=data, g=digest, k=key) -> bytes:
                blob = staged.get(k)
                if blob is not None:
                    return blob
                return await self.pool.run_async(
                    "cdc.record", d, mask_bits, window, _DIGEST_TRUNCATE,
                    shard_key=g,
                )

            blob = await self.store.get_or_compute_async(key, compute)
            out.append(unpack_chunk_record(blob, _DIGEST_TRUNCATE))
        return out

    # -- responses -----------------------------------------------------------

    def respond(
        self, spec: StackSpec, request: bytes, old: Optional[bytes], new: bytes
    ) -> bytes:
        """One part exchange, served from the store when possible."""
        self._count_response()
        key = response_key(spec, request, old, new)
        return self.store.get_or_compute(
            key, lambda: self._compute(spec, request, old, new)
        )

    async def respond_async(
        self, spec: StackSpec, request: bytes, old: Optional[bytes], new: bytes
    ) -> bytes:
        self._count_response()
        key = response_key(spec, request, old, new)

        async def compute() -> bytes:
            vary = self._vary_params(spec)
            if vary is not None and old is not None:
                mask_bits, window = vary
                old_rec, new_rec = await self.chunk_records_batch_async(
                    [old, new], mask_bits=mask_bits, window=window
                )
                with self._timer():
                    payload = vary_delta_from_records(old, old_rec, new, new_rec)
                    return self._apply_outer_layers(spec, payload)
            with self._timer():
                return await self.pool.run_async(
                    "stack.respond", spec, request, old, new,
                    shard_key=_digest_hex(new),
                )

        return await self.store.get_or_compute_async(key, compute)

    def _compute(
        self, spec: StackSpec, request: bytes, old: Optional[bytes], new: bytes
    ) -> bytes:
        vary = self._vary_params(spec)
        if vary is not None and old is not None:
            mask_bits, window = vary
            old_rec, new_rec = self.chunk_records_batch(
                [old, new], mask_bits=mask_bits, window=window
            )
            with self._timer():
                payload = vary_delta_from_records(old, old_rec, new, new_rec)
                return self._apply_outer_layers(spec, payload)
        with self._timer():
            return self.pool.run(
                "stack.respond", spec, request, old, new,
                shard_key=_digest_hex(new),
            )
