"""Fleet-level content-addressed store with single-flight computation.

The serving path before this subsystem deduplicated only *within* a
session: every client requesting the same page version re-ran the same
CDC scan, the same digesting, the same compression.  A
:class:`ChunkStore` promotes that work to fleet scope — records are
keyed by content (SHA-1 digests of the bytes that produced them), so any
session arriving at any thread, worker process, or event-loop task can
reuse a record some earlier session paid to compute.

Three properties carry the whole design:

* **Content addressing.**  Keys are derived from digests of the inputs
  (page part bytes, request bytes, protocol-stack spec), never from
  session identity.  Equal content ⇒ equal key ⇒ one compute.
* **Single-flight.**  When N callers race on a cold key, exactly one
  (the *leader*) runs the compute; the rest block on an event and
  receive the leader's bytes.  A digest is therefore never compressed
  twice even under a thundering herd — the ``coalesced`` counter proves
  it.  A leader failure propagates the exception to every waiter and
  caches nothing.
* **Bounded.**  Strict LRU over both an entry count and a byte budget.
  A record larger than the byte budget is returned but never cached
  (counted under ``oversize``) instead of wiping the whole store.
* **Self-certifying.**  A key of the form ``blob:<40 hex>`` names raw
  content by its SHA-1, and the store *verifies* that claim on every
  insert: bytes whose digest does not match the key are rejected
  (counted under ``rejected``, :class:`PoisonedRecordError` raised,
  nothing cached) — the defense against cache-poisoning submissions
  where an attacker supplies wrong content for a valid digest.  Keys in
  other namespaces (``resp:``, ``cdc:``) hash the *inputs* of a compute,
  not its output, so they cannot be self-verified; those records are
  only ever produced by the serving path itself, never accepted from an
  untrusted submitter.

Telemetry (all under ``store.<name>.*`` in the shared registry, mirrored
on the instance for registry-less use): ``lookups``, ``hits``,
``misses``, ``coalesced``, ``computes``, ``inserts``, ``evictions``,
``oversize``, ``rejected`` (digest-mismatch submissions refused),
``bytes_saved`` (bytes served from cache instead of recomputed), plus
``entries``/``bytes`` gauges.  The exact ledger the bench reconciles:
``lookups == hits + misses + coalesced`` and ``computes == misses``.

Thread safety: one lock guards the LRU map and the in-flight table;
computes run *outside* the lock, so a slow kernel never blocks hits on
other keys.  :meth:`get_or_compute_async` shares the same in-flight
table — sync threads and event-loop tasks coalesce against each other.
"""

from __future__ import annotations

import asyncio
import hashlib
import string
import threading
from collections import OrderedDict
from typing import Awaitable, Callable, Optional

from ..telemetry import MetricsRegistry

__all__ = [
    "ChunkStore",
    "PoisonedRecordError",
    "StoreStats",
    "content_key",
    "DEFAULT_MAX_ENTRIES",
    "DEFAULT_MAX_BYTES",
]

DEFAULT_MAX_ENTRIES = 4096
DEFAULT_MAX_BYTES = 64 * 1024 * 1024

_BLOB_PREFIX = "blob:"
_SHA1_HEX_LEN = 40
_HEX_DIGITS = frozenset(string.hexdigits.lower())


class PoisonedRecordError(ValueError):
    """A self-certifying record's bytes did not match its claimed digest.

    Raised instead of caching: a poisoned submission must never be
    inserted, and every caller (the submitter, plus any coalesced
    waiters on the same key) must learn the record was refused.
    """


def content_key(data: bytes) -> str:
    """The self-certifying store key for raw content bytes."""
    return f"{_BLOB_PREFIX}{hashlib.sha1(data).hexdigest()}"


def _verify_self_certifying(key: str, value: bytes) -> Optional[str]:
    """Why ``(key, value)`` must be refused, or None if it may be cached.

    Only the ``blob:`` namespace is self-certifying.  A malformed claim
    (wrong length, non-hex) is refused outright — accepting it would let
    an attacker smuggle unverifiable content into the verified namespace.
    """
    if not key.startswith(_BLOB_PREFIX):
        return None
    digest = key[len(_BLOB_PREFIX):].lower()
    if len(digest) != _SHA1_HEX_LEN or not set(digest) <= _HEX_DIGITS:
        return f"malformed self-certifying key {key!r}"
    actual = hashlib.sha1(value).hexdigest()
    if actual != digest:
        return (
            f"content digest {actual} does not match the digest claimed "
            f"by key {key!r}"
        )
    return None


class StoreStats:
    """Point-in-time view of one store's counters (plain ints)."""

    __slots__ = (
        "lookups", "hits", "misses", "coalesced", "computes", "inserts",
        "evictions", "oversize", "rejected", "bytes_saved", "entries",
        "bytes_cached",
    )

    def __init__(self, **kv: int) -> None:
        for name in self.__slots__:
            setattr(self, name, kv.get(name, 0))

    @property
    def hit_ratio(self) -> float:
        served = self.hits + self.coalesced
        return served / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict:
        d = {name: getattr(self, name) for name in self.__slots__}
        d["hit_ratio"] = self.hit_ratio
        return d


class _Flight:
    """One in-progress compute; waiters block on the event."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Optional[bytes] = None
        self.error: Optional[BaseException] = None


class ChunkStore:
    """LRU + byte-bounded content-addressed record store (see module doc)."""

    def __init__(
        self,
        *,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_bytes: int = DEFAULT_MAX_BYTES,
        name: str = "fleet",
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.name = name
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._registry = registry
        self._prefix = f"store.{name}"
        self._lock = threading.Lock()
        self._items: "OrderedDict[str, bytes]" = OrderedDict()
        self._flights: dict[str, _Flight] = {}
        self._bytes = 0
        self._counts = {
            "lookups": 0, "hits": 0, "misses": 0, "coalesced": 0,
            "computes": 0, "inserts": 0, "evictions": 0, "oversize": 0,
            "rejected": 0, "bytes_saved": 0,
        }

    # -- counters ------------------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        # Callers hold self._lock; the registry has its own per-metric locks.
        self._counts[name] += n
        if self._registry is not None:
            self._registry.counter(f"{self._prefix}.{name}").inc(n)

    def _set_gauges_locked(self) -> None:
        if self._registry is not None:
            self._registry.gauge(f"{self._prefix}.entries").set(len(self._items))
            self._registry.gauge(f"{self._prefix}.bytes").set(self._bytes)

    @property
    def stats(self) -> StoreStats:
        with self._lock:
            return StoreStats(
                entries=len(self._items), bytes_cached=self._bytes, **self._counts
            )

    # -- plain mapping surface ----------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._items

    @property
    def used_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def get(self, key: str) -> Optional[bytes]:
        """Counted lookup without compute (hit refreshes LRU recency)."""
        with self._lock:
            self._count("lookups")
            value = self._items.get(key)
            if value is None:
                self._count("misses")
                return None
            self._items.move_to_end(key)
            self._count("hits")
            self._count("bytes_saved", len(value))
            return value

    def put(self, key: str, value: bytes) -> None:
        """Insert (or refresh) a record, evicting LRU entries to fit.

        A self-certifying ``blob:`` key whose bytes do not hash to the
        claimed digest raises :class:`PoisonedRecordError` and caches
        nothing (counted under ``rejected``).
        """
        reason = _verify_self_certifying(key, value)
        if reason is not None:
            with self._lock:
                self._count("rejected")
            raise PoisonedRecordError(reason)
        with self._lock:
            self._insert_locked(key, value)
            self._set_gauges_locked()

    def clear(self) -> None:
        """Drop every cached record (counters keep counting)."""
        with self._lock:
            self._items.clear()
            self._bytes = 0
            self._set_gauges_locked()

    def _insert_locked(self, key: str, value: bytes) -> None:
        if len(value) > self.max_bytes:
            self._count("oversize")
            return
        old = self._items.pop(key, None)
        if old is not None:
            self._bytes -= len(old)
        self._items[key] = value
        self._bytes += len(value)
        self._count("inserts")
        while len(self._items) > self.max_entries or self._bytes > self.max_bytes:
            _, evicted = self._items.popitem(last=False)
            self._bytes -= len(evicted)
            self._count("evictions")

    # -- single-flight compute ----------------------------------------------

    def _begin(self, key: str) -> tuple[Optional[bytes], Optional[_Flight], bool]:
        """One locked step: hit, join an existing flight, or lead a new one.

        Returns ``(value, flight, leader)`` — exactly one of ``value`` /
        ``flight`` is set.
        """
        with self._lock:
            self._count("lookups")
            value = self._items.get(key)
            if value is not None:
                self._items.move_to_end(key)
                self._count("hits")
                self._count("bytes_saved", len(value))
                return value, None, False
            flight = self._flights.get(key)
            if flight is not None:
                return None, flight, False
            flight = _Flight()
            self._flights[key] = flight
            self._count("misses")
            return None, flight, True

    def _finish(self, key: str, flight: _Flight, value: Optional[bytes],
                error: Optional[BaseException]) -> None:
        with self._lock:
            if error is None:
                assert value is not None
                self._insert_locked(key, value)
                self._count("computes")
                flight.value = value
            else:
                flight.error = error
            self._flights.pop(key, None)
            self._set_gauges_locked()
        flight.event.set()

    def _join(self, flight: _Flight) -> bytes:
        """Account a waiter that got the leader's bytes (or its error)."""
        if flight.error is not None:
            raise flight.error
        value = flight.value
        assert value is not None
        with self._lock:
            self._count("coalesced")
            self._count("bytes_saved", len(value))
        return value

    def _settle(self, key: str, flight: _Flight, value) -> bytes:
        """Validate a leader's compute result and finish the flight.

        Non-bytes results and digest-mismatched self-certifying records
        both fail the flight: the error propagates to the leader *and*
        every coalesced waiter, and nothing is cached.
        """
        if not isinstance(value, (bytes, bytearray)):
            exc: Exception = TypeError(
                f"store compute for {key!r} returned "
                f"{type(value).__name__}, expected bytes"
            )
            self._finish(key, flight, None, exc)
            raise exc
        value = bytes(value)
        reason = _verify_self_certifying(key, value)
        if reason is not None:
            with self._lock:
                self._count("rejected")
            exc = PoisonedRecordError(reason)
            self._finish(key, flight, None, exc)
            raise exc
        self._finish(key, flight, value, None)
        return value

    def get_or_compute(self, key: str, compute: Callable[[], bytes]) -> bytes:
        """Return the record for ``key``, computing it at most once.

        Concurrent callers on a cold key coalesce: one runs ``compute``
        (outside the store lock), the rest wait and share the result.
        An exception from ``compute`` propagates to every coalesced
        caller and leaves nothing cached.
        """
        value, flight, leader = self._begin(key)
        if value is not None:
            return value
        assert flight is not None
        if not leader:
            flight.event.wait()
            return self._join(flight)
        try:
            value = compute()
        except BaseException as exc:
            self._finish(key, flight, None, exc)
            raise
        return self._settle(key, flight, value)

    async def get_or_compute_async(
        self, key: str, compute: Callable[[], Awaitable[bytes]]
    ) -> bytes:
        """Event-loop twin of :meth:`get_or_compute`.

        Shares the same in-flight table: a task coalesces with threads
        and other tasks alike.  Waiting on the leader's ``threading.Event``
        happens in the default executor so the loop never blocks.
        """
        value, flight, leader = self._begin(key)
        if value is not None:
            return value
        assert flight is not None
        if not leader:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, flight.event.wait)
            return self._join(flight)
        try:
            value = await compute()
        except BaseException as exc:
            self._finish(key, flight, None, exc)
            raise
        return self._settle(key, flight, value)
