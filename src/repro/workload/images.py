"""Synthetic medical-style images with localized edits.

The paper's application server holds "four images of different 3D views"
per page — DICOM/BMP-family medical imagery [29].  We synthesize grayscale
images as a BMP-like container (fixed 54-byte header + row-major 8-bit
pixels): smooth anatomical gradients plus seeded texture, so they compress
partially (like real scans) and *evolve* by rewriting a small rectangular
region (the surgical-view update), which is exactly the change pattern
that favours Bitmap-style fixed-block differencing.
"""

from __future__ import annotations

import struct

import numpy as np

__all__ = ["SyntheticImage", "generate_image", "evolve_image", "decode_image"]

_HEADER = struct.Struct("<2sIHHIIiiHHIIiiII")
_MAGIC = b"FB"  # "Fractal Bitmap", BMP-like but self-describing
HEADER_SIZE = _HEADER.size


class SyntheticImage:
    """A decoded image: header fields + numpy pixel array (uint8, HxW)."""

    def __init__(self, pixels: np.ndarray):
        if pixels.dtype != np.uint8 or pixels.ndim != 2:
            raise ValueError("pixels must be a 2-D uint8 array")
        self.pixels = pixels

    @property
    def height(self) -> int:
        return self.pixels.shape[0]

    @property
    def width(self) -> int:
        return self.pixels.shape[1]

    def encode(self) -> bytes:
        header = _HEADER.pack(
            _MAGIC,
            HEADER_SIZE + self.pixels.size,  # total file size
            0,
            0,
            HEADER_SIZE,  # pixel data offset
            40,  # info header size (BMP convention)
            self.width,
            self.height,
            1,  # planes
            8,  # bits per pixel
            0,  # no compression
            self.pixels.size,
            2835,
            2835,
            256,
            0,
        )
        return header + self.pixels.tobytes()


def decode_image(blob: bytes) -> SyntheticImage:
    if len(blob) < HEADER_SIZE:
        raise ValueError("image blob too short for header")
    fields = _HEADER.unpack_from(blob)
    if fields[0] != _MAGIC:
        raise ValueError(f"bad image magic: {fields[0]!r}")
    width, height = fields[6], fields[7]
    expected = HEADER_SIZE + width * height
    if len(blob) != expected:
        raise ValueError(f"image size mismatch: {len(blob)} != {expected}")
    pixels = np.frombuffer(blob, dtype=np.uint8, offset=HEADER_SIZE).reshape(
        height, width
    )
    return SyntheticImage(pixels.copy())


def generate_image(approx_bytes: int, seed: int = 0) -> bytes:
    """A synthetic scan of roughly ``approx_bytes``.

    Composition: radial anatomical gradient + low-frequency banding +
    seeded speckle.  The speckle keeps entropy realistic (scans don't
    compress to nothing); the structure keeps it away from pure noise.
    """
    if approx_bytes <= HEADER_SIZE:
        raise ValueError(f"approx_bytes must exceed header size, got {approx_bytes}")
    side = max(16, int(round((approx_bytes - HEADER_SIZE) ** 0.5)))
    rng = np.random.default_rng(seed)
    y, x = np.mgrid[0:side, 0:side].astype(np.float64)
    cx, cy = side * 0.55, side * 0.45
    r = np.hypot(x - cx, y - cy) / side
    base = 200.0 * np.exp(-3.0 * r * r)  # bright anatomical core
    bands = 18.0 * np.sin(x * 0.08) * np.cos(y * 0.05)
    # Sparse, quantized speckle: ~35% of pixels carry noise in 4-gray-level
    # steps.  Real 8-bit scans have smooth regions and compress roughly
    # 1.4x lossless; this lands the corpus near that (pure white noise
    # would make every coder look useless).
    speckle = np.round(rng.normal(0.0, 1.2, size=(side, side))) * 4.0
    speckle *= rng.random(size=(side, side)) < 0.35
    pixels = np.clip(base + bands + speckle, 0, 255).astype(np.uint8)
    return SyntheticImage(pixels).encode()


def evolve_image(blob: bytes, *, seed: int = 0, region_frac: float = 0.15) -> bytes:
    """New version with one rewritten horizontal band of rows.

    ``region_frac`` is the edited fraction of image rows.  A full-width
    band keeps the changed bytes *contiguous* in the row-major encoding,
    matching how the paper's 3-D medical views update (a re-rendered slab
    replaces a contiguous byte range) while the rest stays byte-identical.
    """
    if not 0.0 < region_frac <= 1.0:
        raise ValueError(f"region_frac must be in (0, 1], got {region_frac}")
    img = decode_image(blob)
    rng = np.random.default_rng((seed, 0xF))
    h, _w = img.pixels.shape
    rh = max(1, int(h * region_frac))
    top = int(rng.integers(0, max(1, h - rh)))
    pixels = img.pixels.copy()
    band = pixels[top : top + rh, :].astype(np.float64)
    # Brighten + re-speckle the band: new tissue view.
    band = np.clip(band * 0.8 + rng.normal(30.0, 12.0, band.shape), 0, 255)
    pixels[top : top + rh, :] = band.astype(np.uint8)
    return SyntheticImage(pixels).encode()
