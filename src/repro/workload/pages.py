"""The paper's Web corpus: 75 pages of ~135 KB (5 KB text + four ~32.5 KB images).

A :class:`WebPage` serializes text and images into one byte stream with a
tiny part-table header, and evolves into new versions by editing the text
and one or more image regions.  The :class:`Corpus` builds the full 75-page
set deterministically.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .images import evolve_image, generate_image
from .text import TextGenerator

__all__ = ["WebPage", "Corpus", "PAGE_COUNT", "TEXT_BYTES", "IMAGE_BYTES", "IMAGES_PER_PAGE"]

PAGE_COUNT = 75
TEXT_BYTES = 5 * 1024
IMAGES_PER_PAGE = 4
IMAGE_BYTES = 32_500  # four of these ~= 130 KB, per the paper

_PART_HEADER = struct.Struct("<4sI")
_MAGIC = b"FPG1"


@dataclass(frozen=True)
class WebPage:
    """One versioned page: text part + image parts."""

    page_id: int
    version: int
    text: bytes
    images: tuple[bytes, ...]

    def encode(self) -> bytes:
        """Flatten to the byte stream the protocols actually move."""
        parts = [self.text, *self.images]
        out = bytearray(_PART_HEADER.pack(_MAGIC, len(parts)))
        for part in parts:
            out += struct.pack("<I", len(part))
        for part in parts:
            out += part
        return bytes(out)

    @classmethod
    def decode(cls, page_id: int, version: int, blob: bytes) -> "WebPage":
        if len(blob) < _PART_HEADER.size:
            raise ValueError("page blob too short")
        magic, n_parts = _PART_HEADER.unpack_from(blob)
        if magic != _MAGIC:
            raise ValueError(f"bad page magic: {magic!r}")
        pos = _PART_HEADER.size
        lengths = []
        for _ in range(n_parts):
            (length,) = struct.unpack_from("<I", blob, pos)
            lengths.append(length)
            pos += 4
        parts = []
        for length in lengths:
            parts.append(blob[pos : pos + length])
            pos += length
        if pos != len(blob):
            raise ValueError("trailing bytes after page parts")
        if not parts:
            raise ValueError("page has no parts")
        return cls(page_id, version, parts[0], tuple(parts[1:]))

    @property
    def size(self) -> int:
        return len(self.encode())


class Corpus:
    """Deterministic 75-page corpus with on-demand version evolution.

    ``page(i)`` returns version 0; ``evolved(i, v)`` returns version ``v``
    where each step edits the text (churn) and one image region.  Pages are
    cached so repeated access during benchmarks is cheap.
    """

    def __init__(
        self,
        *,
        n_pages: int = PAGE_COUNT,
        text_bytes: int = TEXT_BYTES,
        image_bytes: int = IMAGE_BYTES,
        images_per_page: int = IMAGES_PER_PAGE,
        seed: int = 2005,
        text_churn: float = 0.08,
        image_region_frac: float = 0.15,
    ):
        if n_pages < 1:
            raise ValueError(f"corpus needs at least one page, got {n_pages}")
        self.n_pages = n_pages
        self.text_bytes = text_bytes
        self.image_bytes = image_bytes
        self.images_per_page = images_per_page
        self.seed = seed
        self.text_churn = text_churn
        self.image_region_frac = image_region_frac
        self._textgen = TextGenerator(seed)
        self._cache: dict[tuple[int, int], WebPage] = {}

    def _check_page_id(self, page_id: int) -> None:
        if not 0 <= page_id < self.n_pages:
            raise IndexError(f"page_id {page_id} outside [0, {self.n_pages})")

    def page(self, page_id: int) -> WebPage:
        """Version 0 of a page."""
        self._check_page_id(page_id)
        key = (page_id, 0)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        text = self._textgen.generate(self.text_bytes, seed=(self.seed, page_id, 0))
        images = tuple(
            generate_image(self.image_bytes, seed=hash((self.seed, page_id, i)) & 0x7FFFFFFF)
            for i in range(self.images_per_page)
        )
        page = WebPage(page_id, 0, text, images)
        self._cache[key] = page
        return page

    def evolved(self, page_id: int, version: int) -> WebPage:
        """Version ``version`` (>= 0) of a page, evolving step by step."""
        self._check_page_id(page_id)
        if version < 0:
            raise ValueError(f"version must be >= 0, got {version}")
        key = (page_id, version)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if version == 0:
            return self.page(page_id)
        prev = self.evolved(page_id, version - 1)
        step_seed = hash((self.seed, page_id, version)) & 0x7FFFFFFF
        text = self._textgen.evolve(prev.text, seed=step_seed, churn=self.text_churn)
        images = list(prev.images)
        # One image view changes per version step (a rotated 3-D view).
        idx = step_seed % len(images)
        images[idx] = evolve_image(
            images[idx], seed=step_seed, region_frac=self.image_region_frac
        )
        page = WebPage(page_id, version, text, tuple(images))
        self._cache[key] = page
        return page

    def version_pair(self, page_id: int, old: int = 0, new: int = 1) -> tuple[bytes, bytes]:
        """(old_bytes, new_bytes) for differencing experiments."""
        if old > new:
            raise ValueError(f"old version {old} after new version {new}")
        return self.evolved(page_id, old).encode(), self.evolved(page_id, new).encode()

    def average_page_size(self, sample: int = 5) -> float:
        sample = min(sample, self.n_pages)
        return sum(self.page(i).size for i in range(sample)) / sample
