"""Client device and environment profiles (the paper's Fig. 7 testbed).

Three client hosts — Desktop (P4 2.0 GHz, Fedora Core 2, LAN), Laptop
(P4 3.06 GHz, Fedora Core 2, 802.11b WLAN), and Pocket PC PDA (Intel
PXA 255 @ 400 MHz, WinCE 4.2, Bluetooth) — plus the reference host the
linear model normalizes against (Eq. 1: 500 MHz "Std_cpu").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simnet.link import LINK_PRESETS, LinkSpec, NetworkType

__all__ = [
    "DeviceProfile",
    "ClientEnvironment",
    "STD_CPU_MHZ",
    "STD_BANDWIDTH_KBPS",
    "DESKTOP",
    "LAPTOP",
    "PDA",
    "DESKTOP_LAN",
    "LAPTOP_WLAN",
    "PDA_BLUETOOTH",
    "PAPER_ENVIRONMENTS",
]

STD_CPU_MHZ = 500.0       # paper: "500MHz Pentium IV" standard processor
STD_BANDWIDTH_KBPS = 1000.0  # paper: 1 Mbps standard bandwidth


@dataclass(frozen=True)
class DeviceProfile:
    """Hardware/OS identity — the content of ``DevMeta``."""

    name: str
    os_type: str       # key into the B matrix
    cpu_type: str      # key into the A matrix
    cpu_mhz: float
    memory_mb: float

    def __post_init__(self) -> None:
        if self.cpu_mhz <= 0:
            raise ValueError(f"cpu_mhz must be positive, got {self.cpu_mhz}")
        if self.memory_mb <= 0:
            raise ValueError(f"memory_mb must be positive, got {self.memory_mb}")

    @property
    def cpu_scale(self) -> float:
        """Linear-model slowdown vs the standard processor (>1 = slower)."""
        return STD_CPU_MHZ / self.cpu_mhz


@dataclass(frozen=True)
class ClientEnvironment:
    """A device on a network — one x-axis point of Figs. 10/11."""

    label: str
    device: DeviceProfile
    link: LinkSpec

    @property
    def network_type(self) -> NetworkType:
        return self.link.network_type


DESKTOP = DeviceProfile(
    name="Desktop", os_type="FedoraCore2", cpu_type="PentiumIV",
    cpu_mhz=2000.0, memory_mb=512.0,
)
LAPTOP = DeviceProfile(
    name="Laptop", os_type="FedoraCore2", cpu_type="PentiumIV",
    cpu_mhz=3060.0, memory_mb=512.0,
)
PDA = DeviceProfile(
    name="PDA", os_type="WinCE4.2", cpu_type="PXA255",
    cpu_mhz=400.0, memory_mb=64.0,
)

DESKTOP_LAN = ClientEnvironment("Desktop/LAN", DESKTOP, LINK_PRESETS[NetworkType.LAN])
LAPTOP_WLAN = ClientEnvironment("Laptop/WLAN", LAPTOP, LINK_PRESETS[NetworkType.WLAN])
PDA_BLUETOOTH = ClientEnvironment(
    "PDA/Bluetooth", PDA, LINK_PRESETS[NetworkType.BLUETOOTH]
)

PAPER_ENVIRONMENTS = (DESKTOP_LAN, LAPTOP_WLAN, PDA_BLUETOOTH)
