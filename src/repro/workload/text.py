"""Deterministic synthetic text with realistic edit churn.

The corpus text imitates report prose: a Zipf-ish vocabulary drawn from a
seeded RNG so the byte stream compresses like natural language (roughly
3:1 under deflate-family coders) rather than like random noise.  Version
evolution applies sentence-level insertions, deletions, and replacements —
the edit pattern differencing protocols are sensitive to.
"""

from __future__ import annotations

import random
from typing import List

__all__ = ["TextGenerator"]

_SYLLABLES = [
    "ta", "re", "mon", "si", "lo", "ve", "ka", "du", "pre", "na", "tor",
    "bi", "cu", "sal", "ger", "ix", "pha", "ron", "del", "qua", "mi", "zo",
]


class TextGenerator:
    """Seeded generator of prose-like text and its edited versions."""

    def __init__(self, seed: int = 0, vocabulary_size: int = 600):
        if vocabulary_size < 10:
            raise ValueError(f"vocabulary too small: {vocabulary_size}")
        self._rng = random.Random(seed)
        self._vocab = self._build_vocabulary(vocabulary_size)
        # Zipf-like weights: rank r gets weight 1/r.
        self._weights = [1.0 / (r + 1) for r in range(vocabulary_size)]

    def _build_vocabulary(self, size: int) -> List[str]:
        words = set()
        while len(words) < size:
            n = self._rng.randint(2, 4)
            words.add("".join(self._rng.choice(_SYLLABLES) for _ in range(n)))
        return sorted(words)

    def _sentence(self, rng: random.Random) -> str:
        n_words = rng.randint(6, 16)
        words = rng.choices(self._vocab, weights=self._weights, k=n_words)
        words[0] = words[0].capitalize()
        return " ".join(words) + "."

    def generate(self, approx_bytes: int, seed: int = 0) -> bytes:
        """Prose of roughly ``approx_bytes`` (never less)."""
        if approx_bytes < 1:
            raise ValueError(f"approx_bytes must be >= 1, got {approx_bytes}")
        rng = random.Random(repr((seed, "text")))
        parts: list[str] = []
        size = 0
        while size < approx_bytes:
            s = self._sentence(rng)
            parts.append(s)
            size += len(s) + 1
        return " ".join(parts).encode("ascii")

    def evolve(self, text: bytes, *, seed: int = 0, churn: float = 0.08) -> bytes:
        """A new version of ``text`` with about ``churn`` fraction changed.

        Operates on sentences: each is kept, dropped, rewritten, or gains a
        new neighbour, with probabilities scaled so the expected changed
        fraction is ``churn``.
        """
        if not 0.0 <= churn <= 1.0:
            raise ValueError(f"churn must be in [0, 1], got {churn}")
        rng = random.Random(repr((seed, "evolve")))
        sentences = text.decode("ascii").split(". ")
        out: list[str] = []
        p = churn / 3.0  # three edit kinds share the churn budget
        for s in sentences:
            roll = rng.random()
            if roll < p:
                continue  # deletion
            if roll < 2 * p:
                out.append(self._sentence(rng).rstrip("."))  # replacement
                continue
            out.append(s)
            if roll < 3 * p:
                out.append(self._sentence(rng).rstrip("."))  # insertion
        return ". ".join(out).encode("ascii")
