"""Workload substrate: the paper's 75-page corpus and client environments."""

from .images import SyntheticImage, decode_image, evolve_image, generate_image
from .pages import (
    IMAGE_BYTES,
    IMAGES_PER_PAGE,
    PAGE_COUNT,
    TEXT_BYTES,
    Corpus,
    WebPage,
)
from .profiles import (
    DESKTOP,
    DESKTOP_LAN,
    LAPTOP,
    LAPTOP_WLAN,
    PAPER_ENVIRONMENTS,
    PDA,
    PDA_BLUETOOTH,
    STD_BANDWIDTH_KBPS,
    STD_CPU_MHZ,
    ClientEnvironment,
    DeviceProfile,
)
from .text import TextGenerator

__all__ = [
    "SyntheticImage",
    "decode_image",
    "evolve_image",
    "generate_image",
    "IMAGE_BYTES",
    "IMAGES_PER_PAGE",
    "PAGE_COUNT",
    "TEXT_BYTES",
    "Corpus",
    "WebPage",
    "DESKTOP",
    "DESKTOP_LAN",
    "LAPTOP",
    "LAPTOP_WLAN",
    "PAPER_ENVIRONMENTS",
    "PDA",
    "PDA_BLUETOOTH",
    "STD_BANDWIDTH_KBPS",
    "STD_CPU_MHZ",
    "ClientEnvironment",
    "DeviceProfile",
    "TextGenerator",
]
