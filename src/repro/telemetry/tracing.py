"""Span-based tracing for negotiation/retrieval sessions.

The paper's evaluation is a per-stage time breakdown (Figs. 9–11):
*where* does a session spend its time — negotiation, PAD retrieval,
verification, deployment, the adapted transfer itself?  A
:class:`Tracer` answers that with nested spans:

* a **span** is one named stage with a start/end stamp (from the
  pluggable clock), a tag dict, and child spans;
* a **trace** is the tree hanging off one root span, keyed by a trace id
  (we use the INP session id, so one negotiation session = one trace);
* the tracer keeps a stack of active spans — entering a span while
  another is open makes it a child, which is exactly right for the
  synchronous in-process call graph (the proxy's ``search`` span nests
  inside the client's ``negotiate`` span when they share a tracer).

Everything exports to plain JSON (:meth:`Tracer.export`), and
:func:`stage_rows` aggregates any export into the Fig.-11-style
per-stage table that ``bench/reporting.py`` renders.

Finished traces are bounded (``max_traces``, oldest dropped first): the
tracer must survive a 10k-session churn loop without becoming the very
memory leak this PR fixes in the proxy.

Concurrency: the active-span stack lives in a ``contextvars``
context variable holding an **immutable tuple**, so it is isolated per
thread *and* per asyncio task — eight worker threads or eight
interleaved tasks on one event loop each build their own span tree
instead of nesting into whichever span another execution context has
open.  Entering a span sets the variable to ``stack + (span,)`` and
records the token; exiting resets it, which restores correct LIFO
nesting across ``await`` boundaries (the async client and
``handle_async`` emit real spans through this).  The finished-trace
table is guarded by a lock.  A single ``Span`` is still owned by the
context that opened it.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Iterator, Optional

from .clock import Clock, wall_clock

__all__ = ["Span", "Tracer", "stage_rows"]


class Span:
    """One named stage of a trace."""

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "start_s", "end_s",
        "tags", "children",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: int,
        parent_id: Optional[int],
        start_s: float,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.tags: dict[str, object] = {}
        self.children: list[Span] = []

    @property
    def finished(self) -> bool:
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        return (self.end_s - self.start_s) if self.end_s is not None else 0.0

    def tag(self, **kv: object) -> "Span":
        self.tags.update(kv)
        return self

    def walk(self) -> Iterator["Span"]:
        """This span, then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "tags": dict(self.tags),
            "children": [c.to_dict() for c in self.children],
        }


class Tracer:
    """Records nested spans per session; bounded trace retention."""

    DEFAULT_MAX_TRACES = 512

    def __init__(
        self,
        clock: Optional[Clock] = None,
        max_traces: int = DEFAULT_MAX_TRACES,
    ) -> None:
        if max_traces < 1:
            raise ValueError(f"max_traces must be >= 1, got {max_traces}")
        self.clock: Clock = clock or wall_clock
        self.max_traces = max_traces
        # Active spans nest per execution context (thread AND asyncio
        # task): concurrent sessions must not become children of each
        # other's spans.  The value is an immutable tuple; span() swaps
        # it with set()/reset() tokens, never mutates it in place.
        self._stack_var: contextvars.ContextVar[tuple[Span, ...]] = (
            contextvars.ContextVar(f"tracer_stack_{id(self)}", default=())
        )
        # trace id -> finished root spans, insertion-ordered for FIFO drop.
        self._traces: "OrderedDict[str, list[Span]]" = OrderedDict()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)  # itertools.count is GIL-atomic
        self.traces_dropped = 0

    @property
    def _stack(self) -> tuple[Span, ...]:
        return self._stack_var.get()

    # -- recording ----------------------------------------------------------

    @contextmanager
    def span(self, name: str, *, trace: Optional[str] = None, **tags: object):
        """Open a span; nests under the currently active span if any.

        ``trace`` names the trace id for a *root* span (e.g. the INP
        session id); child spans always inherit their parent's trace id.
        """
        stack = self._stack_var.get()
        parent = stack[-1] if stack else None
        if parent is not None:
            trace_id = parent.trace_id
        else:
            trace_id = trace if trace is not None else f"trace-{next(self._ids)}"
        sp = Span(name, trace_id, next(self._ids),
                  parent.span_id if parent else None, self.clock())
        if tags:
            sp.tags.update(tags)
        if parent is not None:
            parent.children.append(sp)
        token = self._stack_var.set(stack + (sp,))
        try:
            yield sp
        finally:
            sp.end_s = self.clock()
            self._stack_var.reset(token)
            if parent is None:
                self._keep_root(sp)

    def _keep_root(self, root: Span) -> None:
        with self._lock:
            self._traces.setdefault(root.trace_id, []).append(root)
            while len(self._traces) > self.max_traces:
                self._traces.popitem(last=False)
                self.traces_dropped += 1

    @property
    def active_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    # -- reading ------------------------------------------------------------

    def trace_ids(self) -> list[str]:
        with self._lock:
            return list(self._traces)

    def trace(self, trace_id: str) -> list[Span]:
        """Finished root spans of one trace (empty list if unknown)."""
        with self._lock:
            return list(self._traces.get(trace_id, ()))

    def spans(self) -> Iterator[Span]:
        """Every finished span across every retained trace."""
        with self._lock:
            roots = [r for rs in self._traces.values() for r in rs]
        for root in roots:
            yield from root.walk()

    # -- export -------------------------------------------------------------

    def export(self) -> dict:
        """JSON-ready dict: ``{"traces": {trace_id: [root span dicts]}}``."""
        with self._lock:
            items = [(tid, list(roots)) for tid, roots in self._traces.items()]
            dropped = self.traces_dropped
        return {
            "traces": {tid: [r.to_dict() for r in roots] for tid, roots in items},
            "traces_dropped": dropped,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.export(), indent=indent, sort_keys=True)

    def stage_rows(self) -> list[dict]:
        """Aggregate retained spans into Fig.-11-style stage rows."""
        return stage_rows(self.export())

    def clear(self) -> None:
        """Drop retained traces (active spans are left alone)."""
        with self._lock:
            self._traces.clear()


def stage_rows(export: dict) -> list[dict]:
    """Aggregate a :meth:`Tracer.export` dict into per-stage rows.

    Works on the plain JSON export (not live ``Span`` objects), so a
    snapshot written to disk by one process can be tabulated by another
    — this is the form ``bench/reporting.py`` consumes.

    Returns rows sorted by total time descending::

        {"stage": name, "count": n, "total_s": t, "mean_s": t/n,
         "share": t / sum-over-root-spans}
    """
    totals: dict[str, list[float]] = {}

    def visit(span_dict: dict) -> None:
        agg = totals.setdefault(span_dict["name"], [0, 0.0])
        agg[0] += 1
        agg[1] += span_dict.get("duration_s") or 0.0
        for child in span_dict.get("children", ()):
            visit(child)

    root_total = 0.0
    for roots in export.get("traces", {}).values():
        for root in roots:
            root_total += root.get("duration_s") or 0.0
            visit(root)

    rows = []
    for name, (count, total) in totals.items():
        rows.append(
            {
                "stage": name,
                "count": count,
                "total_s": total,
                "mean_s": total / count if count else 0.0,
                "share": (total / root_total) if root_total > 0 else 0.0,
            }
        )
    rows.sort(key=lambda r: (-r["total_s"], r["stage"]))
    return rows
