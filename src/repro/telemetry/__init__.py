"""Zero-dependency observability: metrics registry + span tracing.

The paper's evaluation is entirely about where time goes (negotiation
vs. retrieval vs. deployment vs. adaptation — Figs. 9–11), so every
component in this reproduction reports into one of two sinks:

* :class:`MetricsRegistry` — named counters, gauges, and fixed-bucket
  histograms, with ``timer()``/``timed()`` helpers;
* :class:`Tracer` — nested spans per negotiation session, exportable as
  JSON and aggregable into a per-stage breakdown table.

Both read time through a pluggable clock (:func:`wall_clock` or
:class:`SimClock`), so the same instrumentation works on the real system
and on the discrete-event simulator.

:class:`Telemetry` bundles one registry + one tracer behind one clock;
components take an optional ``telemetry=`` argument and create a private
bundle when none is supplied, while :func:`repro.core.system.build_case_study`
shares a single bundle across the whole Fig.-1 testbed so client spans
and proxy spans land in the same trace.
"""

from __future__ import annotations

from typing import Optional

from .clock import Clock, SimClock, wall_clock
from .registry import (
    DEFAULT_SIZE_BUCKETS_BYTES,
    DEFAULT_TIME_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TelemetryError,
)
from .tracing import Span, Tracer, stage_rows

__all__ = [
    "Clock",
    "SimClock",
    "wall_clock",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TelemetryError",
    "Span",
    "Tracer",
    "stage_rows",
    "Telemetry",
    "DEFAULT_TIME_BUCKETS_S",
    "DEFAULT_SIZE_BUCKETS_BYTES",
]


class Telemetry:
    """One registry + one tracer sharing one clock."""

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock: Clock = clock or wall_clock
        self.registry = MetricsRegistry(self.clock)
        self.tracer = Tracer(self.clock)

    @classmethod
    def simulated(cls, sim) -> "Telemetry":
        """A bundle driven by a simulator's virtual time."""
        return cls(SimClock(sim))

    def snapshot(self) -> dict:
        """Combined JSON-ready snapshot: metrics + trace export."""
        return {"metrics": self.registry.snapshot(), "traces": self.tracer.export()}

    def reset(self) -> None:
        self.registry.reset()
        self.tracer.clear()
