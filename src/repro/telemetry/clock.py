"""Pluggable time sources for telemetry.

Every telemetry primitive (timers, span start/end stamps) reads time
through a zero-argument callable, so the same registry/tracer code runs
under wall-clock time (the real proxy, the bench harness) and under
simulated time (a :class:`~repro.simnet.kernel.Simulator` driving the
capacity experiments).  Durations are always "whatever the clock says",
in seconds.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["Clock", "wall_clock", "SimClock"]

Clock = Callable[[], float]


def wall_clock() -> float:
    """Monotonic wall-clock seconds (``time.perf_counter``)."""
    return time.perf_counter()


class SimClock:
    """A clock that reads a discrete-event simulator's virtual time.

    Works with any object exposing a ``now`` attribute in seconds —
    in this repo, :class:`repro.simnet.kernel.Simulator`.  A timer or
    span wrapped around ``yield sim.timeout(...)`` statements inside a
    process generator therefore measures *simulated* elapsed time.
    """

    __slots__ = ("sim",)

    def __init__(self, sim) -> None:
        self.sim = sim

    def __call__(self) -> float:
        return self.sim.now
