"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the single sink for every numeric measurement in the
reproduction (proxy cache hits, CDN bytes served, per-link latency, …),
replacing the ad-hoc counter dataclasses and ``perf_counter()`` pairs
that used to live in each component.  Design constraints:

* **Zero dependencies** — plain dicts and lists, JSON-serializable
  snapshots.
* **Pluggable time** — ``timer()``/``timed()`` read the registry clock
  (:mod:`repro.telemetry.clock`), so the same instrumentation measures
  wall time on the real system and virtual time on the simulator.
* **Stable names** — metrics are flat dotted strings
  (``"proxy.cache.hits"``); registering the same name as two different
  kinds is an error, re-requesting it is a cheap lookup.
* **Thread safety** — every mutation (``inc``/``set``/``observe``) holds
  the metric's own lock, and metric creation holds the registry lock, so
  8 proxy worker threads hammering one counter lose no updates and a
  ``snapshot()`` taken mid-load is internally consistent per metric.

Histogram buckets are *fixed at creation* (upper bounds, inclusive,
plus an implicit +inf overflow bucket), so snapshots from different runs
diff cleanly — the point of the bench trajectory.
"""

from __future__ import annotations

import functools
import json
import math
import threading
from bisect import bisect_left
from typing import Callable, Optional, Sequence

from .clock import Clock, wall_clock

__all__ = [
    "TelemetryError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS_S",
    "DEFAULT_SIZE_BUCKETS_BYTES",
]


class TelemetryError(Exception):
    """Raised for metric kind collisions and malformed bucket specs."""


# Latency-style buckets: 100 µs .. 10 s, roughly geometric.  Everything
# in the paper's evaluation (negotiation, retrieval, deployment) lands
# inside this range on both the 2005 testbed and a modern host.
DEFAULT_TIME_BUCKETS_S: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

# Object-size buckets: 256 B .. 4 MiB (PADs, pages, INP packets).
DEFAULT_SIZE_BUCKETS_BYTES: tuple[float, ...] = (
    256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304,
)


class Counter:
    """A monotonically increasing integer-or-float counter (thread-safe)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        with self._lock:
            self.value += amount

    def snapshot(self) -> float:
        return self.value

    def _reset(self) -> None:
        with self._lock:
            self.value = 0


class Gauge:
    """A value that can go up and down (open sessions, cache bytes)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self.value -= amount

    def snapshot(self) -> float:
        return self.value

    def _reset(self) -> None:
        with self._lock:
            self.value = 0.0


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max.

    ``buckets`` are inclusive upper bounds in strictly increasing order;
    an observation ``x`` lands in the first bucket whose bound is
    ``>= x``.  Observations above the last bound land in the implicit
    +inf overflow bucket.
    """

    __slots__ = (
        "name", "bounds", "counts", "count", "total", "minimum", "maximum",
        "_lock",
    )

    def __init__(self, name: str, buckets: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise TelemetryError(f"histogram {name!r} needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise TelemetryError(
                f"histogram {name!r} buckets must be strictly increasing: {bounds}"
            )
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # [-inf..b0], (b0..b1], ..., overflow
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._lock = threading.Lock()

    def observe(self, x: float) -> None:
        with self._lock:
            self.counts[bisect_left(self.bounds, x)] += 1
            self.count += 1
            self.total += x
            if x < self.minimum:
                self.minimum = x
            if x > self.maximum:
                self.maximum = x

    def _reset(self) -> None:
        with self._lock:
            self.counts = [0] * len(self.counts)
            self.count = 0
            self.total = 0.0
            self.minimum = math.inf
            self.maximum = -math.inf

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def bucket_rows(self) -> list[tuple[float, int]]:
        """(upper bound, cumulative count) rows; last bound is +inf."""
        rows = []
        cum = 0
        for bound, n in zip((*self.bounds, math.inf), self.counts):
            cum += n
            rows.append((bound, cum))
        return rows

    def snapshot(self) -> dict:
        # Under the lock so count/sum/buckets describe one moment even
        # when observations land concurrently.
        with self._lock:
            return {
                "count": self.count,
                "sum": self.total,
                "min": self.minimum if self.count else None,
                "max": self.maximum if self.count else None,
                "buckets": [
                    # inf serialized as string so the snapshot stays valid JSON
                    ["inf" if math.isinf(b) else b, c]
                    for b, c in self.bucket_rows()
                ],
            }


class _Timer:
    """Context manager: observes elapsed clock time into a histogram."""

    __slots__ = ("_clock", "_hist", "_start", "elapsed_s")

    def __init__(self, clock: Clock, hist: Histogram) -> None:
        self._clock = clock
        self._hist = hist
        self._start = 0.0
        self.elapsed_s = 0.0

    def __enter__(self) -> "_Timer":
        self._start = self._clock()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed_s = self._clock() - self._start
        self._hist.observe(self.elapsed_s)


class MetricsRegistry:
    """Flat namespace of counters/gauges/histograms behind one clock."""

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock: Clock = clock or wall_clock
        self._metrics: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind: type, factory: Callable[[], object]):
        # Fast path without the lock: dict reads are safe under the GIL
        # and metrics are never removed, only added.
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = factory()
                    self._metrics[name] = metric
        if not isinstance(metric, kind):
            raise TelemetryError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_TIME_BUCKETS_S
    ) -> Histogram:
        return self._get_or_create(name, Histogram, lambda: Histogram(name, buckets))

    def timer(
        self, name: str, buckets: Sequence[float] = DEFAULT_TIME_BUCKETS_S
    ) -> _Timer:
        """``with registry.timer("proxy.search_seconds"): ...``"""
        return _Timer(self.clock, self.histogram(name, buckets))

    def timed(
        self, name: str, buckets: Sequence[float] = DEFAULT_TIME_BUCKETS_S
    ) -> Callable:
        """Decorator form of :meth:`timer`."""

        def decorate(fn: Callable) -> Callable:
            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                with self.timer(name, buckets):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    # -- export ------------------------------------------------------------

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> dict:
        """Plain-dict snapshot: ``{"counters": .., "gauges": .., "histograms": ..}``."""
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out["counters"][name] = metric.snapshot()
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.snapshot()
            else:
                out["histograms"][name] = metric.snapshot()
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        """Zero every metric in place (bench epoch boundaries)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric._reset()
