"""CDN request routing.

The paper: "it is the CDN's responsibility to find the closest edgeserver
which holds the PAD, and to redirect the request to that edgeserver."  The
redirector resolves a client's site to the nearest edge (by topology
latency), optionally preferring an edge that already holds the object.
"""

from __future__ import annotations

from typing import Optional

from ..simnet.topology import Topology
from .edge import EdgeServer

__all__ = ["Redirector", "RedirectError"]


class RedirectError(Exception):
    """Raised when no edge can serve a request."""


class Redirector:
    def __init__(self, topology: Topology):
        self.topology = topology
        self._edges: dict[str, EdgeServer] = {}

    def register_edge(self, edge: EdgeServer) -> None:
        if edge.name not in self.topology:
            raise RedirectError(
                f"edge {edge.name!r} has no site in the topology; add it first"
            )
        if edge.name in self._edges:
            raise RedirectError(f"duplicate edge registration: {edge.name!r}")
        self._edges[edge.name] = edge

    def edges(self) -> list[EdgeServer]:
        return [self._edges[n] for n in sorted(self._edges)]

    def edge_names(self) -> list[str]:
        return sorted(self._edges)

    def resolve(
        self, client_site: str, key: Optional[str] = None, *, prefer_cached: bool = True
    ) -> EdgeServer:
        """Pick the edge for ``client_site``.

        With ``prefer_cached`` and a ``key``, edges already holding the
        object win over strictly-nearer cold edges — the standard CDN
        trade of locality for hit ratio.
        """
        if not self._edges:
            raise RedirectError("no edges registered")
        names = list(self._edges)
        if prefer_cached and key is not None:
            warm = [n for n in names if self._edges[n].has_cached(key)]
            if warm:
                return self._edges[self.topology.nearest(client_site, warm)]
        return self._edges[self.topology.nearest(client_site, names)]

    def fetch(self, client_site: str, key: str) -> tuple[bytes, EdgeServer]:
        """Resolve and serve in one step; returns (blob, serving edge)."""
        edge = self.resolve(client_site, key)
        return edge.serve(key), edge
