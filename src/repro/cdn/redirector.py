"""CDN request routing.

The paper: "it is the CDN's responsibility to find the closest edgeserver
which holds the PAD, and to redirect the request to that edgeserver."  The
redirector resolves a client's site to the nearest edge (by topology
latency), optionally preferring an edge that already holds the object.

Resilience: real CDNs route *around* dead or lying edges, so the
redirector also exposes a ranked edge list (:meth:`Redirector.ranked`)
and a stateful :class:`FailoverFetcher` that walks that ranking — next
nearest edge on an outage, and (via :meth:`FailoverFetcher.mark_bad`)
on a digest/signature mismatch the client detects after download.
"""

from __future__ import annotations

import threading
from typing import Optional

from ..simnet.topology import Topology
from ..telemetry import MetricsRegistry
from .edge import EdgeServer

__all__ = ["Redirector", "RedirectError", "FailoverFetcher"]


class RedirectError(Exception):
    """Raised when no edge can serve a request."""


class Redirector:
    def __init__(self, topology: Topology):
        self.topology = topology
        self._edges: dict[str, EdgeServer] = {}
        self._lock = threading.Lock()

    def register_edge(self, edge: EdgeServer) -> None:
        if edge.name not in self.topology:
            raise RedirectError(
                f"edge {edge.name!r} has no site in the topology; add it first"
            )
        with self._lock:
            if edge.name in self._edges:
                raise RedirectError(f"duplicate edge registration: {edge.name!r}")
            self._edges[edge.name] = edge

    def replace_edge(self, edge: EdgeServer) -> EdgeServer:
        """Swap the registered edge of the same name (fault wrappers).

        Returns the previous instance so callers can restore it.
        """
        with self._lock:
            if edge.name not in self._edges:
                raise RedirectError(f"no edge registered as {edge.name!r}")
            previous = self._edges[edge.name]
            self._edges[edge.name] = edge
            return previous

    def _edge_map(self) -> dict[str, EdgeServer]:
        """Point-in-time snapshot; resolve/ranked walk this, not the live dict."""
        with self._lock:
            return dict(self._edges)

    def edges(self) -> list[EdgeServer]:
        edges = self._edge_map()
        return [edges[n] for n in sorted(edges)]

    def edge_names(self) -> list[str]:
        with self._lock:
            return sorted(self._edges)

    def resolve(
        self, client_site: str, key: Optional[str] = None, *, prefer_cached: bool = True
    ) -> EdgeServer:
        """Pick the edge for ``client_site``.

        With ``prefer_cached`` and a ``key``, edges already holding the
        object win over strictly-nearer cold edges — the standard CDN
        trade of locality for hit ratio.
        """
        edges = self._edge_map()
        if not edges:
            raise RedirectError("no edges registered")
        names = list(edges)
        if prefer_cached and key is not None:
            warm = [n for n in names if edges[n].has_cached(key)]
            if warm:
                return edges[self.topology.nearest(client_site, warm)]
        return edges[self.topology.nearest(client_site, names)]

    def ranked(
        self, client_site: str, key: Optional[str] = None, *, prefer_cached: bool = True
    ) -> list[EdgeServer]:
        """All edges in failover order for ``client_site``.

        Nearest first; with ``prefer_cached`` and a ``key``, every warm
        edge (nearest-first) precedes every cold edge.  The first entry
        is exactly what :meth:`resolve` returns.
        """
        edges = self._edge_map()
        if not edges:
            raise RedirectError("no edges registered")
        by_distance = sorted(
            edges,
            key=lambda n: (self.topology.latency_s(client_site, n), n),
        )
        if prefer_cached and key is not None:
            warm = [n for n in by_distance if edges[n].has_cached(key)]
            cold = [n for n in by_distance if not edges[n].has_cached(key)]
            by_distance = warm + cold
        return [edges[n] for n in by_distance]

    def fetch(self, client_site: str, key: str) -> tuple[bytes, EdgeServer]:
        """Resolve and serve in one step; returns (blob, serving edge)."""
        edge = self.resolve(client_site, key)
        return edge.serve(key), edge

    def fetch_with_failover(
        self,
        client_site: str,
        key: str,
        *,
        skip: frozenset[str] = frozenset(),
        max_edges: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> tuple[bytes, EdgeServer]:
        """Serve ``key``, walking the ranked edge list past failures.

        Edges named in ``skip`` are not tried (the caller has evidence
        they serve bad bytes); each edge that raises counts one
        ``cdn.failovers``.  Raises :class:`RedirectError` only when every
        candidate edge failed.
        """
        candidates = [e for e in self.ranked(client_site, key) if e.name not in skip]
        if max_edges is not None:
            candidates = candidates[:max_edges]
        if not candidates:
            raise RedirectError(
                f"no candidate edges for {key!r} from {client_site!r}"
            )
        last_error: Optional[Exception] = None
        for edge in candidates:
            try:
                return edge.serve(key), edge
            except Exception as exc:  # noqa: BLE001 - any edge failure fails over
                last_error = exc
                if registry is not None:
                    registry.counter("cdn.failovers").inc()
        raise RedirectError(
            f"all {len(candidates)} candidate edges failed for {key!r} "
            f"from {client_site!r}: {last_error}"
        ) from last_error


class FailoverFetcher:
    """A per-site CDN fetch function with memory of misbehaving edges.

    Callable as ``fetcher(key) -> bytes`` so it drops into
    :class:`~repro.core.client.FractalClient`'s ``cdn_fetch`` slot.  On a
    serve failure it transparently advances to the next-ranked edge; when
    the *caller* discovers the bytes were bad (digest or signature
    mismatch after download), it calls :meth:`mark_bad` and the edge that
    served that key is skipped on the re-download.  A key whose every
    edge has been marked bad gets its slate wiped — outages end, and a
    permanently empty candidate list would turn a transient fault into a
    hard failure.
    """

    def __init__(
        self,
        redirector: Redirector,
        client_site: str,
        *,
        max_edges: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.redirector = redirector
        self.client_site = client_site
        self.max_edges = max_edges
        self._registry = registry
        self._lock = threading.Lock()  # guards the bad-edge slate + last map
        self._bad: dict[str, set[str]] = {}  # key -> edge names to avoid
        self._last: dict[str, str] = {}  # key -> edge that served it last

    def __call__(self, key: str) -> bytes:
        with self._lock:
            bad = frozenset(self._bad.get(key, ()))
        if bad and not any(
            e.name not in bad for e in self.redirector.edges()
        ):
            # Slate wipe: every edge is poisoned for this key — outages
            # end, so forget and start over rather than hard-fail.
            with self._lock:
                self._bad.pop(key, None)
            bad = frozenset()
        blob, edge = self.redirector.fetch_with_failover(
            self.client_site,
            key,
            skip=bad,
            max_edges=self.max_edges,
            registry=self._registry,
        )
        with self._lock:
            self._last[key] = edge.name
        return blob

    def mark_bad(self, key: str) -> None:
        """Blacklist the edge that last served ``key`` (bad bytes)."""
        with self._lock:
            edge_name = self._last.get(key)
            if edge_name is None:
                return
            self._bad.setdefault(key, set()).add(edge_name)
        if self._registry is not None:
            self._registry.counter("cdn.edges_marked_bad").inc()

    def last_edge(self, key: str) -> Optional[str]:
        with self._lock:
            return self._last.get(key)
