"""LRU object cache used by CDN edgeservers.

Capacity is in bytes (PADs have very different sizes).  Eviction is strict
LRU; hit/miss/eviction counters feed the CDN experiments.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

__all__ = ["LRUCache"]


class LRUCache:
    def __init__(self, capacity_bytes: int):
        if capacity_bytes < 1:
            raise ValueError(f"capacity must be >= 1 byte, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._items: OrderedDict[str, bytes] = OrderedDict()
        self.used_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __contains__(self, key: str) -> bool:
        return key in self._items

    def __len__(self) -> int:
        return len(self._items)

    def get(self, key: str) -> Optional[bytes]:
        value = self._items.get(key)
        if value is None:
            self.misses += 1
            return None
        self._items.move_to_end(key)
        self.hits += 1
        return value

    def peek(self, key: str) -> Optional[bytes]:
        """Look without touching recency or counters."""
        return self._items.get(key)

    def put(self, key: str, value: bytes) -> None:
        if len(value) > self.capacity_bytes:
            raise ValueError(
                f"object {key!r} ({len(value)} B) exceeds cache capacity "
                f"({self.capacity_bytes} B)"
            )
        old = self._items.pop(key, None)
        if old is not None:
            self.used_bytes -= len(old)
        self._items[key] = value
        self.used_bytes += len(value)
        while self.used_bytes > self.capacity_bytes:
            evicted_key, evicted = self._items.popitem(last=False)
            self.used_bytes -= len(evicted)
            self.evictions += 1

    def invalidate(self, key: str) -> bool:
        old = self._items.pop(key, None)
        if old is None:
            return False
        self.used_bytes -= len(old)
        return True

    def clear(self) -> None:
        self._items.clear()
        self.used_bytes = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def keys(self) -> list[str]:
        return list(self._items)
