"""LRU object cache used by CDN edgeservers.

Capacity is in bytes (PADs have very different sizes).  Eviction is strict
LRU; hit/miss/eviction counters feed the CDN experiments.

Counter epochs are explicit: :meth:`clear` drops the *contents* only and
deliberately preserves ``hits``/``misses``/``evictions`` (they describe
traffic history, not occupancy); :meth:`reset_stats` starts a fresh
counting epoch.  Bench code that reuses one cache across runs must call
``reset_stats()`` between runs or ``hit_ratio`` silently mixes epochs —
the exact bug this split fixes.

When a :class:`~repro.telemetry.MetricsRegistry` is supplied, every
hit/miss/eviction is also mirrored into the shared ``cdn.cache.*``
counters (aggregated across all caches wired to that registry).

The cache is thread-safe: one lock guards the item map, ``used_bytes``,
and the hit/miss/eviction counters together, so a ``put`` racing its own
eviction loop (the old lost-update bug on ``evictions``) and concurrent
``get``/``invalidate`` calls always leave byte accounting exact.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

from ..telemetry import MetricsRegistry

__all__ = ["LRUCache"]


class LRUCache:
    def __init__(
        self,
        capacity_bytes: int,
        *,
        registry: Optional[MetricsRegistry] = None,
    ):
        if capacity_bytes < 1:
            raise ValueError(f"capacity must be >= 1 byte, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._registry = registry
        self._lock = threading.RLock()
        self._items: OrderedDict[str, bytes] = OrderedDict()
        self.used_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _count(self, name: str, amount: int = 1) -> None:
        if self._registry is not None and amount:
            self._registry.counter(name).inc(amount)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._items

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def get(self, key: str) -> Optional[bytes]:
        with self._lock:
            value = self._items.get(key)
            if value is None:
                self.misses += 1
            else:
                self._items.move_to_end(key)
                self.hits += 1
        self._count("cdn.cache.misses" if value is None else "cdn.cache.hits")
        return value

    def peek(self, key: str) -> Optional[bytes]:
        """Look without touching recency or counters."""
        with self._lock:
            return self._items.get(key)

    def put(self, key: str, value: bytes) -> None:
        if len(value) > self.capacity_bytes:
            raise ValueError(
                f"object {key!r} ({len(value)} B) exceeds cache capacity "
                f"({self.capacity_bytes} B)"
            )
        evictions = 0
        with self._lock:
            old = self._items.pop(key, None)
            if old is not None:
                self.used_bytes -= len(old)
            self._items[key] = value
            self.used_bytes += len(value)
            while self.used_bytes > self.capacity_bytes:
                evicted_key, evicted = self._items.popitem(last=False)
                self.used_bytes -= len(evicted)
                self.evictions += 1
                evictions += 1
        self._count("cdn.cache.evictions", evictions)

    def invalidate(self, key: str) -> bool:
        with self._lock:
            old = self._items.pop(key, None)
            if old is None:
                return False
            self.used_bytes -= len(old)
            return True

    def clear(self) -> None:
        """Drop every cached object.  Counters are *preserved*.

        ``hits``/``misses``/``evictions`` describe traffic served so far,
        not current occupancy; use :meth:`reset_stats` to start a fresh
        counting epoch (e.g. between bench runs).
        """
        with self._lock:
            self._items.clear()
            self.used_bytes = 0

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters without touching contents."""
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    @property
    def hit_ratio(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._items)
