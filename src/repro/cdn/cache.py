"""LRU object cache used by CDN edgeservers.

Capacity is in bytes (PADs have very different sizes).  Eviction is strict
LRU; hit/miss/eviction counters feed the CDN experiments.

Counter epochs are explicit: :meth:`clear` drops the *contents* only and
deliberately preserves ``hits``/``misses``/``evictions`` (they describe
traffic history, not occupancy); :meth:`reset_stats` starts a fresh
counting epoch.  Bench code that reuses one cache across runs must call
``reset_stats()`` between runs or ``hit_ratio`` silently mixes epochs —
the exact bug this split fixes.

When a :class:`~repro.telemetry.MetricsRegistry` is supplied, every
hit/miss/eviction is also mirrored into the shared ``cdn.cache.*``
counters (aggregated across all caches wired to that registry).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ..telemetry import MetricsRegistry

__all__ = ["LRUCache"]


class LRUCache:
    def __init__(
        self,
        capacity_bytes: int,
        *,
        registry: Optional[MetricsRegistry] = None,
    ):
        if capacity_bytes < 1:
            raise ValueError(f"capacity must be >= 1 byte, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._registry = registry
        self._items: OrderedDict[str, bytes] = OrderedDict()
        self.used_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _count(self, name: str, amount: int = 1) -> None:
        if self._registry is not None:
            self._registry.counter(name).inc(amount)

    def __contains__(self, key: str) -> bool:
        return key in self._items

    def __len__(self) -> int:
        return len(self._items)

    def get(self, key: str) -> Optional[bytes]:
        value = self._items.get(key)
        if value is None:
            self.misses += 1
            self._count("cdn.cache.misses")
            return None
        self._items.move_to_end(key)
        self.hits += 1
        self._count("cdn.cache.hits")
        return value

    def peek(self, key: str) -> Optional[bytes]:
        """Look without touching recency or counters."""
        return self._items.get(key)

    def put(self, key: str, value: bytes) -> None:
        if len(value) > self.capacity_bytes:
            raise ValueError(
                f"object {key!r} ({len(value)} B) exceeds cache capacity "
                f"({self.capacity_bytes} B)"
            )
        old = self._items.pop(key, None)
        if old is not None:
            self.used_bytes -= len(old)
        self._items[key] = value
        self.used_bytes += len(value)
        while self.used_bytes > self.capacity_bytes:
            evicted_key, evicted = self._items.popitem(last=False)
            self.used_bytes -= len(evicted)
            self.evictions += 1
            self._count("cdn.cache.evictions")

    def invalidate(self, key: str) -> bool:
        old = self._items.pop(key, None)
        if old is None:
            return False
        self.used_bytes -= len(old)
        return True

    def clear(self) -> None:
        """Drop every cached object.  Counters are *preserved*.

        ``hits``/``misses``/``evictions`` describe traffic served so far,
        not current occupancy; use :meth:`reset_stats` to start a fresh
        counting epoch (e.g. between bench runs).
        """
        self._items.clear()
        self.used_bytes = 0

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters without touching contents."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def keys(self) -> list[str]:
        return list(self._items)
