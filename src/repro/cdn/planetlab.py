"""Synthetic PlanetLab-like deployment.

The paper emulates a CDN with PlanetLab nodes.  We generate a deterministic
wide-area node set: edges scattered over a coordinate plane (continental
span), an origin/proxy/appserver cluster in one administrative domain (the
paper co-locates proxy and application server), and client sites at
configurable distances.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..simnet.topology import Topology
from .edge import EdgeServer
from .origin import OriginServer
from .redirector import Redirector

__all__ = ["Deployment", "build_deployment"]

ORIGIN_SITE = "origin"
PROXY_SITE = "proxy"
APPSERVER_SITE = "appserver"


@dataclass
class Deployment:
    """Everything Fig. 9's experiments need, in one bundle."""

    topology: Topology
    origin: OriginServer
    edges: list[EdgeServer]
    redirector: Redirector
    client_sites: list[str] = field(default_factory=list)


def build_deployment(
    *,
    n_edges: int = 20,
    n_client_sites: int = 12,
    span: float = 60.0,
    seed: int = 2005,
    edge_cache_bytes: int = 16 * 1024 * 1024,
    registry=None,
    edge_stores: bool = False,
) -> Deployment:
    """Deterministic deployment: origin cluster + scattered edges + clients.

    ``edge_stores=True`` attaches an edge-local
    :class:`~repro.store.ChunkStore` to every edge (all named ``edge``,
    so a shared registry aggregates their hit/miss ledger under
    ``store.edge.*`` the same way ``cdn.edge.*`` aggregates the PAD
    caches) — :meth:`EdgeServer.serve_record` then serves
    content-addressed chunk/response records with single-flight
    origin fill.
    """
    if n_edges < 1:
        raise ValueError(f"need at least one edge, got {n_edges}")
    if n_client_sites < 1:
        raise ValueError(f"need at least one client site, got {n_client_sites}")
    names = (
        [f"edge{i:02d}" for i in range(n_edges)]
        + [f"clientsite{i:02d}" for i in range(n_client_sites)]
    )
    topology = Topology.random_plane(names, span=span, seed=seed)
    # Origin/proxy/appserver share one administrative domain: one corner,
    # tight cluster (paper: proxy "deployed in the same administration
    # domain as the application server").
    topology.add(ORIGIN_SITE, 0.0, 0.0)
    topology.add(PROXY_SITE, 0.5, 0.0)
    topology.add(APPSERVER_SITE, 0.0, 0.5)

    origin = OriginServer()
    redirector = Redirector(topology)
    edges = []
    for i in range(n_edges):
        store = None
        if edge_stores:
            from ..store.chunkstore import ChunkStore

            store = ChunkStore(name="edge", registry=registry)
        edge = EdgeServer(
            f"edge{i:02d}",
            origin,
            cache_bytes=edge_cache_bytes,
            registry=registry,
            chunk_store=store,
        )
        redirector.register_edge(edge)
        edges.append(edge)
    client_sites = [f"clientsite{i:02d}" for i in range(n_client_sites)]
    return Deployment(
        topology=topology,
        origin=origin,
        edges=edges,
        redirector=redirector,
        client_sites=client_sites,
    )
