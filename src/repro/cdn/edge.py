"""CDN edgeserver: cached delivery of PAD objects.

On a cache miss the edge pulls from the origin (pull-through replication),
exactly how commercial CDNs treat a Web object — the paper's point is that
a PAD *is* a Web object.

With a shared :class:`~repro.telemetry.MetricsRegistry`, every edge
reports into the aggregate ``cdn.edge.*`` counters (requests, bytes
served, origin fetches) while per-edge numbers stay on the instance.

An edge may additionally carry an **edge-local chunk store**
(:class:`~repro.store.ChunkStore`): content-addressed records — CDC
chunk tables, finished adapted responses — served via
:meth:`EdgeServer.serve_record` with an origin-fill callback.  Unlike
the PAD cache's thundering-herd pull, the store is single-flight: two
concurrent misses on one key fill from origin once.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from ..telemetry import MetricsRegistry
from .cache import LRUCache
from .origin import OriginError, OriginServer

__all__ = ["EdgeServer"]

DEFAULT_EDGE_CACHE_BYTES = 16 * 1024 * 1024


class EdgeServer:
    def __init__(
        self,
        name: str,
        origin: OriginServer,
        cache_bytes: int = DEFAULT_EDGE_CACHE_BYTES,
        *,
        registry: Optional[MetricsRegistry] = None,
        chunk_store=None,
    ):
        self.name = name
        self.origin = origin
        self._registry = registry
        self.cache = LRUCache(cache_bytes, registry=registry)
        # Optional edge-local content-addressed record store
        # (repro.store.ChunkStore); see serve_record.
        self.chunk_store = chunk_store
        self._lock = threading.Lock()  # guards the per-edge counters
        self.requests_served = 0
        self.bytes_served = 0
        self.origin_fetches = 0

    def _record_served(self, nbytes: int) -> None:
        with self._lock:
            self.requests_served += 1
            self.bytes_served += nbytes
            served = self.requests_served
        if self._registry is not None:
            self._registry.counter("cdn.edge.requests").inc()
            self._registry.counter("cdn.edge.bytes_served").inc(nbytes)
            # Per-edge load gauge: victim-selection strategies (the
            # "hottest edge" targeting in repro.attacks) read these to
            # pick the edge whose outage hurts the most.
            self._registry.gauge(f"cdn.edge.{self.name}.requests").set(served)

    def serve(self, key: str) -> bytes:
        """Return the object, pulling through from origin on a miss.

        Two workers missing the same cold key concurrently both pull from
        origin (duplicate fetch, consistent result) — the usual CDN
        thundering-herd trade; counters stay exact either way.
        """
        blob = self.cache.get(key)
        if blob is None:
            blob = self.origin.fetch(key)  # raises OriginError if unknown
            with self._lock:
                self.origin_fetches += 1
            if self._registry is not None:
                self._registry.counter("cdn.edge.origin_fetches").inc()
            self.cache.put(key, blob)
        self._record_served(len(blob))
        return blob

    def preload(self, key: str) -> None:
        """Push replication: warm the cache ahead of demand."""
        blob = self.origin.fetch(key)
        self.cache.put(key, blob)

    def invalidate(self, key: str) -> bool:
        """Purge a stale object (PAD upgrade path)."""
        return self.cache.invalidate(key)

    def serve_record(self, key: str, fill: Callable[[], bytes]) -> bytes:
        """A content-addressed record from the edge-local chunk store.

        ``fill`` is the origin-fill path — invoked at most once per key
        per store residency even under concurrent misses (single-flight),
        unlike :meth:`serve`'s duplicate-pull behaviour for PAD blobs.
        The served bytes land in the edge's ``bytes_served`` ledger; the
        fill shows up as an ``origin_fetch`` only when it actually ran.
        """
        if self.chunk_store is None:
            raise ValueError(f"edge {self.name!r} has no chunk store attached")
        fills = 0

        def counted_fill() -> bytes:
            nonlocal fills
            fills += 1
            return fill()

        blob = self.chunk_store.get_or_compute(key, counted_fill)
        if fills:
            with self._lock:
                self.origin_fetches += fills
            if self._registry is not None:
                self._registry.counter("cdn.edge.origin_fetches").inc(fills)
        self._record_served(len(blob))
        return blob

    def has_cached(self, key: str) -> bool:
        return key in self.cache

    def try_serve_cached(self, key: str) -> Optional[bytes]:
        """Serve only if cached; None otherwise (no origin traffic)."""
        blob = self.cache.get(key)
        if blob is not None:
            self._record_served(len(blob))
        return blob
