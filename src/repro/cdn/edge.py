"""CDN edgeserver: cached delivery of PAD objects.

On a cache miss the edge pulls from the origin (pull-through replication),
exactly how commercial CDNs treat a Web object — the paper's point is that
a PAD *is* a Web object.

With a shared :class:`~repro.telemetry.MetricsRegistry`, every edge
reports into the aggregate ``cdn.edge.*`` counters (requests, bytes
served, origin fetches) while per-edge numbers stay on the instance.
"""

from __future__ import annotations

import threading
from typing import Optional

from ..telemetry import MetricsRegistry
from .cache import LRUCache
from .origin import OriginError, OriginServer

__all__ = ["EdgeServer"]

DEFAULT_EDGE_CACHE_BYTES = 16 * 1024 * 1024


class EdgeServer:
    def __init__(
        self,
        name: str,
        origin: OriginServer,
        cache_bytes: int = DEFAULT_EDGE_CACHE_BYTES,
        *,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.name = name
        self.origin = origin
        self._registry = registry
        self.cache = LRUCache(cache_bytes, registry=registry)
        self._lock = threading.Lock()  # guards the per-edge counters
        self.requests_served = 0
        self.bytes_served = 0
        self.origin_fetches = 0

    def _record_served(self, nbytes: int) -> None:
        with self._lock:
            self.requests_served += 1
            self.bytes_served += nbytes
        if self._registry is not None:
            self._registry.counter("cdn.edge.requests").inc()
            self._registry.counter("cdn.edge.bytes_served").inc(nbytes)

    def serve(self, key: str) -> bytes:
        """Return the object, pulling through from origin on a miss.

        Two workers missing the same cold key concurrently both pull from
        origin (duplicate fetch, consistent result) — the usual CDN
        thundering-herd trade; counters stay exact either way.
        """
        blob = self.cache.get(key)
        if blob is None:
            blob = self.origin.fetch(key)  # raises OriginError if unknown
            with self._lock:
                self.origin_fetches += 1
            if self._registry is not None:
                self._registry.counter("cdn.edge.origin_fetches").inc()
            self.cache.put(key, blob)
        self._record_served(len(blob))
        return blob

    def preload(self, key: str) -> None:
        """Push replication: warm the cache ahead of demand."""
        blob = self.origin.fetch(key)
        self.cache.put(key, blob)

    def invalidate(self, key: str) -> bool:
        """Purge a stale object (PAD upgrade path)."""
        return self.cache.invalidate(key)

    def has_cached(self, key: str) -> bool:
        return key in self.cache

    def try_serve_cached(self, key: str) -> Optional[bytes]:
        """Serve only if cached; None otherwise (no origin traffic)."""
        blob = self.cache.get(key)
        if blob is not None:
            self._record_served(len(blob))
        return blob
