"""CDN substrate: origin + edge caches + redirection + replication."""

from .cache import LRUCache
from .edge import DEFAULT_EDGE_CACHE_BYTES, EdgeServer
from .origin import OriginError, OriginServer
from .planetlab import APPSERVER_SITE, ORIGIN_SITE, PROXY_SITE, Deployment, build_deployment
from .redirector import FailoverFetcher, RedirectError, Redirector
from .replication import (
    PopularityTracker,
    invalidate_everywhere,
    push_all,
    push_popular,
)

__all__ = [
    "LRUCache",
    "DEFAULT_EDGE_CACHE_BYTES",
    "EdgeServer",
    "OriginError",
    "OriginServer",
    "APPSERVER_SITE",
    "ORIGIN_SITE",
    "PROXY_SITE",
    "Deployment",
    "build_deployment",
    "FailoverFetcher",
    "RedirectError",
    "Redirector",
    "PopularityTracker",
    "invalidate_everywhere",
    "push_all",
    "push_popular",
]
