"""Origin PAD server.

Authoritative store of signed PAD blobs, keyed by ``pad_id/version``.  In
the *centralized* deployment of Fig. 9(b) all clients download straight
from here; in the CDN deployment edges pull from it on miss.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["OriginServer", "OriginError"]


class OriginError(Exception):
    """Raised for unknown objects."""


class OriginServer:
    def __init__(self, name: str = "origin"):
        self.name = name
        self._objects: dict[str, bytes] = {}
        self.requests_served = 0
        self.bytes_served = 0

    def publish(self, key: str, blob: bytes) -> None:
        """Store (or replace) an object; replacement models a PAD upgrade."""
        if not key:
            raise OriginError("object key must be non-empty")
        self._objects[key] = bytes(blob)

    def withdraw(self, key: str) -> None:
        self._objects.pop(key, None)

    def has(self, key: str) -> bool:
        return key in self._objects

    def keys(self) -> list[str]:
        return sorted(self._objects)

    def fetch(self, key: str) -> bytes:
        blob = self._objects.get(key)
        if blob is None:
            raise OriginError(f"origin has no object {key!r}")
        self.requests_served += 1
        self.bytes_served += len(blob)
        return blob

    def size_of(self, key: str) -> Optional[int]:
        blob = self._objects.get(key)
        return None if blob is None else len(blob)
