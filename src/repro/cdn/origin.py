"""Origin PAD server.

Authoritative store of signed PAD blobs, keyed by ``pad_id/version``.  In
the *centralized* deployment of Fig. 9(b) all clients download straight
from here; in the CDN deployment edges pull from it on miss.
"""

from __future__ import annotations

import threading
from typing import Optional

__all__ = ["OriginServer", "OriginError"]


class OriginError(Exception):
    """Raised for unknown objects."""


class OriginServer:
    """Thread-safe: concurrent edge pull-throughs share one counter lock."""

    def __init__(self, name: str = "origin"):
        self.name = name
        self._objects: dict[str, bytes] = {}
        self._lock = threading.Lock()
        self.requests_served = 0
        self.bytes_served = 0

    def publish(self, key: str, blob: bytes) -> None:
        """Store (or replace) an object; replacement models a PAD upgrade."""
        if not key:
            raise OriginError("object key must be non-empty")
        with self._lock:
            self._objects[key] = bytes(blob)

    def withdraw(self, key: str) -> None:
        with self._lock:
            self._objects.pop(key, None)

    def has(self, key: str) -> bool:
        return key in self._objects

    def keys(self) -> list[str]:
        with self._lock:
            return sorted(self._objects)

    def fetch(self, key: str) -> bytes:
        with self._lock:
            blob = self._objects.get(key)
            if blob is None:
                raise OriginError(f"origin has no object {key!r}")
            self.requests_served += 1
            self.bytes_served += len(blob)
        return blob

    def size_of(self, key: str) -> Optional[int]:
        blob = self._objects.get(key)
        return None if blob is None else len(blob)
