"""PAD replication policies across CDN edges.

The paper deploys PADs "across the CDN edgeservers" in advance (push) and
notes the CDN manages delivery thereafter.  Three policies are provided so
the ablation benches can compare:

* ``push_all`` — proactive full replication (the paper's setup).
* ``push_popular`` — replicate only the top-k hottest objects.
* pull-through — the default EdgeServer behaviour; nothing to do here.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from .edge import EdgeServer
from .origin import OriginServer

__all__ = ["push_all", "push_popular", "invalidate_everywhere", "PopularityTracker"]


def push_all(origin: OriginServer, edges: Iterable[EdgeServer]) -> int:
    """Warm every edge with every origin object; returns objects pushed."""
    pushed = 0
    keys = origin.keys()
    for edge in edges:
        for key in keys:
            edge.preload(key)
            pushed += 1
    return pushed


class PopularityTracker:
    """Counts per-object demand to drive ``push_popular``."""

    def __init__(self) -> None:
        self._counts: Counter[str] = Counter()

    def record(self, key: str) -> None:
        self._counts[key] += 1

    def top(self, k: int) -> list[str]:
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        # Deterministic: ties break on key.
        ranked = sorted(self._counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return [key for key, _ in ranked[:k]]


def push_popular(
    origin: OriginServer,
    edges: Iterable[EdgeServer],
    tracker: PopularityTracker,
    k: int,
) -> int:
    """Warm every edge with the ``k`` hottest objects; returns pushes."""
    pushed = 0
    hot = [key for key in tracker.top(k) if origin.has(key)]
    for edge in edges:
        for key in hot:
            edge.preload(key)
            pushed += 1
    return pushed


def invalidate_everywhere(edges: Iterable[EdgeServer], key: str) -> int:
    """Purge a stale PAD from all edges (upgrade path); returns purges."""
    return sum(1 for edge in edges if edge.invalidate(key))
