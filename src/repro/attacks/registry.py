"""The attack registry: which adversarial behaviours exist, with weights.

Each :class:`AttackBehavior` names one attack *kind* (what the adversary
does), carries a sampling *weight* (how often a mixed campaign draws
it), and a ``params`` dict of kind-specific tuning.  The registry is the
declarative catalogue the scenario runner executes from — adding a new
attack means registering a behaviour and implementing its executor in
:mod:`repro.attacks.scenario`, nothing else.

All randomness flows through the caller's seeded ``random.Random``, so a
campaign sampled from the same registry with the same seed is the same
campaign.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

__all__ = [
    "NEGOTIATION_HERD",
    "SLOWLORIS",
    "CACHE_POISON",
    "BYZANTINE_PAD",
    "TARGETED_OUTAGE",
    "ATTACK_KINDS",
    "AttackBehavior",
    "AttackRegistry",
]

NEGOTIATION_HERD = "negotiation_herd"  # metadata-scanning negotiation storm
SLOWLORIS = "slowloris"  # half-open INIT_REQ flood against the session table
CACHE_POISON = "cache_poison"  # wrong-content-for-digest + malformed metadata
BYZANTINE_PAD = "byzantine_pad"  # edge replays stale-but-validly-signed PADs
TARGETED_OUTAGE = "targeted_outage"  # centrality/load-targeted edge outage

ATTACK_KINDS = frozenset(
    {NEGOTIATION_HERD, SLOWLORIS, CACHE_POISON, BYZANTINE_PAD, TARGETED_OUTAGE}
)

# Canonical execution order: ledger reports and mixed campaigns iterate
# attacks in this order so two runs of the same seed see the same system
# state at each attack's start.
KIND_ORDER = (
    NEGOTIATION_HERD,
    SLOWLORIS,
    CACHE_POISON,
    BYZANTINE_PAD,
    TARGETED_OUTAGE,
)


@dataclass(frozen=True)
class AttackBehavior:
    """One adversarial behaviour: kind + sampling weight + tuning knobs."""

    kind: str
    weight: float = 1.0
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in ATTACK_KINDS:
            raise ValueError(f"unknown attack kind: {self.kind!r}")
        if self.weight < 0:
            raise ValueError(f"weight must be >= 0, got {self.weight}")


class AttackRegistry:
    """An ordered catalogue of attack behaviours.

    Registration order is preserved (and canonicalised to
    :data:`KIND_ORDER` by :meth:`default`), which keeps campaign
    execution — and therefore the attack ledger — deterministic for a
    given seed.
    """

    def __init__(self) -> None:
        self._behaviors: dict[str, AttackBehavior] = {}

    def register(self, behavior: AttackBehavior) -> "AttackRegistry":
        if behavior.kind in self._behaviors:
            raise ValueError(f"attack kind already registered: {behavior.kind!r}")
        self._behaviors[behavior.kind] = behavior
        return self

    def get(self, kind: str) -> AttackBehavior:
        try:
            return self._behaviors[kind]
        except KeyError:
            raise KeyError(f"attack kind not registered: {kind!r}") from None

    def kinds(self) -> list[str]:
        return list(self._behaviors)

    def __contains__(self, kind: str) -> bool:
        return kind in self._behaviors

    def __len__(self) -> int:
        return len(self._behaviors)

    def __iter__(self) -> Iterator[AttackBehavior]:
        return iter(self._behaviors.values())

    def sample(
        self,
        rng: random.Random,
        n: int,
        *,
        kinds: Optional[Sequence[str]] = None,
    ) -> list[str]:
        """``n`` weighted draws (with replacement) from the catalogue.

        ``kinds`` restricts the draw to a subset.  Behaviours with zero
        weight are never drawn.  Deterministic in (registry, rng state).
        """
        pool = [
            b for b in self._behaviors.values()
            if (kinds is None or b.kind in kinds) and b.weight > 0
        ]
        if not pool:
            raise ValueError("no attack behaviours with positive weight to sample")
        weights = [b.weight for b in pool]
        return [b.kind for b in rng.choices(pool, weights=weights, k=n)]

    @classmethod
    def default(cls) -> "AttackRegistry":
        """All five attack classes, equally weighted, canonical order."""
        registry = cls()
        for kind in KIND_ORDER:
            registry.register(AttackBehavior(kind))
        return registry
