"""Victim selection: which component an attack targets, and why.

A smart adversary does not pick targets uniformly — it knocks out the
edge the most clients depend on, or the one carrying the most traffic.
:class:`VictimSelector` implements three strategies over the *live*
system state:

* ``random`` — a seeded uniform draw over edge names (the baseline
  adversary; deterministic for a given RNG).
* ``hottest-edge`` — the edge with the highest per-edge request gauge
  (``cdn.edge.<name>.requests``), i.e. the one currently serving the
  most PAD traffic.  Requires a warmed system; falls back to ``random``
  when no gauge has moved yet.
* ``highest-degree`` — the most *central* edge in the latency topology:
  the one with the smallest total latency to every client site.  On the
  complete latency graph every node's plain degree is equal, so
  centrality is the latency-weighted analogue (closeness): the edge
  whose outage maximises expected client impact.

All strategies break ties on name, so selection is a pure function of
(system state, strategy, rng).
"""

from __future__ import annotations

import random
from typing import Optional

from ..telemetry import MetricsRegistry

__all__ = ["STRATEGIES", "VictimSelector"]

STRATEGIES = ("random", "hottest-edge", "highest-degree")


class VictimSelector:
    def __init__(
        self,
        deployment,
        *,
        registry: Optional[MetricsRegistry] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.deployment = deployment
        self.registry = registry
        self.rng = rng or random.Random(0)

    def _edge_names(self) -> list[str]:
        names = sorted(e.name for e in self.deployment.edges)
        if not names:
            raise ValueError("deployment has no edges to target")
        return names

    def select_edge(self, strategy: str) -> str:
        """The edge name an attack of the given strategy targets."""
        if strategy == "random":
            return self.rng.choice(self._edge_names())
        if strategy == "hottest-edge":
            return self._hottest_edge()
        if strategy == "highest-degree":
            return self._highest_degree_edge()
        raise ValueError(
            f"unknown victim strategy {strategy!r}; expected one of {STRATEGIES}"
        )

    def _hottest_edge(self) -> str:
        if self.registry is None:
            return self.rng.choice(self._edge_names())
        best: Optional[tuple[float, str]] = None
        for name in self._edge_names():
            served = self.registry.gauge(f"cdn.edge.{name}.requests").value
            # Max load; ties (and the all-cold case) break on name.
            key = (-served, name)
            if best is None or key < best:
                best = key
        if best is None or best[0] == 0:
            return self.rng.choice(self._edge_names())
        return best[1]

    def _highest_degree_edge(self) -> str:
        topology = self.deployment.topology
        sites = self.deployment.client_sites or self._edge_names()
        best: Optional[tuple[float, str]] = None
        for name in self._edge_names():
            total = sum(topology.latency_s(site, name) for site in sites)
            key = (total, name)
            if best is None or key < best:
                best = key
        assert best is not None
        return best[1]

    def sites_served_by(self, edge_name: str) -> list[str]:
        """Client sites whose nearest edge is ``edge_name`` (sorted).

        These are the clients an outage of that edge actually hurts —
        the scenario runner aims its attacked sessions from here.
        """
        names = self._edge_names()
        return sorted(
            site
            for site in self.deployment.client_sites
            if self.deployment.topology.nearest(site, names) == edge_name
        )

    def nearest_site(self, edge_name: str) -> str:
        """The client site closest to ``edge_name`` (always non-empty)."""
        sites = self.deployment.client_sites
        if not sites:
            raise ValueError("deployment has no client sites")
        topology = self.deployment.topology
        return min(sites, key=lambda s: (topology.latency_s(s, edge_name), s))
