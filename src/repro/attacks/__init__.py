"""Seeded, declarative adversarial workloads for the Fractal testbed.

Where :mod:`repro.faults` models *accidents* (links drop frames, edges
go dark at random), this package models *adversaries*: workloads crafted
to exhaust exactly the resources the system bounds and to poison exactly
the caches the system verifies.  The five attack classes:

* **negotiation_herd** — a metadata-scanning negotiation storm against
  the proxy's LRU-bounded adaptation cache.
* **slowloris** — half-open ``INIT_REQ`` floods against the proxy's
  LRU-bounded pending-session table.
* **cache_poison** — wrong-content-for-digest submissions against the
  self-certifying :class:`~repro.store.ChunkStore`, plus malformed
  metadata aimed at the adaptation cache.
* **byzantine_pad** — a compromised edge replaying stale-but-validly-
  signed PAD versions (signature passes, negotiated digest exposes it).
* **targeted_outage** — a topology/load-aware edge outage under live
  sessions.

Attacks are declared in an :class:`AttackRegistry`, aimed by a
:class:`VictimSelector` (random / hottest edge / highest topology
centrality), and executed by an :class:`AttackScenario` that classifies
every event *absorbed* or *degraded* and reconciles the exact identity
``attacks.launched == attacks.absorbed + attacks.degraded`` per class
against the shared telemetry registry.  Same seed, same ledger.
"""

from .registry import (
    ATTACK_KINDS,
    BYZANTINE_PAD,
    CACHE_POISON,
    KIND_ORDER,
    NEGOTIATION_HERD,
    SLOWLORIS,
    TARGETED_OUTAGE,
    AttackBehavior,
    AttackRegistry,
)
from .scenario import AttackOutcome, AttackScenario, ScenarioResult
from .victims import STRATEGIES, VictimSelector

__all__ = [
    "ATTACK_KINDS",
    "KIND_ORDER",
    "NEGOTIATION_HERD",
    "SLOWLORIS",
    "CACHE_POISON",
    "BYZANTINE_PAD",
    "TARGETED_OUTAGE",
    "AttackBehavior",
    "AttackRegistry",
    "AttackOutcome",
    "AttackScenario",
    "ScenarioResult",
    "STRATEGIES",
    "VictimSelector",
]
